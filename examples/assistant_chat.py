"""Multi-turn assistant chat — KV-cache reuse across turns.

A conversation with an on-device assistant: the first turn prefills the
whole system prompt + user message; later turns reuse the established KV
cache and only prefill the new tokens (chunk-aligned, because the NPU
graphs have static shapes, §3.2).  Time-to-first-token collapses after
the first turn.

Run:  python examples/assistant_chat.py
"""

from repro import ToyTokenizer, QWEN15_18B
from repro.core import LlmService

TURNS = [
    # (user message, assistant reply length in tokens)
    ("You are my phone assistant. Here is my calendar for the week: "
     + " ".join(f"meeting-{i} on day-{i % 7} at hour-{9 + i % 8} with "
                f"person-{i} about topic-{i}" for i in range(40)),
     45),
    ("When am I free on day-3?", 30),
    ("Move the meeting with person-7 to hour-16.", 25),
    ("Summarize everything we changed.", 50),
]


def main() -> None:
    tokenizer = ToyTokenizer(vocab_size=QWEN15_18B.vocab_size)
    service = LlmService("Redmi K70 Pro")
    chat = service.open_chat("Qwen1.5-1.8B")

    print("Multi-turn chat on Qwen1.5-1.8B (Redmi K70 Pro)\n")
    print(f"{'turn':>4s} {'new tokens':>10s} {'cached':>7s} {'TTFT':>7s} "
          f"{'decode':>7s} {'e2e':>7s}")
    for i, (message, reply_tokens) in enumerate(TURNS):
        new_tokens = tokenizer.count(message)
        record = chat.submit_turn(new_tokens, reply_tokens)
        report = record.report
        print(f"{i + 1:>4d} {new_tokens:>10d} "
              f"{int(report.extras['cached_tokens']):>7d} "
              f"{report.ttft_s:>6.2f}s {report.decode_latency_s:>6.2f}s "
              f"{report.e2e_latency_s:>6.2f}s")

    first = chat.turns[0].report
    later = chat.turns[1].report
    print(f"\nTTFT drops {first.ttft_s / later.ttft_s:.1f}x after the "
          "first turn: the conversation context's chunks stay in the KV "
          "cache and only the new message is prefilled.")
    print(f"Conversation context now spans {chat.context_tokens} tokens "
          f"({chat.n_turns} turns).")


if __name__ == "__main__":
    main()
