"""UI task automation — the paper's motivating mobile application.

An agent ingests an Android screen view hierarchy (~750 tokens with the
toy tokenizer, matching DroidTask's 505-827 range) and emits the next UI
action (a handful of tokens).  A 5-step task means five such inferences;
the paper's intro measures >40 seconds end-to-end on a CPU engine — this
example reproduces that story across engines.

Run:  python examples/ui_automation.py
"""

from repro import LlmNpuEngine, QWEN15_18B, REDMI_K70_PRO, ToyTokenizer
from repro.baselines import BASELINES, make_baseline
from repro.workloads import ui_view_hierarchy

N_STEPS = 5
OUTPUT_TOKENS_PER_STEP = 4


def main() -> None:
    tokenizer = ToyTokenizer(vocab_size=QWEN15_18B.vocab_size)

    print(f"Simulating a {N_STEPS}-step UI automation task "
          f"({QWEN15_18B.name} on {REDMI_K70_PRO.name})\n")

    engines = {"llm.npu": LlmNpuEngine(QWEN15_18B, REDMI_K70_PRO)}
    for name in BASELINES:
        engines[name] = make_baseline(name, QWEN15_18B, REDMI_K70_PRO)

    totals = {}
    for name, engine in engines.items():
        total = 0.0
        for step in range(N_STEPS):
            screen = ui_view_hierarchy(seed=step)
            prompt_tokens = tokenizer.count(screen)
            report = engine.infer(prompt_tokens, OUTPUT_TOKENS_PER_STEP)
            total += report.e2e_latency_s
            if name == "llm.npu":
                print(f"  step {step + 1}: screen={prompt_tokens} tokens -> "
                      f"{report.e2e_latency_s:.2f}s "
                      f"(prefill {report.prefill_latency_s:.2f}s)")
        totals[name] = total

    print("\nWhole-task latency (5 steps):")
    ours = totals["llm.npu"]
    for name, total in sorted(totals.items(), key=lambda kv: kv[1]):
        marker = " <- ours" if name == "llm.npu" else f"  ({total / ours:.1f}x)"
        print(f"  {name:20s} {total:7.2f}s{marker}")

    print("\nThe paper's intro: one step costs 8.1s on llama.cpp-CPU "
          "(>40s per task); llm.npu makes the task interactive.")


if __name__ == "__main__":
    main()
