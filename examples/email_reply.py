"""Automated email reply — long-context prefill dominance (Figure 1).

A reply assistant ingests the mailbox history (~1500 tokens, LongBench
range) and writes a short reply.  On CPU/GPU engines almost all the time
goes to the prefill stage; this example reproduces the Figure 1 breakdown
and shows how llm.npu changes it.

Run:  python examples/email_reply.py
"""

from repro import LlmNpuEngine, GEMMA_2B, REDMI_K70_PRO, ToyTokenizer
from repro.baselines import LlamaCppEngine, TfliteEngine
from repro.workloads import email_history

REPLY_TOKENS = 3  # LongBench 2wiki outputs are 2-4 tokens


def bar(fraction: float, width: int = 36) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    tokenizer = ToyTokenizer(vocab_size=GEMMA_2B.vocab_size)
    mailbox = email_history(seed=42)
    prompt_tokens = tokenizer.count(mailbox)
    print(f"Mailbox context: {prompt_tokens} tokens "
          f"({GEMMA_2B.name} on {REDMI_K70_PRO.name})\n")

    engines = {
        "llama.cpp-CPU": LlamaCppEngine(GEMMA_2B, REDMI_K70_PRO),
        "TFLite-GPU": TfliteEngine(GEMMA_2B, REDMI_K70_PRO),
        "llm.npu": LlmNpuEngine(GEMMA_2B, REDMI_K70_PRO),
    }

    print(f"{'engine':16s} {'prefill':>9s} {'decode':>8s} {'e2e':>8s}  "
          "prefill share")
    for name, engine in engines.items():
        report = engine.infer(prompt_tokens, REPLY_TOKENS)
        share = report.prefill_latency_s / report.e2e_latency_s
        print(f"{name:16s} {report.prefill_latency_s:8.2f}s "
              f"{report.decode_latency_s:7.2f}s {report.e2e_latency_s:7.2f}s"
              f"  [{bar(share)}] {share:.0%}")

    print("\nFigure 1's point: prefill is 88-99% of end-to-end latency on "
          "mobile CPUs for context-heavy tasks — which is why llm.npu "
          "targets the prefill stage with NPU offloading.")


if __name__ == "__main__":
    main()
