"""Fleet telemetry — SLO monitors and mergeable sketches across devices.

An on-device LLM service ships to phones you don't control: flagships
next to budget SoCs, some of them flaky.  Raw latency samples never
leave a device — but *mergeable* telemetry can: bounded-size quantile
sketches and burn-rate incident timelines.  This example runs a
3-device mixed-tier fleet (one healthy flagship, one mid-tier with
transient faults, one slow budget device in a fault storm) through the
seeded two-tier workload, merges the per-device sketches into exact
fleet percentiles, and prints the incident timeline with cross-links
back to the offending request tracks and fault draws.

Run:  python examples/fleet_monitor.py
"""

from repro.eval import (
    default_fleet,
    fleet_compliance_table,
    fleet_percentile_table,
    fleet_report,
    incident_table,
)
from repro.obs import validate_timeline_doc


def main() -> None:
    fleet = default_fleet(n_devices=3, seed=42)
    print("Simulated fleet:")
    for spec in fleet:
        print(f"  {spec.name:14s} {spec.device_name:24s} "
              f"transient={spec.transient_rate:g} "
              f"permanent={spec.permanent_rate:g}")
    print()

    report = fleet_report(specs=fleet, seed=42)
    validate_timeline_doc(report["alerts"])

    print(fleet_percentile_table(report).render())
    print()
    print(fleet_compliance_table(report).render())
    print()
    print(incident_table(report["alerts"],
                         title="Fleet incident timeline").render())

    # A firing incident carries links back to the evidence: the bad
    # request tracks (the same `req NNNNN` names the Perfetto trace
    # uses) and the fault draws inside the alert's long window.
    firing = [inc for inc in report["alerts"]["incidents"]
              if inc["firing_s"] is not None]
    print(f"\n{len(firing)} incidents fired; the first one links to:")
    for link in firing[0]["links"][:5]:
        if link["kind"] == "request":
            print(f"  request {link['track']!r} ({link['status']}) "
                  f"at t={link['t_s']:.2f}s")
        else:
            print(f"  fault draw #{link['draw']} ({link['fault']}) "
                  f"at t={link['t_s']:.2f}s")

    healthy, storm = report["devices"][0], report["devices"][-1]
    print(f"\nThe story: {healthy['name']} completed "
          f"{healthy['n_completed']}/{healthy['n_requests']} with "
          f"{healthy['n_firing']} fired alerts, while {storm['name']} "
          f"({storm['device']}) completed only {storm['n_completed']} "
          f"and fired {storm['n_firing']} — same workload, same SLOs, "
          f"merged into one deterministic repro.fleet/v1 report.")


if __name__ == "__main__":
    main()
