"""Quantization playground — real numerics on a synthetic model.

Quantizes the same synthetic transformer with every scheme in the library
and scores each against the FP32 reference (teacher agreement), then shows
the llm.npu-specific trade-off: outlier pruning rate vs accuracy.

Run:  python examples/quantization_playground.py
"""

import numpy as np

from repro.model import build_synthetic_model, tiny_config
from repro.quant import SCHEMES, quantize_model, top1_agreement
from repro.quant.observers import calibrate
from repro.workloads import calibration_corpus, heldout_sequences


def main() -> None:
    config = tiny_config(n_layers=16, hidden_size=96, n_heads=4,
                         ffn_hidden=256)
    print(f"Substrate: {config.n_layers}-layer, {config.hidden_size}-wide "
          "synthetic transformer with injected outlier channels\n")

    reference = build_synthetic_model(config, seed=7)
    corpus = calibration_corpus(config, seed=7)
    heldout = heldout_sequences(config, seed=1000)
    ref_logits = np.concatenate([reference.prefill(ids) for ids in heldout])
    calib = calibrate(reference, corpus, channel_percentile=97.9)

    print(f"{'scheme':14s} {'top-1 agreement':>16s} {'weight bytes':>13s}")
    for scheme in SCHEMES:
        model = build_synthetic_model(config, seed=7)
        if scheme == "fp16":
            report = quantize_model(model, "fp16")
        else:
            report = quantize_model(model, scheme, calibration=calib)
        logits = np.concatenate([model.prefill(ids) for ids in heldout])
        agreement = top1_agreement(ref_logits, logits)
        print(f"{scheme:14s} {agreement:15.1%} {report.weight_bytes:>13,d}")

    print("\nllm.npu pruning-rate sweep (the Fig. 16 trade-off):")
    print(f"{'pruning rate':>12s} {'agreement':>10s} {'shadow layers':>14s}")
    for rate in (0.0, 0.5, 0.85, 0.95, 1.0):
        model = build_synthetic_model(config, seed=7)
        report = quantize_model(model, "llm.npu", calibration=calib,
                                pruning_rate=rate)
        logits = np.concatenate([model.prefill(ids) for ids in heldout])
        agreement = top1_agreement(ref_logits, logits)
        kept = len(report.pruning_plan.kept_layers)
        print(f"{rate:12.0%} {agreement:9.1%} {kept:>14d}")

    print("\nThe 85% default keeps only the important (first/last) layers' "
          "shadow execution — nearly free accuracy-wise, while eliminating "
          "most CPU-NPU synchronization.")


if __name__ == "__main__":
    main()
