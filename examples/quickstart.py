"""Quickstart: simulate llm.npu inference and compare with a baseline.

Run:  python examples/quickstart.py
"""

from repro import LlmNpuEngine, QWEN15_18B, REDMI_K70_PRO
from repro.baselines import LlamaCppEngine


def main() -> None:
    # Build the llm.npu engine: this performs the "preparation stage" —
    # chunk-sharing graphs (chunk length 256), shadow-outlier profiles
    # with the default 85% importance pruning, hot-channel cache sizing.
    engine = LlmNpuEngine(QWEN15_18B, REDMI_K70_PRO)
    print(f"preparation (one-time graph build+optimize): "
          f"{engine.preparation_s():.1f}s")
    print(f"unpruned shadow layers: {engine.n_unpruned_layers()} "
          f"of {QWEN15_18B.n_layers}\n")

    # Simulate one request: a 1024-token prompt, 8 output tokens.
    report = engine.infer(prompt_tokens=1024, output_tokens=8)
    print(report.summary())
    print(f"  chunks: {report.prefill.n_chunks}  "
          f"padding: {report.prefill.padded_tokens} tokens")
    print(f"  NPU bubble rate: {report.prefill.npu_bubble_rate:.1%}")
    print(f"  memory: {report.memory_bytes / 2**30:.2f} GiB\n")

    # The same request on llama.cpp's CPU path.
    baseline = LlamaCppEngine(QWEN15_18B, REDMI_K70_PRO)
    base_report = baseline.infer(prompt_tokens=1024, output_tokens=8)
    print(base_report.summary())

    speedup = base_report.prefill_latency_s / report.prefill_latency_s
    print(f"\nllm.npu prefill speedup over llama.cpp-CPU: {speedup:.1f}x")
    energy_ratio = (base_report.extras["prefill_energy_j"]
                    / report.extras["prefill_energy_j"])
    print(f"llm.npu prefill energy saving:              {energy_ratio:.1f}x")


if __name__ == "__main__":
    main()
