"""Custom device exploration — the paper's hardware-design implications.

§5 of the paper lists NPU hardware changes that would help on-device LLMs:
bigger data caches, dynamic-shape support, mixed-precision units.  Because
this reproduction's devices are declarative cost models, "what-if" devices
are one `scaled()` call away.  This example sweeps hypothetical NPUs and
shows where prefill stops being NPU-bound.

Run:  python examples/custom_device.py
"""

import dataclasses

from repro import LlmNpuEngine, QWEN15_18B
from repro.hw import DType, REDMI_K70_PRO


def with_npu_speedup(device, factor: float):
    """A derivative device whose NPU is `factor`x faster."""
    return device.scaled(
        name=f"{device.name} (NPU x{factor:g})",
        soc=device.soc,
        cpu_gpu=1.0,
        npu=factor,
        dram_bytes=device.dram_bytes,
    )


def main() -> None:
    print(f"Sweeping hypothetical NPUs for {QWEN15_18B.name}, "
          "1024-token prefill\n")
    print(f"{'device':32s} {'prefill tok/s':>13s} {'NPU busy':>9s} "
          f"{'CPU busy':>9s} {'bottleneck':>11s}")

    for factor in (0.5, 1.0, 2.0, 4.0, 8.0):
        device = with_npu_speedup(REDMI_K70_PRO, factor)
        engine = LlmNpuEngine(QWEN15_18B, device)
        report = engine.prefill(1024)
        bottleneck = ("NPU" if report.npu_busy_s > report.float_busy_s
                      else "CPU")
        print(f"{device.name:32s} {report.tokens_per_s:13.0f} "
              f"{report.npu_busy_s:8.2f}s {report.float_busy_s:8.2f}s "
              f"{bottleneck:>11s}")

    print("\nPast a few x of NPU speedup the CPU-side float attention "
          "becomes the critical path — the reason the paper's future-work "
          "section wants GPU coordination and mixed-precision NPU units.")

    # A device with a bigger NPU-addressable region (design implication 2):
    big_region = dataclasses.replace(
        REDMI_K70_PRO, name="K70 Pro (12 GiB NPU region)",
        npu_region_bytes=12 * 1024**3,
    )
    memory = big_region.memory()
    print(f"\n{big_region.name}: NPU region fits LLaMA-7B INT8 weights? "
          f"{memory.npu.would_fit(7 * 1024**3)}")
    print(f"{REDMI_K70_PRO.name}: "
          f"{REDMI_K70_PRO.memory().npu.would_fit(7 * 1024**3)}")


if __name__ == "__main__":
    main()
