"""Chat summarization — decode-heavy workloads and GPU-NPU coordination.

Persona-Chat-style requests have balanced prompt/output lengths, so the
decode backend matters: llm.npu's prototype decodes on the CPU, and
switching the float/decode side to the GPU cuts end-to-end latency without
touching prefill (Figure 18).

Run:  python examples/chat_summary.py
"""

from repro import LlmNpuEngine, QWEN15_18B, REDMI_K70_PRO, ToyTokenizer
from repro.core import EngineConfig
from repro.workloads import chat_dialogue

SUMMARY_TOKENS = 44  # Persona-Chat outputs average 35-57 tokens


def main() -> None:
    tokenizer = ToyTokenizer(vocab_size=QWEN15_18B.vocab_size)
    dialogue = chat_dialogue(seed=7)
    prompt_tokens = tokenizer.count(dialogue)
    print(f"Dialogue: {prompt_tokens} tokens, summary: {SUMMARY_TOKENS} "
          f"tokens ({QWEN15_18B.name} on {REDMI_K70_PRO.name})\n")

    configs = {
        "CPU-NPU (paper prototype)": EngineConfig(
            float_backend="cpu", decode_backend="cpu"),
        "GPU-NPU (future work)": EngineConfig(
            float_backend="gpu", decode_backend="gpu"),
    }

    print(f"{'coordination':28s} {'prefill':>9s} {'decode':>9s} {'e2e':>8s}")
    results = {}
    for name, config in configs.items():
        engine = LlmNpuEngine(QWEN15_18B, REDMI_K70_PRO, config)
        report = engine.infer(prompt_tokens, SUMMARY_TOKENS)
        results[name] = report
        print(f"{name:28s} {report.prefill_latency_s:8.2f}s "
              f"{report.decode_latency_s:8.2f}s "
              f"{report.e2e_latency_s:7.2f}s")

    cpu = results["CPU-NPU (paper prototype)"]
    gpu = results["GPU-NPU (future work)"]
    print(f"\nPrefill barely moves ({cpu.prefill_latency_s:.2f}s vs "
          f"{gpu.prefill_latency_s:.2f}s): the float work hides under the "
          "NPU either way (Fig. 18a).")
    print(f"End-to-end drops {cpu.e2e_latency_s - gpu.e2e_latency_s:.2f}s "
          "from the faster GPU decode backend (Fig. 18b).")


if __name__ == "__main__":
    main()
