"""Continuous batching with chunked prefill (extension experiment).

The iteration-level step loop against per-request dispatch on a
decode-heavy two-tier overload stream: goodput (SLO-met requests per
second) improves because interactive arrivals preempt background
decode tails at chunk boundaries instead of queueing behind them, and
the ``prefill_priority`` knob trades TTFT against ITL.
"""

from conftest import show_and_archive

from repro.eval import service_batching


def test_service_batching_goodput_and_knob(once):
    table = once(service_batching)
    show_and_archive(table, "service_batching.txt")

    goodput = table.column("goodput req/s")
    ttft = table.column("mean ttft s")
    itl = table.column("mean itl s")
    baseline = table.row_by_key("per-request (baseline)")
    mid = table.row_by_key("step loop p=0.5")
    cols = table.columns
    g = cols.index("goodput req/s")

    # the step loop beats per-request dispatch on goodput at the
    # default knob setting (and a fortiori at the sweep's best point)
    assert mid[g] > baseline[g]
    assert max(goodput[1:]) > baseline[g]

    # sweeping prefill_priority 0 -> 1 moves TTFT and ITL in opposite
    # directions: TTFT falls monotonically, ITL rises monotonically
    swept_ttft = ttft[1:]
    swept_itl = itl[1:]
    assert all(a > b for a, b in zip(swept_ttft, swept_ttft[1:]))
    assert all(a < b for a, b in zip(swept_itl, swept_itl[1:]))
    assert swept_ttft[-1] < swept_ttft[0] / 2
    assert swept_itl[-1] > 2 * swept_itl[0]

    # interactive arrivals stop missing their TTFT bound once chunked
    # preemption is in play at prefill-leaning settings
    int_max = cols.index("int ttft max s")
    assert table.row_by_key("step loop p=0.75")[int_max] < 4.0
