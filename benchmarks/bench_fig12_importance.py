"""Figure 12 — outlier importance per layer and accuracy vs pruning.

Left: importance (largest outlier / quantization scale) is highest for
layers near the input and output.  Right: accuracy survives pruning the
unimportant majority and collapses only as pruning approaches 100%.
"""

import numpy as np
from conftest import show_and_archive

from repro.eval import fig12_importance


def test_fig12_regenerates(once):
    profile, sweep = once(fig12_importance,
                          pruning_rates=(0.0, 0.5, 0.85, 1.0),
                          benchmarks=("hellaswag", "winogrande"),
                          n_items_scale=0.5)
    show_and_archive(profile, "fig12_profile.txt")
    show_and_archive(sweep, "fig12_sweep.txt")

    # U shape: end layers beat the middle by a clear margin
    values = profile.column("importance")
    n = len(values)
    ends = (values[0] + values[-1]) / 2
    middle = float(np.mean(values[n // 4: -(n // 4)]))
    assert ends > 2.0 * middle

    # accuracy at the paper's default pruning is close to no pruning...
    accs = {row[0]: (row[1], row[2]) for row in sweep.rows}
    for i in range(2):
        assert accs["85%"][i] >= accs["0%"][i] - 0.12
    # ...and collapses at full pruning
    assert np.mean(accs["100%"]) < np.mean(accs["0%"]) - 0.15
