"""Figure 1 — prefill vs decode share of end-to-end latency.

The paper's motivating measurement: on mobile CPUs the prefill stage is
88.3-98.8% of end-to-end latency for UI automation / context-aware QA,
and remains the majority (54.2-91.7%) even on GPUs.
"""

from conftest import show_and_archive

from repro.eval import fig1_breakdown


def test_fig1_regenerates(once):
    table = once(fig1_breakdown,
                 workload_names=("ui_automation", "email_reply",
                                 "chat_summary"),
                 n_samples=5)
    show_and_archive(table, "fig1.txt")

    shares = {(row[0], row[1]): float(row[-1].rstrip("%"))
              for row in table.rows}

    # CPU: prefill dominates heavily on the short-output workloads
    assert shares[("llama.cpp-CPU", "ui_automation")] > 88.0
    assert shares[("llama.cpp-CPU", "email_reply")] > 95.0

    # chat summary has balanced lengths -> lower share everywhere
    assert (shares[("llama.cpp-CPU", "chat_summary")]
            < shares[("llama.cpp-CPU", "ui_automation")])

    # GPU shares are lower than CPU shares but prefill still majority
    for workload in ("ui_automation", "email_reply"):
        assert (shares[("TFLite-GPU", workload)]
                < shares[("llama.cpp-CPU", workload)])
        assert shares[("TFLite-GPU", workload)] > 50.0
