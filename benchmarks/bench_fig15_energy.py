"""Figure 15 — prefill energy consumption on the Redmi K60 Pro.

llm.npu's energy win comes from both finishing sooner and keeping the work
on the low-power NPU (paper at 1024 tokens: 35.6-59.5x vs llama.cpp-CPU,
35.2-59.3x vs MLC-GPU, 1.85-4.32x vs TFLite-GPU).
"""

from conftest import show_and_archive

from repro.eval import fig15_energy


def test_fig15_regenerates(once):
    table = once(fig15_energy,
                 models=("Qwen1.5-1.8B", "Gemma-2B", "LlaMA-2-7B"),
                 prompt_lens=(64, 1024))
    show_and_archive(table, "fig15.txt")

    savings = {}
    for row in table.rows:
        savings[(row[0], row[1])] = float(row[-1].rstrip("x"))

    for model in ("Qwen1.5-1.8B", "Gemma-2B", "LlaMA-2-7B"):
        # large factors vs the CPU engine and MLC, small vs TFLite
        assert savings[(model, "llama.cpp-CPU")] > 8.0
        assert savings[(model, "MLC-GPU")] > 20.0
        assert 1.3 < savings[(model, "TFLite-GPU")] < 5.0
        # ordering: worst-efficiency engines burn the most energy
        assert (savings[(model, "MLC-GPU")]
                > savings[(model, "TFLite-GPU")])


def test_fig15_energy_grows_with_prompt(once):
    table = once(fig15_energy, models=("Qwen1.5-1.8B",),
                 prompt_lens=(64, 256, 1024))
    show_and_archive(table, "fig15_scaling.txt")
    for row in table.rows:
        assert row[2] <= row[3] <= row[4]
