"""Table 5 — end-to-end latency on the real mobile workloads.

Prefill + decode over the five dataset length distributions.  llm.npu
achieves the lowest end-to-end latency on every workload; the gap is
largest for long-prompt/short-output workloads (LongBench) and smallest
for the decode-heavy Persona-Chat (llm.npu's prototype decodes on the
CPU, §4.3).
"""

from conftest import show_and_archive

from repro.eval import table5_e2e


def _rows_for(table, workload, model):
    return {row[2]: row for row in table.rows
            if row[0] == workload and row[1] == model}


def test_table5_regenerates(once):
    table = once(table5_e2e,
                 models=("Qwen1.5-1.8B", "Gemma-2B", "LlaMA-2-7B"),
                 workload_names=("email_reply", "qa_retrieval",
                                 "ui_automation", "ui_automation_short",
                                 "chat_summary"),
                 n_samples=3)
    show_and_archive(table, "table5.txt")

    for workload in ("email_reply", "qa_retrieval", "ui_automation",
                     "ui_automation_short", "chat_summary"):
        for model in ("Qwen1.5-1.8B", "Gemma-2B", "LlaMA-2-7B"):
            rows = _rows_for(table, workload, model)
            ours = rows["llm.npu"]
            for name, row in rows.items():
                if name == "llm.npu":
                    continue
                if workload == "chat_summary" and name == "TFLite-GPU":
                    # Persona-Chat is decode-heavy and llm.npu's prototype
                    # decodes on the CPU; the paper's own margin over
                    # TFLite here is just 1.02x (Gemma-2B), i.e. a
                    # near-tie — allow one either way within 5%.
                    assert row[3] > ours[3] * 0.95, (workload, model, name)
                else:
                    assert row[3] > ours[3], (workload, model, name)

    # structural claims:
    qwen_email = _rows_for(table, "email_reply", "Qwen1.5-1.8B")
    qwen_chat = _rows_for(table, "chat_summary", "Qwen1.5-1.8B")

    def speedup(rows, engine):
        return float(rows[engine][-1].rstrip("x"))

    # long-prompt workloads show larger speedups than decode-heavy ones
    for engine in ("llama.cpp-CPU", "MLC-GPU"):
        assert speedup(qwen_email, engine) > speedup(qwen_chat, engine)

    # Persona-Chat: llm.npu's CPU decode limits the gap (paper: ~1.1-3.5x
    # over the strong baselines)
    assert speedup(qwen_chat, "MNN-CPU") < 6.0

    # LongBench: large factors vs CPU engines (paper: 23.0-46.2x llama.cpp)
    assert speedup(qwen_email, "llama.cpp-CPU") > 8.0
