"""Figure 4 — quantization algorithm cost on the NPU.

Per-group layouts (K-Quant, AWQ) force the NPU to decompose the MatMul
into group-sized sub-MatMuls plus float reductions; the paper measures
8.1-10.7x overhead vs per-tensor quantization.
"""

from conftest import show_and_archive

from repro.eval import fig4_quant_npu


def test_fig4_regenerates(once):
    table = once(fig4_quant_npu)
    show_and_archive(table, "fig4.txt")

    per_tensor = table.value("per-tensor (SmoothQuant/llm.npu)",
                             "latency ms")
    kquant = table.value("K-Quant (g=32)", "latency ms")
    awq = table.value("AWQ-style (g=128)", "latency ms")

    # the paper's band for fine-grained grouping
    assert 6.0 * per_tensor < kquant < 20.0 * per_tensor
    # coarser groups pay less but still a multiple
    assert per_tensor < awq < kquant
