"""Figure 16 — accuracy vs generation speed across outlier pruning rates.

Higher pruning rates remove shadow execution (and its CPU work + sync)
from more layers: prefill speeds up monotonically while accuracy holds
until the important layers start being pruned, then collapses.
"""

from conftest import show_and_archive

from repro.eval import fig16_pruning_tradeoff


def test_fig16_regenerates(once):
    table = once(fig16_pruning_tradeoff,
                 rates=(0.0, 0.25, 0.5, 0.75, 0.85, 0.95, 1.0),
                 benchmarks=("lambada", "hellaswag"),
                 n_items_scale=0.5)
    show_and_archive(table, "fig16.txt")

    speeds = table.column("prefill tok/s")
    lambada = table.column("acc:lambada")
    hellaswag = table.column("acc:hellaswag")

    # speed rises monotonically with the pruning rate
    assert all(b >= a - 1e-9 for a, b in zip(speeds, speeds[1:]))
    assert speeds[-1] > 1.1 * speeds[0]

    # accuracy at the default rate (index 4: 85%) is close to unpruned
    assert lambada[4] >= lambada[0] - 0.15
    assert hellaswag[4] >= hellaswag[0] - 0.12

    # full pruning collapses accuracy (paper: Qwen falls to 8.1% LAMBADA)
    assert lambada[-1] < lambada[0] - 0.3
