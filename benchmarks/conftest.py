"""Benchmark harness conventions.

Every file regenerates one table/figure of the paper via its
``repro.eval`` driver, measured once with ``benchmark.pedantic`` (the
drivers are deterministic simulations — repeated timing rounds would only
re-measure the same arithmetic), prints the regenerated table, archives it
under ``benchmarks/results/``, and asserts the paper-shape properties
(who wins, rough factors, crossovers).

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def run_once(benchmark, fn, **kwargs):
    """Benchmark a driver with a single round and return its result."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)


@pytest.fixture()
def once(benchmark):
    def _run(fn, **kwargs):
        return run_once(benchmark, fn, **kwargs)
    return _run


def show_and_archive(table, filename):
    """Print a regenerated table and archive it under benchmarks/results.

    Alongside the human-readable ``.txt``, every benchmark emits a
    machine-readable twin — ``results/json/BENCH_<stem>.json`` (schema
    ``repro.bench/v1``) with the table's numeric cells as directional
    metrics — which ``llmnpu bench-compare`` gates CI on.
    """
    import os

    from repro.eval import archive, results_dir
    from repro.obs import make_artifact

    print()
    print(table.render())
    path = archive(table, filename)
    print(f"[archived: {path}]")
    stem = os.path.splitext(os.path.basename(filename))[0]
    artifact = make_artifact(stem, table)
    json_path = artifact.save(
        os.path.join(results_dir(), "json", f"BENCH_{stem}.json")
    )
    print(f"[artifact: {json_path}]")
