"""Critical-path attribution and what-if calibration (extension).

Three views of the tentpole observability layer: per-stage and
per-request critical-path attribution over the golden service workload,
the calibrated DMA buffer-depth ablation (measured vs what-if), and the
prompt-length x float-placement crossover sweep where the estimator
predicts the placement switch without rebuilding the engine.
"""

from conftest import show_and_archive

from repro.eval import dma_ablation, service_critpath, stage_crossover


def test_critpath(once):
    stages, requests = once(service_critpath, seed=42)
    show_and_archive(stages, "critpath.txt")
    show_and_archive(requests, "critpath_requests.txt")

    # on-path segments tile each request's arrival-to-completion window,
    # so the per-stage shares partition e2e exactly
    shares = stages.column("share of e2e %")
    assert abs(sum(shares) - 100.0) < 1e-6
    # attribution is ranked: the table leads with the biggest stage
    on_path = stages.column("on-path ms")
    assert on_path == sorted(on_path, reverse=True)
    # the golden workload oversubscribes the device, so scheduler-side
    # queueing — not any hw stage — is the dominant contributor
    assert stages.rows[0][0] == "queued"
    names = stages.column("stage")
    assert "decode" in names

    # one row per completed golden request, service share is a
    # percentage of that request's own e2e
    assert len(requests.rows) == 19
    assert all(0.0 <= s <= 100.0
               for s in requests.column("service share %"))


def test_dma_ablation(once):
    table = once(dma_ablation, prompt_len=512)
    show_and_archive(table, "dma_ablation.txt")

    # the what-if replay reproduces every rebuilt-engine measurement to
    # well under a nanosecond — the estimator's calibration contract
    assert all(err < 1.0 for err in table.column("|error| ns"))
    measured = dict(zip((r[0] for r in table.rows),
                        table.column("measured ms")))
    serial = measured["serial (no overlap)"]
    double = measured["double-buffered"]
    ideal = measured["unbounded buffers (legacy 'max' combine)"]
    # no overlap pays the full streaming cost; double buffering
    # recovers most of it
    assert serial > double >= ideal
    assert (serial - ideal) > 4 * (double - ideal)


def test_stage_crossover(once):
    table = once(stage_crossover)
    show_and_archive(table, "stage_crossover.txt")

    winners = table.column("winner")
    # the paper's crossover: GPU wins the float stages on long prompts'
    # rivals... concretely, both placements win somewhere in the sweep
    assert {"cpu", "gpu"} == set(winners)
    # the calibrated prediction lands within a few percent of the
    # actually-measured alternative placement
    assert all(err < 5.0 for err in table.column("pred err %"))
    assert all(stage for stage in table.column("gating stage"))
