"""Design-choice ablations beyond the paper's own Fig. 19 ladder.

Sweeps each design parameter DESIGN.md calls out: chunk length, scheduler
policy, hot-channel cache fraction, equivalent-shape optimization, and the
§5 future-hardware what-ifs.
"""

import pytest
from conftest import show_and_archive

from repro.eval import (
    ablation_chunk_length,
    ablation_equivalent_shapes,
    ablation_hot_channels,
    ablation_scheduler,
    future_hardware,
)


def test_chunk_length_tradeoff(once):
    table = once(ablation_chunk_length,
                 chunk_lens=(64, 128, 256, 512),
                 prompt_lens=(300, 1024))
    show_and_archive(table, "ablation_chunk_length.txt")

    long_speeds = dict(zip(table.column("chunk length"),
                           table.column("prompt=1024")))
    short_speeds = dict(zip(table.column("chunk length"),
                            table.column("prompt=300")))
    # 256 is the long-prompt sweet spot (the paper's choice)
    assert long_speeds[256] == max(long_speeds.values())
    # small chunks win short prompts (less padding)
    assert short_speeds[64] > short_speeds[256]
    # padding grows with the chunk length
    padding = table.column("padding @300")
    assert padding[0] < padding[2]


def test_scheduler_policies(once):
    table = once(ablation_scheduler)
    show_and_archive(table, "ablation_scheduler.txt")

    speeds = dict(zip(table.column("policy"), table.column("tok/s")))
    # the paper's heuristic wins, head-of-line in-order loses
    assert speeds["ooo"] == max(speeds.values())
    assert speeds["in-order"] == min(speeds.values())
    # and the bubble ordering matches
    bubbles = dict(zip(table.column("policy"),
                       [float(b.rstrip("%"))
                        for b in table.column("NPU bubble rate")]))
    assert bubbles["ooo"] < bubbles["in-order"]


def test_hot_channel_cache(once):
    table = once(ablation_hot_channels)
    show_and_archive(table, "ablation_hot_channels.txt")

    mib = table.column("shadow weights MiB")
    assert mib[0] < mib[-1] / 20  # 1% resident vs keep-everything
    # the paper's 3% point: big memory saving at 80% hit rate
    row3 = table.row_by_key("3%")
    assert float(row3[2].rstrip("%")) > 90
    assert float(row3[3].rstrip("%")) == 80


def test_equivalent_shapes(once):
    table = once(ablation_equivalent_shapes)
    show_and_archive(table, "ablation_equivalent_shapes.txt")
    for row in table.rows:
        gain = float(row[3].rstrip("x"))
        assert 1.05 < gain < 2.2, row[0]


def test_future_hardware(once):
    table = once(future_hardware)
    show_and_archive(table, "future_hardware.txt")

    speeds = table.column("prefill tok/s")
    bottlenecks = table.column("bottleneck")
    # faster NPUs help, with saturating returns
    assert speeds[1] > speeds[0]
    assert speeds[3] < 1.2 * speeds[1]
    # the bottleneck flips from NPU to CPU as the NPU accelerates
    assert bottlenecks[0] == "NPU"
    assert bottlenecks[-1] == "CPU"


def test_mixed_precision_npu(once):
    from repro.eval import mixed_precision_npu
    table = once(mixed_precision_npu)
    show_and_archive(table, "mixed_precision_npu.txt")

    speeds = table.column("all-NPU tok/s")
    verdicts = table.column("all-NPU wins?")
    # today's FP16 path makes all-NPU execution catastrophic...
    assert speeds[0] < 100
    assert verdicts[0] == "no"
    # ...a mixed-precision NPU flips the verdict
    assert verdicts[-1] == "yes"
    assert speeds[-1] > 10 * speeds[0]


def test_tri_processor_negative_result(once):
    from repro.eval import tri_processor
    table = once(tri_processor)
    show_and_archive(table, "tri_processor.txt")

    for row in table.rows:
        _, cpu_npu, gpu_npu, tri = row
        # the third processor never helps beyond GPU-NPU (within 3%):
        # shadow MatMuls are too small to contend for the float processor
        assert tri <= gpu_npu * 1.03
        assert tri >= gpu_npu * 0.9


def test_short_prompt_crossover(once):
    from repro.eval import short_prompt_crossover
    table = once(short_prompt_crossover)
    show_and_archive(table, "short_prompt_crossover.txt")

    prompts = table.column("prompt")
    ours = table.column("llm.npu ms")
    gpu = table.column("TFLite-GPU ms")
    hybrid = table.column("hybrid ms")
    picks = table.column("hybrid picks")
    # the GPU engine wins the shortest prompts (padding), llm.npu the rest
    assert gpu[0] < ours[0]
    assert ours[-1] < gpu[-1]
    # the hybrid dispatcher matches the winner everywhere
    for o, g, h in zip(ours, gpu, hybrid):
        assert h == pytest.approx(min(o, g), rel=1e-6)
    assert picks[0] == "gpu"
    assert picks[-1] == "llm.npu"
