"""Calibration dashboard — every paper anchor the simulator is fitted to.

One consolidated check: Table 3 fits, Figure 2 graph costs, the sharing
count, Eq. 5 scheduling gains, sync overhead share, real-world anchors,
and the equivalent-shape gain.
"""

from conftest import show_and_archive

from repro.eval import calibration_dashboard


def test_all_anchors_pass(once):
    table = once(calibration_dashboard)
    show_and_archive(table, "calibration_dashboard.txt")
    statuses = table.column("status")
    assert "FAIL" not in statuses
    # the load-bearing anchors must be strict PASSes, not NEAR
    strict = {
        "Qwen shared subgraphs",
        "per-group NPU penalty (g=32)",
        "out-of-order latency reduction",
        "llama.cpp Qwen prefill",
    }
    for row in table.rows:
        if row[0] in strict:
            assert row[-1] == "PASS", row[0]
