"""Figure 17 — memory consumption vs INT8 baselines (512-token prompt).

llm.npu uses somewhat more memory than llama.cpp/TFLite (the MLLM/QNN
frameworks keep per-operator activation buffers), and the shadow float
weights added by §3.3 are only 0.6-1% of the total thanks to the
hot-channel cache.
"""

from conftest import show_and_archive

from repro.eval import fig17_memory


def test_fig17_regenerates(once):
    table = once(fig17_memory,
                 models=("Qwen1.5-1.8B", "Gemma-2B", "Phi-2-2.7B"))
    show_and_archive(table, "fig17.txt")

    for model in ("Qwen1.5-1.8B", "Gemma-2B", "Phi-2-2.7B"):
        rows = {row[1]: row for row in table.rows if row[0] == model}
        ours_total = rows["llm.npu"][2]
        lcpp_total = rows["llama.cpp-CPU"][2]
        # llm.npu uses more than the baseline but bounded (paper: <=1.32x
        # vs llama.cpp; we allow a wider envelope)
        assert ours_total > lcpp_total * 0.9
        assert ours_total < lcpp_total * 2.0
        # shadow weights are a tiny share of the total
        share = float(rows["llm.npu"][-1].rstrip("%"))
        assert share < 3.0
        assert rows["llama.cpp-CPU"][3] == 0.0
