"""Scheduler occupancy and decision mix at the knob extremes.

The ``repro.steps/v1`` step log turned into numbers: per-step
batch-token occupancy (mean and p95 of the budget fraction filled) and
the decision-mix counts for the golden batched stream at
``prefill_priority`` 0, 0.5, and 1.  Decode-leaning settings fragment
prefill over many near-empty steps and hit the token budget constantly;
prefill-leaning settings pack the budget and finish the same work in
far fewer steps.
"""

from conftest import show_and_archive

from repro.eval import scheduler_occupancy


def test_scheduler_occupancy_and_decision_mix(once):
    table = once(scheduler_occupancy)
    show_and_archive(table, "scheduler_occupancy.txt")

    steps = table.column("steps")
    util = table.column("mean batch util")
    skips = table.column("budget skips")
    chunks = table.column("chunk-sched")

    # prefill-leaning packing finishes the same workload in far fewer
    # steps, at strictly higher mean occupancy
    assert all(a > b for a, b in zip(steps, steps[1:]))
    assert all(a < b for a, b in zip(util, util[1:]))
    assert steps[0] > 2 * steps[-1]

    # decode-leaning scheduling keeps deferring prefill chunks at the
    # budget boundary; at p=1 the budget almost never cuts one off
    assert all(a > b for a, b in zip(skips, skips[1:]))
    assert skips[0] > 10 * skips[-1]

    # the chunk count is workload-determined, not knob-determined: the
    # knob moves *when* chunks run, within a few re-splits of each other
    assert max(chunks) - min(chunks) <= 5

    # every row ran under the token budget, so utilization is a
    # well-defined fraction
    p95 = table.column("p95 batch util")
    assert all(0.0 < u <= 1.0 for u in util)
    assert all(0.0 < u <= 1.0 for u in p95)
