"""Figure 18 — CPU-NPU vs GPU-NPU coordination.

The float-side processor barely moves prefill speed (its work hides under
the NPU), but a GPU decode backend reduces end-to-end latency.
"""

from conftest import show_and_archive

from repro.eval import fig18_coordination


def test_fig18_regenerates(once):
    table = once(fig18_coordination,
                 prompt_lens=(256, 512, 1024), output_tokens=16)
    show_and_archive(table, "fig18.txt")

    cpu = {row[1]: row for row in table.rows if row[0] == "CPU-NPU"}
    gpu = {row[1]: row for row in table.rows if row[0] == "GPU-NPU"}

    for prompt in (256, 512, 1024):
        # (a) prefill speed is similar between coordination modes
        ratio = gpu[prompt][2] / cpu[prompt][2]
        assert 0.7 < ratio < 1.6, (prompt, ratio)
        # (b) GPU decode cuts decode and end-to-end latency
        assert gpu[prompt][3] < cpu[prompt][3]
        assert gpu[prompt][4] < cpu[prompt][4]
