"""Self-benchmark of the simulation substrate (not a paper figure).

Measures the reproduction's own machinery: sim-core events/second
(vectorized ``Simulator`` vs the kept-verbatim ``ReferenceSimulator``,
with trace equality re-verified in the same run), quant-hot-path
tokens/second, and fleet-harness devices/second.  The gated artifact
metric is the deterministic ``speedup floor x`` contract; raw rates are
informational (machine-dependent).  CI's perf-smoke job runs this file
under a wall-clock budget and bench-compares the artifact against the
committed golden.
"""

import os

from conftest import run_once

from repro.eval import archive, results_dir
from repro.eval.simbench import (
    SIM_SPEEDUP_FLOOR,
    min_gated_sim_speedup,
    sim_speed_report,
)
from repro.obs import make_artifact


def test_sim_speed(benchmark):
    sim, quant, fleet = run_once(benchmark, sim_speed_report)
    for table, filename in ((sim, "sim_speed_core.txt"),
                            (quant, "sim_speed_quant.txt"),
                            (fleet, "sim_speed_fleet.txt")):
        print()
        print(table.render())
        print(f"[archived: {archive(table, filename)}]")
    artifact = make_artifact("sim_speed", [sim, quant, fleet])
    json_path = artifact.save(
        os.path.join(results_dir(), "json", "BENCH_sim_speed.json")
    )
    print(f"[artifact: {json_path}]")

    # ACCEPTANCE: the vectorized dispatcher must beat the reference by
    # the contract floor on every gated scenario, with identical traces
    # (trace equality is asserted inside sim_core_speed itself).
    assert min_gated_sim_speedup(sim) >= SIM_SPEEDUP_FLOOR

    # The floor cells are what bench-compare gates: exactly the contract
    # value whenever the assertion above holds.
    floors = [cell for cell in sim.column("speedup floor x")
              if cell is not None]
    assert floors and all(f == SIM_SPEEDUP_FLOOR for f in floors)

    # Deterministic scenario facts (byte-stable against the golden).
    assert sim.column("tasks") == [2000, 2000, 1000]
    assert quant.column("outlier cols")[0] == quant.column("outlier cols")[1]
    assert all(rate > 0 for rate in quant.column("ktok rate"))
    assert fleet.column("total steps")[0] > 0
