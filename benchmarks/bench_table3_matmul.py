"""Table 3 — MatMul latency per engine, calibrated vs the paper.

Regenerates the micro-benchmark matrix (NPU INT8 / CPU INT8 / GPU FP16 /
NPU FP16 across six shapes) and checks that the simulator stays within
tolerance of the published measurements and preserves the engine ordering.
"""

from conftest import show_and_archive

from repro.eval import TABLE3_PAPER_MS, table3_matmul


def test_table3_regenerates(once):
    table = once(table3_matmul)
    show_and_archive(table, "table3.txt")

    # every engine within 35% of the paper's measurement on every shape
    for row in table.rows:
        assert float(row[-1].rstrip("%")) <= 35.0, row[0]

    # engine ordering per shape: NPU INT8 < GPU FP16 < CPU INT8 << NPU FP16
    by_engine = {row[0]: row[1:-1] for row in table.rows}
    for i in range(6):
        assert (by_engine["NPU INT8"][i] < by_engine["GPU FP16"][i]
                < by_engine["CPU INT8"][i] < by_engine["NPU FP16"][i])

    # the headline gap: FP16 on the NPU is catastrophically slow
    assert by_engine["NPU FP16"][0] > 100 * by_engine["NPU INT8"][0]
