"""LLM-as-a-System-Service load analysis (extension experiment).

The deployment-level payoff of fast prefill: at mobile-agent request
rates, an llm.npu-backed OS service stays interactive where a CPU-engine
service drowns in queueing.
"""

from conftest import show_and_archive

from repro.eval import (
    service_breakdown,
    service_engine_comparison,
    service_fault_recovery,
    service_load,
    service_tier_comparison,
)


def test_service_capacity_knee(once):
    table = once(service_load,
                 inter_arrival_s=(8.0, 4.0, 2.0, 1.0, 0.5),
                 n_requests=12)
    show_and_archive(table, "service_load.txt")

    queueing = table.column("mean queueing s")
    turnaround = table.column("mean turnaround s")
    # no queueing at sparse arrivals
    assert queueing[0] == 0
    # queueing appears and grows past the capacity knee
    assert queueing[-1] > queueing[-2] > 0
    assert turnaround[-1] > 2 * turnaround[0]


def test_service_engine_comparison(once):
    table = once(service_engine_comparison, inter_arrival_s=2.0,
                 n_requests=10)
    show_and_archive(table, "service_comparison.txt")

    ours = table.row_by_key("llm.npu service")
    baseline = table.row_by_key("llama.cpp service")
    # at a 2s arrival gap the llm.npu service doesn't queue at all...
    assert ours[3] == 0
    # ...while the CPU-engine service's queueing dominates its turnaround
    assert baseline[3] > 10 * ours[1]
    assert baseline[1] > 20 * ours[1]


def test_service_tier_scheduling(once):
    """Two-tier overload: priority+admission vs the seed's FIFO queue."""
    table = once(service_tier_comparison)
    show_and_archive(table, "service_tiers.txt")

    fifo = table.row_by_key("fifo (seed)")
    sched = table.row_by_key("priority+admission")
    # the interactive tier's p95 improves by a large factor...
    assert sched[2] < fifo[2] / 3
    # ...paid for by shed background load, which FIFO never rejects
    assert fifo[5] == 0
    assert sched[5] > 0
    # both schedules drive the same engine: utilization stays comparable
    assert sched[7] > 0.3


def test_service_latency_breakdown(once):
    """Turnaround decomposes exactly into queue/retry/prefill/decode."""
    table = once(service_breakdown)
    show_and_archive(table, "service_breakdown.txt")

    # breakdown_table re-validates per-request sums (1e-9 s) before
    # rendering; here assert the aggregate story: the background tier's
    # turnaround is queueing-dominated, the interactive tier's is not.
    from repro.eval import service_golden_records
    from repro.obs import breakdown_requests, validate_breakdowns
    breakdowns = breakdown_requests(service_golden_records().requests)
    validate_breakdowns(breakdowns)

    bg = table.row_by_key("background")
    interactive = table.row_by_key("interactive")
    cols = table.columns
    queue, turnaround = cols.index("queue s"), cols.index("turnaround s")
    prefill = cols.index("prefill s")
    assert bg[queue] > 0.5 * bg[turnaround]
    assert interactive[queue] < interactive[turnaround]
    assert interactive[prefill] > 0


def test_service_fault_recovery(once):
    """Transient faults are absorbed by bounded retries, not failures."""
    table = once(service_fault_recovery)
    show_and_archive(table, "service_faults.txt")

    completed = table.column("completed")
    retries = table.column("retries")
    turnaround = table.column("mean turnaround s")
    # every request completes at every fault rate (cap never exhausted)
    assert all(c == completed[0] for c in completed)
    # retries and turnaround grow with the fault rate
    assert retries[0] == 0 and retries[-1] > retries[0]
    assert turnaround[-1] > turnaround[0]
