"""Figure 19 — technique-by-technique ablation (512-token prompt).

The ladder: llama.cpp-CPU -> naive NPU offload (slower than the CPU!) ->
+chunk-sharing graphs -> +shadow outlier execution -> +out-of-order
scheduling (= llm.npu).  Paper bands: chunk 1.46-5.09x, outlier 3.91-8.68x,
OOE 18-44% latency reduction.
"""

from conftest import show_and_archive

from repro.core import LlmNpuEngine
from repro.eval import fig19_ablation


def test_fig19_regenerates(once):
    table = once(fig19_ablation,
                 models=("Qwen1.5-1.8B", "Gemma-2B", "LlaMA-2-7B"),
                 prompt_len=512)
    show_and_archive(table, "fig19.txt")

    for row in table.rows:
        model, cpu, naive, chunk, outlier, ooe = row
        # naive NPU offload is slower than the CPU baseline (§2.3)
        assert naive < cpu, model
        # each technique helps
        assert chunk > naive, model
        assert outlier > chunk, model
        assert ooe >= outlier * 0.999, model
        # paper bands (wide tolerance)
        assert 1.2 < chunk / naive < 9.0, model
        assert 2.5 < outlier / chunk < 14.0, model


def test_ooe_reduction_band():
    """OOE's latency reduction vs in-order on a multi-chunk prompt."""
    inorder = LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro",
                                 policy="in-order").prefill(1024).latency_s
    ooo = LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro",
                             policy="ooo").prefill(1024).latency_s
    reduction = 1.0 - ooo / inorder
    print(f"\nOOE latency reduction at 1024 tokens: {reduction:.1%} "
          "(paper: 18-44%)")
    assert 0.15 <= reduction <= 0.50
