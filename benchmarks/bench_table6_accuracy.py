"""Table 6 — quantization accuracy across the five benchmark suites.

Real quantization numerics on the synthetic substrate, scored as teacher
agreement against the FP32 reference.  The paper's ordering: FP16 ~
LLM.int8() >= llm.npu (at its default 85% pruning) > K-Quant (per-group)
> SmoothQuant, with llm.npu's average degradation ~1%.
"""

from conftest import show_and_archive

from repro.eval import table6_accuracy


def test_table6_regenerates(once):
    table = once(table6_accuracy, n_items_scale=0.5)
    show_and_archive(table, "table6.txt")

    means = {row[0]: row[-1] for row in table.rows}

    # FP16 is the (near-perfect) reference
    assert means["fp16"] > 0.97

    # LLM.int8() is the most faithful int8 scheme
    assert means["llm.int8"] > 0.95

    # llm.npu at default pruning: small degradation, comparable to the
    # per-group schemes and clearly better than SmoothQuant
    assert means["llm.npu"] > 0.93
    assert means["llm.npu"] >= means["smoothquant"]
    assert means["llm.npu"] >= means["per-group"] - 0.03

    # ordering top to bottom
    assert means["fp16"] >= means["llm.int8"] - 0.01
    assert means["llm.int8"] >= means["smoothquant"]


def test_naive_per_tensor_is_far_worse(once):
    table = once(table6_accuracy,
                 schemes=("fp16", "per-tensor", "llm.npu"),
                 benchmarks=("lambada", "hellaswag"),
                 n_items_scale=0.5)
    show_and_archive(table, "table6_per_tensor.txt")
    means = {row[0]: row[-1] for row in table.rows}
    # naive per-tensor (absmax scale, no outlier handling) trails llm.npu —
    # the accuracy motivation for shadow execution
    assert means["per-tensor"] < means["llm.npu"]
    assert means["per-tensor"] < means["fp16"] - 0.05
