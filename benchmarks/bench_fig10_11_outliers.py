"""Figures 10-11 — outlier channel statistics.

Measured over the wide synthetic substrate: per inference fewer than a
fraction of a percent of activation channels carry outliers (Fig. 10),
and a small "hot" channel set covers >80% of all outlier occurrences
(Fig. 11) — the facts behind shadow execution and the hot-channel cache.
"""

from conftest import show_and_archive

from repro.eval import fig10_fig11_outlier_stats


def test_fig10_11_regenerate(once):
    table = once(fig10_fig11_outlier_stats)
    show_and_archive(table, "fig10_11.txt")

    for row in table.rows:
        outlier_fraction = float(row[3].rstrip("%"))
        hot_fraction = float(row[5].rstrip("%"))
        mean_channels = row[2]
        # Fig. 10: outlier channels are rare (paper: 5-15 of 2048, <0.3%;
        # the synthetic substrate stays below 1.5%)
        assert outlier_fraction < 1.5, row[0]
        assert mean_channels < 16.0, row[0]
        # Fig. 11: a small hot set covers 80% of outliers (<3% of width)
        assert hot_fraction < 3.0, row[0]
