"""Figure 8 — per-token latency of QKV linears and FFN vs chunk length.

The basis for llm.npu's chunk length of 256: per-token NPU cost falls
steeply up to ~256 rows and flattens after, while padding waste keeps
growing with the chunk size.
"""

from conftest import show_and_archive

from repro.eval import fig8_chunk_length


def test_fig8_regenerates(once):
    table = once(fig8_chunk_length,
                 chunk_lens=(32, 64, 128, 256, 512, 1024))
    show_and_archive(table, "fig8.txt")

    qkv = table.column("QKV linears")
    ffn = table.column("FFN")

    # strictly falling through 256 for both op classes
    for series in (qkv, ffn):
        assert series[0] > series[1] > series[2] > series[3]

    # diminishing returns past 256: the 256->1024 gain is much smaller
    # than the 32->128 gain
    early_gain = ffn[0] / ffn[2]
    late_gain = ffn[3] / ffn[5]
    assert late_gain < 0.5 * early_gain


def test_fig8_gemma(once):
    table = once(fig8_chunk_length, model="Gemma-2B",
                 chunk_lens=(64, 256, 1024))
    show_and_archive(table, "fig8_gemma.txt")
    ffn = table.column("FFN")
    assert ffn[0] > ffn[1] > ffn[2]
