"""Differential attribution: inject a slowdown, recover it (extension).

The run-to-run diff layer's gated benchmark: the golden injected-sg1
experiment must rank the slowed operator as the top critical-path
contributor and telescope its per-segment deltas to the observed e2e
delta within a nanosecond.  Both properties ride directional columns
("top-contributor hit rate" / "residual us") so ``bench-compare``
fails the committed golden if attribution ever silently breaks, and a
self-diff of the unperturbed baseline must come back identical.
"""

from conftest import show_and_archive

from repro.eval import (
    INJECTED_TAG,
    diff_attribution_table,
    diff_summary_table,
    injected_slowdown_diff,
    injected_slowdown_docs,
)
from repro.obs import diff_docs


def test_diff_attribution(once):
    doc = once(injected_slowdown_diff)
    table = diff_attribution_table(doc)
    show_and_archive(table, "diff_attribution.txt")

    # the injected operator must be the single biggest contributor...
    assert table.rows[0][0] == INJECTED_TAG
    assert table.column("top-contributor hit rate")[0] == 1.0
    # ...and the per-segment deltas must telescope to the e2e delta:
    # the worst per-request residual stays far under the 1 ns gate
    assert abs(table.column("residual us")[0]) < 1e-3
    # a real slowdown moved the clock
    assert doc["e2e"]["delta_s"] > 0.0
    assert not doc["identical"]


def test_diff_summary(once):
    doc = once(injected_slowdown_diff)
    table = diff_summary_table(doc)
    show_and_archive(table, "diff_summary.txt")

    # one aligned request, and the slowdown grew at least one segment
    assert table.column("requests") == [1.0]
    assert table.column("grew")[0] >= 1.0
    assert table.column("delta ms")[0] > 0.0


def test_self_diff_is_identical(once):
    # diffing a run against itself is the layer's zero point: no
    # segment moves, the doc says identical, every delta is exactly 0
    base_doc, _ = once(injected_slowdown_docs)
    doc = diff_docs(base_doc, base_doc)
    assert doc["identical"]
    assert doc["e2e"]["delta_s"] == 0.0
    assert doc["by_status"]["grew"] == 0
    assert doc["by_status"]["shrank"] == 0
    assert all(r["delta_s"] == 0.0 for r in doc["requests"])
