"""Fleet telemetry experiment (extension beyond the paper).

Simulates a heterogeneous 3-device fleet (flagship / mid-tier / budget,
increasingly fault-prone) serving the seeded two-tier workload under
streaming SLO monitors, then merges the per-device quantile sketches and
incident timelines into fleet-wide percentiles and a compliance
scoreboard — the telemetry shape an on-device deployment can actually
aggregate (bounded-size sketches, no raw samples).
"""

from conftest import show_and_archive

from repro.eval import archive, fleet_slo


def test_fleet_slo(once):
    percentiles, latency, compliance, incidents = once(fleet_slo)
    show_and_archive(percentiles, "fleet_percentiles.txt")
    show_and_archive(latency, "fleet_latency.txt")
    show_and_archive(compliance, "fleet_compliance.txt")
    # The incident table repeats (slo, rule) labels across devices, so
    # it archives as text only — its counts are asserted below and the
    # full repro.alerts/v1 document is CI-validated by fleet-smoke.
    print()
    print(incidents.render())
    print(f"[archived: {archive(incidents, 'fleet_incidents.txt')}]")

    # merged sketches cover both tiers for every metric
    keys = percentiles.column("metric")
    for metric in ("turnaround_s", "queueing_s", "energy_j"):
        for tier in ("interactive", "background"):
            assert f"{metric}/{tier}" in keys
    assert all(c > 0 for c in percentiles.column("count"))
    # percentile columns are monotone within each row
    for row in percentiles.rows:
        p50, p90, p95, p99, mx = row[2:]
        assert p50 <= p90 <= p95 <= p99 <= mx

    # per-device latency scoreboard: TTFT percentiles are ordered, ITL
    # and goodput are positive wherever requests completed, and the
    # storm-ridden budget device sustains less goodput than the healthy
    # flagship
    p50s = latency.column("ttft p50 s")
    p95s = latency.column("ttft p95 s")
    goodputs = latency.column("goodput req/s")
    assert all(p50 <= p95 for p50, p95 in zip(p50s, p95s)
               if p50 is not None)
    assert all(g >= 0 for g in goodputs)
    assert goodputs[2] < goodputs[0]

    # the fault-storm fleet blows its availability SLOs and pages
    met = dict(zip(compliance.column("slo"), compliance.column("met")))
    assert met["interactive-availability"] == "NO"
    assert met["background-availability"] == "NO"
    assert sum(compliance.column("firing")) > 0

    # incidents concentrate on the fault-prone devices: the budget
    # device (dev02, storm) pages more than the healthy flagship (dev00)
    sources = incidents.column("source")
    assert sources.count("dev02-budget") > sources.count("dev00-k70")
    # every firing incident carries cross-links to spans/fault draws
    firing_col = incidents.column("firing s")
    links_col = incidents.column("links")
    assert all(links > 0 for firing, links in zip(firing_col, links_col)
               if firing is not None)
