"""Figure 14 — prefill speed vs the five baselines on both devices.

The headline comparison: llm.npu beats every baseline at every prompt
length, with the gap widening as prompts grow (paper at 1024 tokens:
llama.cpp 18.2-38.4x, MNN 7.3x, MLC 32.5-43.6x, TFLite 1.27-2.34x,
PowerInfer-V2 3.28-5.32x).
"""

from conftest import show_and_archive

from repro.eval import fig14_prefill_speed


def _speed(table, device, model, engine, prompt):
    for row in table.rows:
        if row[0] == device and row[1] == model and row[2] == engine:
            return row[3 + prompt]
    raise AssertionError((device, model, engine))


def test_fig14_regenerates(once):
    table = once(fig14_prefill_speed,
                 models=("Qwen1.5-1.8B", "Gemma-2B", "LlaMA-2-7B"),
                 devices=("Redmi K70 Pro", "Redmi K60 Pro"),
                 prompt_lens=(64, 256, 1024))
    show_and_archive(table, "fig14.txt")

    engines = ("llm.npu", "llama.cpp-CPU", "MNN-CPU", "TFLite-GPU",
               "MLC-GPU", "PowerInfer-V2-NPU")
    for device in ("Redmi K70 Pro", "Redmi K60 Pro"):
        for model in ("Qwen1.5-1.8B", "Gemma-2B", "LlaMA-2-7B"):
            ours = {p: _speed(table, device, model, "llm.npu", p)
                    for p in range(3)}
            for engine in engines[1:]:
                for p in range(3):
                    assert ours[p] > _speed(table, device, model, engine, p), (
                        device, model, engine, p
                    )

    # gap bands at 1024 tokens on the K70 Pro, Qwen1.5-1.8B
    ours = _speed(table, "Redmi K70 Pro", "Qwen1.5-1.8B", "llm.npu", 2)
    gaps = {
        "llama.cpp-CPU": (10, 45),
        "MNN-CPU": (5, 10),
        "TFLite-GPU": (1.2, 2.6),
        "MLC-GPU": (25, 55),
        "PowerInfer-V2-NPU": (3.0, 6.0),
    }
    for engine, (lo, hi) in gaps.items():
        ratio = ours / _speed(table, "Redmi K70 Pro", "Qwen1.5-1.8B",
                              engine, 2)
        assert lo < ratio < hi, (engine, ratio)

    # gaps shrink at 64 tokens (§4.2: padding + less OOO headroom)
    for engine in ("llama.cpp-CPU", "MLC-GPU"):
        short = (_speed(table, "Redmi K70 Pro", "Qwen1.5-1.8B", "llm.npu", 0)
                 / _speed(table, "Redmi K70 Pro", "Qwen1.5-1.8B", engine, 0))
        long = ours / _speed(table, "Redmi K70 Pro", "Qwen1.5-1.8B",
                             engine, 2)
        assert short < long
