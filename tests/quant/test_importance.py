"""Tests for outlier importance scoring and pruning plans (Fig. 12)."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.model import build_synthetic_model, tiny_config
from repro.quant.importance import (
    importance_profile,
    make_pruning_plan,
    rank_layers_by_importance,
    u_shape_score,
)
from repro.quant.observers import calibrate


@pytest.fixture(scope="module")
def calib():
    cfg = tiny_config(n_layers=12)
    model = build_synthetic_model(cfg, seed=5)
    rng = np.random.default_rng(9)
    corpus = [rng.integers(4, cfg.vocab_size, size=24) for _ in range(5)]
    return calibrate(model, corpus, channel_percentile=96.0)


class TestPruningPlan:
    def test_invalid_rate_raises(self, calib):
        with pytest.raises(QuantizationError):
            make_pruning_plan(calib, -0.1)
        with pytest.raises(QuantizationError):
            make_pruning_plan(calib, 1.1)

    def test_rate_zero_keeps_all(self, calib):
        plan = make_pruning_plan(calib, 0.0)
        assert len(plan.pruned_layers) == 0
        assert plan.n_layers == 12

    def test_rate_one_prunes_all(self, calib):
        plan = make_pruning_plan(calib, 1.0)
        assert len(plan.kept_layers) == 0

    def test_partition_is_exact(self, calib):
        plan = make_pruning_plan(calib, 0.5)
        assert plan.kept_layers | plan.pruned_layers == set(range(12))
        assert not plan.kept_layers & plan.pruned_layers

    def test_prunes_least_important_first(self, calib):
        plan = make_pruning_plan(calib, 0.25)
        for pruned in plan.pruned_layers:
            for kept in plan.kept_layers:
                assert plan.importance[pruned] <= plan.importance[kept]

    def test_is_pruned(self, calib):
        plan = make_pruning_plan(calib, 0.5)
        for layer in plan.pruned_layers:
            assert plan.is_pruned(layer)
        for layer in plan.kept_layers:
            assert not plan.is_pruned(layer)

    def test_default_rate_keeps_end_layers(self, calib):
        # The paper's observation: with the default pruning the layers
        # near input and output survive.
        plan = make_pruning_plan(calib, 0.8)
        assert 0 in plan.kept_layers or 11 in plan.kept_layers


class TestRankingAndProfile:
    def test_rank_is_ascending(self, calib):
        ranked = rank_layers_by_importance(calib)
        imp = calib.layer_importance()
        values = [imp[l] for l in ranked]
        assert values == sorted(values)

    def test_profile_shape(self, calib):
        profile = importance_profile(calib)
        assert profile.shape == (12,)
        assert np.all(profile > 0)

    def test_profile_is_u_shaped(self, calib):
        # Fig. 12 left: ends dominate the middle.
        assert u_shape_score(importance_profile(calib)) > 0.5


class TestUShapeScore:
    def test_flat_profile_scores_zero(self):
        assert u_shape_score(np.ones(12)) == pytest.approx(0.0)

    def test_u_profile_positive(self):
        profile = np.array([5, 1, 1, 1, 1, 5], dtype=float)
        assert u_shape_score(profile) > 0

    def test_hill_profile_negative(self):
        profile = np.array([1, 5, 5, 5, 5, 1], dtype=float)
        assert u_shape_score(profile) < 0

    def test_short_profile_scores_zero(self):
        assert u_shape_score(np.array([1.0, 2.0])) == 0.0
