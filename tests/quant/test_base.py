"""Tests for quantization primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import QuantizationError
from repro.quant.base import (
    INT8_MAX,
    QuantizedTensor,
    dequantize,
    quantize_dequantize,
    quantize_int8,
    quantize_weight_per_channel,
    quantize_weight_per_group,
    quantize_weight_per_tensor,
    symmetric_scale,
)


class TestSymmetricScale:
    def test_basic(self):
        assert symmetric_scale(127.0) == pytest.approx(1.0)

    def test_zero_absmax_safe(self):
        assert symmetric_scale(0.0) == 1.0

    def test_negative_raises(self):
        with pytest.raises(QuantizationError):
            symmetric_scale(-1.0)


class TestQuantizeInt8:
    def test_round_trip_of_exact_values(self):
        x = np.array([-127.0, 0.0, 1.0, 126.0])
        q = quantize_int8(x, 1.0)
        np.testing.assert_array_equal(dequantize(q, 1.0), x)

    def test_clipping(self):
        q = quantize_int8(np.array([1000.0, -1000.0]), 1.0)
        np.testing.assert_array_equal(q, [127, -127])

    def test_dtype(self):
        assert quantize_int8(np.zeros(3), 1.0).dtype == np.int8

    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(np.float32, (16,),
                      elements=st.floats(-100, 100, width=32)))
    def test_error_bounded_by_half_step(self, x):
        absmax = float(np.abs(x).max())
        scale = symmetric_scale(absmax)
        err = np.abs(quantize_dequantize(x, scale) - x)
        assert np.all(err <= scale / 2 + 1e-6)


class TestWeightQuantizers:
    def test_per_tensor_reconstruction(self, rng):
        w = rng.normal(size=(8, 16)).astype(np.float32)
        qt = quantize_weight_per_tensor(w)
        err = np.abs(qt.dequantize() - w).max()
        assert err <= float(qt.scale) / 2 + 1e-6

    def test_per_channel_tighter_than_per_tensor(self, rng):
        w = rng.normal(size=(8, 16)).astype(np.float32)
        w[0] *= 50  # one loud row stretches the per-tensor scale
        pt = quantize_weight_per_tensor(w)
        pc = quantize_weight_per_channel(w)
        err_pt = np.abs(pt.dequantize() - w)[1:].mean()
        err_pc = np.abs(pc.dequantize() - w)[1:].mean()
        assert err_pc < err_pt / 5

    def test_per_group_tighter_than_per_tensor_with_outlier_col(self, rng):
        w = rng.normal(size=(4, 64)).astype(np.float32)
        w[:, 3] *= 50
        pt = quantize_weight_per_tensor(w)
        pg = quantize_weight_per_group(w, 16)
        mask = np.ones(64, bool)
        mask[0:16] = False  # ignore the group containing the outlier col
        err_pt = np.abs(pt.dequantize() - w)[:, mask].mean()
        err_pg = np.abs(pg.dequantize() - w)[:, mask].mean()
        assert err_pg < err_pt / 5

    def test_per_group_shape_metadata(self, rng):
        w = rng.normal(size=(4, 64)).astype(np.float32)
        qt = quantize_weight_per_group(w, 16)
        assert qt.group_size == 16
        assert qt.n_groups == 4
        assert qt.scale.shape == (4, 4)

    def test_per_group_indivisible_raises(self, rng):
        w = rng.normal(size=(4, 60)).astype(np.float32)
        with pytest.raises(QuantizationError):
            quantize_weight_per_group(w, 16)

    def test_zero_rows_get_unit_scale(self):
        w = np.zeros((3, 8), dtype=np.float32)
        qt = quantize_weight_per_channel(w)
        np.testing.assert_array_equal(qt.scale, 1.0)
        np.testing.assert_array_equal(qt.dequantize(), 0.0)


class TestQuantizedTensor:
    def test_rejects_non_int8(self):
        with pytest.raises(QuantizationError):
            QuantizedTensor(np.zeros((2, 2), dtype=np.int32), 1.0)

    def test_nbytes(self, rng):
        w = rng.normal(size=(8, 32)).astype(np.float32)
        qt = quantize_weight_per_group(w, 8)
        assert qt.nbytes() == 8 * 32 + qt.scale.size * 4

    def test_per_tensor_nbytes_smaller_than_per_group(self, rng):
        w = rng.normal(size=(8, 32)).astype(np.float32)
        assert (quantize_weight_per_tensor(w).nbytes()
                < quantize_weight_per_group(w, 8).nbytes())
