"""Tests for calibration observers and derived site statistics."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.model import LINEAR_SITES
from repro.quant.observers import ActivationObserver, calibrate


def make_calib(model, rng, n_seqs=5, seq_len=24, channel_percentile=96.0):
    corpus = [rng.integers(4, model.config.vocab_size, size=seq_len)
              for _ in range(n_seqs)]
    return calibrate(model, corpus, channel_percentile=channel_percentile)


class TestObserverMechanics:
    def test_empty_observer_raises(self):
        with pytest.raises(CalibrationError):
            ActivationObserver().result()

    def test_invalid_percentile_raises(self):
        with pytest.raises(CalibrationError):
            ActivationObserver(channel_percentile=0.0)
        with pytest.raises(CalibrationError):
            ActivationObserver(channel_percentile=101.0)

    def test_empty_corpus_raises(self, tiny_model):
        with pytest.raises(CalibrationError):
            calibrate(tiny_model, [])

    def test_covers_all_sites(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        n_layers = tiny_model.config.n_layers
        expected_sites = len(LINEAR_SITES)
        assert len(list(calib.keys())) == n_layers * expected_sites

    def test_missing_site_raises(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        with pytest.raises(CalibrationError):
            calib[(999, "wq")]

    def test_contains(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        assert (0, "wq") in calib
        assert (999, "wq") not in calib


class TestSiteStats:
    def test_threshold_below_absmax_with_outliers(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        stats = calib[(0, "wq")]
        assert 0 < stats.threshold <= stats.absmax

    def test_scale_vs_naive_scale(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        stats = calib[(0, "wq")]
        assert stats.scale <= stats.naive_scale
        assert stats.scale == pytest.approx(stats.threshold / 127.0)

    def test_importance_at_least_one(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        for key in calib.keys():
            assert calib[key].importance >= 1.0 - 1e-6

    def test_outlier_model_importance_exceeds_clean_model(
            self, tiny_model, no_outlier_model, rng):
        calib_hot = make_calib(tiny_model, rng)
        calib_clean = make_calib(no_outlier_model, rng)
        # first layer sees the strongest injected outliers
        assert (calib_hot[(0, "wq")].importance
                > calib_clean[(0, "wq")].importance)

    def test_channel_absmax_shape(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        stats = calib[(0, "wq")]
        assert stats.channel_absmax.shape == (tiny_model.config.hidden_size,)

    def test_outlier_counts_consistent(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        stats = calib[(0, "wq")]
        assert len(stats.outlier_channels_per_call) == stats.calls
        assert stats.channel_outlier_hits.sum() == sum(
            stats.outlier_channels_per_call
        )

    def test_mean_outlier_channels(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        stats = calib[(0, "wq")]
        assert stats.mean_outlier_channels() == pytest.approx(
            np.mean(stats.outlier_channels_per_call)
        )

    def test_outlier_fraction_small(self, tiny_model, rng):
        # The synthetic structure keeps per-call outlier channels rare
        # (Fig. 10's property, adjusted for the tiny width).
        calib = make_calib(tiny_model, rng)
        for key in calib.keys():
            assert calib[key].outlier_channel_fraction() < 0.25


class TestHotChannels:
    def test_hot_channels_cover_requested_fraction(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        stats = calib[(0, "wq")]
        hot = stats.hot_channels(0.8)
        covered = stats.channel_outlier_hits[hot].sum()
        assert covered >= 0.8 * stats.channel_outlier_hits.sum()

    def test_hot_channels_minimal_prefix(self, tiny_model, rng):
        # Removing the last hot channel must drop coverage below target.
        calib = make_calib(tiny_model, rng)
        stats = calib[(0, "wq")]
        hot = stats.hot_channels(0.8)
        total = stats.channel_outlier_hits.sum()
        if hot.size > 1 and total > 0:
            covered = stats.channel_outlier_hits[hot[:-1]].sum()
            assert covered < 0.8 * total

    def test_hot_fraction_skewed(self, tiny_model, rng):
        # Fig. 11: a small fraction of channels covers most outliers.
        calib = make_calib(tiny_model, rng)
        stats = calib[(0, "wq")]
        if stats.channel_outlier_hits.sum() > 0:
            assert stats.hot_channel_fraction(0.8) < 0.3

    def test_invalid_coverage_raises(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        with pytest.raises(CalibrationError):
            calib[(0, "wq")].hot_channels(0.0)

    def test_no_outliers_returns_empty(self):
        from repro.quant.observers import SiteStats
        stats = SiteStats(
            width=4, absmax=1.0, threshold=1.0,
            channel_absmax=np.ones(4, dtype=np.float32),
            channel_outlier_hits=np.zeros(4, dtype=np.int64),
            outlier_channels_per_call=[0], calls=1, rows=8,
        )
        assert stats.hot_channels().size == 0
        assert stats.mean_outlier_channels() == 0.0


class TestLayerImportance:
    def test_u_shape_on_synthetic_model(self, rng):
        # Fig. 12: end layers more important than middle layers.
        from repro.model import build_synthetic_model, tiny_config
        cfg = tiny_config(n_layers=8)
        model = build_synthetic_model(cfg, seed=3)
        calib = make_calib(model, rng)
        imp = calib.layer_importance()
        ends = (imp[0] + imp[7]) / 2
        middle = np.mean([imp[i] for i in range(2, 6)])
        assert ends > 1.5 * middle

    def test_site_importance_keys(self, tiny_model, rng):
        calib = make_calib(tiny_model, rng)
        site_imp = calib.site_importance()
        assert set(site_imp) == set(calib.keys())
