"""Tests for quantization error metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import QuantizationError
from repro.quant.metrics import (
    kl_divergence,
    mse,
    sqnr_db,
    top1_agreement,
    topk_agreement,
)


class TestMse:
    def test_zero_for_identical(self, rng):
        x = rng.normal(size=(4, 8))
        assert mse(x, x) == 0.0

    def test_known_value(self):
        assert mse(np.zeros(4), np.ones(4)) == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(QuantizationError):
            mse(np.zeros(3), np.zeros(4))


class TestSqnr:
    def test_infinite_for_identical(self, rng):
        x = rng.normal(size=16)
        assert sqnr_db(x, x) == float("inf")

    def test_10db_per_decade(self, rng):
        x = rng.normal(size=1000)
        a = sqnr_db(x, x + 0.01 * rng.normal(size=1000))
        b = sqnr_db(x, x + 0.1 * rng.normal(size=1000))
        assert a - b == pytest.approx(20.0, abs=2.0)

    def test_zero_signal(self):
        assert sqnr_db(np.zeros(4), np.ones(4)) == float("-inf")


class TestKl:
    def test_zero_for_identical(self, rng):
        logits = rng.normal(size=(3, 10))
        assert kl_divergence(logits, logits) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different(self, rng):
        a = rng.normal(size=(3, 10))
        b = a + rng.normal(size=(3, 10))
        assert kl_divergence(a, b) > 0

    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(np.float64, (2, 6), elements=st.floats(-5, 5)),
           hnp.arrays(np.float64, (2, 6), elements=st.floats(-5, 5)))
    def test_non_negative(self, a, b):
        assert kl_divergence(a, b) >= -1e-9


class TestAgreement:
    def test_identical_is_one(self, rng):
        logits = rng.normal(size=(5, 10))
        assert top1_agreement(logits, logits) == 1.0

    def test_partial_agreement(self):
        ref = np.array([[0.0, 1.0], [1.0, 0.0]])
        qnt = np.array([[0.0, 1.0], [0.0, 1.0]])
        assert top1_agreement(ref, qnt) == 0.5

    def test_1d_inputs(self):
        assert top1_agreement(np.array([1.0, 0.0]), np.array([2.0, 0.0])) == 1.0

    def test_topk_contains_top1(self, rng):
        a = rng.normal(size=(20, 10))
        b = a + 0.2 * rng.normal(size=(20, 10))
        assert topk_agreement(a, b, k=3) >= top1_agreement(a, b)

    def test_topk_full_k_is_one(self, rng):
        a = rng.normal(size=(5, 4))
        b = rng.normal(size=(5, 4))
        assert topk_agreement(a, b, k=4) == 1.0

    def test_topk_invalid_k(self, rng):
        a = rng.normal(size=(2, 4))
        with pytest.raises(QuantizationError):
            topk_agreement(a, a, k=0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(QuantizationError):
            top1_agreement(np.zeros((2, 3)), np.zeros((2, 4)))


class TestTeacherCrossEntropy:
    def test_identical_equals_own_entropy_floor(self, rng):
        from repro.quant.metrics import teacher_cross_entropy
        logits = rng.normal(size=(10, 8)) * 5
        # a confident model scoring its own argmax: low cross-entropy
        self_ce = teacher_cross_entropy(logits, logits)
        noisy = logits + rng.normal(size=(10, 8)) * 3
        assert teacher_cross_entropy(logits, noisy) > self_ce

    def test_detects_confidence_erosion(self, rng):
        from repro.quant.metrics import teacher_cross_entropy, top1_agreement
        # same argmax everywhere, but flattened margins: agreement is
        # blind to it, cross-entropy is not
        logits = rng.normal(size=(20, 6))
        flattened = logits * 0.2
        assert top1_agreement(logits, flattened) == 1.0
        assert (teacher_cross_entropy(logits, flattened)
                > teacher_cross_entropy(logits, logits))

    def test_pseudo_perplexity_exponentiates(self, rng):
        import numpy as np
        from repro.quant.metrics import (
            pseudo_perplexity,
            teacher_cross_entropy,
        )
        a = rng.normal(size=(5, 7))
        b = rng.normal(size=(5, 7))
        assert pseudo_perplexity(a, b) == pytest.approx(
            np.exp(teacher_cross_entropy(a, b))
        )

    def test_shape_mismatch_raises(self):
        import numpy as np
        from repro.quant.metrics import teacher_cross_entropy
        with pytest.raises(QuantizationError):
            teacher_cross_entropy(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_1d_inputs(self, rng):
        from repro.quant.metrics import teacher_cross_entropy
        a = rng.normal(size=6)
        assert teacher_cross_entropy(a, a) >= 0.0

    def test_quantization_ordering_by_cross_entropy(self):
        # the fp16 path should have lower teacher-CE than naive per-tensor
        import numpy as np
        from repro.model import build_synthetic_model, tiny_config
        from repro.quant import quantize_model
        from repro.quant.metrics import teacher_cross_entropy
        cfg = tiny_config(n_layers=4)
        rng = np.random.default_rng(0)
        corpus = [rng.integers(4, cfg.vocab_size, size=16) for _ in range(3)]
        test = rng.integers(4, cfg.vocab_size, size=24)
        ref = build_synthetic_model(cfg, seed=7).prefill(test)
        scores = {}
        for scheme in ("fp16", "per-tensor"):
            m = build_synthetic_model(cfg, seed=7)
            quantize_model(m, scheme, calib_corpus=corpus)
            scores[scheme] = teacher_cross_entropy(ref, m.prefill(test))
        assert scores["fp16"] < scores["per-tensor"]
