"""Property-based tests for the shadow-execution decomposition (Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.base import quantize_int8
from repro.quant.shadow import ShadowOutlierLinear


def weights(draw, out_f, in_f):
    return draw(hnp.arrays(
        np.float32, (out_f, in_f),
        elements=st.floats(-2, 2, width=32),
    ))


@st.composite
def linear_cases(draw):
    in_f = draw(st.integers(4, 24))
    out_f = draw(st.integers(2, 16))
    rows = draw(st.integers(1, 8))
    w = weights(draw, out_f, in_f)
    x = draw(hnp.arrays(
        np.float32, (rows, in_f), elements=st.floats(-3, 3, width=32),
    ))
    scale = draw(st.floats(0.005, 0.2))
    # inject outliers into some columns
    n_out = draw(st.integers(0, min(3, in_f)))
    cols = draw(st.permutations(range(in_f)))[:n_out]
    for c in cols:
        x[:, c] *= draw(st.floats(5, 50))
    return w, x, scale


class TestEq1Decomposition:
    @settings(max_examples=50, deadline=None)
    @given(case=linear_cases())
    def test_shadow_reconstructs_outlier_columns_exactly(self, case):
        """On outlier columns, NPU half + shadow half equals the exact
        float product with the (dequantized) weights — Eq. 1's identity."""
        w, x, scale = case
        lin = ShadowOutlierLinear(w, scale, shadow_enabled=True,
                                  per_channel_weights=False)
        cols = lin.outlier_columns(x)
        main = lin.npu_half(x)
        shadow = lin.shadow_half(x, cols)
        combined = main + (shadow if shadow is not None else 0.0)

        # Eq. 1 exactly as the system computes it: the NPU half is the
        # clamped-quantized activation against the *quantized* weights;
        # the CPU half is the residual beyond the clamp against the
        # *float* weight columns kept in CPU memory.
        w_q = lin.qweight.dequantize()
        x_clamped = quantize_int8(x, scale).astype(np.float32) * scale
        expected = x_clamped @ w_q.T
        if cols.size:
            residual = (x - x_clamped)[:, cols]
            expected = expected + residual @ w[:, cols].T
        np.testing.assert_allclose(combined, expected, rtol=1e-3, atol=1e-3)

    @settings(max_examples=50, deadline=None)
    @given(case=linear_cases())
    def test_shadow_improves_when_outliers_matter(self, case):
        """Compensation reduces the error whenever the clamped mass is
        significant; when outliers barely exceed the clamp the two paths
        may differ by at most the weight-quantization noise on the tiny
        residual (compensation uses float weights, the main path int8
        ones — their rounding errors need not align)."""
        w, x, scale = case
        ref = x @ w.T
        on = ShadowOutlierLinear(w, scale, shadow_enabled=True)
        off = ShadowOutlierLinear(w, scale, shadow_enabled=False)
        err_on = float(np.linalg.norm(on(x) - ref))
        err_off = float(np.linalg.norm(off(x) - ref))
        clamped = x - np.clip(
            np.rint(x / scale), -127, 127
        ).astype(np.float32) * scale
        clamped_norm = float(np.linalg.norm(clamped))
        if clamped_norm > 0.1 * float(np.linalg.norm(x)):
            assert err_on <= err_off + 1e-4
        else:
            slack = clamped_norm * float(np.abs(w).max()) + 1e-4
            assert err_on <= err_off + slack

    @settings(max_examples=30, deadline=None)
    @given(case=linear_cases())
    def test_no_outliers_means_no_shadow_work(self, case):
        w, x, scale = case
        # choose a scale so nothing clamps
        big_scale = float(np.abs(x).max()) / 100.0 + 1e-6
        lin = ShadowOutlierLinear(w, big_scale, shadow_enabled=True)
        lin(x)
        assert lin.shadow_stats.outlier_channels[-1] == 0
        assert lin.stats.float_macs == 0


class TestEqualizationProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        in_f=st.integers(4, 16),
        out_f=st.integers(2, 8),
        seed=st.integers(0, 100),
    )
    def test_equalization_is_exact_in_float(self, in_f, out_f, seed):
        """x/e @ (w*e)^T == x @ w^T exactly (up to float rounding) —
        equalization only changes what the *quantizer* sees."""
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(out_f, in_f)).astype(np.float32)
        x = rng.normal(size=(5, in_f)).astype(np.float32)
        e = rng.uniform(0.1, 1.0, size=in_f).astype(np.float32)
        lhs = (x / e) @ (w * e[None, :]).T
        np.testing.assert_allclose(lhs, x @ w.T, rtol=1e-4, atol=1e-4)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 50))
    def test_equalized_linear_matches_reference_closely(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(8, 16)).astype(np.float32)
        x = rng.normal(size=(6, 16)).astype(np.float32)
        x[:, 8:] *= 0.02  # quiet half
        channel_absmax = np.abs(x).max(axis=0)
        threshold = float(channel_absmax.max())
        eq = np.minimum(channel_absmax / threshold, 1.0) ** 0.75
        lin = ShadowOutlierLinear(w, threshold / 127.0, equalize=eq)
        ref = x @ w.T
        rel = (np.linalg.norm(lin(x) - ref)
               / (np.linalg.norm(ref) + 1e-12))
        assert rel < 0.05
