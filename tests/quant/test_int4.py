"""Tests for 4-bit per-group weight quantization."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant.base import (
    QuantizedTensor,
    qmax_for_bits,
    quantize_weight_per_group,
)
from repro.quant.per_group import PerGroupLinear


class TestQmax:
    def test_values(self):
        assert qmax_for_bits(8) == 127
        assert qmax_for_bits(4) == 7

    def test_invalid(self):
        with pytest.raises(QuantizationError):
            qmax_for_bits(3)


class TestInt4Weights:
    def test_codes_in_range(self, rng):
        w = rng.normal(size=(8, 32)).astype(np.float32)
        qt = quantize_weight_per_group(w, 8, bits=4)
        assert qt.data.min() >= -7
        assert qt.data.max() <= 7
        assert qt.bits == 4

    def test_packed_size_half_of_int8(self, rng):
        w = rng.normal(size=(8, 32)).astype(np.float32)
        q8 = quantize_weight_per_group(w, 8, bits=8)
        q4 = quantize_weight_per_group(w, 8, bits=4)
        # identical scale storage, halved payload
        assert q4.nbytes() == q8.nbytes() - w.size // 2

    def test_int4_coarser_than_int8(self, rng):
        w = rng.normal(size=(8, 64)).astype(np.float32)
        q8 = quantize_weight_per_group(w, 16, bits=8)
        q4 = quantize_weight_per_group(w, 16, bits=4)
        err8 = np.abs(q8.dequantize() - w).mean()
        err4 = np.abs(q4.dequantize() - w).mean()
        assert err4 > 5 * err8

    def test_invalid_bits_rejected(self, rng):
        w = rng.normal(size=(4, 8)).astype(np.float32)
        with pytest.raises(QuantizationError):
            quantize_weight_per_group(w, 4, bits=2)
        with pytest.raises(QuantizationError):
            QuantizedTensor(np.zeros((2, 2), dtype=np.int8), 1.0, bits=5)


class TestInt4Linear:
    def test_runs_and_degrades_gracefully(self, rng):
        w = rng.normal(size=(16, 32)).astype(np.float32)
        x = rng.normal(size=(4, 32)).astype(np.float32)
        ref = x @ w.T
        lin8 = PerGroupLinear(w, group_size=8, weight_bits=8)
        lin4 = PerGroupLinear(w, group_size=8, weight_bits=4)
        err8 = np.linalg.norm(lin8(x) - ref)
        err4 = np.linalg.norm(lin4(x) - ref)
        assert err4 > err8
        # still correlated with the reference
        corr = np.corrcoef(lin4(x).ravel(), ref.ravel())[0, 1]
        assert corr > 0.98

    def test_weight_bytes_smaller(self, rng):
        w = rng.normal(size=(16, 32)).astype(np.float32)
        assert (PerGroupLinear(w, 8, weight_bits=4).weight_nbytes()
                < PerGroupLinear(w, 8, weight_bits=8).weight_nbytes())
