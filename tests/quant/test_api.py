"""Tests for model-level quantization and the accuracy ordering (Table 6)."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.model import build_synthetic_model, tiny_config
from repro.quant import (
    SCHEMES,
    ShadowOutlierLinear,
    quantize_model,
    top1_agreement,
)
from repro.quant.api import auto_channel_percentile


@pytest.fixture(scope="module")
def setup():
    cfg = tiny_config(n_layers=8)
    rng = np.random.default_rng(42)
    corpus = [rng.integers(4, cfg.vocab_size, size=24) for _ in range(5)]
    test = [rng.integers(4, cfg.vocab_size, size=24) for _ in range(3)]
    ref = build_synthetic_model(cfg, seed=7)
    ref_logits = np.concatenate([ref.prefill(ids) for ids in test])
    return cfg, corpus, test, ref_logits


def quantized_agreement(setup, scheme, **kwargs):
    cfg, corpus, test, ref_logits = setup
    model = build_synthetic_model(cfg, seed=7)
    report = quantize_model(model, scheme, calib_corpus=corpus, **kwargs)
    logits = np.concatenate([model.prefill(ids) for ids in test])
    return top1_agreement(ref_logits, logits), report


class TestQuantizeModel:
    def test_unknown_scheme_raises(self, setup):
        cfg, corpus, _, _ = setup
        model = build_synthetic_model(cfg, seed=7)
        with pytest.raises(QuantizationError):
            quantize_model(model, "int3", calib_corpus=corpus)

    def test_missing_calibration_raises(self, setup):
        cfg, _, _, _ = setup
        model = build_synthetic_model(cfg, seed=7)
        with pytest.raises(QuantizationError):
            quantize_model(model, "llm.npu")

    def test_fp16_needs_no_calibration(self, setup):
        cfg, _, _, _ = setup
        model = build_synthetic_model(cfg, seed=7)
        report = quantize_model(model, "fp16")
        assert report.scheme == "fp16"

    def test_double_quantization_rejected(self, setup):
        cfg, corpus, _, _ = setup
        model = build_synthetic_model(cfg, seed=7)
        quantize_model(model, "per-tensor", calib_corpus=corpus)
        with pytest.raises(QuantizationError):
            quantize_model(model, "per-tensor", calib_corpus=corpus)

    def test_all_sites_replaced(self, setup):
        cfg, corpus, _, _ = setup
        model = build_synthetic_model(cfg, seed=7)
        report = quantize_model(model, "llm.npu", calib_corpus=corpus)
        per_layer = 7 if cfg.gated_ffn else 6
        assert report.n_sites == cfg.n_layers * per_layer
        for _, _, op in model.iter_linears():
            assert isinstance(op, ShadowOutlierLinear)

    def test_weight_bytes_positive_and_ordered(self, setup):
        _, fp16_report = quantized_agreement(setup, "fp16")
        _, pt_report = quantized_agreement(setup, "per-tensor")
        assert 0 < pt_report.weight_bytes < fp16_report.weight_bytes

    def test_report_shadow_sites(self, setup):
        _, report = quantized_agreement(setup, "llm.npu")
        assert len(report.shadow_sites()) == report.n_sites

    def test_calibration_reuse(self, setup):
        cfg, corpus, test, ref_logits = setup
        model = build_synthetic_model(cfg, seed=7)
        report1 = quantize_model(model, "llm.npu", calib_corpus=corpus)
        model2 = build_synthetic_model(cfg, seed=7)
        report2 = quantize_model(model2, "llm.npu",
                                 calibration=report1.calibration)
        a = np.concatenate([model.prefill(ids) for ids in test])
        b = np.concatenate([model2.prefill(ids) for ids in test])
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-5)


class TestAccuracyOrdering:
    """The Table 6 story on the synthetic substrate."""

    def test_fp16_is_reference(self, setup):
        acc, _ = quantized_agreement(setup, "fp16")
        assert acc > 0.99

    def test_naive_per_tensor_is_worst(self, setup):
        pt, _ = quantized_agreement(setup, "per-tensor")
        for scheme in ("per-group", "llm.int8", "awq"):
            other, _ = quantized_agreement(setup, scheme)
            assert other > pt

    def test_llm_npu_beats_per_tensor_and_smoothquant(self, setup):
        ours, _ = quantized_agreement(setup, "llm.npu", pruning_rate=0.0)
        pt, _ = quantized_agreement(setup, "per-tensor")
        sq, _ = quantized_agreement(setup, "smoothquant")
        assert ours > pt
        assert ours >= sq

    def test_llm_npu_near_llm_int8(self, setup):
        ours, _ = quantized_agreement(setup, "llm.npu", pruning_rate=0.0)
        int8, _ = quantized_agreement(setup, "llm.int8")
        assert ours >= int8 - 0.08

    def test_default_pruning_nearly_free(self, setup):
        # Table 6 runs at the default 85% pruning with ~1% loss.
        full, _ = quantized_agreement(setup, "llm.npu", pruning_rate=0.0)
        # 8 layers: 0.75 prunes 6, keeping both important end layers.
        pruned, _ = quantized_agreement(setup, "llm.npu", pruning_rate=0.75)
        assert pruned >= full - 0.06

    def test_full_pruning_hurts(self, setup):
        # Fig. 16: pruning everything craters accuracy.
        some, _ = quantized_agreement(setup, "llm.npu", pruning_rate=0.75)
        everything, _ = quantized_agreement(setup, "llm.npu",
                                            pruning_rate=1.0)
        assert everything < some - 0.2

    def test_pruning_plan_keeps_important_layers(self, setup):
        _, report = quantized_agreement(setup, "llm.npu", pruning_rate=0.75)
        plan = report.pruning_plan
        kept_importance = min(plan.importance[l] for l in plan.kept_layers)
        pruned_importance = max(
            plan.importance[l] for l in plan.pruned_layers
        )
        assert kept_importance >= pruned_importance


class TestAutoChannelPercentile:
    def test_wide_model_close_to_995(self):
        assert auto_channel_percentile(2048) == pytest.approx(99.5, abs=0.2)

    def test_narrow_model_excludes_two_channels(self):
        assert auto_channel_percentile(64) == pytest.approx(96.875)

    def test_never_below_50(self):
        assert auto_channel_percentile(2) >= 50.0
