"""Tests for the individual quantized linear operators."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant.awq import AwqLinear, awq_scales
from repro.quant.llm_int8 import LlmInt8Linear
from repro.quant.per_group import PerGroupLinear
from repro.quant.per_tensor import PerTensorLinear
from repro.quant.shadow import ShadowOutlierLinear
from repro.quant.smoothquant import SmoothQuantLinear, smoothing_factors


@pytest.fixture()
def weight(rng):
    return rng.normal(size=(24, 32)).astype(np.float32)


@pytest.fixture()
def x_normal(rng):
    return rng.normal(size=(8, 32)).astype(np.float32)


def x_with_outlier(rng, cols=(3,), gain=40.0):
    x = rng.normal(size=(8, 32)).astype(np.float32)
    for c in cols:
        x[:, c] *= gain
    return x


def relative_error(ref, approx):
    return float(np.linalg.norm(ref - approx) / (np.linalg.norm(ref) + 1e-12))


class TestPerTensorLinear:
    def test_accurate_without_outliers(self, weight, x_normal):
        scale = float(np.abs(x_normal).max()) / 127.0
        lin = PerTensorLinear(weight, scale)
        ref = x_normal @ weight.T
        assert relative_error(ref, lin(x_normal)) < 0.02

    def test_outliers_destroy_precision(self, weight, rng):
        # The same data quantized with an outlier-stretched scale loses far
        # more precision than with an outlier-free scale: the naive scale
        # crushes the ordinary values (the paper's §2.3 observation).
        x_clean = x_with_outlier(rng, gain=1.0)
        clean_scale = float(np.abs(x_clean).max()) / 127.0
        stretched_scale = clean_scale * 40.0  # as if one column were 40x
        ref = x_clean @ weight.T
        err_clean = relative_error(ref, PerTensorLinear(weight, clean_scale)(x_clean))
        err_naive = relative_error(
            ref, PerTensorLinear(weight, stretched_scale)(x_clean)
        )
        assert err_naive > 10 * err_clean

    def test_stats_recorded(self, weight, x_normal):
        lin = PerTensorLinear(weight, 0.1)
        lin(x_normal)
        assert lin.stats.calls == 1
        assert lin.stats.int8_macs == 8 * 32 * 24

    def test_wrong_width_raises(self, weight):
        lin = PerTensorLinear(weight, 0.1)
        with pytest.raises(QuantizationError):
            lin(np.zeros((2, 31)))

    def test_bias_applied(self, weight, x_normal, rng):
        bias = rng.normal(size=24).astype(np.float32)
        scale = float(np.abs(x_normal).max()) / 127.0
        with_bias = PerTensorLinear(weight, scale, bias=bias)
        without = PerTensorLinear(weight, scale)
        np.testing.assert_allclose(
            with_bias(x_normal) - without(x_normal),
            np.broadcast_to(bias, (8, 24)), rtol=1e-5,
        )


class TestPerGroupLinear:
    def test_robust_to_column_outliers(self, weight, rng):
        x = x_with_outlier(rng)
        lin = PerGroupLinear(weight, group_size=8)
        ref = x @ weight.T
        assert relative_error(ref, lin(x)) < 0.05

    def test_beats_naive_per_tensor_on_outliers(self, weight, rng):
        x = x_with_outlier(rng)
        ref = x @ weight.T
        pg = PerGroupLinear(weight, group_size=8)
        pt = PerTensorLinear(weight, float(np.abs(x).max()) / 127.0)
        assert relative_error(ref, pg(x)) < relative_error(ref, pt(x))

    def test_float_reduction_macs_counted(self, weight, x_normal):
        lin = PerGroupLinear(weight, group_size=8)
        lin(x_normal)
        assert lin.stats.float_macs == 8 * (32 // 8) * 24

    def test_indivisible_group_raises(self, weight):
        with pytest.raises(QuantizationError):
            PerGroupLinear(weight, group_size=5)


class TestSmoothQuant:
    def test_factors_at_least_one(self, weight, rng):
        absmax = np.abs(rng.normal(size=32)).astype(np.float32) * 3
        s = smoothing_factors(absmax, weight)
        assert np.all(s >= 1.0)

    def test_smoothing_reduces_outlier_damage(self, weight, rng):
        x = x_with_outlier(rng)
        channel_absmax = np.abs(x).max(axis=0)
        ref = x @ weight.T
        sq = SmoothQuantLinear(weight, channel_absmax, 0.0)
        pt = PerTensorLinear(weight, float(np.abs(x).max()) / 127.0)
        assert relative_error(ref, sq(x)) < relative_error(ref, pt(x))

    def test_invalid_alpha_raises(self, weight):
        from repro.errors import CalibrationError
        with pytest.raises(CalibrationError):
            smoothing_factors(np.ones(32), weight, alpha=1.5)


class TestLlmInt8:
    def test_near_exact_with_outliers(self, weight, rng):
        x = x_with_outlier(rng)
        lin = LlmInt8Linear(weight, outlier_threshold=10.0)
        ref = x @ weight.T
        assert relative_error(ref, lin(x)) < 0.01

    def test_outlier_columns_counted(self, weight, rng):
        x = x_with_outlier(rng, cols=(3, 17))
        lin = LlmInt8Linear(weight, outlier_threshold=10.0)
        lin(x)
        assert lin.stats.outlier_channel_counts == [2]
        assert lin.stats.float_macs == 8 * 2 * 24

    def test_no_outliers_pure_int8(self, weight, x_normal):
        lin = LlmInt8Linear(weight, outlier_threshold=100.0)
        lin(x_normal)
        assert lin.stats.float_macs == 0


class TestAwq:
    def test_high_accuracy(self, weight, rng):
        x = x_with_outlier(rng)
        channel_absmax = np.abs(x).max(axis=0)
        lin = AwqLinear(weight, channel_absmax, group_size=8)
        ref = x @ weight.T
        assert relative_error(ref, lin(x)) < 0.01

    def test_only_float_macs(self, weight, x_normal, rng):
        lin = AwqLinear(weight, np.abs(x_normal).max(axis=0), group_size=8)
        lin(x_normal)
        assert lin.stats.int8_macs == 0
        assert lin.stats.float_macs == 8 * 32 * 24

    def test_scale_validation(self, weight):
        with pytest.raises(QuantizationError):
            awq_scales(np.ones(32), alpha=-0.1)
        with pytest.raises(QuantizationError):
            AwqLinear(weight, np.ones(32), group_size=5)


class TestShadowOutlierLinear:
    def test_near_exact_with_shadow_enabled(self, weight, rng):
        x = x_with_outlier(rng)
        # threshold below the outlier column's values
        scale = float(np.abs(x[:, [c for c in range(32) if c != 3]]).max()) / 127.0
        lin = ShadowOutlierLinear(weight, scale, shadow_enabled=True)
        ref = x @ weight.T
        assert relative_error(ref, lin(x)) < 0.01

    def test_pruned_shadow_clamps_outliers(self, weight, rng):
        x = x_with_outlier(rng)
        scale = float(np.abs(x[:, [c for c in range(32) if c != 3]]).max()) / 127.0
        on = ShadowOutlierLinear(weight, scale, shadow_enabled=True)
        off = ShadowOutlierLinear(weight, scale, shadow_enabled=False)
        ref = x @ weight.T
        assert relative_error(ref, off(x)) > 3 * relative_error(ref, on(x))

    def test_decomposition_identity(self, weight, rng):
        # Eq. 1: NPU half + shadow half == full-precision product of the
        # fake-quantized main path plus exact residual on outlier columns.
        x = x_with_outlier(rng)
        scale = 0.05
        lin = ShadowOutlierLinear(weight, scale, shadow_enabled=True,
                                  per_channel_weights=False)
        cols = lin.outlier_columns(x)
        assert cols.size >= 1
        main = lin.npu_half(x)
        shadow = lin.shadow_half(x, cols)
        w_eff = lin.qweight.dequantize()
        from repro.quant.base import quantize_int8
        x_q = quantize_int8(x, scale).astype(np.float32) * scale
        expected_main = x_q @ w_eff.T
        np.testing.assert_allclose(main, expected_main, rtol=1e-4, atol=1e-4)
        resid = (x - x_q)[:, cols]
        np.testing.assert_allclose(
            shadow, resid @ lin.float_weight[:, cols].T, rtol=1e-4, atol=1e-4
        )

    def test_outlier_channel_stats(self, weight, rng):
        x = x_with_outlier(rng, cols=(3, 9))
        scale = 0.05
        lin = ShadowOutlierLinear(weight, scale)
        lin(x)
        assert lin.shadow_stats.shadow_calls == 1
        assert lin.shadow_stats.outlier_channels[0] >= 2
        assert lin.mean_outlier_channels() >= 2

    def test_hot_channel_accounting(self, weight, rng):
        x = x_with_outlier(rng, cols=(3, 9))
        lin = ShadowOutlierLinear(weight, 0.05,
                                  hot_channels=np.array([3]))
        lin(x)
        assert lin.shadow_stats.hot_hits >= 1
        assert lin.shadow_stats.cold_misses >= 1

    def test_memory_shrinks_with_hot_cache(self, weight):
        full = ShadowOutlierLinear(weight, 0.1, hot_channels=None)
        cached = ShadowOutlierLinear(weight, 0.1,
                                     hot_channels=np.array([1, 2]))
        pruned = ShadowOutlierLinear(weight, 0.1, shadow_enabled=False)
        assert pruned.weight_nbytes() < cached.weight_nbytes()
        assert cached.weight_nbytes() < full.weight_nbytes()

    def test_equalize_improves_quiet_channels(self, weight, rng):
        # quiet channels: scale down a block of columns
        x = rng.normal(size=(8, 32)).astype(np.float32)
        x[:, 16:] *= 0.05
        channel_absmax = np.abs(x).max(axis=0)
        threshold = float(channel_absmax.max())
        eq = np.minimum(channel_absmax / threshold, 1.0) ** 0.75
        scale = threshold / 127.0
        plain = ShadowOutlierLinear(weight, scale)
        equalized = ShadowOutlierLinear(weight, scale, equalize=eq)
        ref = x @ weight.T
        assert relative_error(ref, equalized(x)) < relative_error(ref, plain(x))

    def test_equalize_shape_validated(self, weight):
        with pytest.raises(ValueError):
            ShadowOutlierLinear(weight, 0.1, equalize=np.ones(5))

    def test_skipped_calls_counted(self, weight, x_normal):
        lin = ShadowOutlierLinear(weight, 0.1, shadow_enabled=False)
        lin(x_normal)
        assert lin.shadow_stats.skipped_calls == 1
        assert lin.shadow_stats.shadow_calls == 0
