"""Tests for quantized checkpoint serialization."""

import os

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.model import build_synthetic_model, tiny_config
from repro.quant import quantize_model
from repro.quant.io import load_quantized, save_quantized
from repro.workloads import calibration_corpus


@pytest.fixture(scope="module")
def cfg():
    return tiny_config(n_layers=4)


@pytest.fixture(scope="module")
def corpus(cfg):
    return calibration_corpus(cfg, 4, 16, seed=3)


def quantize_fresh(cfg, corpus, scheme, **kw):
    model = build_synthetic_model(cfg, seed=3)
    quantize_model(model, scheme, calib_corpus=corpus, **kw)
    return model


class TestRoundTrip:
    @pytest.mark.parametrize("scheme,kw", [
        ("llm.npu", {}),
        ("llm.npu", {"pruning_rate": 0.0, "hot_coverage": None}),
        ("per-tensor", {}),
        ("per-group", {}),
        ("per-group", {"weight_bits": 4}),
    ])
    def test_logits_bit_exact(self, cfg, corpus, scheme, kw, tmp_path, rng):
        original = quantize_fresh(cfg, corpus, scheme, **kw)
        path = os.path.join(tmp_path, "q.npz")
        save_quantized(original, path)

        target = build_synthetic_model(cfg, seed=3)
        replaced = load_quantized(target, path)
        assert len(replaced) == sum(1 for _ in target.iter_linears())

        ids = rng.integers(4, cfg.vocab_size, size=20)
        np.testing.assert_array_equal(original.prefill(ids),
                                      target.prefill(ids))

    def test_shadow_metadata_preserved(self, cfg, corpus, tmp_path):
        from repro.quant import ShadowOutlierLinear
        original = quantize_fresh(cfg, corpus, "llm.npu")
        path = os.path.join(tmp_path, "q.npz")
        save_quantized(original, path)
        target = build_synthetic_model(cfg, seed=3)
        load_quantized(target, path)
        for (_, _, a), (_, _, b) in zip(original.iter_linears(),
                                        target.iter_linears()):
            assert isinstance(b, ShadowOutlierLinear)
            assert b.act_scale == a.act_scale
            assert b.shadow_enabled == a.shadow_enabled
            assert b.hot_channel_set == a.hot_channel_set


class TestValidation:
    def test_float_model_not_savable(self, cfg, tmp_path):
        model = build_synthetic_model(cfg, seed=3)
        with pytest.raises(QuantizationError):
            save_quantized(model, os.path.join(tmp_path, "q.npz"))

    def test_fp16_scheme_not_savable(self, cfg, tmp_path):
        model = build_synthetic_model(cfg, seed=3)
        quantize_model(model, "fp16")
        with pytest.raises(QuantizationError):
            save_quantized(model, os.path.join(tmp_path, "q.npz"))

    def test_non_checkpoint_rejected(self, cfg, tmp_path):
        path = os.path.join(tmp_path, "junk.npz")
        np.savez(path, a=np.zeros(3))
        model = build_synthetic_model(cfg, seed=3)
        with pytest.raises(QuantizationError):
            load_quantized(model, path)

    def test_architecture_mismatch_rejected(self, cfg, corpus, tmp_path):
        original = quantize_fresh(cfg, corpus, "per-tensor")
        path = os.path.join(tmp_path, "q.npz")
        save_quantized(original, path)
        other = build_synthetic_model(tiny_config(n_layers=2), seed=3)
        with pytest.raises(QuantizationError):
            load_quantized(other, path)
