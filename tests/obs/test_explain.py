"""Tests for per-request wait attribution (obs/explain.py).

The acceptance property: for every request of a step-logged run — on
both serving paths — the attribution identity holds within 1e-9 s::

    behind + idle + admission + retry == queue + admission + retry

with ``idle ~ 0`` (work conservation).  The hypothesis class replays
the invariant-suite workload distribution (mirrors
``tests/core/test_step_scheduler.py``) through ``explain_all`` +
``validate_explanations``.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.core import (  # noqa: E402
    BatchConfig,
    EngineConfig,
    LlmService,
    TierPolicy,
)
from repro.eval import batched_golden_service, golden_steplog  # noqa: E402
from repro.obs import (  # noqa: E402
    STALL_CAUSES,
    StepLogError,
    StepLogger,
    explain_all,
    explain_lines,
    explain_request,
    explain_table,
    validate_explanations,
)

MODEL = "Qwen1.5-1.8B"
DEVICE = "Redmi K70 Pro"
CHUNK = 32

OPEN_TIERS = {
    "interactive": TierPolicy("interactive", priority=10),
    "background": TierPolicy("background", priority=0),
}

# mirrors tests/core/test_step_scheduler.py — the PR-6 invariant
# suite's workload distribution
requests_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4 * CHUNK + 7),
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.0, max_value=3.0,
                  allow_nan=False, allow_infinity=False),
        st.sampled_from(["interactive", "background"]),
    ),
    min_size=1, max_size=6,
)

config_strategy = st.tuples(
    st.one_of(st.none(),
              st.integers(min_value=CHUNK, max_value=4 * CHUNK)),
    st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    st.floats(min_value=0.0, max_value=1.0,
              allow_nan=False, allow_infinity=False),
).filter(lambda cfg: not (cfg[0] is None and cfg[1] == 1))


def run_logged(reqs, batching):
    svc = LlmService(
        DEVICE, EngineConfig(chunk_len=CHUNK), scheduler="priority",
        admission=False, tiers=OPEN_TIERS, batching=batching)
    logger = StepLogger().attach(svc)
    for prompt, output, arrival, tier in reqs:
        svc.enqueue(MODEL, prompt, output, arrival_s=arrival, tier=tier)
    svc.run()
    return logger


class TestGoldenRuns:
    def test_batched_golden_reconciles(self):
        atts = explain_all(golden_steplog(seed=42, batched=True))
        assert atts
        validate_explanations(atts)  # raises on any residual > 1e-9

    def test_legacy_golden_reconciles(self):
        atts = explain_all(golden_steplog(seed=42, batched=False))
        assert atts
        validate_explanations(atts)

    def test_knob_extremes_reconcile(self):
        for p in (0.0, 1.0):
            atts = explain_all(
                golden_steplog(seed=42, batched=True,
                               prefill_priority=p))
            validate_explanations(atts)

    def test_interference_only_on_batched_path(self):
        legacy = explain_all(golden_steplog(seed=42, batched=False))
        assert all(a.interference_s == 0.0 for a in legacy)
        batched = explain_all(golden_steplog(seed=42, batched=True))
        assert any(a.interference_s > 0.0 for a in batched)

    def test_stall_causes_are_closed_set(self):
        logger = StepLogger()
        batched_golden_service(seed=42, max_concurrency=2,
                               steplog=logger)
        atts = explain_all(logger)
        validate_explanations(atts)
        causes = {c for a in atts for c, _ in a.stalls}
        assert causes  # the constrained run does stall
        assert causes <= set(STALL_CAUSES)

    def test_unknown_request_id(self):
        doc = golden_steplog(seed=42, batched=True).to_dict()
        with pytest.raises(StepLogError, match="unknown request id"):
            explain_request(doc, 10_000)

    def test_explain_table_renders(self):
        table = explain_table(golden_steplog(seed=42, batched=True))
        rendered = table.render()
        assert "top blocker" in rendered
        assert "within 1e-9 s" in rendered

    def test_explain_lines_narrative(self):
        doc = golden_steplog(seed=42, batched=True).to_dict()
        lines = "\n".join(explain_lines(doc, 7))
        assert "request 00007" in lines
        assert "behind:" in lines
        assert "decisions:" in lines
        assert "reconciliation:" in lines


class TestReconciliationProperty:
    """Hypothesis replay of the invariant-suite workloads."""

    @given(reqs=requests_strategy, cfg=config_strategy)
    def test_attribution_identity_over_invariant_workloads(
            self, reqs, cfg):
        budget, conc, priority = cfg
        logger = run_logged(reqs, BatchConfig(
            max_batch_tokens=budget, max_concurrency=conc,
            prefill_priority=priority))
        atts = explain_all(logger)
        assert len(atts) == len(reqs)
        validate_explanations(atts)  # residual and idle <= 1e-9 s

    @given(reqs=requests_strategy)
    def test_attribution_identity_on_legacy_path(self, reqs):
        logger = run_logged(reqs, batching=None)
        atts = explain_all(logger)
        assert len(atts) == len(reqs)
        validate_explanations(atts)
