"""QuantileSketch: error bound, mergeability, serialization.

The two load-bearing properties, proven over random inputs:

* **merge == pooled, bit-for-bit** — sketching any partition of a
  sample stream and merging (in any order) serializes identically to
  sketching the pooled stream; this is what makes fleet aggregation of
  per-device sketches exact with respect to the sketches.
* **documented error bound** — every percentile is within
  ``alpha * exact + min_value`` of ``numpy.percentile`` on the raw
  samples.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import DEFAULT_ALPHA, QuantileSketch, SketchError

# Non-negative float samples spanning the magnitudes the service
# observes (sub-ms queueing to hour-scale turnaround, plus exact zeros).
samples_strategy = st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                  allow_infinity=False),
        st.just(0.0),
    ),
    min_size=1, max_size=200,
)


def sketch_of(values, alpha=DEFAULT_ALPHA):
    sketch = QuantileSketch(alpha=alpha)
    sketch.observe_many(values)
    return sketch


class TestErrorBound:
    @settings(max_examples=200, deadline=None)
    @given(samples_strategy, st.sampled_from([0.0, 25.0, 50.0, 90.0,
                                              95.0, 99.0, 100.0]))
    def test_percentile_within_documented_bound(self, values, q):
        sketch = sketch_of(values)
        exact = float(np.percentile(np.asarray(values, dtype=np.float64),
                                    q))
        bound = sketch.alpha * exact + sketch.min_value
        assert abs(sketch.percentile(q) - exact) <= bound + 1e-9 * exact

    def test_bucket_representative_relative_error(self):
        sketch = QuantileSketch(alpha=0.02)
        for value in (1e-6, 0.37, 1.0, 42.0, 9.9e3):
            index = math.ceil(math.log(value) / math.log(sketch._gamma))
            rep = sketch.bucket_representative(index)
            assert abs(rep - value) <= sketch.alpha * value * (1 + 1e-12)

    def test_single_sample(self):
        sketch = sketch_of([3.25])
        for q in (0, 50, 100):
            assert abs(sketch.percentile(q) - 3.25) <= 0.01 * 3.25

    def test_empty_sketch_is_nan(self):
        sketch = QuantileSketch()
        assert math.isnan(sketch.percentile(50))
        snap = sketch.snapshot_percentiles()
        assert snap["count"] == 0 and snap["p99"] is None

    def test_percentiles_monotone_and_clamped(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(0.0, 2.0, 500)
        sketch = sketch_of(values)
        qs = [sketch.percentile(q) for q in (0, 10, 50, 90, 99, 100)]
        assert qs == sorted(qs)
        assert qs[0] >= float(values.min())
        assert qs[-1] <= float(values.max())


class TestMergeIsExact:
    @settings(max_examples=150, deadline=None)
    @given(samples_strategy, st.randoms(use_true_random=False))
    def test_merge_over_random_partition_equals_pooled(self, values, rnd):
        # split the stream into 1..4 random parts, sketch each part,
        # merge in shuffled order: bit-for-bit the pooled sketch
        n_parts = rnd.randint(1, 4)
        parts = [[] for _ in range(n_parts)]
        for value in values:
            parts[rnd.randrange(n_parts)].append(value)
        sketches = [sketch_of(part) for part in parts]
        rnd.shuffle(sketches)
        merged = QuantileSketch.merged(sketches)
        pooled = sketch_of(values)
        assert merged.to_dict() == pooled.to_dict()
        assert merged.to_json() == pooled.to_json()

    def test_merge_associative_and_commutative(self):
        a = sketch_of([0.1, 2.0, 30.0])
        b = sketch_of([5.0, 5.0])
        c = sketch_of([0.0, 1e3])
        ab_c = QuantileSketch.merged([a, b]).merge(c)
        a_bc = QuantileSketch.merged([a]).merge(
            QuantileSketch.merged([b, c]))
        cba = QuantileSketch.merged([c, b, a])
        assert ab_c.to_dict() == a_bc.to_dict() == cba.to_dict()

    def test_merge_requires_identical_boundaries(self):
        with pytest.raises(SketchError, match="identical boundaries"):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))
        with pytest.raises(SketchError, match="cannot merge"):
            QuantileSketch().merge([1.0])

    def test_merged_empty_iterable_is_empty_sketch(self):
        # a fleet roll-up over zero devices is zero samples, not a crash
        merged = QuantileSketch.merged([])
        assert merged.count == 0
        assert math.isnan(merged.percentile(99))
        snap = merged.snapshot_percentiles()
        assert snap["count"] == 0 and snap["p50"] is None


class TestSerialization:
    @settings(max_examples=100, deadline=None)
    @given(samples_strategy)
    def test_json_round_trip_lossless(self, values):
        sketch = sketch_of(values)
        clone = QuantileSketch.from_json(sketch.to_json())
        assert clone.to_dict() == sketch.to_dict()
        assert clone.count == sketch.count
        assert clone.sum == sketch.sum
        for q in (50, 95, 99):
            assert clone.percentile(q) == sketch.percentile(q)

    def test_exact_sum_survives_serialization(self):
        # 0.1 + 0.2 is inexact in floats; the Fraction sum is exact and
        # must travel losslessly as a numerator/denominator pair
        sketch = sketch_of([0.1, 0.2])
        data = json.loads(sketch.to_json())
        num, den = data["sum"]
        clone = QuantileSketch.from_json(sketch.to_json())
        assert clone._sum == sketch._sum
        assert (num, den) == (sketch._sum.numerator,
                              sketch._sum.denominator)
        from fractions import Fraction
        assert sketch._sum == Fraction(0.1) + Fraction(0.2)  # exact, != 0.3

    def test_schema_is_stamped_and_checked(self):
        sketch = sketch_of([1.0])
        assert json.loads(sketch.to_json())["schema"] == "repro.sketch/v1"
        with pytest.raises(SketchError, match="schema"):
            QuantileSketch.from_dict({"schema": "nope"})
        with pytest.raises(SketchError, match="invalid sketch JSON"):
            QuantileSketch.from_json("not json")


class TestValidation:
    def test_rejects_bad_samples(self):
        sketch = QuantileSketch()
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(SketchError):
                sketch.observe(bad)
        assert sketch.count == 0

    def test_rejects_bad_parameters(self):
        for alpha in (0.0, 1.0, -0.5):
            with pytest.raises(SketchError, match="alpha"):
                QuantileSketch(alpha=alpha)
        with pytest.raises(SketchError, match="min_value"):
            QuantileSketch(min_value=0.0)

    def test_rejects_bad_percentile(self):
        with pytest.raises(SketchError, match="not in"):
            sketch_of([1.0]).percentile(101)

    def test_bounded_memory(self):
        # 100k lognormal samples land in a few hundred buckets
        rng = np.random.default_rng(0)
        sketch = sketch_of(rng.lognormal(0.0, 3.0, 100_000))
        assert sketch.count == 100_000
        assert sketch.n_buckets < 4000


class TestEmptyPaths:
    """Degenerate telemetry (idle devices, zero-sample windows) must
    flow through the whole aggregation pipeline without raising."""

    def test_merge_of_all_empty_sketches_stays_empty(self):
        merged = QuantileSketch.merged(
            [QuantileSketch(), QuantileSketch(), QuantileSketch()])
        assert merged.count == 0
        assert merged.sum == 0.0
        assert merged.mean == 0.0
        assert math.isnan(merged.min) and math.isnan(merged.max)
        for q in (0, 50, 99, 100):
            assert math.isnan(merged.percentile(q))

    def test_empty_sketch_round_trips_and_merges(self):
        clone = QuantileSketch.from_json(QuantileSketch().to_json())
        assert clone.count == 0
        # an empty sketch is the merge identity
        full = sketch_of([1.0, 2.0])
        assert QuantileSketch.merged([clone, full]).to_dict() == \
            full.to_dict()

    def test_empty_record_many_then_merge_then_percentile(self):
        # the full fleet pipeline over zero samples: batch-ingest
        # nothing, merge, snapshot — all no-ops, never an exception
        sketch = QuantileSketch()
        assert sketch.record_many([]) == 0
        merged = QuantileSketch.merged([sketch])
        snap = merged.snapshot_percentiles()
        assert snap == {"count": 0, "sum": 0.0, "mean": 0.0,
                        "p50": None, "p90": None, "p95": None,
                        "p99": None, "max": None}
