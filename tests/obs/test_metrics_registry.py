"""Unit tests for the metrics registry."""

import json

import pytest

from repro.obs import MetricsError, MetricsRegistry, as_registry


class TestInstruments:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("requests", tier="a").inc()
        reg.counter("requests", tier="a").inc(2.0)
        reg.counter("requests", tier="b").inc()
        assert reg.value("requests", tier="a") == 3.0
        assert reg.value("requests", tier="b") == 1.0
        assert len(reg) == 2

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError, match="negative"):
            reg.counter("c").inc(-1.0)

    def test_instruments_reject_nan_and_inf(self):
        # a single NaN would poison every aggregate downstream; reject
        # at the instrument boundary and leave state untouched
        reg = MetricsRegistry()
        reg.counter("c").inc(1.0)
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(3.0)
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(MetricsError, match="finite"):
                reg.counter("c").inc(bad)
            with pytest.raises(MetricsError, match="finite"):
                reg.gauge("g").set(bad)
            with pytest.raises(MetricsError, match="finite"):
                reg.histogram("h").observe(bad)
        assert reg.value("c") == 1.0
        assert reg.value("g") == 2.0
        assert reg.histogram("h").count == 1

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3)
        reg.gauge("depth").set(1)
        assert reg.value("depth") == 1.0

    def test_histogram_exact_stats(self):
        reg = MetricsRegistry()
        values = [0.3, 0.1, 0.2, 0.4]
        for v in values:
            reg.histogram("lat").observe(v)
        h = reg.histogram("lat")
        assert h.count == 4
        assert h.sum == sum(values)       # same accumulation order
        assert h.mean == sum(values) / 4
        import numpy as np
        assert h.percentile(50) == float(np.percentile(values, 50))
        assert reg.samples("lat") == values

    def test_empty_histogram_percentile_is_nan(self):
        import math
        h = MetricsRegistry().histogram("lat")
        assert h.count == 0 and h.mean == 0.0
        assert math.isnan(h.percentile(0))
        assert math.isnan(h.percentile(95))
        assert math.isnan(h.percentile(100))

    def test_single_sample_percentile_is_the_sample(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(0.125)
        for q in (0, 25, 50, 95, 100):
            assert h.percentile(q) == 0.125

    def test_percentile_rejects_out_of_range(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(1.0)
        with pytest.raises(MetricsError, match="not in"):
            h.percentile(101)
        with pytest.raises(MetricsError, match="not in"):
            h.percentile(-1)

    def test_empty_histogram_snapshot_is_valid_json(self):
        snap = MetricsRegistry().histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["p95"] is None
        assert snap["max"] is None
        json.dumps(snap)  # NaN would raise with allow_nan=False
        assert json.loads(json.dumps(snap)) == snap

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricsError, match="already registered"):
            reg.gauge("x")

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.counter("c", a="1", b="2").inc()
        assert reg.value("c", b="2", a="1") == 1.0


class TestReadOnlyAndExport:
    def test_peek_and_value_never_create(self):
        reg = MetricsRegistry()
        assert reg.peek("nope") is None
        assert reg.value("nope", default=7.5) == 7.5
        assert reg.samples("nope") == []
        assert len(reg) == 0

    def test_value_on_histogram_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        with pytest.raises(MetricsError, match="histogram"):
            reg.value("h")

    def test_snapshot_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a", tier="b").inc()
        reg.counter("a", tier="a").inc()
        names = [(s["name"], tuple(sorted(s["labels"].items())))
                 for s in reg.snapshot()]
        assert names == sorted(names)

    def test_snapshot_order_independent_of_insertion(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("z").inc()
        a.histogram("lat", tier="hi").observe(1.0)
        a.gauge("depth", tier="lo").set(2)
        b.gauge("depth", tier="lo").set(2)
        b.histogram("lat", tier="hi").observe(1.0)
        b.counter("z").inc()
        assert a.to_json() == b.to_json()

    def test_save_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("requests", tier="x").inc(5)
        reg.histogram("lat").observe(0.5)
        path = str(tmp_path / "m" / "metrics.json")
        reg.save(path)
        data = json.loads(open(path).read())
        by_name = {d["name"]: d for d in data}
        assert by_name["requests"]["value"] == 5.0
        assert by_name["lat"]["count"] == 1

    def test_as_registry(self):
        reg = MetricsRegistry()
        assert as_registry(reg) is reg
        assert isinstance(as_registry(None), MetricsRegistry)
        assert as_registry(None) is not as_registry(None)
