"""Unit tests for the span tracer (sim-clock timestamps, no wall clock)."""

import pytest

from repro.obs import (
    NULL_TRACER,
    Instant,
    NullTracer,
    ObservabilityError,
    Span,
    Tracer,
    as_tracer,
)


class TestSpans:
    def test_immediate_span(self):
        tr = Tracer()
        span = tr.span("prefill", proc="service", thread="req 00001",
                       start_s=1.0, end_s=2.5, cat="prefill", tokens=512)
        assert isinstance(span, Span)
        assert tr.events == [span]
        assert span.duration_s == 1.5
        assert span.arg("tokens") == 512
        assert span.arg("missing", "x") == "x"

    def test_context_manager_span(self):
        tr = Tracer()
        with tr.span("decode", proc="service", thread="t",
                     start_s=0.0) as handle:
            handle.finish(0.25, output_tokens=8)
        [span] = tr.spans
        assert span.end_s == 0.25
        assert span.arg("output_tokens") == 8

    def test_unfinished_span_raises(self):
        tr = Tracer()
        with pytest.raises(ObservabilityError, match="without finish"):
            with tr.span("x", proc="p", thread="t", start_s=0.0):
                pass

    def test_double_finish_raises(self):
        tr = Tracer()
        handle = tr.span("x", proc="p", thread="t", start_s=0.0)
        handle.finish(1.0)
        with pytest.raises(ObservabilityError, match="twice"):
            handle.finish(2.0)

    def test_exception_records_zero_width_and_propagates(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("x", proc="p", thread="t", start_s=3.0):
                raise ValueError("boom")
        [span] = tr.spans
        assert span.start_s == span.end_s == 3.0
        assert span.arg("error") == "ValueError"

    def test_negative_duration_rejected(self):
        tr = Tracer()
        with pytest.raises(ObservabilityError, match="before it starts"):
            tr.span("x", proc="p", thread="t", start_s=2.0, end_s=1.0)

    def test_args_sorted_deterministically(self):
        tr = Tracer()
        s = tr.span("x", proc="p", thread="t", start_s=0.0, end_s=1.0,
                    zebra=1, alpha=2)
        assert [k for k, _ in s.args] == ["alpha", "zebra"]


class TestInstantsAndQueries:
    def test_instant(self):
        tr = Tracer()
        i = tr.instant("fault.ok", proc="service", thread="faults",
                       ts_s=0.5, cat="fault", draw=3)
        assert isinstance(i, Instant)
        assert tr.instants == [i]
        assert tr.spans == []

    def test_tracks_and_on_track(self):
        tr = Tracer()
        tr.span("a", proc="service", thread="req 00001",
                start_s=0.0, end_s=1.0)
        tr.instant("b", proc="service", thread="scheduler", ts_s=0.0)
        tr.span("c", proc="hw m", thread="npu", start_s=0.0, end_s=1.0)
        assert tr.tracks() == [("hw m", "npu"),
                               ("service", "req 00001"),
                               ("service", "scheduler")]
        assert [e.name for e in tr.on_track("service")] == ["a", "b"]
        assert [e.name
                for e in tr.on_track("service", "scheduler")] == ["b"]

    def test_to_record_round_trip_keys(self):
        tr = Tracer()
        tr.span("a", proc="p", thread="t", start_s=0.0, end_s=1.0, k=1)
        tr.instant("b", proc="p", thread="t", ts_s=0.5)
        span_rec, inst_rec = (e.to_record() for e in tr.events)
        assert span_rec["type"] == "span"
        assert span_rec["args"] == {"k": 1}
        assert inst_rec["type"] == "instant"
        assert inst_rec["ts_s"] == 0.5


class TestNullTracer:
    def test_records_nothing(self):
        tr = NullTracer()
        tr.instant("a", proc="p", thread="t", ts_s=0.0)
        with tr.span("b", proc="p", thread="t", start_s=0.0) as h:
            h.finish(1.0)
        tr.extend([1, 2, 3])
        assert len(tr) == 0
        assert tr.enabled is False

    def test_null_span_tolerates_unfinished_exit(self):
        with NULL_TRACER.span("x", proc="p", thread="t", start_s=0.0):
            pass  # no ObservabilityError from the no-op handle

    def test_as_tracer(self):
        assert as_tracer(None) is NULL_TRACER
        tr = Tracer()
        assert as_tracer(tr) is tr
