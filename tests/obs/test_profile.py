"""Tests for the profiler: attribution, idle causes, roofline, energy.

The synthetic-trace tests pin the classification semantics on
hand-checkable timelines; the engine/service tests assert the two
load-bearing reconciliations — time conservation against the trace
makespan and energy against the engine's reported totals.
"""

import json
import math
import os
import subprocess
import sys

import pytest

from repro.hw.soc import get_device
from repro.hw.trace import Trace, TraceEvent
from repro.obs import (
    ProfileError,
    ProfileReport,
    attribute_energy,
    attribute_time,
    calibrated_peak_ops,
    classify_idle,
    flamegraph_lines,
    merge_profiles,
    profile_inference,
    profile_trace,
    validate_profile,
)


def two_proc_trace():
    """cpu and npu interleave: npu [0,1] matmul, cpu [1,1.5] sync fence,
    cpu [1.5,2] outlier, npu [2,3] decode.  Makespan 3."""
    t = Trace()
    t.add(TraceEvent("c0.l0.sg0", "npu", 0.0, 1.0, tag="", ops=2e9))
    t.add(TraceEvent("c0.l0.sync", "cpu", 1.0, 1.5, tag="sync"))
    t.add(TraceEvent("c0.l0.shadow", "cpu", 1.5, 2.0, tag="outlier",
                     ops=1e8))
    t.add(TraceEvent("decode", "npu", 2.0, 3.0, tag="decode"))
    return t


class TestAttributeTime:
    def test_buckets_and_ops(self):
        costs = {c.key: c for c in attribute_time(two_proc_trace())}
        assert set(costs) == {("cpu", "sync"), ("cpu", "outlier"),
                              ("npu", "task"), ("npu", "decode")}
        assert costs[("npu", "task")].ops == 2e9
        assert costs[("npu", "task")].busy_s == 1.0
        assert costs[("cpu", "sync")].ops == 0.0
        assert costs[("cpu", "outlier")].n_events == 1

    def test_untagged_falls_into_task_bucket(self):
        t = Trace()
        t.add(TraceEvent("a", "cpu", 0.0, 1.0))
        (cost,) = attribute_time(t)
        assert cost.tag == "task"

    def test_busy_matches_trace(self):
        trace = two_proc_trace()
        costs = attribute_time(trace)
        for proc in trace.processors():
            total = sum(c.busy_s for c in costs if c.proc == proc)
            assert total == pytest.approx(trace.busy_seconds(proc))


class TestClassifyIdle:
    def test_sync_beats_dependency(self):
        idle = classify_idle(two_proc_trace())
        # npu idles [1,2]: [1,1.5] under the sync fence, [1.5,2] while
        # the cpu runs the shadow matmul.
        assert idle["npu"]["sync_wait"] == pytest.approx(0.5)
        assert idle["npu"]["dependency"] == pytest.approx(0.5)
        assert idle["npu"]["starvation"] == 0.0
        # cpu idles [0,1] and [2,3], both while the npu is busy.
        assert idle["cpu"]["dependency"] == pytest.approx(2.0)
        assert idle["cpu"]["sync_wait"] == 0.0

    def test_starvation_when_everything_quiet(self):
        t = Trace()
        t.add(TraceEvent("a", "cpu", 0.0, 1.0))
        t.add(TraceEvent("b", "cpu", 2.0, 3.0))
        idle = classify_idle(t)
        assert idle["cpu"]["starvation"] == pytest.approx(1.0)
        assert idle["cpu"]["dependency"] == 0.0

    def test_prep_charged_as_graph_build_everywhere(self):
        idle = classify_idle(two_proc_trace(), prep_s=0.25)
        assert idle["cpu"]["graph_build"] == 0.25
        assert idle["npu"]["graph_build"] == 0.25

    def test_negative_prep_rejected(self):
        with pytest.raises(ProfileError):
            classify_idle(two_proc_trace(), prep_s=-1.0)

    def test_conservation_per_processor(self):
        trace = two_proc_trace()
        idle = classify_idle(trace, prep_s=0.5)
        window = trace.makespan_s + 0.5
        for proc in trace.processors():
            total = trace.busy_seconds(proc) + sum(idle[proc].values())
            assert total == pytest.approx(window, abs=1e-9)


class TestProfileTrace:
    def test_report_conserves_and_validates(self):
        report = profile_trace(two_proc_trace(), prep_s=0.5)
        assert report.window_s == pytest.approx(3.5)
        validate_profile(report)  # does not raise
        for p in report.processors:
            assert p.busy_s + p.idle_s == pytest.approx(report.window_s,
                                                        abs=1e-9)

    def test_operator_busy_sums_to_processor_busy(self):
        report = profile_trace(two_proc_trace())
        for p in report.processors:
            op_total = sum(o.busy_s for o in report.operators
                           if o.proc == p.proc)
            assert op_total == pytest.approx(p.busy_s, abs=1e-12)

    def test_phases_split_prefill_decode(self):
        report = profile_trace(two_proc_trace(), prep_s=0.5)
        assert report.phases["prepare_s"] == 0.5
        assert report.phases["decode_busy_s"] == pytest.approx(1.0)
        assert report.phases["prefill_busy_s"] == pytest.approx(2.0)

    def test_roofline_needs_device(self):
        report = profile_trace(two_proc_trace())
        assert report.processor("npu").peak_ops_per_s is None
        assert report.processor("npu").roofline_fraction is None

    def test_roofline_with_device(self):
        device = get_device("Redmi K70 Pro")
        report = profile_trace(two_proc_trace(), device=device)
        npu = report.processor("npu")
        assert npu.peak_ops_per_s == calibrated_peak_ops(
            device.processors["npu"]
        )
        # only the [0,1] matmul event carries ops
        assert npu.matmul_busy_s == pytest.approx(1.0)
        assert npu.achieved_ops_per_s == pytest.approx(2e9)
        assert npu.roofline_fraction == pytest.approx(
            2e9 / npu.peak_ops_per_s
        )

    def test_validation_catches_tampering(self):
        report = profile_trace(two_proc_trace())
        bad = ProfileReport(
            window_s=report.window_s + 1.0,
            n_traces=1,
            processors=report.processors,
            operators=report.operators,
            phases=report.phases,
        )
        with pytest.raises(ProfileError):
            validate_profile(bad)

    def test_energy_requires_device(self):
        with pytest.raises(ProfileError):
            profile_trace(two_proc_trace(), include_energy=True)


class TestCalibratedPeak:
    def test_npu_rated_at_int8(self):
        device = get_device("Redmi K70 Pro")
        from repro.hw.processor import DType
        spec = device.processors["npu"]
        assert calibrated_peak_ops(spec) == spec.matmul[DType.INT8].peak_ops

    def test_cpu_rated_at_widest_float(self):
        device = get_device("Redmi K70 Pro")
        from repro.hw.processor import DType
        spec = device.processors["cpu"]
        assert calibrated_peak_ops(spec) == spec.matmul[DType.FP32].peak_ops


class TestFlamegraph:
    def test_collapsed_stacks(self):
        lines = flamegraph_lines(two_proc_trace())
        assert "npu;c0;l0;sg0 1000000000" in lines
        assert "cpu;c0;l0;sync 500000000" in lines
        assert lines == sorted(lines)

    def test_repeated_stacks_accumulate(self):
        t = Trace()
        t.add(TraceEvent("c0.l0", "cpu", 0.0, 1.0))
        t.add(TraceEvent("c0.l0", "cpu", 1.0, 3.0))
        assert flamegraph_lines(t) == ["cpu;c0;l0 3000000000"]


class TestChromeOpsRoundTrip:
    def test_ops_survive_export_import(self):
        trace = two_proc_trace()
        restored = Trace.from_chrome_trace(trace.to_chrome_trace())
        assert restored.ops_by_processor() == trace.ops_by_processor()


class TestEnergyAttribution:
    def test_absent_processors_draw_pure_idle(self):
        device = get_device("Redmi K70 Pro")
        energy = attribute_energy(two_proc_trace(), device)
        # the gpu never appears in the trace: idle draw over the window
        gpu = energy["per_processor"]["gpu"]
        assert gpu["tags"] == {}
        assert gpu["idle_j"] == pytest.approx(
            device.processors["gpu"].idle_power_w * 3.0
        )

    def test_window_shorter_than_makespan_rejected(self):
        device = get_device("Redmi K70 Pro")
        with pytest.raises(ProfileError):
            attribute_energy(two_proc_trace(), device, window_s=1.0)

    def test_components_sum_to_total(self):
        device = get_device("Redmi K70 Pro")
        energy = attribute_energy(two_proc_trace(), device, window_s=4.0)
        attributed = energy["platform_j"] + sum(
            0.0 + p["total_j"] for p in energy["per_processor"].values()
        )
        assert attributed == pytest.approx(energy["total_j"], abs=1e-12)
        assert energy["platform_j"] == pytest.approx(
            device.platform_power_w * 4.0
        )


class TestMergeProfiles:
    def test_windows_and_busy_add(self):
        a = profile_trace(two_proc_trace(), prep_s=0.5)
        b = profile_trace(two_proc_trace())
        merged = merge_profiles([a, b])
        assert merged.window_s == pytest.approx(a.window_s + b.window_s)
        assert merged.n_traces == 2
        assert merged.processor("npu").busy_s == pytest.approx(4.0)
        validate_profile(merged)

    def test_absent_processor_charged_as_starvation(self):
        cpu_only = Trace()
        cpu_only.add(TraceEvent("x", "cpu", 0.0, 2.0))
        merged = merge_profiles([
            profile_trace(two_proc_trace()),
            profile_trace(cpu_only),
        ])
        npu = merged.processor("npu")
        # the npu never appeared in the 2 s cpu-only window
        assert npu.idle_by_cause["starvation"] == pytest.approx(2.0)
        validate_profile(merged)

    def test_flamegraph_weights_add(self):
        a = profile_trace(two_proc_trace())
        merged = merge_profiles([a, a])
        assert "npu;c0;l0;sg0 2000000000" in merged.flamegraph

    def test_mixed_energy_rejected(self):
        device = get_device("Redmi K70 Pro")
        with_energy = profile_trace(two_proc_trace(), device=device)
        without = profile_trace(two_proc_trace())
        with pytest.raises(ProfileError):
            merge_profiles([with_energy, without])

    def test_empty_rejected(self):
        with pytest.raises(ProfileError):
            merge_profiles([])


@pytest.fixture(scope="module")
def engine_profile():
    from repro.core import LlmNpuEngine
    engine = LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro")
    inference = engine.infer(64, 2)
    report = profile_inference(
        inference, engine.device,
        float_backend=engine.config.float_backend,
        decode_backend=engine.config.decode_backend,
    )
    return engine, inference, report


class TestProfileInference:
    def test_window_is_e2e_latency(self, engine_profile):
        _engine, inference, report = engine_profile
        assert report.window_s == pytest.approx(inference.e2e_latency_s,
                                                abs=1e-9)

    def test_energy_reconciles_with_engine(self, engine_profile):
        """The tentpole invariant: per-event attribution replays the
        engine's power model exactly."""
        _engine, inference, report = engine_profile
        assert math.isclose(report.total_energy_j,
                            inference.energy.total_j, abs_tol=1e-9)

    def test_conservation(self, engine_profile):
        _engine, _inference, report = engine_profile
        validate_profile(report)

    def test_json_is_deterministic_and_schema_clean(self, engine_profile,
                                                    tmp_path):
        _engine, _inference, report = engine_profile
        assert report.to_json() == report.to_json()
        doc = json.loads(report.to_json())
        assert doc["schema"] == "repro.profile/v1"
        path = str(tmp_path / "profile.json")
        report.save(path)
        checker = os.path.join(os.path.dirname(__file__), "..", "..",
                               "scripts", "check_trace_schema.py")
        result = subprocess.run(
            [sys.executable, checker, path],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr

    def test_schema_checker_rejects_broken_conservation(self,
                                                        engine_profile,
                                                        tmp_path):
        _engine, _inference, report = engine_profile
        doc = report.to_dict()
        doc["processors"][0]["busy_s"] += 1.0
        path = str(tmp_path / "broken.json")
        with open(path, "w") as f:
            json.dump(doc, f)
        checker = os.path.join(os.path.dirname(__file__), "..", "..",
                               "scripts", "check_trace_schema.py")
        result = subprocess.run(
            [sys.executable, checker, path],
            capture_output=True, text=True,
        )
        assert result.returncode != 0
        assert "busy + idle != window" in result.stderr


class TestServiceProfile:
    @pytest.fixture(scope="class")
    def golden(self):
        from repro.eval import service_profile_report
        return service_profile_report(seed=42)

    def test_conservation_over_golden_workload(self, golden):
        report, _service = golden
        validate_profile(report)
        for p in report.processors:
            assert p.busy_s + p.idle_s == pytest.approx(
                report.window_s, abs=1e-9 * max(1, report.n_traces)
            )

    def test_energy_reconciles_with_service_totals(self, golden):
        report, service = golden
        expected = sum(
            r.report.energy.total_j for r in service.requests
            if r.status == "completed" and r.report is not None
        )
        assert math.isclose(report.total_energy_j, expected,
                            rel_tol=0.0, abs_tol=1e-6)

    def test_metrics_snapshot_attached(self, golden):
        report, _service = golden
        assert report.metrics is not None
        assert any(r["kind"] == "histogram" for r in report.metrics)

    def test_operator_and_energy_tables_render(self, golden):
        from repro.eval import energy_table, operator_table
        report, _service = golden
        assert "sync" in operator_table(report).render()
        assert "platform" in energy_table(report).render()
