"""Latency-breakdown tests: components sum to turnaround, per request."""

import pytest

from repro.errors import EngineError
from repro.eval import service_golden_records
from repro.obs import (
    SUM_TOL_S,
    breakdown_request,
    breakdown_requests,
    breakdown_table,
    tier_component_means,
    validate_breakdowns,
)


@pytest.fixture(scope="module")
def golden_service():
    return service_golden_records(seed=42)


class TestDecomposition:
    def test_components_sum_to_turnaround(self, golden_service):
        breakdowns = breakdown_requests(golden_service.requests)
        assert len(breakdowns) == len(golden_service.requests)
        for b in breakdowns:
            assert abs(b.residual_s) <= SUM_TOL_S

    def test_validate_passes_on_golden(self, golden_service):
        validate_breakdowns(breakdown_requests(golden_service.requests))

    def test_validate_rejects_bad_decomposition(self, golden_service):
        from dataclasses import replace
        b = breakdown_request(golden_service.requests[0])
        broken = replace(b, queue_s=b.queue_s + 1.0)
        with pytest.raises(EngineError, match="components sum"):
            validate_breakdowns([broken])

    def test_shed_requests_decompose_into_pure_queueing(
            self, golden_service):
        shed = [r for r in golden_service.requests
                if r.status in ("rejected", "cancelled", "timeout")]
        assert shed, "golden scenario should shed some requests"
        for r in shed:
            b = breakdown_request(r)
            assert b.prefill_s == 0.0
            assert b.decode_s == 0.0
            assert b.retry_s == 0.0
            assert abs(b.queue_s - b.turnaround_s) <= SUM_TOL_S

    def test_retry_component_counts_fault_cost(self, golden_service):
        retried = [r for r in golden_service.requests
                   if r.status == "completed" and r.retries > 0]
        assert retried, "golden scenario should include a retry"
        for r in retried:
            assert breakdown_request(r).retry_s > 0.0


class TestAggregation:
    def test_tier_means(self, golden_service):
        means = tier_component_means(
            breakdown_requests(golden_service.requests))
        assert sorted(means) == ["background", "interactive"]
        bg = means["background"]
        assert bg["n_requests"] == bg["n_completed"] + bg["n_shed"]
        # mean components of completed requests also sum to the mean
        # turnaround (linearity), up to accumulated rounding
        for tier in means.values():
            total = (tier["queue_s"] + tier["retry_s"]
                     + tier["prefill_s"] + tier["decode_s"])
            assert total == pytest.approx(tier["turnaround_s"],
                                          abs=1e-6)

    def test_breakdown_table_shape(self, golden_service):
        table = breakdown_table(golden_service.requests)
        tiers = [row[0] for row in table.rows]
        assert tiers == ["background", "interactive"]
        assert "prefill s" in table.columns
        n_total = sum(row[table.columns.index("requests")]
                      for row in table.rows)
        assert n_total == len(golden_service.requests)
