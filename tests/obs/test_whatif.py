"""What-if estimator: capture fidelity and replay-vs-simulator agreement.

The contract the module advertises: for every perturbation class
(operator speedup, processor reassignment, DMA overlap), the
independent replay's predicted TTFT/ITL/e2e match an actual
re-simulation of the perturbed DAG within 1e-9 s — and the unperturbed
replay reproduces the engine's own reported latencies.
"""

import pytest

from repro.core import LlmNpuEngine
from repro.hw.dma import DmaConfig
from repro.hw.sim import Task
from repro.obs import (
    WHATIF_TOL_S,
    DmaOverlap,
    OperatorSpeedup,
    ProcessorReassign,
    WhatIfError,
    capture_engine_run,
    dma_overlap_perturbation,
    predict,
    reassign_from_spec,
    replay_schedule,
    resimulate,
    speedup_from_spec,
)


@pytest.fixture(scope="module")
def engine():
    return LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro")


@pytest.fixture(scope="module")
def run(engine):
    return capture_engine_run(engine, 512, output_tokens=4)


def assert_agrees(run, perturbations):
    report = predict(run, perturbations)
    truth = resimulate(run, perturbations)
    assert abs(report.predicted.ttft_s - truth.ttft_s) <= WHATIF_TOL_S
    assert abs(report.predicted.itl_s - truth.itl_s) <= WHATIF_TOL_S
    assert abs(report.predicted.e2e_s - truth.e2e_s) <= WHATIF_TOL_S
    return report


class TestCapture:
    def test_baseline_replay_matches_engine_report(self, engine, run):
        report = engine.infer(512, output_tokens=4)
        baseline = predict(run, []).baseline
        assert baseline.ttft_s == report.ttft_s
        assert baseline.e2e_s == report.e2e_latency_s

    def test_capture_rejects_bad_token_counts(self, engine):
        with pytest.raises(WhatIfError, match="positive"):
            capture_engine_run(engine, 0)
        with pytest.raises(WhatIfError, match="non-negative"):
            capture_engine_run(engine, 128, output_tokens=-1)

    def test_decode_chain_rides_on_prefill_sinks(self, run):
        decode = [t for t in run.tasks if t.tag == "decode"]
        assert len(decode) == 4
        # t0 gates on prefill, each later token on its predecessor
        assert all(d in run.prefill_ids for d in decode[0].deps)
        assert decode[1].deps == ("decode.t0",)


class TestPerturbationClasses:
    def test_operator_speedup_agrees_with_resimulation(self, run):
        report = assert_agrees(run, [OperatorSpeedup("sg1", 2.0)])
        assert report.predicted.ttft_s < report.baseline.ttft_s

    def test_processor_reassign_agrees_with_resimulation(self, run):
        assert_agrees(run, [ProcessorReassign("sg2.float", "gpu")])

    def test_dma_overlap_agrees_with_resimulation(self, engine, run):
        pert, clone = dma_overlap_perturbation(
            engine, 512, DmaConfig(buffers=1))
        report = assert_agrees(run, [pert])
        # serial streaming can only slow the NPU stages down
        assert report.predicted.ttft_s >= report.baseline.ttft_s
        # and the prediction matches the rebuilt engine's measurement
        measured = clone.prefill(512).latency_s
        assert abs(report.predicted.ttft_s - measured) <= WHATIF_TOL_S

    def test_stacked_perturbations_agree(self, run):
        assert_agrees(run, [OperatorSpeedup("decode", 1.5),
                            ProcessorReassign("sg4.float", "gpu"),
                            OperatorSpeedup("sg5", 2.0)])

    def test_decode_speedup_moves_itl_not_ttft(self, run):
        report = assert_agrees(run, [OperatorSpeedup("decode", 2.0)])
        assert report.predicted.itl_s < report.baseline.itl_s
        assert report.predicted.ttft_s == report.baseline.ttft_s


class TestPerturbationSemantics:
    def test_tag_match_is_exact_or_dotted_prefix(self):
        task = Task(task_id="t", proc="npu", duration_s=1.0,
                    tag="sg1.float")
        assert OperatorSpeedup("sg1", 2.0).apply(task).duration_s == 0.5
        assert OperatorSpeedup("sg1.float", 2.0).apply(task) \
            .duration_s == 0.5
        # no prefix match without the dot boundary: sg1 != sg10
        other = Task(task_id="u", proc="npu", duration_s=1.0, tag="sg10")
        assert OperatorSpeedup("sg1", 2.0).apply(other).duration_s == 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WhatIfError, match="positive"):
            OperatorSpeedup("sg1", 0.0)
        with pytest.raises(WhatIfError, match="target processor"):
            ProcessorReassign("sg1", "")
        with pytest.raises(WhatIfError, match="positive"):
            ProcessorReassign("sg1", "gpu", duration_scale=-1.0)

    def test_dma_overlap_is_id_matched(self):
        pert = DmaOverlap(durations={"a": 0.25})
        hit = Task(task_id="a", proc="npu", duration_s=1.0)
        miss = Task(task_id="b", proc="npu", duration_s=1.0)
        assert pert.apply(hit).duration_s == 0.25
        assert pert.apply(miss).duration_s == 1.0


class TestReplayLoop:
    def test_replay_rejects_malformed_graphs(self):
        with pytest.raises(WhatIfError, match="unknown processor"):
            replay_schedule(
                [Task(task_id="a", proc="dsp", duration_s=1.0)],
                ["npu"], "fifo")
        with pytest.raises(WhatIfError, match="unknown dependency"):
            replay_schedule(
                [Task(task_id="a", proc="npu", duration_s=1.0,
                      deps=("ghost",))],
                ["npu"], "fifo")

    def test_replay_detects_deadlock(self):
        tasks = [Task(task_id="a", proc="npu", duration_s=1.0,
                      deps=("b",)),
                 Task(task_id="b", proc="npu", duration_s=1.0,
                      deps=("a",))]
        with pytest.raises(WhatIfError, match="deadlock"):
            replay_schedule(tasks, ["npu"], "fifo")


class TestSpecParsing:
    def test_speedup_spec(self):
        pert = speedup_from_spec("sg1=2")
        assert pert.tag == "sg1" and pert.factor == 2.0
        for bad in ("sg1", "=2", "sg1=fast"):
            with pytest.raises(WhatIfError):
                speedup_from_spec(bad)

    def test_reassign_spec(self):
        pert = reassign_from_spec("sg2=gpu")
        assert (pert.tag, pert.proc, pert.duration_scale) == \
            ("sg2", "gpu", 1.0)
        scaled = reassign_from_spec("sg2=npu*0.5")
        assert scaled.proc == "npu" and scaled.duration_scale == 0.5
        for bad in ("sg2", "sg2=", "sg2=gpu*slow"):
            with pytest.raises(WhatIfError):
                reassign_from_spec(bad)
