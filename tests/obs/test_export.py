"""Exporter tests: unified Perfetto timeline and JSONL event log."""

import gzip
import json

import pytest

from repro.errors import SchedulingError
from repro.eval import service_golden_records
from repro.obs import (
    MetricsRegistry,
    Tracer,
    export_service_trace,
    jsonl_records,
    read_jsonl,
    save_chrome_trace,
    service_timeline,
    to_chrome_trace,
    validate_timeline,
    write_jsonl,
)


@pytest.fixture(scope="module")
def traced_service():
    return service_golden_records(seed=42, tracer=Tracer(),
                                  metrics=MetricsRegistry())


class TestChromeExport:
    def test_stable_pid_tid_mapping(self):
        tr = Tracer()
        tr.span("a", proc="service", thread="t2", start_s=0.0, end_s=1.0)
        tr.span("b", proc="service", thread="t1", start_s=0.0, end_s=1.0)
        tr.span("c", proc="hw m", thread="npu", start_s=0.0, end_s=1.0)
        events = to_chrome_trace(tr)
        procs = {e["args"]["name"]: e["pid"] for e in events
                 if e.get("ph") == "M" and e["name"] == "process_name"}
        assert procs == {"hw m": 1, "service": 2}  # sorted proc order
        threads = {(e["pid"], e["args"]["name"]): e["tid"]
                   for e in events
                   if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert threads[(2, "t1")] == 1
        assert threads[(2, "t2")] == 2

    def test_spans_and_instants_export(self):
        tr = Tracer()
        tr.span("s", proc="p", thread="t", start_s=0.0, end_s=0.5)
        tr.instant("i", proc="p", thread="t", ts_s=0.25)
        phases = {e["ph"] for e in to_chrome_trace(tr)}
        assert phases == {"M", "X", "i"}

    def test_save_deterministic_bytes(self, tmp_path):
        def build():
            tr = Tracer()
            tr.span("s", proc="p", thread="t", start_s=0.0, end_s=0.5,
                    zebra=1, alpha=2)
            tr.instant("i", proc="p", thread="t", ts_s=0.25)
            return tr
        p1, p2 = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        save_chrome_trace(p1, build())
        save_chrome_trace(p2, build())
        assert open(p1, "rb").read() == open(p2, "rb").read()

    def test_validate_timeline_catches_overlap(self):
        tr = Tracer()
        tr.span("a", proc="p", thread="t", start_s=0.0, end_s=2.0)
        tr.span("b", proc="p", thread="t", start_s=1.0, end_s=3.0)
        with pytest.raises(SchedulingError, match="overlap"):
            validate_timeline(to_chrome_trace(tr))

    def test_validate_timeline_allows_parallel_tracks(self):
        tr = Tracer()
        tr.span("a", proc="p", thread="t1", start_s=0.0, end_s=2.0)
        tr.span("b", proc="p", thread="t2", start_s=1.0, end_s=3.0)
        validate_timeline(to_chrome_trace(tr))


class TestUnifiedServiceTimeline:
    def test_contains_both_layers(self, traced_service):
        merged = service_timeline(traced_service)
        procs = {proc for proc, _thread in merged.tracks()}
        assert "service" in procs
        assert any(p.startswith("hw ") for p in procs)
        names = {e.name for e in merged.spans}
        # service-level lifecycle spans...
        assert "queued" in names
        assert "prefill" in names
        assert "decode" in names
        # ...and simulated hw task events on the same timeline
        assert any(n.startswith("c0.l") for n in names)
        assert any(n.startswith("decode.t") for n in names)

    def test_validates_serial_per_track(self, traced_service):
        validate_timeline(to_chrome_trace(service_timeline(
            traced_service)))

    def test_hw_events_aligned_to_service_clock(self, traced_service):
        merged = service_timeline(traced_service)
        for record in traced_service.requests:
            if record.status != "completed":
                continue
            hw = [e for e in merged.spans
                  if e.proc == f"hw {record.model}"
                  and e.arg("request_id") == record.request_id]
            assert hw
            t0 = record.finish_s - record.report.e2e_latency_s
            assert min(e.start_s for e in hw) >= t0 - 1e-9
            assert max(e.end_s for e in hw) <= record.finish_s + 1e-9

    def test_export_writes_file(self, traced_service, tmp_path):
        path = str(tmp_path / "t" / "unified.json")
        events = export_service_trace(traced_service, path)
        assert json.load(open(path)) == events

    def test_fault_draws_visible(self, traced_service):
        faults = [e for e in traced_service.tracer.instants
                  if e.cat == "fault"]
        assert faults
        assert any(e.name == "fault.transient" for e in faults)
        draws = [e.arg("draw") for e in faults]
        assert draws == sorted(draws)  # consumed in draw order


class TestJsonl:
    def test_round_trip(self, tmp_path, traced_service):
        path = str(tmp_path / "log" / "events.jsonl")
        n = write_jsonl(path, tracer=traced_service.tracer,
                        metrics=traced_service.metrics_registry)
        records = read_jsonl(path)
        assert len(records) == n
        types = {r["type"] for r in records}
        assert types == {"span", "instant", "metric"}
        # trace records first (emission order), metrics last
        kinds = [r["type"] for r in records]
        first_metric = kinds.index("metric")
        assert all(k == "metric" for k in kinds[first_metric:])

    def test_records_match_events(self, traced_service):
        records = jsonl_records(tracer=traced_service.tracer)
        assert len(records) == len(traced_service.tracer.events)

    def test_schema_checker_accepts(self, tmp_path, traced_service):
        import os
        import subprocess
        import sys
        path = str(tmp_path / "events.jsonl")
        write_jsonl(path, tracer=traced_service.tracer,
                    metrics=traced_service.metrics_registry)
        trace_path = str(tmp_path / "trace.json")
        export_service_trace(traced_service, trace_path)
        checker = os.path.join(os.path.dirname(__file__), "..", "..",
                               "scripts", "check_trace_schema.py")
        result = subprocess.run(
            [sys.executable, checker, path, trace_path],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr


def make_step(index=0, start_s=0.0, end_s=0.1, n_inflight=1,
              prefill_tokens=128, decode_tokens=0,
              queue_depths=None, kv_budget_bytes=None,
              kv_reserved_bytes=0):
    """A repro.steps/v1 step dict with only the keys the counter
    exporter reads."""
    return {
        "index": index, "start_s": start_s, "end_s": end_s,
        "n_inflight": n_inflight, "prefill_tokens": prefill_tokens,
        "decode_tokens": decode_tokens,
        "queue_depths": {} if queue_depths is None else queue_depths,
        "kv_budget_bytes": kv_budget_bytes,
        "kv_reserved_bytes": kv_reserved_bytes,
    }


class TestStepCounterEdgeCases:
    def test_empty_step_log_emits_nothing(self):
        from repro.obs.export import step_counter_events
        assert step_counter_events([]) == []
        # and an empty steps list never creates a counter process
        tr = Tracer()
        tr.span("s", proc="p", thread="t", start_s=0.0, end_s=0.5)
        with_empty = to_chrome_trace(tr, steps=[])
        without = to_chrome_trace(tr)
        assert with_empty == without

    def test_single_step_emits_all_three_tracks(self):
        from repro.obs.export import step_counter_events
        events = step_counter_events(
            [make_step(queue_depths={"interactive": 2},
                       kv_budget_bytes=1024, kv_reserved_bytes=256)])
        assert [e["name"] for e in events] == \
            ["queue depth", "batch occupancy", "kv headroom"]
        assert all(e["ph"] == "C" for e in events)
        headroom = events[-1]["args"]["bytes"]
        assert headroom == 1024 - 256

    def test_zero_inflight_idle_step_counts_as_zero(self):
        # a fully idle step (nothing queued, nothing running) must still
        # sample every track with explicit zeros, not drop the sample
        from repro.obs.export import step_counter_events
        events = step_counter_events(
            [make_step(n_inflight=0, prefill_tokens=0, decode_tokens=0)])
        queue, batch, kv = events
        assert queue["args"] == {"total": 0}
        assert batch["args"] == {"prefill_tokens": 0, "decode_tokens": 0}
        # without a budget the reservation itself is the track
        assert kv["name"] == "kv reserved"
        assert kv["args"] == {"bytes": 0}

    def test_counters_never_trip_overlap_validation(self):
        # 'C' events carry no duration; two steps sharing a timestamp
        # with a span on the same pid must not look like an overlap
        tr = Tracer()
        tr.span("s", proc="service", thread="t", start_s=0.0, end_s=1.0)
        events = to_chrome_trace(
            tr, steps=[make_step(index=0, start_s=0.0, end_s=0.5),
                       make_step(index=1, start_s=0.5, end_s=1.0)])
        validate_timeline(events)


class TestOnPathMarking:
    @staticmethod
    def hw_task_spans(merged):
        # per-request task events only — the engine's "prepare"
        # lifecycle span also lives on the hw process but has no
        # per-request critical path to sit on
        return [e for e in merged.spans if e.proc.startswith("hw ")
                and e.arg("request_id") is not None]

    def test_default_timeline_has_no_on_path_arg(self, traced_service):
        hw = self.hw_task_spans(service_timeline(traced_service))
        assert hw
        assert all(e.arg("on_path") is None for e in hw)

    def test_critpath_marks_every_hw_span(self, traced_service):
        merged = service_timeline(traced_service, critpath=True)
        hw = self.hw_task_spans(merged)
        marks = [e.arg("on_path") for e in hw]
        assert all(isinstance(m, bool) for m in marks)
        # the gating chain is a strict subset of each request's events
        assert any(marks) and not all(marks)

    def test_marking_does_not_change_the_schedule(self, traced_service):
        plain = service_timeline(traced_service)
        marked = service_timeline(traced_service, critpath=True)
        assert [(e.name, e.start_s, e.end_s) for e in plain.spans] == \
            [(e.name, e.start_s, e.end_s) for e in marked.spans]


class TestGzipTransparency:
    """`.gz` suffix routing: every reader/writer round-trips through
    `open_text`, and equal text compresses to equal bytes anywhere."""

    def test_jsonl_gzip_round_trip(self, tmp_path, traced_service):
        plain = tmp_path / "events.jsonl"
        packed = tmp_path / "events.jsonl.gz"
        write_jsonl(str(plain), tracer=traced_service.tracer,
                    metrics=traced_service.metrics_registry)
        write_jsonl(str(packed), tracer=traced_service.tracer,
                    metrics=traced_service.metrics_registry)
        assert read_jsonl(str(packed)) == read_jsonl(str(plain))
        with gzip.open(packed, "rb") as fh:
            assert fh.read(1) == b"{"

    def test_chrome_trace_gzip_round_trip(self, tmp_path, traced_service):
        plain = tmp_path / "trace.json"
        packed = tmp_path / "trace.json.gz"
        export_service_trace(traced_service, str(plain))
        export_service_trace(traced_service, str(packed))
        with open(plain) as fh:
            want = json.load(fh)
        with gzip.open(packed, "rt") as fh:
            assert json.load(fh) == want

    def test_gzip_bytes_independent_of_path_and_clock(self, tmp_path):
        from repro.obs import open_text
        payloads = []
        for name in ("first.gz", "renamed-elsewhere.gz"):
            path = tmp_path / name
            with open_text(str(path), "w") as fh:
                fh.write("golden text\n")
            payloads.append(path.read_bytes())
        assert payloads[0] == payloads[1]

    def test_steplog_save_load_gzip(self, tmp_path):
        from repro.eval import golden_steplog
        from repro.obs import load_steps
        steplog = golden_steplog(seed=42, batched=True)
        plain = tmp_path / "steps.json"
        packed = tmp_path / "steps.json.gz"
        steplog.save(str(plain))
        steplog.save(str(packed))
        assert load_steps(str(packed)) == load_steps(str(plain))


class TestDeltaMarking:
    """`deltas=` stamps per-task regression milliseconds onto hw spans
    (fed from `repro.obs.diff.segment_deltas`)."""

    def test_deltas_stamped_on_matching_spans(self, traced_service):
        # hw spans are named by task id — the same ids segment_deltas
        # keys its {task_id: delta_s} map with
        hw = TestOnPathMarking.hw_task_spans(
            service_timeline(traced_service))
        assert hw
        target = hw[0].name
        marked = service_timeline(traced_service,
                                  deltas={target: 0.0123})
        stamped = [e for e in marked.spans
                   if e.arg("delta_ms") is not None]
        assert stamped
        assert all(abs(e.arg("delta_ms") - 12.3) < 1e-9 for e in stamped)
        assert all(e.name == target for e in stamped)

    def test_no_deltas_means_no_stamp(self, traced_service):
        merged = service_timeline(traced_service)
        assert all(e.arg("delta_ms") is None for e in merged.spans)

    def test_marking_with_deltas_keeps_the_schedule(self, traced_service):
        plain = service_timeline(traced_service)
        marked = service_timeline(traced_service, deltas={"x": 1.0})
        assert [(e.name, e.start_s, e.end_s) for e in plain.spans] == \
            [(e.name, e.start_s, e.end_s) for e in marked.spans]
