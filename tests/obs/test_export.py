"""Exporter tests: unified Perfetto timeline and JSONL event log."""

import json

import pytest

from repro.errors import SchedulingError
from repro.eval import service_golden_records
from repro.obs import (
    MetricsRegistry,
    Tracer,
    export_service_trace,
    jsonl_records,
    read_jsonl,
    save_chrome_trace,
    service_timeline,
    to_chrome_trace,
    validate_timeline,
    write_jsonl,
)


@pytest.fixture(scope="module")
def traced_service():
    return service_golden_records(seed=42, tracer=Tracer(),
                                  metrics=MetricsRegistry())


class TestChromeExport:
    def test_stable_pid_tid_mapping(self):
        tr = Tracer()
        tr.span("a", proc="service", thread="t2", start_s=0.0, end_s=1.0)
        tr.span("b", proc="service", thread="t1", start_s=0.0, end_s=1.0)
        tr.span("c", proc="hw m", thread="npu", start_s=0.0, end_s=1.0)
        events = to_chrome_trace(tr)
        procs = {e["args"]["name"]: e["pid"] for e in events
                 if e.get("ph") == "M" and e["name"] == "process_name"}
        assert procs == {"hw m": 1, "service": 2}  # sorted proc order
        threads = {(e["pid"], e["args"]["name"]): e["tid"]
                   for e in events
                   if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert threads[(2, "t1")] == 1
        assert threads[(2, "t2")] == 2

    def test_spans_and_instants_export(self):
        tr = Tracer()
        tr.span("s", proc="p", thread="t", start_s=0.0, end_s=0.5)
        tr.instant("i", proc="p", thread="t", ts_s=0.25)
        phases = {e["ph"] for e in to_chrome_trace(tr)}
        assert phases == {"M", "X", "i"}

    def test_save_deterministic_bytes(self, tmp_path):
        def build():
            tr = Tracer()
            tr.span("s", proc="p", thread="t", start_s=0.0, end_s=0.5,
                    zebra=1, alpha=2)
            tr.instant("i", proc="p", thread="t", ts_s=0.25)
            return tr
        p1, p2 = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        save_chrome_trace(p1, build())
        save_chrome_trace(p2, build())
        assert open(p1, "rb").read() == open(p2, "rb").read()

    def test_validate_timeline_catches_overlap(self):
        tr = Tracer()
        tr.span("a", proc="p", thread="t", start_s=0.0, end_s=2.0)
        tr.span("b", proc="p", thread="t", start_s=1.0, end_s=3.0)
        with pytest.raises(SchedulingError, match="overlap"):
            validate_timeline(to_chrome_trace(tr))

    def test_validate_timeline_allows_parallel_tracks(self):
        tr = Tracer()
        tr.span("a", proc="p", thread="t1", start_s=0.0, end_s=2.0)
        tr.span("b", proc="p", thread="t2", start_s=1.0, end_s=3.0)
        validate_timeline(to_chrome_trace(tr))


class TestUnifiedServiceTimeline:
    def test_contains_both_layers(self, traced_service):
        merged = service_timeline(traced_service)
        procs = {proc for proc, _thread in merged.tracks()}
        assert "service" in procs
        assert any(p.startswith("hw ") for p in procs)
        names = {e.name for e in merged.spans}
        # service-level lifecycle spans...
        assert "queued" in names
        assert "prefill" in names
        assert "decode" in names
        # ...and simulated hw task events on the same timeline
        assert any(n.startswith("c0.l") for n in names)
        assert any(n.startswith("decode.t") for n in names)

    def test_validates_serial_per_track(self, traced_service):
        validate_timeline(to_chrome_trace(service_timeline(
            traced_service)))

    def test_hw_events_aligned_to_service_clock(self, traced_service):
        merged = service_timeline(traced_service)
        for record in traced_service.requests:
            if record.status != "completed":
                continue
            hw = [e for e in merged.spans
                  if e.proc == f"hw {record.model}"
                  and e.arg("request_id") == record.request_id]
            assert hw
            t0 = record.finish_s - record.report.e2e_latency_s
            assert min(e.start_s for e in hw) >= t0 - 1e-9
            assert max(e.end_s for e in hw) <= record.finish_s + 1e-9

    def test_export_writes_file(self, traced_service, tmp_path):
        path = str(tmp_path / "t" / "unified.json")
        events = export_service_trace(traced_service, path)
        assert json.load(open(path)) == events

    def test_fault_draws_visible(self, traced_service):
        faults = [e for e in traced_service.tracer.instants
                  if e.cat == "fault"]
        assert faults
        assert any(e.name == "fault.transient" for e in faults)
        draws = [e.arg("draw") for e in faults]
        assert draws == sorted(draws)  # consumed in draw order


class TestJsonl:
    def test_round_trip(self, tmp_path, traced_service):
        path = str(tmp_path / "log" / "events.jsonl")
        n = write_jsonl(path, tracer=traced_service.tracer,
                        metrics=traced_service.metrics_registry)
        records = read_jsonl(path)
        assert len(records) == n
        types = {r["type"] for r in records}
        assert types == {"span", "instant", "metric"}
        # trace records first (emission order), metrics last
        kinds = [r["type"] for r in records]
        first_metric = kinds.index("metric")
        assert all(k == "metric" for k in kinds[first_metric:])

    def test_records_match_events(self, traced_service):
        records = jsonl_records(tracer=traced_service.tracer)
        assert len(records) == len(traced_service.tracer.events)

    def test_schema_checker_accepts(self, tmp_path, traced_service):
        import os
        import subprocess
        import sys
        path = str(tmp_path / "events.jsonl")
        write_jsonl(path, tracer=traced_service.tracer,
                    metrics=traced_service.metrics_registry)
        trace_path = str(tmp_path / "trace.json")
        export_service_trace(traced_service, trace_path)
        checker = os.path.join(os.path.dirname(__file__), "..", "..",
                               "scripts", "check_trace_schema.py")
        result = subprocess.run(
            [sys.executable, checker, path, trace_path],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
