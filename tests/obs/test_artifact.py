"""Tests for benchmark artifacts and the noise-aware comparison gate.

The acceptance bar: identical runs always compare clean, and an
injected 10% latency regression is always caught at the default 5%
tolerance.
"""

import json

import pytest

from repro.eval.report import Table
from repro.obs import (
    ArtifactError,
    BenchArtifact,
    benchdiff_doc,
    benchdiff_json,
    capture_env,
    compare_artifacts,
    compare_paths,
    load_artifact,
    make_artifact,
    metric_direction,
    metrics_from_table,
)


def latency_table(e2e=2.0, throughput=100.0):
    table = Table(title="Latency sweep",
                  columns=["config", "e2e s", "tok/s", "requests"])
    table.add_row("baseline", e2e, throughput, 8)
    table.add_row("chunked", e2e / 2, throughput * 2, 8)
    return table


class TestMetricDirection:
    @pytest.mark.parametrize("column,expected", [
        ("tok/s", "higher"),
        ("prefill tok/s", "higher"),
        ("throughput", "higher"),
        ("completion %", "higher"),
        ("npu util %", "higher"),
        ("e2e s", "lower"),
        ("p95 turnaround s", "lower"),
        ("latency ms", "lower"),
        ("energy J", "lower"),
        ("busy ms", "lower"),      # bare time-unit suffix
        ("bubble %", "lower"),
        ("requests", "info"),      # unrecognized -> never gated
        ("config", "info"),
    ])
    def test_inference(self, column, expected):
        assert metric_direction(column) == expected

    def test_per_second_not_confused_with_seconds(self):
        # 'tok/s' must match the higher hints before the ' s' suffix
        assert metric_direction("decode tok/s") == "higher"
        assert metric_direction("decode s") == "lower"


class TestMetricsFromTable:
    def test_string_cells_label_the_row(self):
        metrics = metrics_from_table(latency_table())
        assert metrics["baseline.e2e_s"]["value"] == 2.0
        assert metrics["baseline.e2e_s"]["direction"] == "lower"
        assert metrics["chunked.tok_s"]["direction"] == "higher"

    def test_all_numeric_rows_use_first_cell(self):
        table = Table(title="sweep", columns=["rate", "latency s"])
        table.add_row(0.5, 1.0)
        table.add_row(2.0, 4.0)
        metrics = metrics_from_table(table)
        assert "0.5.latency_s" in metrics
        assert "2.0.latency_s" in metrics

    def test_duplicate_labels_rejected(self):
        table = Table(title="dup", columns=["name", "x s"])
        table.add_row("a", 1.0)
        table.add_row("a", 2.0)
        with pytest.raises(ArtifactError):
            metrics_from_table(table)

    def test_bools_and_strings_skipped(self):
        table = Table(title="t", columns=["name", "ok", "n"])
        table.add_row("a", True, 3)
        metrics = metrics_from_table(table)
        assert list(metrics) == ["a.n"]


class TestArtifactIO:
    def test_round_trip(self, tmp_path):
        artifact = make_artifact("smoke", latency_table(),
                                 env={"git_sha": "abc"})
        path = artifact.save(str(tmp_path / "BENCH_smoke.json"))
        loaded = load_artifact(path)
        assert loaded.name == "smoke"
        assert loaded.metrics == artifact.metrics
        assert loaded.env == {"git_sha": "abc"}

    def test_multi_table_namespacing(self):
        a = latency_table()
        b = Table(title="Energy", columns=["config", "energy J"])
        b.add_row("baseline", 30.0)
        artifact = make_artifact("combo", [a, b])
        assert "latency_sweep.baseline.e2e_s" in artifact.metrics
        assert "energy.baseline.energy_j" in artifact.metrics

    def test_no_tables_rejected(self):
        with pytest.raises(ArtifactError):
            make_artifact("empty", [])

    def test_env_is_string_valued(self):
        env = capture_env()
        assert set(env) == {"git_sha", "python", "platform"}
        assert all(isinstance(v, str) for v in env.values())

    def test_json_is_deterministic(self):
        artifact = make_artifact("d", latency_table(), env={})
        assert artifact.to_json() == artifact.to_json()

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v1", "metrics": {}}))
        with pytest.raises(ArtifactError):
            load_artifact(str(path))

    def test_load_rejects_malformed_metric(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "schema": "repro.bench/v1", "name": "x",
            "metrics": {"m": {"value": "fast", "direction": "lower"}},
            "env": {},
        }))
        with pytest.raises(ArtifactError):
            load_artifact(str(path))


class TestCompare:
    def test_identical_runs_compare_clean(self):
        a = make_artifact("run", latency_table(), env={})
        b = make_artifact("run", latency_table(), env={"git_sha": "other"})
        comparison = compare_artifacts(a, b)
        assert comparison.ok
        assert all(d.verdict == "ok" for d in comparison.deltas)

    def test_ten_percent_latency_regression_caught(self):
        base = make_artifact("run", latency_table(e2e=2.0), env={})
        cand = make_artifact("run", latency_table(e2e=2.2), env={})
        comparison = compare_artifacts(base, cand)
        assert not comparison.ok
        regressed = {d.metric for d in comparison.regressions}
        assert "baseline.e2e_s" in regressed

    def test_ten_percent_throughput_drop_caught(self):
        base = make_artifact("run", latency_table(throughput=100.0), env={})
        cand = make_artifact("run", latency_table(throughput=90.0), env={})
        assert not compare_artifacts(base, cand).ok

    def test_within_tolerance_is_ok(self):
        base = make_artifact("run", latency_table(e2e=2.0), env={})
        cand = make_artifact("run", latency_table(e2e=2.04), env={})
        assert compare_artifacts(base, cand).ok

    def test_improvement_reported_not_failed(self):
        base = make_artifact("run", latency_table(e2e=2.0), env={})
        cand = make_artifact("run", latency_table(e2e=1.0), env={})
        comparison = compare_artifacts(base, cand)
        assert comparison.ok
        verdicts = {d.metric: d.verdict for d in comparison.deltas}
        assert verdicts["baseline.e2e_s"] == "improved"

    def test_info_metrics_never_gated(self):
        table = Table(title="t", columns=["name", "requests"])
        table.add_row("a", 8)
        base = make_artifact("run", table, env={})
        worse = Table(title="t", columns=["name", "requests"])
        worse.add_row("a", 80000)
        cand = make_artifact("run", worse, env={})
        comparison = compare_artifacts(base, cand)
        assert comparison.ok

    def test_missing_directional_metric_is_regression(self):
        base = make_artifact("run", latency_table(), env={})
        half = Table(title="Latency sweep",
                     columns=["config", "e2e s", "tok/s", "requests"])
        half.add_row("baseline", 2.0, 100.0, 8)  # 'chunked' row dropped
        cand = make_artifact("run", half, env={})
        comparison = compare_artifacts(base, cand)
        assert not comparison.ok
        assert any(d.verdict == "missing" for d in comparison.regressions)

    def test_new_metric_never_fails(self):
        half = Table(title="t", columns=["config", "e2e s"])
        half.add_row("baseline", 2.0)
        base = make_artifact("run", half, env={})
        cand = make_artifact("run", latency_table(), env={})
        comparison = compare_artifacts(base, cand)
        assert comparison.ok
        assert any(d.verdict == "new" for d in comparison.deltas)

    def test_negative_tolerance_rejected(self):
        a = make_artifact("run", latency_table(), env={})
        with pytest.raises(ArtifactError):
            compare_artifacts(a, a, rel_tol=-0.1)

    def test_delta_table_renders(self):
        base = make_artifact("run", latency_table(e2e=2.0), env={})
        cand = make_artifact("run", latency_table(e2e=2.2), env={})
        rendered = compare_artifacts(base, cand).table().render()
        assert "regressed" in rendered
        assert "baseline.e2e_s" in rendered


class TestComparePaths:
    def write(self, directory, name, **kwargs):
        artifact = make_artifact(name, latency_table(**kwargs), env={})
        return artifact.save(str(directory / f"BENCH_{name}.json"))

    def test_file_mode(self, tmp_path):
        base = self.write(tmp_path, "a")
        cand = self.write(tmp_path, "b", e2e=2.5)
        assert not compare_paths(base, cand).ok

    def test_dir_mode_matches_by_name(self, tmp_path):
        base_dir, cand_dir = tmp_path / "base", tmp_path / "cand"
        base_dir.mkdir(), cand_dir.mkdir()
        self.write(base_dir, "x")
        self.write(cand_dir, "x")
        comparison = compare_paths(str(base_dir), str(cand_dir))
        assert comparison.ok
        assert all(d.metric.startswith("x.") for d in comparison.deltas)

    def test_missing_candidate_artifact_is_regression(self, tmp_path):
        base_dir, cand_dir = tmp_path / "base", tmp_path / "cand"
        base_dir.mkdir(), cand_dir.mkdir()
        self.write(base_dir, "x")
        comparison = compare_paths(str(base_dir), str(cand_dir))
        assert not comparison.ok
        assert comparison.regressions[0].verdict == "missing"

    def test_mixed_file_dir_rejected(self, tmp_path):
        base = self.write(tmp_path, "a")
        with pytest.raises(ArtifactError):
            compare_paths(base, str(tmp_path))

    def test_empty_baseline_dir_rejected(self, tmp_path):
        base_dir, cand_dir = tmp_path / "base", tmp_path / "cand"
        base_dir.mkdir(), cand_dir.mkdir()
        with pytest.raises(ArtifactError):
            compare_paths(str(base_dir), str(cand_dir))

    def test_committed_goldens_self_compare_clean(self):
        import os
        goldens = os.path.join(os.path.dirname(__file__), "..", "..",
                               "benchmarks", "results", "json")
        if not os.path.isdir(goldens):
            pytest.skip("no committed golden artifacts")
        assert compare_paths(goldens, goldens).ok


class TestBenchArtifactDataclass:
    def test_schema_stamped(self):
        artifact = BenchArtifact(name="x", metrics={}, env={})
        assert artifact.to_dict()["schema"] == "repro.bench/v1"


class TestZeroBaseline:
    """A zero-valued golden metric: the relative margin collapses to 0,
    so the absolute floor max(rel_tol * 0, abs_tol) = abs_tol is what
    gates — equal values pass, any movement past 1e-9 regresses."""

    @staticmethod
    def _tables(value):
        table = Table(title="t", columns=["config", "idle s"])
        table.add_row("run", value)
        return table

    def test_zero_golden_equal_candidate_ok(self):
        base = make_artifact("run", self._tables(0.0), env={})
        cand = make_artifact("run", self._tables(0.0), env={})
        comparison = compare_artifacts(base, cand)
        assert comparison.ok
        assert comparison.deltas[0].verdict == "ok"

    def test_zero_golden_tiny_drift_within_abs_floor_ok(self):
        base = make_artifact("run", self._tables(0.0), env={})
        cand = make_artifact("run", self._tables(5e-10), env={})
        assert compare_artifacts(base, cand).ok

    def test_zero_golden_real_movement_regresses(self):
        base = make_artifact("run", self._tables(0.0), env={})
        cand = make_artifact("run", self._tables(1e-6), env={})
        comparison = compare_artifacts(base, cand)
        assert not comparison.ok
        assert comparison.deltas[0].verdict == "regressed"

    def test_wider_abs_tol_absorbs_the_movement(self):
        base = make_artifact("run", self._tables(0.0), env={})
        cand = make_artifact("run", self._tables(1e-6), env={})
        assert compare_artifacts(base, cand, abs_tol=1e-3).ok


class TestBenchdiffDoc:
    """The machine-readable bench-compare report (repro.benchdiff/v1)."""

    def test_doc_shape_and_counts(self):
        base = make_artifact("run", latency_table(e2e=2.0), env={})
        cand = make_artifact("run", latency_table(e2e=2.2), env={})
        comparison = compare_artifacts(base, cand)
        doc = benchdiff_doc(comparison)
        assert doc["schema"] == "repro.benchdiff/v1"
        assert doc["ok"] is False
        assert doc["n_metrics"] == len(comparison.deltas)
        assert doc["n_regressed"] == len(comparison.regressions)
        metrics = {d["metric"]: d for d in doc["deltas"]}
        bad = metrics["baseline.e2e_s"]
        assert bad["verdict"] == "regressed"
        assert bad["baseline"] == pytest.approx(2.0)
        assert bad["candidate"] == pytest.approx(2.2)

    def test_json_is_deterministic_and_nan_free(self):
        base = make_artifact("run", latency_table(), env={})
        comparison = compare_artifacts(base, base)
        text = benchdiff_json(comparison)
        assert text == benchdiff_json(comparison)
        doc = json.loads(text)
        assert doc["ok"] is True
        assert doc["n_regressed"] == 0

    def test_new_and_missing_verdicts_survive_the_doc(self):
        half = Table(title="t", columns=["config", "e2e s"])
        half.add_row("baseline", 2.0)
        base = make_artifact("run", latency_table(), env={})
        cand = make_artifact("run", half, env={})
        doc = benchdiff_doc(compare_artifacts(base, cand))
        verdicts = {d["metric"]: d["verdict"] for d in doc["deltas"]}
        assert "missing" in verdicts.values()
        assert doc["n_regressed"] > 0
