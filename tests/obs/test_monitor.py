"""SLO monitor: burn-rate math, the alert state machine, determinism."""

import json

import pytest

from repro.obs import (
    ALERTS_SCHEMA,
    DEFAULT_RULES,
    BurnRateRule,
    MonitorError,
    RequestEvent,
    SloMonitor,
    SloSpec,
    validate_timeline_doc,
)


def make_event(t_s, request_id=0, tier="interactive", status="completed",
               turnaround_s=1.0, energy_j=1.0):
    return RequestEvent(t_s=t_s, request_id=request_id, tier=tier,
                        status=status, turnaround_s=turnaround_s,
                        queueing_s=0.0, energy_j=energy_j)


def feed(monitor, events):
    for event in events:
        monitor._requests.append(event)


AVAIL = SloSpec(name="avail", objective="availability", target=0.9)
FAST = BurnRateRule(name="fast", long_window_s=10.0, short_window_s=2.0,
                    max_burn_rate=4.0)


class TestSpecValidation:
    def test_slo_spec_rejects_bad_config(self):
        with pytest.raises(MonitorError, match="objective"):
            SloSpec(name="x", objective="vibes", target=0.9)
        with pytest.raises(MonitorError, match="target"):
            SloSpec(name="x", objective="availability", target=1.0)
        with pytest.raises(MonitorError, match="threshold"):
            SloSpec(name="x", objective="latency", target=0.9)
        with pytest.raises(MonitorError, match="name"):
            SloSpec(name="", objective="availability", target=0.9)

    def test_rule_rejects_bad_config(self):
        with pytest.raises(MonitorError, match="short window"):
            BurnRateRule(name="r", long_window_s=2.0, short_window_s=5.0,
                         max_burn_rate=1.0)
        with pytest.raises(MonitorError, match="max_burn_rate"):
            BurnRateRule(name="r", long_window_s=5.0, short_window_s=2.0,
                         max_burn_rate=0.0)
        with pytest.raises(MonitorError, match="for_s"):
            BurnRateRule(name="r", long_window_s=5.0, short_window_s=2.0,
                         max_burn_rate=1.0, for_s=-1.0)

    def test_monitor_rejects_duplicates_and_empties(self):
        with pytest.raises(MonitorError, match="at least one SloSpec"):
            SloMonitor([])
        with pytest.raises(MonitorError, match="duplicate SLO"):
            SloMonitor([AVAIL, AVAIL])
        with pytest.raises(MonitorError, match="at least one rule"):
            SloMonitor([AVAIL], rules=[])

    def test_objective_matching(self):
        latency = SloSpec(name="lat", objective="latency", target=0.9,
                          tier="interactive", threshold=2.0)
        # latency only counts completed requests of its tier
        assert latency.matches(make_event(0.0))
        assert not latency.matches(make_event(0.0, tier="background"))
        assert not latency.matches(make_event(0.0, status="rejected"))
        assert latency.is_bad(make_event(0.0, turnaround_s=2.5))
        assert not latency.is_bad(make_event(0.0, turnaround_s=2.0))
        # availability counts every terminal status
        assert AVAIL.matches(make_event(0.0, status="rejected"))
        assert AVAIL.is_bad(make_event(0.0, status="rejected"))
        assert not AVAIL.is_bad(make_event(0.0))


class TestBurnRateStateMachine:
    def test_storm_fires_then_resolves(self):
        monitor = SloMonitor([AVAIL], rules=[FAST])
        # 5 good events, then a burst of failures, then recovery
        events = [make_event(t, request_id=i)
                  for i, t in enumerate([0.0, 1.0, 2.0, 3.0, 4.0])]
        events += [make_event(5.0 + 0.5 * j, request_id=10 + j,
                              status="failed") for j in range(6)]
        events += [make_event(20.0 + t, request_id=30 + t)
                   for t in range(12)]
        feed(monitor, events)
        doc = monitor.timeline()
        validate_timeline_doc(doc)
        assert len(doc["incidents"]) == 1
        incident = doc["incidents"][0]
        assert incident["state"] == "resolved"
        assert incident["firing_s"] is not None
        assert incident["pending_s"] <= incident["firing_s"] \
            <= incident["resolved_s"]
        # at the last failure the 10s long window holds all 5 good
        # events plus the 6 failures: (6/11) bad / 10% budget
        assert incident["peak_burn_rate"] == pytest.approx(6 / 11 / 0.1)
        assert {link["kind"] for link in incident["links"]} == {"request"}

    def test_for_s_dwell_delays_firing(self):
        dwell = BurnRateRule(name="dwell", long_window_s=10.0,
                             short_window_s=2.0, max_burn_rate=4.0,
                             for_s=1.5)
        monitor = SloMonitor([AVAIL], rules=[dwell])
        feed(monitor, [make_event(t * 0.5, request_id=t, status="failed")
                       for t in range(8)])
        doc = monitor.timeline()
        incident = doc["incidents"][0]
        assert incident["firing_s"] - incident["pending_s"] >= 1.5

    def test_short_burst_never_escalates_past_pending(self):
        dwell = BurnRateRule(name="dwell", long_window_s=10.0,
                             short_window_s=2.0, max_burn_rate=4.0,
                             for_s=5.0)
        monitor = SloMonitor([AVAIL], rules=[dwell])
        feed(monitor, [make_event(0.0, 0, status="failed"),
                       make_event(0.5, 1, status="failed"),
                       make_event(3.0, 2), make_event(4.0, 3),
                       make_event(5.0, 4), make_event(6.0, 5)])
        doc = monitor.timeline()
        # condition lapsed before for_s elapsed: pending -> resolved
        assert all(inc["firing_s"] is None for inc in doc["incidents"])

    def test_no_alert_without_both_windows(self):
        # old failures outside the short window must not keep firing
        monitor = SloMonitor([AVAIL], rules=[FAST])
        feed(monitor, [make_event(0.0, 0, status="failed"),
                       make_event(0.1, 1, status="failed")]
             + [make_event(5.0 + t, 10 + t) for t in range(5)])
        doc = monitor.timeline()
        for incident in doc["incidents"]:
            if incident["firing_s"] is not None:
                assert incident["firing_s"] <= 0.1

    def test_ingestion_order_is_irrelevant(self):
        events = [make_event(t * 0.7, request_id=t,
                             status="failed" if t % 3 else "completed")
                  for t in range(30)]
        forward = SloMonitor([AVAIL], rules=DEFAULT_RULES)
        feed(forward, events)
        backward = SloMonitor([AVAIL], rules=DEFAULT_RULES)
        feed(backward, list(reversed(events)))
        assert json.dumps(forward.timeline(), sort_keys=True) == \
            json.dumps(backward.timeline(), sort_keys=True)


class TestObservationHooks:
    def test_attach_consumes_service_stream(self):
        from repro.eval import service_golden_records
        monitor = SloMonitor([AVAIL])
        service = service_golden_records(monitor=monitor)
        assert monitor.n_events == len(service.requests)
        # completed requests feed the per-tier sketches
        n_completed = sum(1 for r in service.requests
                          if r.status == "completed")
        total = sum(s.count
                    for key, s in monitor.sketches.items()
                    if key.startswith("turnaround_s/"))
        assert total == n_completed

    def test_fault_listener_sees_only_injected_draws(self):
        from repro.hw.sim import FaultInjector, FaultSpec
        monitor = SloMonitor([AVAIL])
        injector = FaultInjector(FaultSpec(
            script=(None, "transient", None, "permanent")))
        injector.add_listener(monitor.observe_fault)
        for t in range(4):
            injector.draw(now_s=float(t))
        assert monitor.n_faults == 2
        assert [f.kind for f in monitor._faults] == ["transient",
                                                     "permanent"]

    def test_suspended_draws_notify_nobody(self):
        from repro.hw.sim import FaultInjector, FaultSpec
        monitor = SloMonitor([AVAIL])
        injector = FaultInjector(FaultSpec(transient_rate=1.0))
        injector.add_listener(monitor.observe_fault)
        with injector.suspended():
            injector.draw(now_s=0.0)
        assert monitor.n_faults == 0

    def test_non_callable_hooks_rejected(self):
        from repro.core import EngineConfig, LlmService
        from repro.errors import EngineError, SchedulingError
        from repro.hw.sim import FaultInjector
        service = LlmService("Redmi K70 Pro", EngineConfig())
        with pytest.raises(EngineError, match="callable"):
            service.add_observer("not callable")
        with pytest.raises(SchedulingError, match="callable"):
            FaultInjector().add_listener(42)


class TestTimelineValidation:
    def _doc(self, **overrides):
        doc = {
            "schema": ALERTS_SCHEMA,
            "source": "service",
            "start_s": 0.0, "end_s": 10.0,
            "n_request_events": 1, "n_fault_events": 0,
            "slos": [dict(AVAIL.to_dict(), n_events=1, n_bad=1,
                          good_fraction=0.0, budget_burned=10.0,
                          met=False)],
            "rules": [FAST.to_dict()],
            "incidents": [{
                "slo": "avail", "rule": "fast", "severity": "page",
                "state": "resolved", "pending_s": 1.0, "firing_s": 2.0,
                "resolved_s": 3.0, "peak_burn_rate": 5.0,
                "links": [{"kind": "request", "request_id": 3,
                           "track": "req 00003", "t_s": 1.0,
                           "status": "failed"}],
            }],
        }
        doc.update(overrides)
        return doc

    def test_valid_doc_passes(self):
        validate_timeline_doc(self._doc())

    def test_rejects_wrong_schema(self):
        with pytest.raises(MonitorError, match="schema"):
            validate_timeline_doc(self._doc(schema="repro.alerts/v0"))

    def test_rejects_unknown_names_and_states(self):
        doc = self._doc()
        doc["incidents"][0]["slo"] = "ghost"
        with pytest.raises(MonitorError, match="unknown SLO"):
            validate_timeline_doc(doc)
        doc = self._doc()
        doc["incidents"][0]["state"] = "screaming"
        with pytest.raises(MonitorError, match="unknown state"):
            validate_timeline_doc(doc)

    def test_rejects_interval_disorder(self):
        doc = self._doc()
        doc["incidents"][0]["firing_s"] = 0.5
        with pytest.raises(MonitorError, match="firing_s < pending_s"):
            validate_timeline_doc(doc)
        doc = self._doc()
        doc["incidents"][0]["resolved_s"] = 1.5
        with pytest.raises(MonitorError, match="resolved_s precedes"):
            validate_timeline_doc(doc)

    def test_rejects_firing_without_links(self):
        doc = self._doc()
        doc["incidents"][0]["links"] = []
        with pytest.raises(MonitorError, match="no cross-links"):
            validate_timeline_doc(doc)

    def test_rejects_overlap_same_source_allows_other_source(self):
        overlapping = dict(self._doc()["incidents"][0], pending_s=2.5,
                           firing_s=2.6, resolved_s=3.5)
        doc = self._doc()
        doc["incidents"].append(overlapping)
        with pytest.raises(MonitorError, match="overlap"):
            validate_timeline_doc(doc)
        # the same interval on a different device is legal
        doc = self._doc()
        doc["incidents"].append(dict(overlapping, source="other-device"))
        validate_timeline_doc(doc)


class TestStepTelemetry:
    def _step(self, index, queued, batch_tokens=64, n_inflight=2,
              utilization=0.25):
        return {"index": index, "start_s": float(index),
                "end_s": float(index) + 1.0, "n_inflight": n_inflight,
                "batch_tokens": batch_tokens, "prefill_tokens": 32,
                "decode_tokens": batch_tokens - 32,
                "budget_utilization": utilization,
                "queued_ids": queued, "queue_depths": {}, "items": []}

    def test_observe_step_feeds_sketches(self):
        monitor = SloMonitor([AVAIL])
        monitor.observe_step(self._step(0, [1], batch_tokens=100))
        monitor.observe_step(self._step(1, [1, 2], batch_tokens=200))
        assert monitor.n_steps == 2
        assert monitor.sketches["batch_tokens/step"].mean == 150.0
        assert monitor.sketches["queue_depth/step"].mean == 1.5
        assert monitor.sketches["inflight/step"].count == 2
        assert monitor.sketches["budget_utilization/step"].count == 2

    def test_decision_counts(self):
        from repro.obs import Decision
        monitor = SloMonitor([AVAIL])
        for action in ("admitted", "chunk-scheduled", "chunk-scheduled"):
            monitor.observe_decision(Decision(
                t_s=0.0, request_id=0, action=action, tier="x"))
        assert monitor.decision_counts() == {"admitted": 1,
                                             "chunk-scheduled": 2}

    def test_starvation_detector(self):
        monitor = SloMonitor([AVAIL])
        for i in range(10):
            monitor.observe_step(self._step(i, [5]))
        monitor.observe_step(self._step(10, []))
        assert monitor.starved_requests(min_steps=8) == [(5, 10)]
        assert monitor.starved_requests(min_steps=11) == []
        with pytest.raises(MonitorError, match="min_steps"):
            monitor.starved_requests(min_steps=0)

    def test_scheduler_summary_empty_stream(self):
        summary = SloMonitor([AVAIL]).scheduler_summary()
        assert summary["n_steps"] == 0
        assert summary["decision_counts"] == {}
        assert summary["starved"] == []

    def test_scheduler_summary_blocks(self):
        from repro.obs import STARVATION_MIN_STEPS
        monitor = SloMonitor([AVAIL])
        for i in range(STARVATION_MIN_STEPS):
            monitor.observe_step(self._step(i, [3]))
        summary = monitor.scheduler_summary()
        assert summary["n_steps"] == STARVATION_MIN_STEPS
        assert summary["batch_tokens"]["mean"] == 64.0
        assert summary["queue_depth"]["max"] == 1.0
        assert summary["budget_utilization"]["mean"] == 0.25
        assert summary["starved"] == [
            {"request_id": 3, "streak_steps": STARVATION_MIN_STEPS}]

    def test_attach_registers_step_observer(self):
        from repro.core import BatchConfig, EngineConfig, LlmService

        # attach() must hook the step stream: a batched run feeds the
        # monitor's step sketches and decision counts live
        monitor = SloMonitor([AVAIL])
        service = LlmService(
            "Redmi K70 Pro", EngineConfig(), scheduler="priority",
            batching=BatchConfig(max_batch_tokens=256,
                                 max_concurrency=4))
        monitor.attach(service)
        service.enqueue("Qwen1.5-1.8B", 96, 4, arrival_s=0.0)
        service.enqueue("Qwen1.5-1.8B", 64, 4, arrival_s=0.0)
        service.run()
        assert monitor.n_steps == len(service.steps) > 0
        mix = monitor.decision_counts()
        assert mix.get("chunk-scheduled", 0) > 0
        assert mix.get("completed", 0) == 2
