"""The no-op guarantee: tracing observes, it never perturbs.

The acceptance bar for the observability layer is that the golden
workload's results are *byte-identical* with tracing on, off, or
defaulted — spans are emitted alongside the service's clock arithmetic,
never folded into it, and fault draws are consumed identically.
"""

import pytest

from repro.eval import service_golden_records, service_golden_snapshot
from repro.eval.fleet import FLEET_SLOS, fault_storm_monitor
from repro.obs import MetricsRegistry, SloMonitor, Tracer

SEED = 42


@pytest.fixture(scope="module")
def untraced():
    return service_golden_records(seed=SEED)


@pytest.fixture(scope="module")
def traced():
    return service_golden_records(seed=SEED, tracer=Tracer(),
                                  metrics=MetricsRegistry())


@pytest.fixture(scope="module")
def monitored():
    return service_golden_records(seed=SEED,
                                  monitor=SloMonitor(FLEET_SLOS))


class TestTracingIsPureObservation:
    def test_served_records_identical(self, untraced, traced):
        assert [r.key() for r in untraced.requests] == \
            [r.key() for r in traced.requests]

    def test_full_precision_timings_identical(self, untraced, traced):
        for a, b in zip(untraced.requests, traced.requests):
            assert a.arrival_s == b.arrival_s
            assert a.start_s == b.start_s
            assert a.finish_s == b.finish_s
            assert a.service_s == b.service_s

    def test_summary_metrics_identical(self, untraced, traced):
        ma, mb = untraced.metrics(), traced.metrics()
        assert ma.span_s == mb.span_s
        assert ma.npu_busy_s == mb.npu_busy_s
        assert ma.total_energy_j == mb.total_energy_j
        for tier in ma.tiers:
            ta, tb = ma.tier(tier), mb.tier(tier)
            assert ta == tb

    def test_snapshot_byte_identical_to_untraced(self, traced):
        # service_golden_snapshot runs untraced; the traced service must
        # produce the very same canonical dump
        lines = []
        for r in traced.requests:
            lines.append(
                f"{r.request_id} {r.tier} {r.status} retries={r.retries} "
                f"arrival={r.arrival_s!r} start={r.start_s!r} "
                f"finish={r.finish_s!r}"
            )
        m = traced.metrics()
        lines.append(f"completed={m.n_completed} rejected={m.n_rejected} "
                     f"timeout={m.n_timeout} failed={m.n_failed} "
                     f"retries={m.n_retries}")
        lines.append(f"span={m.span_s!r} npu_busy={m.npu_busy_s!r} "
                     f"energy={m.total_energy_j!r}")
        assert "\n".join(lines) == service_golden_snapshot(SEED)

    def test_tracer_actually_observed(self, traced):
        assert len(traced.tracer.events) > 0
        assert len(traced.metrics_registry) > 0

    def test_default_service_uses_null_tracer(self, untraced):
        assert untraced.tracer.enabled is False
        assert len(untraced.tracer.events) == 0
        # metrics always accumulate (cheap counters), tracing is opt-in
        assert len(untraced.metrics_registry) > 0


class TestMonitoringIsPureObservation:
    """The SLO monitor rides the same observer hooks — same guarantee."""

    def test_served_records_identical(self, untraced, monitored):
        assert [r.key() for r in untraced.requests] == \
            [r.key() for r in monitored.requests]
        for a, b in zip(untraced.requests, monitored.requests):
            assert a.arrival_s == b.arrival_s
            assert a.finish_s == b.finish_s

    def test_snapshot_byte_identical_to_untraced(self, monitored):
        lines = []
        for r in monitored.requests:
            lines.append(
                f"{r.request_id} {r.tier} {r.status} retries={r.retries} "
                f"arrival={r.arrival_s!r} start={r.start_s!r} "
                f"finish={r.finish_s!r}"
            )
        m = monitored.metrics()
        lines.append(f"completed={m.n_completed} rejected={m.n_rejected} "
                     f"timeout={m.n_timeout} failed={m.n_failed} "
                     f"retries={m.n_retries}")
        lines.append(f"span={m.span_s!r} npu_busy={m.npu_busy_s!r} "
                     f"energy={m.total_energy_j!r}")
        assert "\n".join(lines) == service_golden_snapshot(SEED)

    def test_storm_timeline_deterministic(self):
        assert fault_storm_monitor(seed=SEED).timeline_json() == \
            fault_storm_monitor(seed=SEED).timeline_json()

    def test_storm_firing_alerts_cross_link(self):
        doc = fault_storm_monitor(seed=SEED).timeline()
        firing = [inc for inc in doc["incidents"]
                  if inc["firing_s"] is not None]
        assert firing
        for incident in firing:
            assert incident["links"]
            kinds = {link["kind"] for link in incident["links"]}
            assert kinds <= {"request", "fault"}


class TestLiveRegistryConsistency:
    def test_live_counters_match_summary(self, traced):
        """The registry the service fills while running agrees with the
        after-the-fact summarize_service() accounting."""
        reg = traced.metrics_registry
        m = traced.metrics()
        total = sum(
            s["value"] for s in reg.snapshot()
            if s["name"] == "service_requests_total"
        )
        assert int(total) == m.n_requests
        for tier in m.tiers:
            t = m.tier(tier)
            assert int(reg.value("service_requests_total", tier=tier,
                                 status="completed")) == t.n_completed
            hist = reg.peek("service_turnaround_s", tier=tier)
            if t.n_completed:
                assert hist.count == t.n_completed
                assert hist.percentile(50) == t.p50_turnaround_s
                assert hist.percentile(95) == t.p95_turnaround_s

    def test_admission_decisions_counted(self, traced):
        reg = traced.metrics_registry
        admitted = reg.value("service_admission_total",
                             decision="admitted")
        rejected = reg.value("service_admission_total",
                             decision="rejected")
        m = traced.metrics()
        assert int(rejected) == m.n_rejected
        assert admitted > 0
