"""Batch ingestion (``record_many`` / ``observe_steps``) equivalence.

The vectorized step loop feeds sketches and histograms in batches; these
tests pin the contract that a batch of ``N`` values produces *exactly*
the state of ``N`` single records — including the sketch's exact
Fraction sum — and that invalid values reject the whole batch atomically
(validate-all-then-mutate), so a failed batch can never leave a sketch
half-updated.
"""


import pytest

from repro.obs.metrics import Histogram, MetricsError
from repro.obs.monitor import SloMonitor, SloSpec
from repro.obs.sketch import QuantileSketch, SketchError


def _monitor() -> SloMonitor:
    return SloMonitor([SloSpec("avail", "availability", 0.99)])

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

finite_values = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False,
    allow_subnormal=False,
)
value_batches = st.lists(finite_values, max_size=60)


class TestQuantileSketchRecordMany:
    @given(value_batches)
    def test_matches_sequential_observes(self, values):
        batch = QuantileSketch(alpha=0.01)
        sequential = QuantileSketch(alpha=0.01)
        n = batch.record_many(values)
        for v in values:
            sequential.observe(v)
        assert n == len(values)
        assert batch.to_dict() == sequential.to_dict()
        assert batch._sum == sequential._sum  # exact Fraction, not float
        if values:
            for q in (50.0, 95.0, 99.0):
                assert batch.percentile(q) == sequential.percentile(q)

    @given(value_batches, value_batches)
    def test_batches_compose_like_streams(self, first, second):
        batched = QuantileSketch(alpha=0.01)
        batched.record_many(first)
        batched.record_many(second)
        streamed = QuantileSketch(alpha=0.01)
        for v in first + second:
            streamed.observe(v)
        assert batched.to_dict() == streamed.to_dict()

    def test_empty_batch_is_a_noop(self):
        sketch = QuantileSketch()
        assert sketch.record_many([]) == 0
        assert sketch.count == 0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf"), -1.0])
    def test_invalid_value_rejects_whole_batch(self, bad):
        sketch = QuantileSketch()
        sketch.observe(2.0)
        before = sketch.to_dict()
        with pytest.raises(SketchError):
            sketch.record_many([1.0, 3.0, bad, 4.0])
        # atomic: the valid prefix must not have been ingested
        assert sketch.to_dict() == before

    def test_bucket_indices_use_scalar_log(self):
        # Values sitting exactly on bucket boundaries are the ulp-
        # sensitive case that forbids swapping math.log for np.log:
        # a one-ulp difference in log(value) moves ceil() a whole bucket.
        sketch = QuantileSketch(alpha=0.01)
        gamma = (1.0 + sketch.alpha) / (1.0 - sketch.alpha)
        boundary_values = [gamma ** k for k in range(1, 30, 3)]
        sequential = QuantileSketch(alpha=0.01)
        for v in boundary_values:
            sequential.observe(v)
        sketch.record_many(boundary_values)
        assert sketch.to_dict() == sequential.to_dict()


class TestHistogramRecordMany:
    @given(value_batches)
    def test_matches_sequential_records(self, values):
        batch = Histogram("h", ())
        sequential = Histogram("h", ())
        assert batch.record_many(values) == len(values)
        for v in values:
            sequential.observe(v)
        assert batch.values == sequential.values

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_invalid_value_rejects_whole_batch(self, bad):
        hist = Histogram("h", ())
        hist.observe(1.0)
        with pytest.raises(MetricsError):
            hist.record_many([2.0, bad])
        assert hist.values == [1.0]


def _step(prefill, decode, queued, inflight, util):
    """Minimal repro.steps/v1-shaped record for the monitor."""
    return {
        "prefill_tokens": prefill,
        "decode_tokens": decode,
        "queued_ids": queued,
        "n_inflight": inflight,
        "budget_utilization": util,
    }


step_records = st.lists(
    st.builds(
        _step,
        st.integers(0, 512),
        st.integers(0, 64),
        st.lists(st.sampled_from(["r1", "r2", "r3", "r4"]), unique=True,
                 max_size=4),
        st.integers(0, 8),
        st.one_of(st.none(), st.floats(0.0, 1.0, allow_nan=False)),
    ),
    max_size=30,
)


class TestObserveSteps:
    @given(step_records)
    def test_matches_sequential_observe_step(self, records):
        batched = _monitor()
        sequential = _monitor()
        assert batched.observe_steps(records) == len(records)
        for record in records:
            sequential.observe_step(record)
        assert ({k: s.to_dict() for k, s in batched.sketches.items()}
                == {k: s.to_dict() for k, s in sequential.sketches.items()})
        assert batched._n_steps == sequential._n_steps
        assert batched._queued_streaks == sequential._queued_streaks
        assert batched._peak_streaks == sequential._peak_streaks

    def test_all_none_budget_creates_no_sketch(self):
        monitor = _monitor()
        monitor.observe_steps([_step(1, 1, [], 0, None)] * 3)
        assert not any("budget_utilization" in key
                       for key in monitor.sketches)

    def test_empty_batch_creates_no_sketches(self):
        monitor = _monitor()
        assert monitor.observe_steps([]) == 0
        assert not monitor.sketches
