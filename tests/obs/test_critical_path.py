"""Critical-path extraction: gating edges, conservation, slack.

The load-bearing invariant everywhere: the on-path segments telescope —
waits + durations sum to the end-to-end latency within 1e-9 s — so the
attribution partitions latency instead of double-counting it.
"""

import pytest

from repro.core import LlmNpuEngine
from repro.hw.sim import Task
from repro.hw.trace import Trace, TraceEvent
from repro.obs import (
    CRITPATH_SCHEMA,
    CritPathError,
    critical_path,
    critpath_doc,
    narrative_lines,
    validate_critical_path,
)


def trace_of(*events):
    trace = Trace()
    for task_id, proc, start, end, tag in events:
        trace.add(TraceEvent(task_id=task_id, proc=proc,
                             start_s=start, end_s=end, tag=tag))
    return trace


class TestExtraction:
    def test_serial_chain_is_fully_on_path(self):
        trace = trace_of(("a", "p", 0.0, 1.0, "x"),
                         ("b", "p", 1.0, 2.5, "y"),
                         ("c", "p", 2.5, 3.0, "z"))
        path = critical_path(trace)
        assert [s.task_id for s in path.segments] == ["a", "b", "c"]
        assert path.segments[0].edge == "origin"
        # same-processor serialization outranks schedule inference
        assert all(s.edge == "resource" for s in path.segments[1:])
        assert path.e2e_s == 3.0
        assert path.work_s == 3.0 and path.wait_s == 0.0
        assert not path.slack

    def test_idle_gap_becomes_wait(self):
        trace = trace_of(("a", "p", 0.0, 1.0, ""),
                         ("b", "p", 2.0, 3.0, ""))
        path = critical_path(trace)
        assert path.segments[1].wait_s == 1.0
        assert path.work_s == 2.0 and path.wait_s == 1.0
        assert path.work_s + path.wait_s == path.e2e_s

    def test_dep_edges_with_task_list(self):
        trace = trace_of(("a", "p1", 0.0, 1.0, ""),
                         ("b", "p2", 1.0, 2.0, ""))
        tasks = [Task(task_id="a", proc="p1", duration_s=1.0),
                 Task(task_id="b", proc="p2", duration_s=1.0,
                      deps=("a",))]
        path = critical_path(trace, tasks=tasks)
        assert [s.task_id for s in path.segments] == ["a", "b"]
        assert path.segments[1].edge == "dep"

    def test_off_path_event_gets_slack(self):
        # d runs in parallel and nothing downstream depends on it: it
        # could finish as late as the makespan without gating
        trace = trace_of(("a", "p1", 0.0, 1.0, ""),
                         ("b", "p1", 1.0, 3.0, ""),
                         ("d", "p2", 0.0, 0.5, ""))
        path = critical_path(trace)
        assert [s.task_id for s in path.segments] == ["a", "b"]
        assert len(path.slack) == 1
        rec = path.slack[0]
        assert rec.task_id == "d"
        assert rec.slack_s == pytest.approx(2.5, abs=1e-12)

    def test_empty_trace_rejected(self):
        with pytest.raises(CritPathError, match="empty trace"):
            critical_path(Trace())

    def test_by_proc_and_by_tag_partition_work(self):
        trace = trace_of(("a", "p1", 0.0, 1.0, "x"),
                         ("b", "p2", 1.0, 2.0, "x"),
                         ("c", "p1", 2.0, 3.5, "y"))
        path = critical_path(trace)
        assert sum(path.by_proc().values()) == pytest.approx(path.work_s)
        assert sum(path.by_tag().values()) == pytest.approx(path.work_s)
        assert path.by_tag() == {"x": 2.0, "y": 1.5}


class TestValidation:
    def make_doc(self):
        trace = trace_of(("a", "p", 0.0, 1.0, ""),
                         ("b", "p", 1.0, 2.0, ""))
        return critical_path(trace).to_dict()

    def test_broken_chain_rejected(self):
        doc = self.make_doc()
        doc["segments"][1]["start_s"] += 0.5
        doc["segments"][1]["end_s"] += 0.5
        with pytest.raises(CritPathError, match="previous end"):
            validate_critical_path(doc)

    def test_conservation_violation_rejected(self):
        doc = self.make_doc()
        doc["e2e_s"] += 1e-6
        with pytest.raises(CritPathError, match="end-to-end"):
            validate_critical_path(doc)

    def test_unknown_edge_rejected(self):
        doc = self.make_doc()
        doc["segments"][0]["edge"] = "telepathy"
        with pytest.raises(CritPathError, match="unknown edge"):
            validate_critical_path(doc)

    def test_negative_slack_rejected(self):
        doc = self.make_doc()
        doc["slack"] = [{"task_id": "z", "proc": "p", "tag": "t",
                         "start_s": 0.0, "end_s": 1.0, "slack_s": -1.0}]
        with pytest.raises(CritPathError, match="negative slack"):
            validate_critical_path(doc)

    def test_sub_tolerance_residual_accepted(self):
        doc = self.make_doc()
        doc["e2e_s"] += 1e-12
        validate_critical_path(doc)


class TestEngineTimeline:
    @pytest.fixture(scope="class")
    def engine(self):
        return LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro")

    def test_prefill_trace_conserves(self, engine):
        report = engine.prefill(256)
        path = critical_path(report.trace, source="prefill 256")
        assert path.e2e_s == report.trace.makespan_s
        # critical_path() self-validates; re-assert on the dict form
        validate_critical_path(path.to_dict())
        assert 0 < len(path.segments) <= path.n_events
        assert len(path.segments) + len(path.slack) <= path.n_events

    def test_doc_shape_and_narrative(self, engine):
        path = critical_path(engine.prefill(128).trace, source="p128")
        doc = critpath_doc([path], source="unit")
        assert doc["schema"] == CRITPATH_SCHEMA
        assert doc["n_paths"] == 1
        assert doc["totals"]["work_s"] == pytest.approx(path.work_s)
        lines = narrative_lines(path, top=3)
        assert "critical path — p128" in lines[0]
        assert any("gating segments" in line for line in lines)

    def test_doc_requires_paths(self):
        with pytest.raises(CritPathError, match="at least one"):
            critpath_doc([])
