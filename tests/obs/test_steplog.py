"""Tests for the ``repro.steps/v1`` step log (obs/steplog.py)."""

import json

import pytest

from repro.eval import (
    golden_steplog,
    golden_steplog_json,
    service_golden_snapshot,
)
from repro.obs import (
    DECISION_ACTIONS,
    Decision,
    StepLogError,
    StepLogger,
    as_steps_doc,
    decision_mix,
    load_steps,
    occupancy_summary,
    starved_requests,
    validate_steps_doc,
)
from repro.obs.schemas import STEPS_SCHEMA


class TestDecision:
    def test_unknown_action_rejected(self):
        with pytest.raises(StepLogError, match="unknown decision action"):
            Decision(t_s=0.0, request_id=1, action="vibed", tier="x")

    def test_every_taxonomy_action_constructs(self):
        for action in DECISION_ACTIONS:
            d = Decision(t_s=1.0, request_id=0, action=action,
                         tier="interactive")
            assert d.action == action

    def test_roundtrip(self):
        d = Decision(t_s=2.5, request_id=7, action="chunk-scheduled",
                     tier="background", step=3, quantity="tokens",
                     value=128.0, limit=1024.0)
        assert Decision.from_dict(d.to_dict()) == d

    def test_from_dict_missing_key(self):
        with pytest.raises(StepLogError, match="missing key"):
            Decision.from_dict({"t_s": 0.0, "request_id": 1})


class TestGoldenStepLog:
    @pytest.fixture(scope="class")
    def batched_doc(self):
        return golden_steplog(seed=42, batched=True).to_dict()

    def test_document_validates(self, batched_doc):
        validate_steps_doc(batched_doc)
        assert batched_doc["schema"] == STEPS_SCHEMA
        assert batched_doc["n_steps"] == len(batched_doc["steps"]) > 0
        assert batched_doc["n_decisions"] == len(batched_doc["decisions"])
        assert batched_doc["n_requests"] == len(batched_doc["requests"])

    def test_legacy_run_has_no_steps_but_has_decisions(self):
        doc = golden_steplog(seed=42, batched=False).to_dict()
        validate_steps_doc(doc)
        assert doc["n_steps"] == 0
        # admission + dispatch + terminal decisions still stream
        mix = decision_mix(doc["decisions"])
        assert mix.get("admitted", 0) > 0
        assert mix.get("dispatched", 0) > 0

    def test_batched_decision_mix_covers_step_loop(self, batched_doc):
        mix = decision_mix(batched_doc["decisions"])
        for action in ("admitted", "started", "chunk-scheduled",
                       "decode-scheduled", "completed"):
            assert mix.get(action, 0) > 0, action
        assert set(mix) <= set(DECISION_ACTIONS)

    def test_save_load_roundtrip(self, tmp_path, batched_doc):
        logger = golden_steplog(seed=42, batched=True)
        path = logger.save(str(tmp_path / "steps.json"))
        assert load_steps(path) == logger.to_dict()

    def test_json_export_is_deterministic(self):
        assert golden_steplog_json(seed=42, batched=True) == \
            golden_steplog_json(seed=42, batched=True)

    def test_observation_is_a_noop(self):
        baseline = service_golden_snapshot(seed=42)
        observed = service_golden_snapshot(seed=42, steplog=StepLogger())
        assert observed == baseline


class TestValidation:
    def _doc(self):
        return golden_steplog(seed=42, batched=True).to_dict()

    def test_wrong_schema(self):
        doc = self._doc()
        doc["schema"] = "repro.oops/v1"
        with pytest.raises(StepLogError, match="expected schema"):
            validate_steps_doc(doc)

    def test_missing_list(self):
        doc = self._doc()
        del doc["decisions"]
        with pytest.raises(StepLogError, match="missing list"):
            validate_steps_doc(doc)

    def test_count_mismatch(self):
        doc = self._doc()
        doc["n_steps"] += 1
        with pytest.raises(StepLogError, match="n_steps"):
            validate_steps_doc(doc)

    def test_inverted_step_window(self):
        doc = self._doc()
        doc["steps"][0]["end_s"] = doc["steps"][0]["start_s"] - 1.0
        with pytest.raises(StepLogError, match="end before start"):
            validate_steps_doc(doc)

    def test_work_conservation_inside_step(self):
        doc = self._doc()
        doc["steps"][0]["items"][0]["end_s"] += 0.5
        with pytest.raises(StepLogError, match="items span"):
            validate_steps_doc(doc)

    def test_bad_decision_action(self):
        doc = self._doc()
        doc["decisions"][0]["action"] = "yolo"
        with pytest.raises(StepLogError, match="unknown decision action"):
            validate_steps_doc(doc)

    def test_load_unreadable(self, tmp_path):
        with pytest.raises(StepLogError, match="cannot read"):
            load_steps(str(tmp_path / "nope.json"))

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(StepLogError, match="cannot read"):
            load_steps(str(path))

    def test_as_steps_doc_rejects_garbage(self):
        with pytest.raises(StepLogError, match="cannot interpret"):
            as_steps_doc(42)

    def test_as_steps_doc_accepts_live_service(self):
        from repro.eval import batched_golden_service
        svc = batched_golden_service(seed=42)
        doc = as_steps_doc(svc)
        validate_steps_doc(doc)
        assert doc["n_steps"] == len(svc.steps)
        assert doc["decisions"] == []  # no logger was attached


class TestDerivedDetectors:
    def _step(self, index, queued):
        return {"index": index, "start_s": float(index),
                "end_s": float(index) + 1.0, "n_inflight": 1,
                "batch_tokens": 32, "budget_utilization": 0.5,
                "queued_ids": queued, "items": []}

    def test_occupancy_summary_empty(self):
        assert occupancy_summary([]) == {"n_steps": 0.0}

    def test_occupancy_summary_dicts(self):
        steps = [self._step(0, [1]), self._step(1, [1, 2])]
        out = occupancy_summary(steps)
        assert out["n_steps"] == 2.0
        assert out["mean_batch_tokens"] == 32.0
        assert out["mean_queue_depth"] == 1.5
        assert out["mean_budget_utilization"] == 0.5

    def test_starved_requests_streaks(self):
        # id 1 queued for 3 consecutive steps, id 2 only ever 1
        steps = [self._step(0, [1]), self._step(1, [1, 2]),
                 self._step(2, [1])]
        assert starved_requests(steps, min_steps=3) == [(1, 3)]
        assert starved_requests(steps, min_steps=4) == []

    def test_starved_requests_streak_resets(self):
        steps = [self._step(0, [1]), self._step(1, []),
                 self._step(2, [1])]
        assert starved_requests(steps, min_steps=2) == []

    def test_starved_requests_min_steps_validated(self):
        with pytest.raises(StepLogError, match="positive"):
            starved_requests([], min_steps=0)

    def test_constrained_run_surfaces_starvation(self):
        # squeeze the golden batched stream through concurrency 2: the
        # backlog queues requests for dozens of consecutive steps and
        # the detector must surface them
        from repro.eval import batched_golden_service
        logger = StepLogger()
        batched_golden_service(seed=42, max_concurrency=2,
                               steplog=logger)
        starved = starved_requests(logger.steps, min_steps=8)
        assert starved
        assert all(n >= 8 for _, n in starved)

    def test_golden_stream_never_queues_at_default_concurrency(self):
        # the default config (concurrency 8) absorbs the golden stream
        # without queueing — the baseline the constrained run contrasts
        doc = golden_steplog(seed=42, batched=True).to_dict()
        assert starved_requests(doc["steps"], min_steps=1) == []


class TestSchemaCheckerAcceptsStepLog:
    def test_cli_schema_checker(self, tmp_path):
        import os
        import subprocess
        import sys
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        path = golden_steplog(seed=42, batched=True).save(
            str(tmp_path / "steps.json"))
        proc = subprocess.run(
            [sys.executable, "scripts/check_trace_schema.py", path],
            capture_output=True, text=True, cwd=root,
        )
        assert proc.returncode == 0, proc.stderr
        assert "step log" in proc.stdout
