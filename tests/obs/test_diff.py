"""Run-to-run diffing: alignment, statuses, conservation, narratives.

The acceptance bar: a self-diff of any golden run comes back
``identical`` with every delta exactly zero, and the injected-sg1
slowdown pair attributes its e2e delta to per-segment contributions
that telescope within 1e-9 s with the slowed operator on top.
"""

import gzip
import json

import pytest

from repro.eval import (
    INJECTED_TAG,
    diff_attribution_table,
    diff_summary_table,
    explain_regression,
    golden_scenarios,
    injected_slowdown_docs,
)
from repro.obs import (
    DIFF_SCHEMA,
    DIFF_STATUSES,
    DIFF_TOL_S,
    DiffError,
    diff_critpath_docs,
    diff_docs,
    diff_fleet_docs,
    diff_json,
    diff_narrative,
    diff_profile_docs,
    diff_steps_docs,
    diff_table,
    segment_deltas,
    validate_diff,
)
from repro.obs.schemas import (
    CRITPATH_SCHEMA,
    FLEET_SCHEMA,
    PROFILE_SCHEMA,
    STEPS_SCHEMA,
)


@pytest.fixture(scope="module")
def injected_pair():
    """Capture the baseline/slowdown critpath docs once per module."""
    return injected_slowdown_docs()


@pytest.fixture(scope="module")
def injected_diff(injected_pair):
    base_doc, slow_doc = injected_pair
    return diff_docs(base_doc, slow_doc)


def _critpath_doc(source, paths):
    """A minimal repro.critpath/v1 document for alignment tests."""
    return {"schema": CRITPATH_SCHEMA, "source": source,
            "n_paths": len(paths), "paths": paths, "totals": {}}


def _path(source, segments):
    e2e = sum(s["wait_s"] + s["duration_s"] for s in segments)
    return {"source": source, "origin_s": 0.0, "e2e_s": e2e,
            "n_events": len(segments), "n_segments": len(segments),
            "work_s": sum(s["duration_s"] for s in segments),
            "wait_s": sum(s["wait_s"] for s in segments),
            "by_proc": {}, "by_tag": {}, "segments": segments,
            "slack": []}


def _seg(task_id, tag, duration_s, wait_s=0.0, proc="npu"):
    return {"task_id": task_id, "proc": proc, "tag": tag,
            "start_s": 0.0, "end_s": duration_s,
            "duration_s": duration_s, "wait_s": wait_s, "edge": "dep"}


class TestInjectedSlowdown:
    def test_top_contributor_is_the_injected_operator(self, injected_diff):
        top = injected_diff["top_contributors"][0]
        assert top["tag"] == INJECTED_TAG
        assert top["delta_s"] > 0.0

    def test_deltas_telescope_to_e2e_within_tolerance(self, injected_diff):
        # ACCEPTANCE: per-segment deltas of the aligned request sum to
        # the observed e2e delta within 1e-9 s.
        for req in injected_diff["requests"]:
            attributed = sum(s["delta_s"] for s in req["segments"])
            e2e_delta = req["new_e2e_s"] - req["base_e2e_s"]
            assert abs(attributed - e2e_delta) <= DIFF_TOL_S
            assert abs(req["residual_s"]) <= DIFF_TOL_S
        e2e = injected_diff["e2e"]
        assert e2e["delta_s"] == pytest.approx(e2e["new_s"] - e2e["base_s"])

    def test_not_identical_and_statuses_closed(self, injected_diff):
        assert not injected_diff["identical"]
        assert set(injected_diff["by_status"]) == set(DIFF_STATUSES)
        for req in injected_diff["requests"]:
            assert all(s["status"] in DIFF_STATUSES
                       for s in req["segments"])

    def test_validate_accepts_and_json_roundtrips(self, injected_diff):
        validate_diff(injected_diff)
        text = diff_json(injected_diff)
        assert json.loads(text) == injected_diff
        assert text == diff_json(injected_diff)

    def test_segment_deltas_cover_the_e2e_delta(self, injected_diff):
        deltas = segment_deltas(injected_diff)
        assert deltas
        total = sum(deltas.values())
        assert total == pytest.approx(injected_diff["e2e"]["delta_s"],
                                      abs=DIFF_TOL_S)

    def test_narrative_names_the_operator(self, injected_diff):
        text = "\n".join(diff_narrative(injected_diff))
        assert INJECTED_TAG in text
        assert "ms" in text

    def test_table_renders(self, injected_diff):
        rendered = diff_table(injected_diff).render()
        assert INJECTED_TAG in rendered


class TestSelfDiff:
    def test_self_diff_is_identical(self, injected_pair):
        base_doc, _ = injected_pair
        doc = diff_docs(base_doc, base_doc)
        assert doc["identical"]
        assert doc["e2e"]["delta_s"] == 0.0
        assert doc["only_base"] == [] and doc["only_new"] == []
        for req in doc["requests"]:
            assert req["delta_s"] == 0.0
            assert all(s["status"] == "unchanged"
                       for s in req["segments"])

    def test_self_diff_status_census_is_all_unchanged(self, injected_pair):
        base_doc, _ = injected_pair
        doc = diff_docs(base_doc, base_doc)
        census = doc["by_status"]
        assert census["grew"] == census["shrank"] == 0
        assert census["appeared"] == census["vanished"] == 0
        assert census["unchanged"] > 0


class TestAlignment:
    def test_appeared_and_vanished_segments(self):
        base = _critpath_doc("b", [_path("req", [_seg("t1", "sg1", 0.5)])])
        new = _critpath_doc("n", [_path("req", [_seg("t2", "sg2", 0.7)])])
        doc = diff_critpath_docs(base, new)
        statuses = {s["task_id"]: s["status"]
                    for s in doc["requests"][0]["segments"]}
        assert statuses == {"t2": "appeared", "t1": "vanished"}
        # membership changes still telescope: +0.7 - 0.5 == e2e delta
        assert doc["e2e"]["delta_s"] == pytest.approx(0.2)
        validate_diff(doc)

    def test_unmatched_requests_listed_not_diffed(self):
        base = _critpath_doc("b", [_path("only-base",
                                         [_seg("t1", "sg1", 0.5)])])
        new = _critpath_doc("n", [_path("only-new",
                                        [_seg("t1", "sg1", 0.5)])])
        doc = diff_critpath_docs(base, new)
        assert doc["only_base"] == ["only-base"]
        assert doc["only_new"] == ["only-new"]
        assert doc["n_requests"] == 0
        assert not doc["identical"]

    def test_grew_and_shrank_statuses(self):
        base = _critpath_doc("b", [_path("req", [
            _seg("t1", "sg1", 0.5), _seg("t2", "sg2", 0.3)])])
        new = _critpath_doc("n", [_path("req", [
            _seg("t1", "sg1", 0.8), _seg("t2", "sg2", 0.1)])])
        doc = diff_critpath_docs(base, new)
        statuses = {s["task_id"]: s["status"]
                    for s in doc["requests"][0]["segments"]}
        assert statuses == {"t1": "grew", "t2": "shrank"}
        assert doc["by_stage"]["sg1"] == pytest.approx(0.3)
        assert doc["by_stage"]["sg2"] == pytest.approx(-0.2)

    def test_wait_time_counts_as_gating_time(self):
        # a segment whose duration is unchanged but whose wait grew
        # still attributes the growth (gating time = wait + duration)
        base = _critpath_doc("b", [_path("req", [
            _seg("t1", "sg1", 0.5, wait_s=0.0)])])
        new = _critpath_doc("n", [_path("req", [
            _seg("t1", "sg1", 0.5, wait_s=0.2)])])
        doc = diff_critpath_docs(base, new)
        seg = doc["requests"][0]["segments"][0]
        assert seg["status"] == "grew"
        assert seg["delta_s"] == pytest.approx(0.2)

    def test_duplicate_task_ids_align_by_occurrence(self):
        base = _critpath_doc("b", [_path("req", [
            _seg("t1", "sg1", 0.5), _seg("t1", "sg1", 0.4)])])
        new = _critpath_doc("n", [_path("req", [
            _seg("t1", "sg1", 0.5), _seg("t1", "sg1", 0.9)])])
        doc = diff_critpath_docs(base, new)
        segs = doc["requests"][0]["segments"]
        assert [s["status"] for s in segs] == ["unchanged", "grew"]


class TestValidateDiff:
    def test_rejects_wrong_schema(self):
        with pytest.raises(DiffError):
            validate_diff({"schema": "nope", "kind": "critpath",
                           "identical": True})

    def test_rejects_unknown_kind(self):
        with pytest.raises(DiffError):
            validate_diff({"schema": DIFF_SCHEMA, "kind": "vibes",
                           "identical": True})

    def test_rejects_broken_conservation(self, injected_diff):
        doc = json.loads(diff_json(injected_diff))
        doc["requests"][0]["segments"][0]["delta_s"] += 1.0
        with pytest.raises(DiffError):
            validate_diff(doc)

    def test_rejects_appeared_with_nonzero_base(self):
        base = _critpath_doc("b", [_path("req", [_seg("t1", "sg1", 0.5)])])
        new = _critpath_doc("n", [_path("req", [_seg("t2", "sg2", 0.7)])])
        doc = diff_critpath_docs(base, new)
        for seg in doc["requests"][0]["segments"]:
            if seg["status"] == "appeared":
                seg["base_s"] = 0.1
                seg["delta_s"] = seg["new_s"] - 0.1
        # keep telescoping consistent so only the status rule trips
        req = doc["requests"][0]
        req["attributed_s"] = sum(s["delta_s"] for s in req["segments"])
        req["residual_s"] = req["attributed_s"] - req["delta_s"]
        with pytest.raises(DiffError):
            validate_diff(doc)

    def test_rejects_identical_flag_on_a_moving_diff(self, injected_diff):
        doc = json.loads(diff_json(injected_diff))
        doc["identical"] = True
        with pytest.raises(DiffError):
            validate_diff(doc)

    def test_diff_docs_rejects_schema_mismatch(self, injected_pair):
        base_doc, _ = injected_pair
        with pytest.raises(DiffError):
            diff_docs(base_doc, {"schema": PROFILE_SCHEMA})
        with pytest.raises(DiffError):
            diff_docs({"no": "schema"}, base_doc)
        with pytest.raises(DiffError):
            diff_docs({"schema": "repro.sketch/v1"},
                      {"schema": "repro.sketch/v1"})

    def test_segment_deltas_rejects_non_critpath(self):
        with pytest.raises(DiffError):
            segment_deltas({"kind": "fleet"})


class TestProfileKind:
    @staticmethod
    def _profile(sg1_busy):
        return {
            "schema": PROFILE_SCHEMA, "window_s": 2.0,
            "operators": [
                {"proc": "npu", "tag": "sg1", "n_events": 4,
                 "busy_s": sg1_busy, "ops": 1e9},
                {"proc": "cpu", "tag": "sync", "n_events": 2,
                 "busy_s": 0.1, "ops": 0.0},
            ],
            "processors": [
                {"proc": "npu", "busy_s": sg1_busy, "idle_s": 0.4,
                 "idle_by_cause": {"sync_wait": 0.4}},
                {"proc": "cpu", "busy_s": 0.1, "idle_s": 1.0,
                 "idle_by_cause": {"dependency": 1.0}},
            ],
        }

    def test_operator_growth_is_attributed(self):
        doc = diff_docs(self._profile(1.0), self._profile(1.5))
        assert doc["kind"] == "profile"
        assert not doc["identical"]
        top = doc["operators"][0]
        assert (top["proc"], top["tag"]) == ("npu", "sg1")
        assert top["delta_s"] == pytest.approx(0.5)
        assert top["status"] == "grew"

    def test_self_is_identical(self):
        doc = diff_docs(self._profile(1.0), self._profile(1.0))
        assert doc["identical"]
        assert all(o["status"] == "unchanged" for o in doc["operators"])
        assert diff_table(doc).render()


class TestStepsKind:
    @staticmethod
    def _steps(retry_s, actions):
        return {
            "schema": STEPS_SCHEMA, "source": "probe", "n_steps": 1,
            "n_requests": 1, "n_decisions": len(actions),
            "steps": [{"index": 0, "start_s": 0.0, "end_s": 1.0,
                       "n_inflight": 1, "batch_tokens": 128,
                       "items": [], "queued_ids": [],
                       "queue_depths": {}, "budget_utilization": None}],
            "decisions": [{"t_s": 0.0, "request_id": "r1",
                           "action": a, "tier": "interactive"}
                          for a in actions],
            "requests": [{"request_id": "r1", "status": "completed",
                          "breakdown": {"queue_s": 0.1,
                                        "admission_s": 0.0,
                                        "retry_s": retry_s,
                                        "prefill_s": 0.3,
                                        "decode_s": 0.5,
                                        "turnaround_s": 0.9 + retry_s}}],
        }

    def test_decision_mix_and_breakdown_deltas(self):
        base = self._steps(0.0, ["admit", "dispatch_prefill"])
        new = self._steps(0.4, ["admit", "retry", "dispatch_prefill"])
        doc = diff_docs(base, new)
        assert doc["kind"] == "steps"
        assert not doc["identical"]
        assert doc["decisions"]["retry"]["delta"] == 1
        req = doc["requests"][0]
        assert req["breakdown"]["retry_s"] == pytest.approx(0.4)
        assert req["delta_s"] == pytest.approx(0.4)
        assert diff_table(doc).render()

    def test_self_is_identical(self):
        base = self._steps(0.0, ["admit"])
        assert diff_docs(base, base)["identical"]


class TestFleetKind:
    @staticmethod
    def _fleet(goodput, completed=20):
        return {
            "schema": FLEET_SCHEMA, "seed": 42, "n_devices": 1,
            "devices": [{"name": "dev00", "n_completed": completed,
                         "n_rejected": 1, "n_timeout": 0, "n_failed": 1,
                         "n_faults": 2, "ttft_p50_s": 1.0,
                         "ttft_p95_s": 2.0, "mean_itl_s": 0.05,
                         "goodput_rps": goodput}],
            "percentiles": {"turnaround_s/interactive": {
                "count": 20, "p50": 1.0, "p90": 2.0, "p95": 2.5,
                "p99": 3.0, "max": 4.0}},
            "scheduler": {"n_steps": 10,
                          "decision_counts": {"admit": 20}},
        }

    def test_device_drift_flagged(self):
        doc = diff_docs(self._fleet(1.0), self._fleet(0.8, completed=18))
        assert doc["kind"] == "fleet"
        assert not doc["identical"]
        device = doc["devices"][0]
        assert device["drift"]
        assert device["deltas"]["n_completed"] == -2
        assert device["deltas"]["goodput_rps"] == pytest.approx(-0.2)
        assert diff_table(doc).render()

    def test_self_is_identical(self):
        doc = diff_docs(self._fleet(1.0), self._fleet(1.0))
        assert doc["identical"]
        assert not doc["devices"][0]["drift"]

    def test_none_metrics_compare_by_equality(self):
        base = self._fleet(1.0)
        base["devices"][0]["ttft_p95_s"] = None
        same = json.loads(json.dumps(base))
        assert diff_docs(base, same)["identical"]
        moved = json.loads(json.dumps(base))
        moved["devices"][0]["ttft_p95_s"] = 2.0
        doc = diff_docs(base, moved)
        assert doc["devices"][0]["deltas"]["ttft_p95_s"] == "changed"
        assert doc["devices"][0]["drift"]


class TestEvalSurface:
    def test_attribution_table_gates(self, injected_diff):
        table = diff_attribution_table(injected_diff)
        assert table.rows[0][0] == INJECTED_TAG
        assert table.column("top-contributor hit rate")[0] == 1.0

    def test_summary_table_counts_requests(self, injected_diff):
        table = diff_summary_table(injected_diff)
        assert table.column("requests") == [1.0]

    def test_golden_scenarios_cover_the_diff_benchmark(self):
        scenarios = golden_scenarios()
        assert "diff_attribution" in scenarios
        assert "critpath" in scenarios
        for golden_path, fresh in scenarios.values():
            assert golden_path.endswith(".gz")
            assert callable(fresh)

    def test_explain_regression_unknown_stem_is_none(self):
        assert explain_regression("not-a-benchmark") is None

    def test_explain_regression_self_is_identical(self):
        # the committed golden equals a fresh re-run of its scenario,
        # so explaining an (unreproducible) regression yields an
        # identical diff rather than a spurious attribution
        doc = explain_regression("diff_attribution")
        assert doc is not None
        assert doc["identical"]


class TestGzipRoundTrip:
    def test_diff_json_gzip_round_trip(self, tmp_path, injected_diff):
        from repro.obs import open_text
        path = str(tmp_path / "diff.json.gz")
        with open_text(path, "w") as fh:
            fh.write(diff_json(injected_diff))
        with open_text(path) as fh:
            assert json.load(fh) == injected_diff
        with gzip.open(path, "rb") as fh:
            assert fh.read(1) == b"{"

    def test_gzip_bytes_are_deterministic(self, tmp_path, injected_diff):
        from repro.obs import open_text
        a, b = str(tmp_path / "a.gz"), str(tmp_path / "b.gz")
        for path in (a, b):
            with open_text(path, "w") as fh:
                fh.write(diff_json(injected_diff))
        assert open(a, "rb").read() == open(b, "rb").read()
