"""Tests for samplers and end-to-end generation."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model.sampler import generate, greedy, top_k, top_p


class TestGreedy:
    def test_picks_argmax(self):
        assert greedy(np.array([0.1, 3.0, -1.0])) == 1


class TestTopK:
    def test_k1_equals_greedy(self, rng):
        logits = rng.normal(size=20)
        assert top_k(logits, 1, rng) == greedy(logits)

    def test_samples_within_top_k(self, rng):
        logits = np.array([10.0, 9.0, -50.0, -50.0])
        for _ in range(20):
            assert top_k(logits, 2, rng) in (0, 1)

    def test_k_larger_than_vocab_is_clamped(self, rng):
        logits = np.array([1.0, 2.0])
        assert top_k(logits, 10, rng) in (0, 1)

    def test_invalid_k_raises(self, rng):
        with pytest.raises(ModelError):
            top_k(np.zeros(4), 0, rng)

    def test_invalid_temperature_raises(self, rng):
        with pytest.raises(ModelError):
            top_k(np.zeros(4), 2, rng, temperature=0.0)


class TestTopP:
    def test_tiny_p_equals_greedy(self, rng):
        logits = np.array([5.0, 1.0, 0.0])
        assert top_p(logits, 1e-9, rng) == 0

    def test_p_one_can_sample_anything(self, rng):
        logits = np.zeros(3)
        seen = {top_p(logits, 1.0, rng) for _ in range(100)}
        assert seen == {0, 1, 2}

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ModelError):
            top_p(np.zeros(3), 0.0, rng)
        with pytest.raises(ModelError):
            top_p(np.zeros(3), 1.5, rng)


class TestGenerate:
    def test_generates_requested_tokens(self, tiny_model, prompt_ids):
        out = generate(tiny_model, prompt_ids, max_new_tokens=5)
        assert out.shape == (5,)
        assert np.all(out >= 0)

    def test_chunked_prefill_same_greedy_output(self, tiny_model, prompt_ids):
        a = generate(tiny_model, prompt_ids, 4)
        b = generate(tiny_model, prompt_ids, 4, chunk_len=7)
        np.testing.assert_array_equal(a, b)

    def test_eos_stops_generation(self, tiny_model, prompt_ids):
        first = int(generate(tiny_model, prompt_ids, 1)[0])
        out = generate(tiny_model, prompt_ids, 10, eos_token=first)
        assert out.shape == (1,)

    def test_zero_tokens(self, tiny_model, prompt_ids):
        assert generate(tiny_model, prompt_ids, 0).shape == (0,)

    def test_negative_raises(self, tiny_model, prompt_ids):
        with pytest.raises(ModelError):
            generate(tiny_model, prompt_ids, -1)
