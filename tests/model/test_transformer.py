"""Tests for the full decoder model, including the chunked-prefill invariant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError, ShapeError
from repro.model import (
    LINEAR_SITES,
    OutlierSpec,
    build_synthetic_model,
    tiny_config,
)
from repro.model.layers import Linear


class TestForward:
    def test_logit_shape(self, tiny_model, prompt_ids):
        logits = tiny_model.prefill(prompt_ids)
        assert logits.shape == (len(prompt_ids), tiny_model.config.vocab_size)

    def test_logits_finite(self, tiny_model, prompt_ids):
        assert np.all(np.isfinite(tiny_model.prefill(prompt_ids)))

    def test_deterministic(self, tiny_model, prompt_ids):
        a = tiny_model.prefill(prompt_ids)
        b = tiny_model.prefill(prompt_ids)
        np.testing.assert_array_equal(a, b)

    def test_rejects_2d_tokens(self, tiny_model):
        with pytest.raises(ShapeError):
            tiny_model.prefill(np.zeros((2, 3), dtype=np.int64))

    def test_context_overflow_raises(self, tiny_cfg):
        model = build_synthetic_model(tiny_cfg.replace(max_context=8))
        with pytest.raises(ModelError):
            model.prefill(np.arange(9) + 4)

    def test_cache_grows_with_forward(self, tiny_model, prompt_ids):
        cache = tiny_model.new_cache()
        tiny_model.prefill(prompt_ids, cache)
        assert len(cache) == len(prompt_ids)


class TestChunkedPrefill:
    """§3.2: chunk-wise prefill must reproduce monolithic prefill."""

    @pytest.mark.parametrize("chunk_len", [1, 2, 3, 7, 24, 100])
    def test_equivalence_across_chunk_sizes(self, tiny_model, prompt_ids,
                                            chunk_len):
        whole = tiny_model.prefill(prompt_ids)
        chunked = tiny_model.prefill_chunked(prompt_ids, chunk_len)
        np.testing.assert_allclose(whole, chunked, rtol=1e-4, atol=1e-4)

    def test_equivalence_with_mqa(self, rng):
        cfg = tiny_config(n_heads=4, n_kv_heads=1)
        model = build_synthetic_model(cfg, seed=3)
        ids = rng.integers(4, cfg.vocab_size, size=17)
        np.testing.assert_allclose(
            model.prefill(ids), model.prefill_chunked(ids, 5),
            rtol=1e-4, atol=1e-4,
        )

    def test_equivalence_with_layernorm_ungated(self, rng):
        cfg = tiny_config(norm="layernorm", gated_ffn=False,
                          activation="gelu")
        model = build_synthetic_model(cfg, seed=3)
        ids = rng.integers(4, cfg.vocab_size, size=11)
        np.testing.assert_allclose(
            model.prefill(ids), model.prefill_chunked(ids, 4),
            rtol=1e-4, atol=1e-4,
        )

    @settings(max_examples=15, deadline=None)
    @given(length=st.integers(1, 40), chunk=st.integers(1, 41),
           seed=st.integers(0, 5))
    def test_equivalence_property(self, tiny_model, length, chunk, seed):
        ids = np.random.default_rng(seed).integers(
            4, tiny_model.config.vocab_size, size=length
        )
        whole = tiny_model.prefill(ids)
        chunked = tiny_model.prefill_chunked(ids, chunk)
        np.testing.assert_allclose(whole, chunked, rtol=1e-3, atol=1e-3)

    def test_zero_chunk_raises(self, tiny_model, prompt_ids):
        with pytest.raises(ModelError):
            tiny_model.prefill_chunked(prompt_ids, 0)

    def test_empty_prompt(self, tiny_model):
        out = tiny_model.prefill_chunked(np.array([], dtype=np.int64), 4)
        assert out.shape == (0, tiny_model.config.vocab_size)


class TestDecode:
    def test_decode_continues_prefill(self, tiny_model, prompt_ids):
        # decode_step(t) after prefill == prefill of prompt+[t] last row
        cache = tiny_model.new_cache()
        tiny_model.prefill(prompt_ids, cache)
        step_logits = tiny_model.decode_step(5, cache)
        full = tiny_model.prefill(np.concatenate([prompt_ids, [5]]))
        np.testing.assert_allclose(step_logits, full[-1], rtol=1e-4, atol=1e-4)

    def test_decode_extends_cache(self, tiny_model, prompt_ids):
        cache = tiny_model.new_cache()
        tiny_model.prefill(prompt_ids, cache)
        tiny_model.decode_step(5, cache)
        assert len(cache) == len(prompt_ids) + 1


class TestHooksAndIntrospection:
    def test_hook_sees_every_linear_site(self, tiny_model, prompt_ids):
        seen = set()
        tiny_model.prefill(prompt_ids,
                           hook=lambda i, name, x: seen.add(name))
        expected = set(LINEAR_SITES)
        if not tiny_model.config.gated_ffn:
            expected.discard("w_gate")
        assert seen == expected

    def test_hook_activation_shapes(self, tiny_model, prompt_ids):
        records = []
        tiny_model.prefill(
            prompt_ids, hook=lambda i, name, x: records.append((name, x.shape))
        )
        h = tiny_model.config.hidden_size
        for name, shape in records:
            if name in ("wq", "wk", "wv", "w_up", "w_gate"):
                assert shape == (len(prompt_ids), h)

    def test_iter_linears_counts(self, tiny_model):
        count = sum(1 for _ in tiny_model.iter_linears())
        per_layer = 7 if tiny_model.config.gated_ffn else 6
        assert count == tiny_model.config.n_layers * per_layer

    def test_replace_linear_swaps_operator(self, fresh_tiny_model, prompt_ids):
        model = fresh_tiny_model
        base = model.prefill(prompt_ids)
        old = model.layers[0].weights.wq
        zero = Linear(np.zeros_like(old.weight), name="zeroed")
        model.replace_linear(0, "wq", zero)
        changed = model.prefill(prompt_ids)
        assert not np.allclose(base, changed)

    def test_replace_unknown_site_raises(self, fresh_tiny_model):
        with pytest.raises(ModelError):
            fresh_tiny_model.replace_linear(0, "w_bogus", lambda x: x)


class TestSyntheticStructure:
    def test_outlier_model_has_larger_activation_peaks(self, tiny_cfg,
                                                       prompt_ids):
        spec_on = OutlierSpec(hot_gain=10.0)
        spec_off = OutlierSpec(enabled=False)
        peaks = {}
        for key, spec in (("on", spec_on), ("off", spec_off)):
            model = build_synthetic_model(tiny_cfg, seed=7, outliers=spec)
            peak = 0.0
            def hook(i, name, x):
                nonlocal peak
                peak = max(peak, float(np.abs(x).max()))
            model.prefill(prompt_ids, hook=hook)
            peaks[key] = peak
        assert peaks["on"] > 2.0 * peaks["off"]

    def test_seed_reproducibility(self, tiny_cfg, prompt_ids):
        a = build_synthetic_model(tiny_cfg, seed=11).prefill(prompt_ids)
        b = build_synthetic_model(tiny_cfg, seed=11).prefill(prompt_ids)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, tiny_cfg, prompt_ids):
        a = build_synthetic_model(tiny_cfg, seed=1).prefill(prompt_ids)
        b = build_synthetic_model(tiny_cfg, seed=2).prefill(prompt_ids)
        assert not np.allclose(a, b)
