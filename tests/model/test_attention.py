"""Tests for causal attention with KV cache and GQA."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.model.attention import (
    AttentionBlock,
    causal_attention,
    merge_heads,
    repeat_kv,
    split_heads,
)
from repro.model.kv_cache import LayerKVCache


class TestHeadReshaping:
    def test_split_merge_roundtrip(self, rng):
        x = rng.normal(size=(5, 12)).astype(np.float32)
        assert np.array_equal(merge_heads(split_heads(x, 3)), x)

    def test_split_rejects_indivisible(self):
        with pytest.raises(ShapeError):
            split_heads(np.zeros((2, 10)), 3)

    def test_repeat_kv_identity_for_one(self, rng):
        kv = rng.normal(size=(3, 2, 4))
        assert repeat_kv(kv, 1) is kv

    def test_repeat_kv_expands_heads(self, rng):
        kv = rng.normal(size=(3, 2, 4))
        out = repeat_kv(kv, 3)
        assert out.shape == (3, 6, 4)
        # each kv head is replicated in consecutive slots
        np.testing.assert_array_equal(out[:, 0], out[:, 1])
        np.testing.assert_array_equal(out[:, 0], out[:, 2])
        np.testing.assert_array_equal(out[:, 3], out[:, 5])


class TestCausalAttention:
    def test_single_token_attends_to_itself_only(self, rng):
        q = rng.normal(size=(1, 2, 4)).astype(np.float32)
        k = rng.normal(size=(1, 2, 4)).astype(np.float32)
        v = rng.normal(size=(1, 2, 4)).astype(np.float32)
        out = causal_attention(q, k, v, np.array([0]))
        np.testing.assert_allclose(out, v, rtol=1e-5)

    def test_causality(self, rng):
        # Output at position i must not change when future keys change.
        q = rng.normal(size=(3, 2, 4)).astype(np.float32)
        k = rng.normal(size=(3, 2, 4)).astype(np.float32)
        v = rng.normal(size=(3, 2, 4)).astype(np.float32)
        out1 = causal_attention(q, k, v, np.arange(3))
        k2, v2 = k.copy(), v.copy()
        k2[2] += 10.0
        v2[2] -= 10.0
        out2 = causal_attention(q, k2, v2, np.arange(3))
        np.testing.assert_allclose(out1[:2], out2[:2], rtol=1e-5)
        assert not np.allclose(out1[2], out2[2])

    def test_chunked_equals_monolithic(self, rng):
        # The core §3.2 equivalence at the attention level.
        q = rng.normal(size=(6, 2, 4)).astype(np.float32)
        k = rng.normal(size=(6, 2, 4)).astype(np.float32)
        v = rng.normal(size=(6, 2, 4)).astype(np.float32)
        whole = causal_attention(q, k, v, np.arange(6))
        first = causal_attention(q[:3], k[:3], v[:3], np.arange(3))
        second = causal_attention(q[3:], k, v, np.arange(3, 6))
        np.testing.assert_allclose(whole, np.concatenate([first, second]),
                                   rtol=1e-5)

    def test_uniform_values_attend_to_average(self, rng):
        # With identical keys, attention over j<=i averages the values.
        q = rng.normal(size=(3, 1, 4)).astype(np.float32)
        k = np.zeros((3, 1, 4), dtype=np.float32)
        v = np.stack([np.full((1, 4), float(i)) for i in range(3)]).astype(
            np.float32
        )
        out = causal_attention(q, k, v, np.arange(3))
        np.testing.assert_allclose(out[0], 0.0, atol=1e-6)
        np.testing.assert_allclose(out[1], 0.5, atol=1e-6)
        np.testing.assert_allclose(out[2], 1.0, atol=1e-6)

    def test_query_beyond_cache_raises(self, rng):
        q = rng.normal(size=(1, 1, 4)).astype(np.float32)
        k = rng.normal(size=(1, 1, 4)).astype(np.float32)
        with pytest.raises(ShapeError):
            causal_attention(q, k, k, np.array([1]))

    def test_shape_validation(self, rng):
        q = rng.normal(size=(2, 1, 4)).astype(np.float32)
        k = rng.normal(size=(2, 2, 4)).astype(np.float32)
        with pytest.raises(ShapeError):
            causal_attention(q, k, k, np.arange(2))


class TestAttentionBlock:
    def test_gqa_matches_explicit_repeat(self, rng):
        n_heads, kv_heads, dim = 4, 2, 8
        block = AttentionBlock(n_heads, kv_heads, dim)
        cache = LayerKVCache(kv_heads, dim)
        q = rng.normal(size=(3, n_heads, dim)).astype(np.float32)
        k = rng.normal(size=(3, kv_heads, dim)).astype(np.float32)
        v = rng.normal(size=(3, kv_heads, dim)).astype(np.float32)
        out = block(q, k, v, cache, np.arange(3))
        expected = causal_attention(
            q, repeat_kv(k, 2), repeat_kv(v, 2), np.arange(3)
        )
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_incremental_decode_matches_prefill(self, rng):
        n_heads, dim = 2, 4
        block = AttentionBlock(n_heads, n_heads, dim)
        q = rng.normal(size=(4, n_heads, dim)).astype(np.float32)
        k = rng.normal(size=(4, n_heads, dim)).astype(np.float32)
        v = rng.normal(size=(4, n_heads, dim)).astype(np.float32)

        cache_a = LayerKVCache(n_heads, dim)
        whole = block(q, k, v, cache_a, np.arange(4))

        cache_b = LayerKVCache(n_heads, dim)
        rows = [
            block(q[i: i + 1], k[i: i + 1], v[i: i + 1], cache_b,
                  np.array([i]))
            for i in range(4)
        ]
        np.testing.assert_allclose(whole, np.concatenate(rows), rtol=1e-5)

    def test_indivisible_heads_raise(self):
        with pytest.raises(ShapeError):
            AttentionBlock(4, 3, 8)
