"""Tests for the toy tokenizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.model.tokenizer import ToyTokenizer


class TestToyTokenizer:
    def test_deterministic(self):
        tok = ToyTokenizer()
        text = "forward the unread emails to Alice"
        assert tok.encode(text) == tok.encode(text)

    def test_bos_prefix(self):
        tok = ToyTokenizer()
        assert tok.encode("hi")[0] == ToyTokenizer.BOS
        assert tok.encode("hi", add_bos=False)[0] != ToyTokenizer.BOS

    def test_ids_within_vocab(self):
        tok = ToyTokenizer(vocab_size=100)
        ids = tok.encode("the quick brown fox jumps over the lazy dog")
        assert all(0 <= t < 100 for t in ids)

    def test_long_words_split_into_pieces(self):
        tok = ToyTokenizer()
        short = tok.encode("cat", add_bos=False)
        long = tok.encode("supercalifragilistic", add_bos=False)
        assert len(short) == 1
        assert len(long) == 5  # 20 chars / 4 per piece

    def test_count_matches_encode(self):
        tok = ToyTokenizer()
        text = "automated email reply with history"
        assert tok.count(text) == len(tok.encode(text))

    def test_decode_skips_bos_and_stops_at_eos(self):
        tok = ToyTokenizer()
        text = tok.decode([ToyTokenizer.BOS, 10, ToyTokenizer.EOS, 11])
        assert text == "tok10"

    def test_tiny_vocab_rejected(self):
        with pytest.raises(WorkloadError):
            ToyTokenizer(vocab_size=4)

    def test_different_words_usually_differ(self):
        tok = ToyTokenizer()
        ids = {tok.encode(w, add_bos=False)[0]
               for w in ("cat", "dog", "bird", "fish", "mouse")}
        assert len(ids) >= 4  # hashing may collide but rarely

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Zs")),
                   max_size=80))
    def test_encode_never_crashes_and_stays_in_range(self, text):
        tok = ToyTokenizer(vocab_size=500)
        ids = tok.encode(text)
        assert all(0 <= t < 500 for t in ids)
