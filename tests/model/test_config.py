"""Tests for model configurations and the paper presets."""

import pytest

from repro.errors import ConfigError
from repro.model import (
    GEMMA_2B,
    LLAMA2_7B,
    MISTRAL_7B,
    PAPER_MODELS,
    PHI2_27B,
    QWEN15_18B,
    ModelConfig,
    get_model_config,
    tiny_config,
)


class TestPresets:
    def test_five_paper_models_registered(self):
        assert len(PAPER_MODELS) == 5

    def test_lookup_is_case_insensitive(self):
        assert get_model_config("qwen1.5-1.8b") is QWEN15_18B
        assert get_model_config("GEMMA-2B") is GEMMA_2B

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigError):
            get_model_config("gpt-17")

    @pytest.mark.parametrize("cfg,expected_billion,tol", [
        (QWEN15_18B, 1.8, 0.25),
        (GEMMA_2B, 2.5, 0.30),  # incl. 256k-vocab embeddings
        (PHI2_27B, 2.7, 0.25),
        (LLAMA2_7B, 6.7, 0.15),
        (MISTRAL_7B, 7.2, 0.15),
    ])
    def test_param_count_matches_advertised_size(self, cfg, expected_billion, tol):
        count = cfg.param_count(include_embeddings=True)
        assert count == pytest.approx(expected_billion * 1e9, rel=tol)

    def test_gemma_is_multi_query(self):
        assert GEMMA_2B.kv_heads == 1
        assert GEMMA_2B.dim_per_head == 256

    def test_mistral_is_grouped_query(self):
        assert MISTRAL_7B.kv_heads == 8
        assert MISTRAL_7B.n_heads % MISTRAL_7B.kv_heads == 0

    def test_phi2_uses_layernorm_ungated(self):
        assert PHI2_27B.norm == "layernorm"
        assert not PHI2_27B.gated_ffn

    def test_max_context_matches_table1(self):
        # Table 1 of the paper.
        assert QWEN15_18B.max_context == 32768
        assert GEMMA_2B.max_context == 8192
        assert PHI2_27B.max_context == 2048


class TestValidation:
    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ConfigError):
            tiny_config(hidden_size=0)

    def test_rejects_unknown_activation(self):
        with pytest.raises(ConfigError):
            tiny_config(activation="swishplus")

    def test_rejects_unknown_norm(self):
        with pytest.raises(ConfigError):
            tiny_config(norm="groupnorm")

    def test_rejects_kv_heads_not_dividing(self):
        with pytest.raises(ConfigError):
            tiny_config(n_heads=4, n_kv_heads=3)

    def test_rejects_indivisible_hidden(self):
        with pytest.raises(ConfigError):
            tiny_config(hidden_size=65, n_heads=4)

    def test_explicit_head_dim_allows_indivisible_hidden(self):
        cfg = tiny_config(hidden_size=65, n_heads=4, head_dim=16)
        assert cfg.q_dim == 64


class TestDerivedProperties:
    def test_q_and_kv_dims(self):
        cfg = tiny_config(hidden_size=64, n_heads=4, n_kv_heads=2)
        assert cfg.q_dim == 64
        assert cfg.kv_dim == 32

    def test_weight_bytes_scaling(self):
        cfg = tiny_config()
        assert cfg.weight_bytes(8) * 2 == cfg.weight_bytes(16)
        assert cfg.weight_bytes(8) == cfg.param_count(False)

    def test_replace_returns_modified_copy(self):
        cfg = tiny_config()
        cfg2 = cfg.replace(n_layers=2)
        assert cfg2.n_layers == 2
        assert cfg.n_layers != 2

    def test_param_count_gated_vs_ungated(self):
        gated = tiny_config(gated_ffn=True)
        ungated = tiny_config(gated_ffn=False)
        diff = gated.param_count(False) - ungated.param_count(False)
        assert diff == gated.n_layers * gated.hidden_size * gated.ffn_hidden


class TestExtraPresets:
    def test_lookup_finds_extras(self):
        from repro.model import EXTRA_MODELS, PHI3_MINI, QWEN2_15B
        from repro.model.config import get_model_config
        assert get_model_config("qwen2-1.5b") is QWEN2_15B
        assert get_model_config("PHI3-MINI-3.8B") is PHI3_MINI
        assert len(EXTRA_MODELS) == 2

    def test_extras_not_in_paper_five(self):
        from repro.model import EXTRA_MODELS, PAPER_MODELS
        assert not set(EXTRA_MODELS) & set(PAPER_MODELS)

    def test_qwen2_is_gqa_with_long_context(self):
        from repro.model import QWEN2_15B
        assert QWEN2_15B.kv_heads == 2
        assert QWEN2_15B.max_context == 32768  # Table 1

    def test_phi3_context_128k(self):
        from repro.model import PHI3_MINI
        assert PHI3_MINI.max_context == 131072  # Table 1

    def test_extras_run_through_engine(self):
        from repro.core import LlmNpuEngine
        engine = LlmNpuEngine.build("Qwen2-1.5B", "Redmi K70 Pro",
                                    max_chunks=2)
        assert engine.prefill(300).latency_s > 0
