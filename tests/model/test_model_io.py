"""Tests for model checkpoint serialization."""

import os

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model import build_synthetic_model, tiny_config
from repro.model.io import load_model, save_model
from repro.quant import quantize_model


class TestRoundTrip:
    def test_logits_bit_exact(self, tmp_path, rng):
        cfg = tiny_config()
        model = build_synthetic_model(cfg, seed=5)
        path = os.path.join(tmp_path, "model.npz")
        save_model(model, path)
        loaded = load_model(path)
        ids = rng.integers(4, cfg.vocab_size, size=20)
        np.testing.assert_array_equal(model.prefill(ids),
                                      loaded.prefill(ids))

    def test_config_preserved(self, tmp_path):
        cfg = tiny_config(n_heads=4, n_kv_heads=2, activation="gelu")
        model = build_synthetic_model(cfg, seed=5)
        path = os.path.join(tmp_path, "model.npz")
        save_model(model, path)
        assert load_model(path).config == cfg

    def test_layernorm_variant(self, tmp_path, rng):
        cfg = tiny_config(norm="layernorm", gated_ffn=False,
                          activation="gelu")
        model = build_synthetic_model(cfg, seed=5)
        path = os.path.join(tmp_path, "model.npz")
        save_model(model, path)
        ids = rng.integers(4, cfg.vocab_size, size=12)
        np.testing.assert_array_equal(model.prefill(ids),
                                      load_model(path).prefill(ids))

    def test_quantized_model_rejected(self, tmp_path, rng):
        cfg = tiny_config()
        model = build_synthetic_model(cfg, seed=5)
        corpus = [rng.integers(4, cfg.vocab_size, size=16)]
        quantize_model(model, "per-tensor", calib_corpus=corpus)
        with pytest.raises(ModelError):
            save_model(model, os.path.join(tmp_path, "bad.npz"))

    def test_non_checkpoint_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "junk.npz")
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ModelError):
            load_model(path)

    def test_loaded_model_quantizes(self, tmp_path, rng):
        # the full pipeline: save reference -> load -> quantize the copy
        cfg = tiny_config()
        model = build_synthetic_model(cfg, seed=5)
        path = os.path.join(tmp_path, "model.npz")
        save_model(model, path)
        loaded = load_model(path)
        corpus = [rng.integers(4, cfg.vocab_size, size=16)]
        report = quantize_model(loaded, "llm.npu", calib_corpus=corpus)
        assert report.n_sites > 0
