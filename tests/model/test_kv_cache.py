"""Tests for the KV cache."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.model.kv_cache import KVCache, LayerKVCache


def rand_kv(rng, n, heads=2, dim=4):
    return (rng.normal(size=(n, heads, dim)).astype(np.float32),
            rng.normal(size=(n, heads, dim)).astype(np.float32))


class TestLayerKVCache:
    def test_starts_empty(self):
        cache = LayerKVCache(2, 4)
        assert len(cache) == 0
        assert cache.keys.shape == (0, 2, 4)

    def test_append_accumulates(self, rng):
        cache = LayerKVCache(2, 4)
        k1, v1 = rand_kv(rng, 3)
        k2, v2 = rand_kv(rng, 5)
        cache.append(k1, v1)
        cache.append(k2, v2)
        assert len(cache) == 8
        np.testing.assert_array_equal(cache.keys[:3], k1)
        np.testing.assert_array_equal(cache.keys[3:], k2)
        np.testing.assert_array_equal(cache.values[3:], v2)

    def test_growth_beyond_initial_capacity(self, rng):
        cache = LayerKVCache(2, 4, capacity=2)
        for _ in range(10):
            cache.append(*rand_kv(rng, 7))
        assert len(cache) == 70

    def test_rejects_wrong_head_shape(self, rng):
        cache = LayerKVCache(2, 4)
        k, v = rand_kv(rng, 3, heads=3)
        with pytest.raises(ShapeError):
            cache.append(k, v)

    def test_rejects_mismatched_kv(self, rng):
        cache = LayerKVCache(2, 4)
        k, _ = rand_kv(rng, 3)
        _, v = rand_kv(rng, 4)
        with pytest.raises(ShapeError):
            cache.append(k, v)

    def test_truncate(self, rng):
        cache = LayerKVCache(2, 4)
        k, v = rand_kv(rng, 6)
        cache.append(k, v)
        cache.truncate(2)
        assert len(cache) == 2
        np.testing.assert_array_equal(cache.keys, k[:2])

    def test_truncate_out_of_range_raises(self, rng):
        cache = LayerKVCache(2, 4)
        cache.append(*rand_kv(rng, 3))
        with pytest.raises(ShapeError):
            cache.truncate(4)
        with pytest.raises(ShapeError):
            cache.truncate(-1)

    def test_nbytes_counts_live_entries_only(self, rng):
        cache = LayerKVCache(2, 4, capacity=100)
        cache.append(*rand_kv(rng, 3))
        assert cache.nbytes() == 3 * 2 * 4 * 4 * 2


class TestKVCache:
    def test_for_config(self, tiny_cfg):
        cache = KVCache.for_config(tiny_cfg)
        assert len(cache.layers) == tiny_cfg.n_layers
        assert cache[0].kv_heads == tiny_cfg.kv_heads

    def test_len_tracks_positions(self, rng, tiny_cfg):
        cache = KVCache.for_config(tiny_cfg)
        heads, dim = tiny_cfg.kv_heads, tiny_cfg.dim_per_head
        for layer in cache.layers:
            layer.append(*rand_kv(rng, 5, heads=heads, dim=dim))
        assert len(cache) == 5

    def test_truncate_all_layers(self, rng, tiny_cfg):
        cache = KVCache.for_config(tiny_cfg)
        heads, dim = tiny_cfg.kv_heads, tiny_cfg.dim_per_head
        for layer in cache.layers:
            layer.append(*rand_kv(rng, 5, heads=heads, dim=dim))
        cache.truncate(1)
        assert all(len(layer) == 1 for layer in cache.layers)

    def test_nbytes_sums_layers(self, rng, tiny_cfg):
        cache = KVCache.for_config(tiny_cfg)
        heads, dim = tiny_cfg.kv_heads, tiny_cfg.dim_per_head
        for layer in cache.layers:
            layer.append(*rand_kv(rng, 2, heads=heads, dim=dim))
        assert cache.nbytes() == tiny_cfg.n_layers * cache[0].nbytes()
