"""Tests for rotary positional embeddings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.model.rope import apply_rope, rope_angles, rope_frequencies


class TestFrequencies:
    def test_shape(self):
        assert rope_frequencies(16).shape == (8,)

    def test_first_frequency_is_one(self):
        assert rope_frequencies(16)[0] == pytest.approx(1.0)

    def test_decreasing(self):
        f = rope_frequencies(32)
        assert np.all(np.diff(f) < 0)

    def test_odd_dim_raises(self):
        with pytest.raises(ShapeError):
            rope_frequencies(7)


class TestApplyRope:
    def test_position_zero_is_identity(self, rng):
        x = rng.normal(size=(1, 2, 8)).astype(np.float32)
        y = apply_rope(x, np.array([0]))
        np.testing.assert_allclose(y, x, atol=1e-6)

    def test_norm_preserved(self, rng):
        # Rotation preserves the L2 norm of every (even, odd) pair.
        x = rng.normal(size=(5, 3, 16)).astype(np.float32)
        y = apply_rope(x, np.arange(5))
        np.testing.assert_allclose(
            np.linalg.norm(x, axis=-1), np.linalg.norm(y, axis=-1), rtol=1e-5
        )

    def test_relative_property(self, rng):
        # <RoPE(q,m), RoPE(k,n)> depends only on m-n.
        q = rng.normal(size=(1, 1, 8)).astype(np.float32)
        k = rng.normal(size=(1, 1, 8)).astype(np.float32)
        def score(m, n):
            qm = apply_rope(q, np.array([m]))[0, 0]
            kn = apply_rope(k, np.array([n]))[0, 0]
            return float(qm @ kn)
        assert score(5, 3) == pytest.approx(score(12, 10), rel=1e-4)
        assert score(5, 3) == pytest.approx(score(102, 100), rel=1e-4)

    def test_absolute_positions_enable_chunking(self, rng):
        # Rotating rows [0..5] at once equals rotating [0..2] and [3..5]
        # separately with absolute positions — the §3.2 chunking invariant.
        x = rng.normal(size=(6, 2, 8)).astype(np.float32)
        whole = apply_rope(x, np.arange(6))
        part1 = apply_rope(x[:3], np.arange(0, 3))
        part2 = apply_rope(x[3:], np.arange(3, 6))
        np.testing.assert_allclose(whole, np.concatenate([part1, part2]),
                                   atol=1e-6)

    def test_bad_rank_raises(self):
        with pytest.raises(ShapeError):
            apply_rope(np.zeros((3, 8)), np.arange(3))

    def test_bad_positions_raises(self):
        with pytest.raises(ShapeError):
            apply_rope(np.zeros((3, 1, 8)), np.arange(4))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 500), st.integers(2, 16))
    def test_rotation_is_invertible(self, pos, half_dim):
        # Applying the rotation at -pos undoes the rotation at +pos.
        dim = half_dim * 2
        rng = np.random.default_rng(pos + dim)
        x = rng.normal(size=(1, 1, dim)).astype(np.float32)
        fwd = apply_rope(x, np.array([pos]))
        cos, sin = rope_angles(np.array([pos]), dim)
        # Inverse rotation: swap sin sign.
        even, odd = fwd[..., 0::2], fwd[..., 1::2]
        inv = np.empty_like(fwd)
        inv[..., 0::2] = even * cos[:, None, :] + odd * sin[:, None, :]
        inv[..., 1::2] = -even * sin[:, None, :] + odd * cos[:, None, :]
        np.testing.assert_allclose(inv, x, atol=1e-4)
