"""Tests for the numpy layer primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.model.layers import (
    Embedding,
    LayerNorm,
    Linear,
    RMSNorm,
    gelu,
    get_activation,
    make_norm,
    relu,
    silu,
    softmax,
)


class TestActivations:
    def test_silu_at_zero(self):
        assert silu(np.array([0.0]))[0] == 0.0

    def test_silu_large_positive_is_identity(self):
        x = np.array([20.0])
        assert silu(x)[0] == pytest.approx(20.0, rel=1e-6)

    def test_gelu_at_zero(self):
        assert gelu(np.array([0.0]))[0] == 0.0

    def test_gelu_monotone_on_positives(self):
        x = np.linspace(0, 5, 50)
        y = gelu(x)
        assert np.all(np.diff(y) > 0)

    def test_relu_clamps_negatives(self):
        assert np.array_equal(relu(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_get_activation_unknown_raises(self):
        with pytest.raises(ShapeError):
            get_activation("mish")

    @given(st.floats(-30, 30))
    def test_silu_bounded_below(self, v):
        # silu(x) >= -0.2785 (its global minimum)
        assert silu(np.array([v]))[0] >= -0.2785


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(5, 9))
        s = softmax(x)
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-6)

    def test_handles_large_logits(self):
        s = softmax(np.array([1000.0, 1000.0]))
        np.testing.assert_allclose(s, [0.5, 0.5])

    def test_neg_inf_gets_zero_probability(self):
        s = softmax(np.array([0.0, -np.inf]))
        assert s[1] == 0.0
        assert s[0] == 1.0


class TestLinear:
    def test_matches_manual_matmul(self, rng):
        w = rng.normal(size=(6, 4)).astype(np.float32)
        b = rng.normal(size=6).astype(np.float32)
        lin = Linear(w, b)
        x = rng.normal(size=(3, 4)).astype(np.float32)
        np.testing.assert_allclose(lin(x), x @ w.T + b, rtol=1e-5)

    def test_rejects_bad_weight_ndim(self):
        with pytest.raises(ShapeError):
            Linear(np.zeros(3))

    def test_rejects_mismatched_bias(self):
        with pytest.raises(ShapeError):
            Linear(np.zeros((2, 3)), bias=np.zeros(3))

    def test_rejects_wrong_input_width(self):
        lin = Linear(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ShapeError):
            lin(np.zeros((1, 4)))

    def test_feature_properties(self):
        lin = Linear(np.zeros((2, 3), dtype=np.float32))
        assert lin.in_features == 3
        assert lin.out_features == 2


class TestNorms:
    def test_rmsnorm_unit_rms_output(self, rng):
        norm = RMSNorm(np.ones(16, dtype=np.float32))
        x = rng.normal(size=(4, 16)).astype(np.float32) * 3.0
        y = norm(x)
        rms = np.sqrt(np.mean(y * y, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_rmsnorm_gain_scales_channels(self, rng):
        gain = np.ones(8, dtype=np.float32)
        gain[3] = 5.0
        norm = RMSNorm(gain)
        x = np.ones((1, 8), dtype=np.float32)
        y = norm(x)
        assert y[0, 3] == pytest.approx(5.0 * y[0, 0], rel=1e-5)

    def test_layernorm_zero_mean_unit_var(self, rng):
        norm = LayerNorm(np.ones(16, dtype=np.float32),
                         np.zeros(16, dtype=np.float32))
        x = rng.normal(size=(4, 16)).astype(np.float32) * 2 + 7
        y = norm(x)
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(y.var(axis=-1), 1.0, rtol=1e-2)

    def test_make_norm_dispatch(self):
        assert isinstance(make_norm("rmsnorm", 4), RMSNorm)
        assert isinstance(make_norm("layernorm", 4), LayerNorm)
        with pytest.raises(ShapeError):
            make_norm("batchnorm", 4)

    def test_norm_width_mismatch_raises(self):
        norm = make_norm("rmsnorm", 4)
        with pytest.raises(ShapeError):
            norm(np.zeros((2, 5)))


class TestEmbedding:
    def test_lookup(self, rng):
        table = rng.normal(size=(10, 4)).astype(np.float32)
        emb = Embedding(table)
        out = emb(np.array([2, 7]))
        np.testing.assert_array_equal(out, table[[2, 7]])

    def test_out_of_range_raises(self):
        emb = Embedding(np.zeros((5, 2), dtype=np.float32))
        with pytest.raises(ShapeError):
            emb(np.array([5]))
        with pytest.raises(ShapeError):
            emb(np.array([-1]))

    def test_properties(self):
        emb = Embedding(np.zeros((5, 2), dtype=np.float32))
        assert emb.vocab_size == 5
        assert emb.hidden_size == 2
