"""Tests for the ablation and what-if drivers."""

import pytest

from repro.eval import (
    ablation_chunk_length,
    ablation_equivalent_shapes,
    ablation_hot_channels,
    ablation_scheduler,
    future_hardware,
    mixed_precision_npu,
)


class TestChunkLength:
    def test_256_best_for_long_prompts(self):
        table = ablation_chunk_length(chunk_lens=(128, 256, 512),
                                      prompt_lens=(1024,))
        speeds = dict(zip(table.column("chunk length"),
                          table.column("prompt=1024")))
        assert speeds[256] == max(speeds.values())

    def test_padding_column(self):
        table = ablation_chunk_length(chunk_lens=(64, 256),
                                      prompt_lens=(300, 512))
        assert table.column("padding @300") == [20, 212]


class TestScheduler:
    def test_ooo_wins(self):
        table = ablation_scheduler(policies=("in-order", "ooo"))
        speeds = dict(zip(table.column("policy"), table.column("tok/s")))
        assert speeds["ooo"] > speeds["in-order"]

    def test_reduction_column_format(self):
        table = ablation_scheduler(policies=("in-order", "ooo"))
        assert table.rows[0][-1] == "0%"
        assert table.rows[1][-1].startswith("-")


class TestHotChannels:
    def test_memory_monotone_in_fraction(self):
        table = ablation_hot_channels(fractions=(0.01, 0.1, 1.0))
        mib = table.column("shadow weights MiB")
        assert mib[0] < mib[1] < mib[2]


class TestEquivalentShapes:
    def test_gains_positive(self):
        table = ablation_equivalent_shapes(models=("Qwen1.5-1.8B",))
        assert table.rows[0][2] > table.rows[0][1]


class TestFutureHardware:
    def test_bottleneck_flips(self):
        table = future_hardware(npu_speedups=(1.0, 8.0))
        assert table.column("bottleneck") == ["NPU", "CPU"]

    def test_mixed_precision_crossover(self):
        table = mixed_precision_npu(fp16_tflops=(0.00317, 4.0))
        assert table.column("all-NPU wins?") == ["no", "yes"]

    def test_all_npu_on_todays_hw_is_catastrophic(self):
        table = mixed_precision_npu(fp16_tflops=(0.00317,),
                                    prompt_len=256)
        assert table.rows[0][1] < 0.2 * table.rows[0][2]


class TestTriProcessor:
    def test_third_processor_is_a_wash(self):
        from repro.eval import tri_processor
        table = tri_processor(pruning_rates=(0.85,), prompt_len=512)
        _, cpu_npu, gpu_npu, tri = table.rows[0]
        assert abs(tri - gpu_npu) / gpu_npu < 0.05

    def test_shadow_backend_validation(self):
        from repro.core import EngineConfig
        from repro.errors import EngineError
        import pytest as _pytest
        with _pytest.raises(EngineError):
            EngineConfig(shadow_backend="dsp")
