"""Tests for the experiment drivers (smaller configurations for speed).

These check driver mechanics and the headline paper-shape properties; the
full-size regenerations live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.eval import (
    fig1_breakdown,
    fig4_quant_npu,
    fig8_chunk_length,
    fig10_fig11_outlier_stats,
    fig12_importance,
    fig14_prefill_speed,
    fig15_energy,
    fig16_pruning_tradeoff,
    fig17_memory,
    fig18_coordination,
    fig19_ablation,
    table3_matmul,
    table5_e2e,
    table6_accuracy,
)


class TestTable3Driver:
    def test_errors_within_tolerance(self):
        table = table3_matmul()
        for row in table.rows:
            err = float(row[-1].rstrip("%"))
            assert err <= 35.0


class TestFig8Driver:
    def test_per_token_latency_falls(self):
        table = fig8_chunk_length(chunk_lens=(32, 128, 256))
        ffn = table.column("FFN")
        assert ffn[0] > ffn[1] > ffn[2]


class TestFig4Driver:
    def test_per_group_penalty_band(self):
        table = fig4_quant_npu()
        kquant = float(table.value(
            "K-Quant (g=32)", "overhead vs per-tensor").rstrip("x"))
        assert 6.0 < kquant < 20.0


class TestFig14Driver:
    @pytest.fixture(scope="class")
    def table(self):
        return fig14_prefill_speed(models=("Qwen1.5-1.8B",),
                                   devices=("Redmi K70 Pro",),
                                   prompt_lens=(256, 1024))

    def test_llm_npu_wins_everywhere(self, table):
        ours = [r for r in table.rows if r[2] == "llm.npu"][0]
        for row in table.rows:
            if row[2] != "llm.npu":
                assert row[3] < ours[3]
                assert row[4] < ours[4]

    def test_six_engines(self, table):
        assert len(table.rows) == 6


class TestFig1Driver:
    def test_prefill_dominates_on_cpu(self):
        table = fig1_breakdown(workload_names=("ui_automation",),
                               n_samples=2)
        cpu_row = [r for r in table.rows if r[0] == "llama.cpp-CPU"][0]
        share = float(cpu_row[-1].rstrip("%"))
        assert share > 85.0  # paper: 88.3-98.8% on CPU

    def test_gpu_share_lower_but_majority(self):
        table = fig1_breakdown(workload_names=("chat_summary",),
                               n_samples=2)
        cpu = float([r for r in table.rows
                     if r[0] == "llama.cpp-CPU"][0][-1].rstrip("%"))
        gpu = float([r for r in table.rows
                     if r[0] == "TFLite-GPU"][0][-1].rstrip("%"))
        assert gpu < cpu


class TestFig15Driver:
    def test_savings_positive(self):
        table = fig15_energy(models=("Qwen1.5-1.8B",),
                             prompt_lens=(1024,))
        for row in table.rows:
            if row[1] != "llm.npu":
                assert float(row[-1].rstrip("x")) > 1.0


class TestFig17Driver:
    def test_shadow_share_small(self):
        table = fig17_memory(models=("Qwen1.5-1.8B",))
        ours = [r for r in table.rows if r[1] == "llm.npu"][0]
        share = float(ours[-1].rstrip("%"))
        assert share < 3.0


class TestFig18Driver:
    def test_gpu_decode_lowers_e2e(self):
        table = fig18_coordination(prompt_lens=(512,), output_tokens=16)
        cpu = [r for r in table.rows if r[0] == "CPU-NPU"][0]
        gpu = [r for r in table.rows if r[0] == "GPU-NPU"][0]
        assert gpu[4] < cpu[4]       # e2e lower
        assert gpu[3] < cpu[3]       # decode faster


class TestFig19Driver:
    def test_ladder_monotone(self):
        table = fig19_ablation(models=("Qwen1.5-1.8B",), prompt_len=512)
        row = table.rows[0]
        naive, chunk, outlier, ooe = row[2], row[3], row[4], row[5]
        assert naive < chunk < outlier
        assert ooe >= outlier * 0.999

    def test_naive_npu_slower_than_cpu(self):
        table = fig19_ablation(models=("Qwen1.5-1.8B",), prompt_len=512)
        row = table.rows[0]
        assert row[2] < row[1]  # naive NPU < llama.cpp-CPU (§2.3)


class TestTable5Driver:
    def test_ours_fastest_per_workload(self):
        table = table5_e2e(models=("Qwen1.5-1.8B",),
                           workload_names=("ui_automation",),
                           n_samples=2)
        ours = [r for r in table.rows if r[2] == "llm.npu"][0]
        for row in table.rows:
            if row[2] != "llm.npu":
                assert row[3] > ours[3]


class TestAccuracyDrivers:
    @pytest.fixture(scope="class")
    def table6(self):
        return table6_accuracy(n_items_scale=0.125,
                               benchmarks=("hellaswag", "winogrande"))

    def test_fp16_best(self, table6):
        means = {row[0]: row[-1] for row in table6.rows}
        assert means["fp16"] >= max(
            v for k, v in means.items() if k != "fp16"
        ) - 0.05

    def test_ours_beats_smoothquant(self, table6):
        means = {row[0]: row[-1] for row in table6.rows}
        assert means["llm.npu"] >= means["smoothquant"] - 0.02

    def test_fig16_speed_rises_with_pruning(self):
        table = fig16_pruning_tradeoff(
            rates=(0.0, 1.0), benchmarks=("hellaswag",),
            n_items_scale=0.125,
        )
        speeds = table.column("prefill tok/s")
        assert speeds[-1] > speeds[0]

    def test_fig16_accuracy_falls_with_full_pruning(self):
        table = fig16_pruning_tradeoff(
            rates=(0.0, 1.0), benchmarks=("hellaswag",),
            n_items_scale=0.25,
        )
        accs = table.column("acc:hellaswag")
        assert accs[-1] < accs[0]

    def test_fig10_11_fractions(self):
        table = fig10_fig11_outlier_stats(n_sequences=4, seq_len=32)
        for row in table.rows:
            outlier_fraction = float(row[3].rstrip("%"))
            hot_fraction = float(row[5].rstrip("%"))
            assert outlier_fraction < 2.0   # paper: < 0.3%
            assert hot_fraction < 5.0       # paper: < 3%

    def test_fig12_importance_u_shape(self):
        profile, sweep = fig12_importance(
            pruning_rates=(0.0, 1.0), benchmarks=("hellaswag",),
            n_items_scale=0.125,
        )
        values = profile.column("importance")
        n = len(values)
        ends = (values[0] + values[-1]) / 2
        middle = np.mean(values[n // 4: -n // 4])
        assert ends > 1.5 * middle
        accs = sweep.column("acc:hellaswag")
        assert accs[-1] < accs[0]


class TestTable6CrossEntropy:
    def test_ce_column_orders_schemes(self):
        table = table6_accuracy(
            schemes=("fp16", "per-tensor"),
            benchmarks=("winogrande",),
            n_items_scale=0.125,
            with_cross_entropy=True,
        )
        ce = {row[0]: row[-1] for row in table.rows}
        assert ce["fp16"] < ce["per-tensor"]

    def test_ce_column_absent_by_default(self):
        table = table6_accuracy(schemes=("fp16",),
                                benchmarks=("winogrande",),
                                n_items_scale=0.125)
        assert "teacher CE" not in table.columns
