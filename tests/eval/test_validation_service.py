"""Tests for the calibration dashboard and service-load drivers."""

import pytest

from repro.eval import (
    ANCHORS,
    Anchor,
    calibration_dashboard,
    service_engine_comparison,
    service_load,
)


class TestAnchors:
    def test_twelve_anchors(self):
        assert len(ANCHORS) == 12

    def test_anchor_statuses(self):
        good = Anchor("x", "p", lambda: 5.0, 4.0, 6.0)
        assert good.evaluate() == (5.0, "PASS")
        near = Anchor("x", "p", lambda: 6.5, 4.0, 6.0)
        assert near.evaluate()[1] == "NEAR"
        bad = Anchor("x", "p", lambda: 60.0, 4.0, 6.0)
        assert bad.evaluate()[1] == "FAIL"

    def test_dashboard_all_pass(self):
        table = calibration_dashboard()
        statuses = table.column("status")
        assert statuses.count("FAIL") == 0
        assert statuses.count("PASS") >= 10

    def test_dashboard_subset(self):
        table = calibration_dashboard(anchors=ANCHORS[:3])
        assert len(table.rows) == 3


class TestServiceDrivers:
    def test_load_sweep_shape(self):
        table = service_load(inter_arrival_s=(8.0, 0.5), n_requests=6)
        queueing = table.column("mean queueing s")
        assert queueing[0] == 0
        assert queueing[-1] > 0

    def test_throughput_saturates(self):
        table = service_load(inter_arrival_s=(4.0, 0.25), n_requests=8)
        rps = table.column("throughput req/s")
        # at saturation, throughput is capped by the service time, far
        # below the offered 4 req/s
        assert rps[-1] < 2.0

    def test_engine_comparison(self):
        table = service_engine_comparison(n_requests=5)
        ours = table.row_by_key("llm.npu service")
        base = table.row_by_key("llama.cpp service")
        assert base[1] > ours[1]
        assert base[3] > ours[3]


class TestReportGeneration:
    def test_subset_report(self, tmp_path):
        import os
        from repro.eval import generate_report, table3_matmul
        path = os.path.join(tmp_path, "r.md")
        out = generate_report(path=path,
                              experiments={"table3": table3_matmul})
        assert out == path
        text = open(path).read()
        assert "## table3" in text
        assert "| engine |" in text

    def test_skip_list(self, tmp_path):
        import os
        from repro.eval import generate_report, table3_matmul
        path = os.path.join(tmp_path, "r.md")
        generate_report(path=path,
                        experiments={"table3": table3_matmul},
                        skip=("table3",))
        assert "_skipped_" in open(path).read()

    def test_tuple_results_render(self, tmp_path):
        import os
        from repro.eval import fig12_importance, generate_report
        path = os.path.join(tmp_path, "r.md")
        generate_report(
            path=path,
            experiments={"fig12": lambda: fig12_importance(
                pruning_rates=(0.0,), benchmarks=("winogrande",),
                n_items_scale=0.125,
            )},
        )
        text = open(path).read()
        assert "Figure 12 (left)" in text
        assert "Figure 12 (right)" in text
