"""Fleet telemetry: merge-equals-pooled acceptance, determinism, storms."""

import json

import pytest

from repro.eval import (
    FLEET_SCHEMA,
    FLEET_SLOS,
    default_fleet,
    fault_storm_monitor,
    fleet_compliance_table,
    fleet_golden_json,
    fleet_percentile_table,
    fleet_report,
    incident_table,
    merged_sketches,
    run_device,
)
from repro.obs import QuantileSketch, validate_timeline_doc


@pytest.fixture(scope="module")
def fleet_runs():
    """Run the default 3-device fleet once; share across tests."""
    specs = default_fleet(n_devices=3, seed=42)
    return specs, [run_device(spec) for spec in specs]


@pytest.fixture(scope="module")
def report():
    # Legacy seeding: these assertions pin the original 3-device golden
    # behaviour (the splitmix stream is covered separately below).
    return fleet_report(specs=default_fleet(seed=42, seeding="legacy"),
                        seed=42)


class TestMergeEqualsPooled:
    def test_fleet_percentiles_match_pooled_sample_sketch(self, fleet_runs):
        # ACCEPTANCE: merging the per-device sketches must equal a
        # single sketch fed every device's raw samples, exactly.
        _, runs = fleet_runs
        monitors = [monitor for _, monitor in runs]
        fleet = merged_sketches(monitors)
        assert fleet  # the fleet observed completed requests
        for key in fleet:
            pooled = QuantileSketch(alpha=monitors[0].sketch_alpha)
            for service, _ in runs:
                field, _, tier = key.partition("/")
                for record in service.requests:
                    if record.status == "completed" and record.tier == tier:
                        pooled.observe(_sample(record, field))
            assert pooled.count == fleet[key].count
            assert pooled.to_dict() == fleet[key].to_dict()
            for q in (50.0, 90.0, 95.0, 99.0):
                assert fleet[key].percentile(q) == pooled.percentile(q)

    def test_merge_order_does_not_matter(self, fleet_runs):
        _, runs = fleet_runs
        monitors = [monitor for _, monitor in runs]
        forward = merged_sketches(monitors)
        backward = merged_sketches(list(reversed(monitors)))
        for key in forward:
            assert forward[key].to_dict() == backward[key].to_dict()


def _sample(record, field):
    if field == "turnaround_s":
        return record.turnaround_s
    if field == "queueing_s":
        return record.queueing_s
    if field == "energy_j":
        return record.report.energy_j
    raise AssertionError(f"unexpected sketch key field {field!r}")


class TestFleetReport:
    def test_structure_and_schema(self, report):
        assert report["schema"] == FLEET_SCHEMA
        assert report["n_devices"] == 3
        names = [device["name"] for device in report["devices"]]
        assert names == ["dev00-k70", "dev01-k60", "dev02-budget"]
        for device in report["devices"]:
            assert device["n_requests"] == 22
            assert device["n_completed"] <= device["n_requests"]
        validate_timeline_doc(report["alerts"])

    def test_budget_device_suffers_most(self, report):
        healthy, storm = report["devices"][0], report["devices"][2]
        assert storm["n_completed"] < healthy["n_completed"]
        assert storm["n_incidents"] > healthy["n_incidents"]
        assert storm["n_faults"] > 0

    def test_firing_incidents_cross_link(self, report):
        firing = [inc for inc in report["alerts"]["incidents"]
                  if inc["firing_s"] is not None]
        assert firing
        for incident in firing:
            assert incident["links"]
            for link in incident["links"]:
                assert link["kind"] in ("request", "fault")

    def test_percentile_snaps_mirror_sketch_payloads(self, report):
        for key, snap in report["percentiles"].items():
            sketch = QuantileSketch.from_dict(report["sketches"][key])
            assert snap["count"] == sketch.count
            if snap["count"]:
                assert snap["p50"] == sketch.percentile(50.0)

    def test_golden_json_deterministic(self):
        assert fleet_golden_json(seed=42) == fleet_golden_json(seed=42)

    def test_seed_changes_report(self):
        assert fleet_golden_json(seed=42) != fleet_golden_json(seed=7)

    def test_tables_render(self, report):
        for table in (fleet_percentile_table(report),
                      fleet_compliance_table(report),
                      incident_table(report["alerts"])):
            text = table.render()
            assert len(text.splitlines()) > 3


class TestFaultStorm:
    def test_storm_timeline_is_deterministic_and_fires(self):
        first = fault_storm_monitor(seed=42)
        second = fault_storm_monitor(seed=42)
        assert first.timeline_json() == second.timeline_json()
        doc = first.timeline()
        validate_timeline_doc(doc)
        firing = [inc for inc in doc["incidents"]
                  if inc["firing_s"] is not None]
        assert firing
        for incident in firing:
            assert incident["links"]

    def test_storm_sees_fault_draws(self):
        monitor = fault_storm_monitor(seed=42)
        assert monitor.n_faults > 0
        doc = monitor.timeline()
        fault_links = [link
                       for inc in doc["incidents"]
                       for link in inc["links"]
                       if link["kind"] == "fault"]
        assert fault_links
        for link in fault_links:
            assert link["fault"] in ("transient", "permanent")


class TestDefaultFleet:
    def test_templates_cycle_beyond_three(self):
        specs = default_fleet(n_devices=5, seed=42)
        assert len(specs) == 5
        assert specs[3].device_name == specs[0].device_name
        assert len({spec.seed for spec in specs}) == 5

    def test_rejects_bad_size(self):
        with pytest.raises(Exception):
            default_fleet(n_devices=0)


class TestArrivalJitter:
    """Satellite: per-device Poisson arrival jitter for splitmix fleets.

    The jitter redraws *when* requests land, never *what* they are —
    the golden workload samples survive verbatim, and the legacy
    seeding ladder stays on the fixed golden cadence so committed
    fleet goldens remain bit-for-bit.
    """

    def test_jitter_preserves_golden_workload(self):
        from repro.eval import jittered_arrivals
        from repro.eval.service_eval import two_tier_arrivals
        golden = two_tier_arrivals(n_interactive=12, n_background=10,
                                   seed=42)
        jittered = jittered_arrivals(n_interactive=12, n_background=10,
                                     seed=42)
        assert [(t, s) for t, s, _ in jittered] == \
            [(t, s) for t, s, _ in golden]
        assert [t for _, _, t in jittered] != [t for _, _, t in golden]

    def test_jitter_is_deterministic(self):
        from repro.eval import jittered_arrivals
        assert jittered_arrivals(seed=7) == jittered_arrivals(seed=7)

    def test_jitter_decorrelates_seeds(self):
        from repro.eval import jittered_arrivals
        a = [t for _, _, t in jittered_arrivals(seed=1)]
        b = [t for _, _, t in jittered_arrivals(seed=2)]
        assert a != b

    def test_arrivals_are_monotone_per_tier(self):
        from repro.eval import jittered_arrivals
        stream = jittered_arrivals(seed=42)
        for tier in ("interactive", "background"):
            times = [t for tr, _, t in stream if tr == tier]
            assert times == sorted(times)
            assert all(t > 0 for t in times)

    def test_splitmix_fleet_gets_poisson_arrivals(self):
        for spec in default_fleet(n_devices=4, seed=42,
                                  seeding="splitmix"):
            assert spec.arrival == "poisson"

    def test_legacy_fleet_keeps_golden_arrivals(self):
        for spec in default_fleet(n_devices=3, seed=42,
                                  seeding="legacy"):
            assert spec.arrival == "golden"

    def test_run_device_rejects_unknown_arrival(self):
        from dataclasses import replace

        from repro.errors import ReproError
        spec = replace(default_fleet(n_devices=1, seed=42)[0],
                       arrival="bursty")
        with pytest.raises(ReproError):
            run_device(spec)

    def test_poisson_devices_diverge_where_golden_clones_agree(self):
        # two splitmix devices on the same model/device pair used to
        # replay byte-identical workloads; jitter breaks the tie
        specs = [s for s in default_fleet(n_devices=6, seed=42)
                 if s.arrival == "poisson"][:2]
        assert len(specs) == 2
        finishes = []
        for spec in specs:
            service, _monitor = run_device(spec)
            finishes.append([r.finish_s for r in service.requests])
        assert finishes[0] != finishes[1]
