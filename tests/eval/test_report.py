"""Tests for the table rendering utilities."""

import os

import pytest

from repro.errors import ReproError
from repro.eval.report import Table, format_cell


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_string_passthrough(self):
        assert format_cell("1.5x") == "1.5x"

    def test_int(self):
        assert format_cell(42) == "42"

    def test_float_scaling(self):
        assert format_cell(0.1234) == "0.12"
        assert format_cell(12.34) == "12.3"
        assert format_cell(12345.6) == "12,346"

    def test_zero(self):
        assert format_cell(0.0) == "0"


class TestTable:
    def make(self):
        t = Table("Demo", ["name", "speed"])
        t.add_row("a", 1.5)
        t.add_row("b", 2.5)
        return t

    def test_add_row_validates_width(self):
        t = self.make()
        with pytest.raises(ReproError):
            t.add_row("only-one")

    def test_column_access(self):
        t = self.make()
        assert t.column("speed") == [1.5, 2.5]
        with pytest.raises(ReproError):
            t.column("missing")

    def test_row_by_key(self):
        t = self.make()
        assert t.row_by_key("b") == ["b", 2.5]
        with pytest.raises(ReproError):
            t.row_by_key("z")

    def test_value(self):
        t = self.make()
        assert t.value("a", "speed") == 1.5
        with pytest.raises(ReproError):
            t.value("a", "missing")

    def test_render_contains_everything(self):
        t = self.make()
        t.add_note("hello")
        text = t.render()
        assert "Demo" in text
        assert "speed" in text
        assert "note: hello" in text

    def test_markdown(self):
        md = self.make().to_markdown()
        assert md.startswith("### Demo")
        assert "| name | speed |" in md

    def test_save(self, tmp_path):
        path = os.path.join(tmp_path, "sub", "t.txt")
        self.make().save(path)
        with open(path) as f:
            assert "Demo" in f.read()
