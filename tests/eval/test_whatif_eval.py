"""Critical-path / what-if experiment drivers over the golden workload.

Pins the artifact's determinism + schema shape, the per-request
attribution facts, the calibration contract (what-if columns match
measured rebuilds to sub-nanosecond error), and the fleet roll-up's
opt-in behavior — critpath telemetry must never perturb the committed
``repro.fleet/v1`` golden bytes.
"""

import json

import pytest

from repro.errors import ReproError
from repro.eval import (
    critpath_request_table,
    critpath_stage_table,
    default_fleet,
    dma_ablation,
    fleet_critpath_table,
    fleet_report,
    golden_critpath_doc,
    golden_critpath_json,
    service_critical_paths,
    stage_crossover,
)
from repro.obs import CRITPATH_SCHEMA, validate_critical_path


@pytest.fixture(scope="module")
def golden_paths():
    paths, _service = service_critical_paths(seed=42)
    return paths


class TestGoldenArtifact:
    def test_every_completed_request_has_a_valid_path(self, golden_paths):
        assert len(golden_paths) == 19
        for path in golden_paths:
            assert path.source.startswith("request ")
            validate_critical_path(path)

    def test_doc_is_deterministic_and_schema_stamped(self, golden_paths):
        doc = golden_critpath_doc(seed=42)
        assert doc["schema"] == CRITPATH_SCHEMA
        assert doc["n_paths"] == len(golden_paths)
        # two independent evaluations serialize byte-identically
        assert golden_critpath_json(seed=42) == golden_critpath_json(
            seed=42)
        # and the JSON round-trips the doc exactly (allow_nan=False
        # guarantees no NaN leaks into the artifact)
        assert json.loads(golden_critpath_json(seed=42)) == json.loads(
            json.dumps(doc, sort_keys=True))

    def test_stage_table_partitions_e2e(self, golden_paths):
        table = critpath_stage_table(golden_paths)
        assert abs(sum(table.column("share of e2e %")) - 100.0) < 1e-6
        assert "queued" in table.column("stage")

    def test_request_table_shape(self, golden_paths):
        table = critpath_request_table(golden_paths)
        assert len(table.rows) == len(golden_paths)
        assert all(0.0 <= s <= 100.0
                   for s in table.column("service share %"))


class TestCalibration:
    def test_dma_ablation_whatif_matches_measured(self):
        table = dma_ablation(prompt_len=256, buffer_depths=(1, 2))
        # |measured - predicted| is in nanoseconds and must round to
        # (well under) one — the ISSUE's 1e-9 s acceptance bound
        assert all(err <= 1.0 for err in table.column("|error| ns"))
        measured = table.column("measured ms")
        assert measured[1] > measured[2] >= measured[0]  # serial slowest

    def test_stage_crossover_predicts_the_switch(self):
        table = stage_crossover(prompt_lens=(64, 1024))
        winners = table.column("winner")
        assert set(winners) == {"cpu", "gpu"}
        assert all(err < 5.0 for err in table.column("pred err %"))


class TestFleetRollup:
    @pytest.fixture(scope="class")
    def specs(self):
        return default_fleet(n_devices=2, seed=42)

    def test_critpath_is_opt_in(self, specs):
        plain = fleet_report(specs=specs, seed=42)
        assert "critpath" not in plain
        with pytest.raises(ReproError, match="critpath=True"):
            fleet_critpath_table(plain)

    def test_rollup_adds_only_the_critpath_section(self, specs):
        plain = fleet_report(specs=specs, seed=42)
        enriched = fleet_report(specs=specs, seed=42, critpath=True)
        section = enriched.pop("critpath")
        # byte-stability of the legacy report: everything else is
        # unchanged, so committed fleet goldens cannot drift
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            enriched, sort_keys=True)
        assert section
        for key, snap in section.items():
            assert key.startswith("critpath.")
            assert snap["count"] > 0
            assert snap["sum"] >= 0.0

    def test_table_ranks_by_total_gated_time(self, specs):
        report = fleet_report(specs=specs, seed=42, critpath=True)
        table = fleet_critpath_table(report, top=5)
        totals = table.column("total gated s")
        assert totals == sorted(totals, reverse=True)
        assert len(table.rows) <= 5
        # stage names are stripped of the sketch-key prefix
        assert all(not s.startswith("critpath.")
                   for s in table.column("stage"))
