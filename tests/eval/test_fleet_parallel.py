"""Parallel fleet fan-out: byte-identity and the SplitMix seed stream.

The 1000-device fleet runs its per-device pipelines through a
multiprocessing pool, then merges payloads in canonical spec order, so
``fleet_report`` must be a pure function of its specs — *byte-identical*
JSON for any worker count and any submission order of the same specs.
"""

import json

import pytest

from repro.errors import ReproError
from repro.eval.fleet import (
    default_fleet,
    fleet_golden_json,
    fleet_report,
    seed_stream,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


class TestSeedStream:
    def test_deterministic_and_sized(self):
        assert seed_stream(42, 10) == seed_stream(42, 10)
        assert len(seed_stream(42, 1000)) == 1000

    def test_prefix_stable(self):
        # Growing the fleet must not reseed existing devices.
        assert seed_stream(42, 1000)[:10] == seed_stream(42, 10)

    def test_decorrelated_31_bit(self):
        seeds = seed_stream(42, 1000)
        assert len(set(seeds)) == 1000
        assert all(0 <= s < 2 ** 31 for s in seeds)
        # no arithmetic-progression structure like the legacy ladder
        gaps = {b - a for a, b in zip(seeds, seeds[1:])}
        assert len(gaps) > 900

    def test_seed_selects_stream(self):
        assert seed_stream(42, 10) != seed_stream(7, 10)


class TestDefaultFleetSeeding:
    def test_splitmix_is_the_default(self):
        specs = default_fleet(n_devices=5, seed=42)
        assert [s.seed for s in specs] == seed_stream(42, 5)

    def test_legacy_ladder_preserved(self):
        # The committed 3-device goldens pin the original ladder.
        specs = default_fleet(n_devices=3, seed=42, seeding="legacy")
        assert [s.seed for s in specs] == [42, 142, 242]

    def test_unknown_seeding_rejected(self):
        with pytest.raises(ReproError, match="seeding"):
            default_fleet(n_devices=3, seeding="fibonacci")


@pytest.fixture(scope="module")
def splitmix_specs():
    return default_fleet(n_devices=4, seed=42)


@pytest.fixture(scope="module")
def sequential_json(splitmix_specs):
    return json.dumps(fleet_report(specs=splitmix_specs, seed=42, workers=1))


class TestParallelByteIdentity:
    @pytest.mark.parametrize("workers", [2, 8])
    def test_worker_count_is_invisible(self, splitmix_specs,
                                       sequential_json, workers):
        # ACCEPTANCE: the parallel fleet report is byte-identical to the
        # sequential one — worker count may only change wall-clock.
        parallel = json.dumps(fleet_report(specs=splitmix_specs, seed=42,
                                           workers=workers))
        assert parallel == sequential_json

    @settings(max_examples=3, deadline=None)
    @given(rng=st.randoms(use_true_random=False),
           workers=st.sampled_from([1, 2, 8]))
    def test_spec_order_is_invisible(self, splitmix_specs, sequential_json,
                                     rng, workers):
        # Specs are canonically sorted before the fan-out, so submission
        # order cannot leak into the report either.
        shuffled = list(splitmix_specs)
        rng.shuffle(shuffled)
        report = json.dumps(fleet_report(specs=shuffled, seed=42,
                                         workers=workers))
        assert report == sequential_json

    def test_legacy_golden_unchanged_by_workers(self):
        assert fleet_golden_json(seed=42, workers=4) == \
            fleet_golden_json(seed=42)

    def test_workers_must_be_positive(self, splitmix_specs):
        with pytest.raises(ReproError):
            fleet_report(specs=splitmix_specs, seed=42, workers=0)


class TestScaledFleet:
    def test_thousand_device_specs_are_well_formed(self):
        specs = default_fleet(n_devices=1000, seed=42)
        assert len(specs) == 1000
        assert len({s.name for s in specs}) == 1000
        assert len({s.seed for s in specs}) == 1000
        # templates cycle flagship / mid-tier / budget
        assert specs[999].device_name == specs[0].device_name
