"""Golden regression test for the service scheduler.

One seeded two-tier overload workload (with a seeded transient-fault
injector) is played through the priority+admission scheduler; the
assertions pin the exact shed counts, the latency buckets, and the
per-tier throughput.  Any future change to the admission formula, the
queue order, the retry policy, or the engine cost models that moves
these numbers trips this test — which is the point: such changes must be
deliberate, and must update the goldens alongside the code.
"""

import pytest

from repro.eval import service_golden_records, service_golden_snapshot

GOLDEN_SEED = 42


@pytest.fixture(scope="module")
def golden_service():
    return service_golden_records(seed=GOLDEN_SEED)


class TestGoldenCounts:
    def test_shed_counts(self, golden_service):
        m = golden_service.metrics()
        assert m.n_requests == 22
        assert m.n_completed == 19
        assert m.n_rejected == 3
        assert m.n_timeout == 0
        assert m.n_failed == 0
        assert m.n_retries == 1  # one injected transient fault recovered

    def test_per_tier_counts(self, golden_service):
        m = golden_service.metrics()
        interactive = m.tier("interactive")
        background = m.tier("background")
        assert (interactive.n_requests, interactive.n_completed,
                interactive.n_rejected) == (12, 12, 0)
        assert (background.n_requests, background.n_completed,
                background.n_rejected) == (10, 7, 3)


class TestGoldenLatency:
    def test_interactive_buckets(self, golden_service):
        t = golden_service.metrics().tier("interactive")
        assert t.p50_turnaround_s == pytest.approx(2.3224096229, rel=1e-6)
        assert t.p95_turnaround_s == pytest.approx(2.7933250528, rel=1e-6)
        assert t.mean_queueing_s == pytest.approx(1.1408938783, rel=1e-6)

    def test_background_buckets(self, golden_service):
        t = golden_service.metrics().tier("background")
        assert t.p50_turnaround_s == pytest.approx(23.0360672971, rel=1e-6)
        assert t.p95_turnaround_s == pytest.approx(27.9678230197, rel=1e-6)

    def test_per_tier_throughput(self, golden_service):
        m = golden_service.metrics()
        assert m.tier("interactive").throughput_rps == pytest.approx(
            0.3699352986, rel=1e-6)
        assert m.tier("background").throughput_rps == pytest.approx(
            0.2157955909, rel=1e-6)
        assert m.span_s == pytest.approx(32.4381048391, rel=1e-6)
        assert m.npu_utilization == pytest.approx(0.6300434620, rel=1e-6)


class TestGoldenDeterminism:
    def test_two_runs_identical(self):
        """The regression tripwire: byte-identical consecutive runs."""
        assert service_golden_snapshot(GOLDEN_SEED) == \
            service_golden_snapshot(GOLDEN_SEED)

    def test_records_are_pure_function_of_seed(self, golden_service):
        again = service_golden_records(seed=GOLDEN_SEED)
        assert [r.key() for r in golden_service.requests] == \
            [r.key() for r in again.requests]

    def test_different_seed_differs(self, golden_service):
        other = service_golden_records(seed=GOLDEN_SEED + 1)
        assert [r.key() for r in golden_service.requests] != \
            [r.key() for r in other.requests]
