"""Integration tests spanning the numerical and systems stacks."""

import numpy as np
import pytest

from repro.core import EngineConfig, LlmNpuEngine
from repro.graph.builder import ShadowProfile
from repro.model import ToyTokenizer, build_synthetic_model, tiny_config
from repro.model.sampler import generate
from repro.quant import quantize_model, top1_agreement
from repro.quant.observers import calibrate
from repro.workloads import (
    calibration_corpus,
    heldout_sequences,
    sample_workload,
    ui_view_hierarchy,
)
from repro.workloads.datasets import WORKLOADS


class TestNumericalToSystemsBridge:
    """Calibration measured on the numerical model drives the engine."""

    def test_measured_outliers_feed_shadow_profiles(self):
        cfg = tiny_config(n_layers=8)
        model = build_synthetic_model(cfg, seed=3)
        calib = calibrate(model, calibration_corpus(cfg, seed=3),
                          channel_percentile=96.0)
        # derive per-layer shadow profiles from *measured* statistics
        from repro.quant.importance import make_pruning_plan
        plan = make_pruning_plan(calib, pruning_rate=0.75)
        profiles = {}
        for layer in range(cfg.n_layers):
            site = calib[(layer, "wq")]
            profiles[layer] = ShadowProfile(
                outlier_channels=max(1, int(site.mean_outlier_channels())),
                pruned=plan.is_pruned(layer),
            )
        # and run the simulator engine over them
        engine = LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro")
        plans = [engine.builder.build_chunk(i, 256, profiles)
                 for i in range(2)]
        from repro.core.pipeline import run_prefill
        report = run_prefill(plans, engine.device, 512)
        assert report.latency_s > 0
        assert report.trace is not None

    def test_quantized_generation_matches_reference_mostly(self):
        cfg = tiny_config(n_layers=8)
        reference = build_synthetic_model(cfg, seed=3)
        prompt = np.random.default_rng(0).integers(4, cfg.vocab_size,
                                                   size=24)
        ref_out = generate(reference, prompt, max_new_tokens=8)

        quantized = build_synthetic_model(cfg, seed=3)
        quantize_model(quantized, "llm.npu",
                       calib_corpus=calibration_corpus(cfg, seed=3),
                       pruning_rate=0.0)
        q_out = generate(quantized, prompt, max_new_tokens=8)
        # greedy decoding from a near-lossless quantized model should
        # agree on most of the continuation
        agreement = np.mean(ref_out == q_out)
        assert agreement >= 0.5

    def test_chunked_quantized_prefill_consistent(self):
        # Chunking nearly commutes with quantization.  It is not
        # bit-exact: shadow outlier extraction is per-invocation (a
        # column's outlier status depends on the batch's column max, §3.3),
        # so chunked calls may compensate slightly different column sets —
        # but the predictions must agree.
        cfg = tiny_config(n_layers=4)
        model = build_synthetic_model(cfg, seed=9)
        quantize_model(model, "llm.npu",
                       calib_corpus=calibration_corpus(cfg, seed=9))
        ids = np.random.default_rng(1).integers(4, cfg.vocab_size, size=21)
        whole = model.prefill(ids)
        chunked = model.prefill_chunked(ids, 6)
        assert top1_agreement(whole, chunked) >= 0.9
        # and the logits stay numerically close
        rel = (np.linalg.norm(whole - chunked)
               / (np.linalg.norm(whole) + 1e-9))
        assert rel < 0.05


class TestTokenizerToEngine:
    def test_prompt_text_to_latency(self):
        tokenizer = ToyTokenizer()
        text = ui_view_hierarchy(seed=0)
        tokens = tokenizer.count(text)
        engine = LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro")
        report = engine.infer(tokens, output_tokens=3)
        assert report.prompt_tokens == tokens
        assert 0 < report.e2e_latency_s < 30


class TestAllModelsAllDevices:
    @pytest.mark.parametrize("model", [
        "Qwen1.5-1.8B", "Gemma-2B", "Phi-2-2.7B", "LlaMA-2-7B",
        "Mistral-7B",
    ])
    @pytest.mark.parametrize("device", ["Redmi K70 Pro", "Redmi K60 Pro"])
    def test_every_pair_runs(self, model, device):
        engine = LlmNpuEngine.build(model, device, max_chunks=2)
        report = engine.infer(300, output_tokens=1)
        assert report.prefill_latency_s > 0
        assert report.energy_j > 0
        assert report.memory_bytes > 0

    def test_bigger_models_are_slower(self):
        speeds = {}
        for model in ("Qwen1.5-1.8B", "Phi-2-2.7B", "LlaMA-2-7B"):
            engine = LlmNpuEngine.build(model, "Redmi K70 Pro")
            speeds[model] = engine.prefill(512).tokens_per_s
        assert (speeds["Qwen1.5-1.8B"] > speeds["Phi-2-2.7B"]
                > speeds["LlaMA-2-7B"])


class TestWorkloadsThroughEngines:
    def test_every_workload_end_to_end(self):
        engine = LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro")
        for spec in WORKLOADS.values():
            sample = sample_workload(spec, 1, seed=0)[0]
            report = engine.infer(sample.prompt_tokens,
                                  sample.output_tokens)
            assert report.e2e_latency_s > 0


class TestQuantSchemeConsistency:
    """The same heldout data ranks schemes consistently across seeds."""

    @pytest.mark.parametrize("seed", [3, 11])
    def test_ordering_stable(self, seed):
        cfg = tiny_config(n_layers=8)
        reference = build_synthetic_model(cfg, seed=seed)
        heldout = heldout_sequences(cfg, 3, 32, seed=seed + 500)
        ref_logits = np.concatenate(
            [reference.prefill(ids) for ids in heldout]
        )
        corpus = calibration_corpus(cfg, seed=seed)
        scores = {}
        for scheme in ("per-tensor", "llm.int8"):
            model = build_synthetic_model(cfg, seed=seed)
            quantize_model(model, scheme, calib_corpus=corpus)
            logits = np.concatenate(
                [model.prefill(ids) for ids in heldout]
            )
            scores[scheme] = top1_agreement(ref_logits, logits)
        assert scores["llm.int8"] > scores["per-tensor"]
