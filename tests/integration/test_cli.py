"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp in ("fig14", "table6", "fig19"):
            assert exp in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_infer_defaults(self, capsys):
        assert main(["infer", "--prompt-tokens", "256",
                     "--output-tokens", "1"]) == 0
        out = capsys.readouterr().out
        assert "llm.npu" in out
        assert "tok/s" in out

    def test_infer_custom_model(self, capsys):
        assert main(["infer", "--model", "Gemma-2B",
                     "--prompt-tokens", "256", "--output-tokens", "0",
                     "--pruning-rate", "0.5"]) == 0
        assert "Gemma-2B" in capsys.readouterr().out

    def test_run_quick_experiment(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "per-tensor" in out

    def test_run_multiple(self, capsys):
        assert main(["run", "table3", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Figure 8" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExperimentRegistry:
    def test_registry_complete(self):
        # every table and figure of the evaluation section (14) plus the
        # extension ablations, the calibration dashboard, the
        # service-layer experiments (incl. service-batching), fleet-slo,
        # dma-overlap, the critical-path trio (service-critpath,
        # dma-ablation, stage-crossover), and diff-eval
        assert len(EXPERIMENTS) == 35
        paper = [n for n in EXPERIMENTS
                 if n.startswith(("fig", "table"))]
        assert len(paper) == 14

    def test_descriptions_nonempty(self):
        for name, (desc, fn) in EXPERIMENTS.items():
            assert desc
            assert callable(fn)


class TestQuantizeCommand:
    def test_synthetic_quantize_roundtrip(self, tmp_path, capsys):
        import os
        out = os.path.join(tmp_path, "q.npz")
        assert main(["quantize", "--output", out,
                     "--scheme", "llm.npu"]) == 0
        stdout = capsys.readouterr().out
        assert "teacher-agreement" in stdout
        assert os.path.exists(out)

class TestProfileCommand:
    def test_single_inference_profile(self, tmp_path, capsys):
        import json
        import os
        profile_path = os.path.join(tmp_path, "profile.json")
        flame_path = os.path.join(tmp_path, "stacks.txt")
        assert main(["profile", "--prompt-tokens", "64",
                     "--output-tokens", "2",
                     "--profile-out", profile_path,
                     "--flamegraph-out", flame_path]) == 0
        out = capsys.readouterr().out
        assert "Per-processor attribution" in out
        assert "roofline" in out
        with open(profile_path) as f:
            doc = json.load(f)
        assert doc["schema"] == "repro.profile/v1"
        with open(flame_path) as f:
            lines = f.read().splitlines()
        assert lines and all(line.rsplit(" ", 1)[1].isdigit()
                             for line in lines)

    def test_service_profile_experiment(self, capsys):
        assert main(["run", "service-profile"]) == 0
        out = capsys.readouterr().out
        assert "golden service workload" in out
        assert "Energy attribution" in out


class TestBenchCompareCommand:
    def _artifact(self, tmp_path, name, e2e):
        from repro.eval.report import Table
        from repro.obs import make_artifact
        table = Table(title="t", columns=["config", "e2e s"])
        table.add_row("baseline", e2e)
        return make_artifact("t", table, env={}).save(
            str(tmp_path / f"BENCH_{name}.json")
        )

    def test_identical_artifacts_pass(self, tmp_path, capsys):
        base = self._artifact(tmp_path, "a", 2.0)
        assert main(["bench-compare", base, base]) == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_regression_fails(self, tmp_path, capsys):
        base = self._artifact(tmp_path, "a", 2.0)
        cand = self._artifact(tmp_path, "b", 2.2)  # +10% > 5% tolerance
        assert main(["bench-compare", base, cand]) == 1
        captured = capsys.readouterr()
        assert "regressed" in captured.out
        assert "FAIL" in captured.err

    def test_loose_tolerance_passes(self, tmp_path):
        base = self._artifact(tmp_path, "a", 2.0)
        cand = self._artifact(tmp_path, "b", 2.2)
        assert main(["bench-compare", "--rel-tol", "0.2",
                     base, cand]) == 0

    def test_unreadable_artifact_is_usage_error(self, tmp_path, capsys):
        base = self._artifact(tmp_path, "a", 2.0)
        assert main(["bench-compare", base,
                     str(tmp_path / "missing.json")]) == 2
        assert "bench-compare" in capsys.readouterr().err

    def test_empty_baseline_dir_is_usage_error(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        candidate = tmp_path / "candidate"
        baseline.mkdir()
        candidate.mkdir()
        assert main(["bench-compare", str(baseline), str(candidate)]) == 2
        assert "no BENCH_*.json artifacts" in capsys.readouterr().err


class TestFleetCommands:
    def test_fleet_writes_valid_artifacts(self, tmp_path, capsys):
        report_path = tmp_path / "fleet_report.json"
        alerts_path = tmp_path / "fleet_alerts.json"
        assert main(["fleet", "--devices", "3", "--seed", "42",
                     "--report-out", str(report_path),
                     "--alerts-out", str(alerts_path)]) == 0
        out = capsys.readouterr().out
        assert "Fleet percentiles" in out
        assert "dev02-budget" in out
        import json
        from repro.eval import FLEET_SCHEMA
        from repro.obs import validate_timeline_doc
        report = json.loads(report_path.read_text())
        assert report["schema"] == FLEET_SCHEMA
        validate_timeline_doc(json.loads(alerts_path.read_text()))

    def test_monitor_writes_valid_timeline(self, tmp_path, capsys):
        alerts_path = tmp_path / "storm_alerts.json"
        assert main(["monitor", "--seed", "42",
                     "--alerts-out", str(alerts_path)]) == 0
        out = capsys.readouterr().out
        assert "burn" in out
        import json
        from repro.obs import validate_timeline_doc
        doc = json.loads(alerts_path.read_text())
        validate_timeline_doc(doc)
        assert any(inc["firing_s"] is not None for inc in doc["incidents"])

    def test_fleet_slo_experiment_runs(self, capsys):
        assert main(["run", "fleet-slo"]) == 0
        out = capsys.readouterr().out
        assert "Fleet percentiles" in out
        assert "SLO compliance" in out


class TestQuantizeCommandCheckpoint:
    def test_checkpoint_workflow(self, tmp_path, capsys):
        # save float checkpoint -> quantize via CLI -> reload
        import os
        from repro.model import build_synthetic_model, tiny_config
        from repro.model.io import save_model, load_model
        from repro.quant import load_quantized
        cfg = tiny_config(n_layers=4)
        float_path = os.path.join(tmp_path, "float.npz")
        q_path = os.path.join(tmp_path, "quant.npz")
        save_model(build_synthetic_model(cfg, seed=5), float_path)
        assert main(["quantize", "--input", float_path,
                     "--output", q_path, "--scheme", "per-tensor"]) == 0
        target = load_model(float_path)
        assert len(load_quantized(target, q_path)) == 4 * 7


class TestCliErrorPaths:
    def test_fleet_zero_devices_is_usage_error(self, capsys):
        assert main(["fleet", "--devices", "0"]) == 2
        err = capsys.readouterr().err
        assert "fleet:" in err
        assert "at least one device" in err

    def test_monitor_bad_fault_rate_is_usage_error(self, capsys):
        assert main(["monitor", "--transient-rate", "2.0"]) == 2
        err = capsys.readouterr().err
        assert "monitor:" in err
        assert "transient_rate" in err

    def test_explain_unknown_request_id(self, capsys):
        assert main(["explain", "99999", "--batched"]) == 2
        err = capsys.readouterr().err
        assert "explain:" in err
        assert "unknown request id" in err

    def test_explain_missing_steplog_file(self, tmp_path, capsys):
        assert main(["explain", "--steplog",
                     str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert "explain:" in err
        assert "cannot read" in err

    def test_explain_invalid_steplog_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["explain", "--steplog", str(path)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_explain_empty_steplog_doc(self, tmp_path, capsys):
        import json
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({}))
        assert main(["explain", "--steplog", str(path)]) == 2
        assert "expected schema" in capsys.readouterr().err


class TestExplainCommand:
    def test_table_mode(self, capsys):
        assert main(["explain", "--batched"]) == 0
        out = capsys.readouterr().out
        assert "Wait attribution" in out
        assert "top blocker" in out

    def test_single_request_narrative(self, capsys):
        assert main(["explain", "7", "--batched"]) == 0
        out = capsys.readouterr().out
        assert "request 00007" in out
        assert "decisions:" in out
        assert "reconciliation:" in out

    def test_steplog_out_roundtrip(self, tmp_path, capsys):
        import json
        from repro.obs import validate_steps_doc
        path = tmp_path / "steps.json"
        assert main(["explain", "--batched",
                     "--steplog-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        validate_steps_doc(doc)
        assert doc["n_steps"] > 0
        # the written file feeds back through --steplog
        assert main(["explain", "7", "--steplog", str(path)]) == 0
        assert "request 00007" in capsys.readouterr().out
