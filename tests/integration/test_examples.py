"""Smoke tests: every example script runs cleanly as __main__."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "examples",
)

EXAMPLES = [
    "quickstart.py",
    "ui_automation.py",
    "email_reply.py",
    "chat_summary.py",
    "custom_device.py",
    "assistant_chat.py",
    "fleet_monitor.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_examples_directory_complete():
    present = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    # the quantization playground is covered by its own (slow) marker-less
    # run below; everything listed must exist
    for script in EXAMPLES + ["quantization_playground.py"]:
        assert script in present


@pytest.mark.slow
def test_quantization_playground_runs(capsys):
    path = os.path.join(EXAMPLES_DIR, "quantization_playground.py")
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert "llm.npu" in out
    assert "pruning" in out
