"""Fault injection, typed engine errors, and retry-with-backoff."""

import pytest

from repro.core import (
    FAULT_ATTEMPT_FRACTION,
    EngineConfig,
    LlmNpuEngine,
    LlmService,
    TierPolicy,
)
from repro.errors import (
    EngineError,
    PermanentEngineError,
    SchedulingError,
    TransientEngineError,
)
from repro.hw.sim import FaultInjector, FaultSpec

MODEL = "Qwen1.5-1.8B"
DEVICE = "Redmi K70 Pro"


class TestFaultInjector:
    def test_scripted_draws(self):
        inj = FaultInjector(FaultSpec(script=("transient", None,
                                              "permanent")))
        assert inj.draw() == "transient"
        assert inj.draw() is None
        assert inj.draw() == "permanent"
        assert inj.draw() is None  # past the script: fault-free
        assert inj.n_draws == 4
        assert inj.n_injected("transient") == 1
        assert inj.n_injected("permanent") == 1

    def test_check_raises_typed_errors(self):
        inj = FaultInjector(FaultSpec(script=("transient", "permanent")))
        with pytest.raises(TransientEngineError):
            inj.check()
        with pytest.raises(PermanentEngineError):
            inj.check()
        inj.check()  # no fault left

    def test_typed_errors_are_engine_errors(self):
        assert issubclass(TransientEngineError, EngineError)
        assert issubclass(PermanentEngineError, EngineError)

    def test_seeded_draws_are_deterministic(self):
        spec = FaultSpec(transient_rate=0.3, permanent_rate=0.1, seed=11)
        draws_a = [FaultInjector(spec).draw() for _ in range(1)]
        first = FaultInjector(spec)
        draws_a = [first.draw() for _ in range(64)]
        second = FaultInjector(spec)
        draws_b = [second.draw() for _ in range(64)]
        assert draws_a == draws_b
        assert "transient" in draws_a  # the rates actually fire
        assert "permanent" in draws_a

    def test_suspension_consumes_nothing(self):
        inj = FaultInjector(FaultSpec(script=("transient",)))
        with inj.suspended():
            assert inj.draw() is None
            assert inj.n_draws == 0
        with pytest.raises(TransientEngineError):
            inj.check()

    def test_spec_validation(self):
        with pytest.raises(SchedulingError):
            FaultSpec(transient_rate=1.2)
        with pytest.raises(SchedulingError):
            FaultSpec(transient_rate=0.7, permanent_rate=0.7)
        with pytest.raises(SchedulingError):
            FaultSpec(script=("flaky",))


class TestEngineHook:
    def test_infer_raises_then_recovers(self):
        engine = LlmNpuEngine.build(
            MODEL, DEVICE,
            fault_injector=FaultInjector(FaultSpec(script=("transient",))),
        )
        with pytest.raises(TransientEngineError):
            engine.infer(512, 2)
        report = engine.infer(512, 2)  # script exhausted: succeeds
        assert report.e2e_latency_s > 0

    def test_infer_permanent(self):
        engine = LlmNpuEngine.build(
            MODEL, DEVICE,
            fault_injector=FaultInjector(FaultSpec(script=("permanent",))),
        )
        with pytest.raises(PermanentEngineError):
            engine.infer(512, 2)

    def test_no_injector_is_fault_free(self):
        engine = LlmNpuEngine.build(MODEL, DEVICE)
        engine.check_fault()  # no-op
        assert engine.fault_injector is None


def tiers(max_retries=2, backoff=0.05, timeout=float("inf")):
    return {"interactive": TierPolicy(
        "interactive", 10, timeout_s=timeout,
        max_retries=max_retries, retry_backoff_s=backoff,
    )}


def run_one(fault_spec, **tier_kwargs):
    svc = LlmService(DEVICE, EngineConfig(), admission=False,
                     fault_spec=fault_spec, tiers=tiers(**tier_kwargs))
    svc.enqueue(MODEL, 512, 2, arrival_s=0.0, tier="interactive")
    return svc.run()[0]


@pytest.fixture(scope="module")
def clean_record():
    """The same request served fault-free (the timing baseline)."""
    return run_one(None)


class TestServiceRetries:
    def test_transient_retried_with_backoff(self, clean_record):
        record = run_one(FaultSpec(script=("transient",)))
        assert record.status == "completed"
        assert record.retries == 1
        e2e = clean_record.service_s
        # dead attempt burns a fraction of the service time, then one
        # backoff period elapses, then the retry runs to completion
        expected = FAULT_ATTEMPT_FRACTION * e2e + 0.05 + e2e
        assert record.service_s == pytest.approx(expected, rel=1e-9)

    def test_backoff_is_exponential(self, clean_record):
        record = run_one(FaultSpec(script=("transient", "transient")))
        assert record.status == "completed"
        assert record.retries == 2
        e2e = clean_record.service_s
        expected = (2 * FAULT_ATTEMPT_FRACTION * e2e  # two dead attempts
                    + 0.05 + 0.10                     # backoff doubles
                    + e2e)
        assert record.service_s == pytest.approx(expected, rel=1e-9)

    def test_retry_cap_exhausted_fails(self, clean_record):
        record = run_one(
            FaultSpec(script=("transient",) * 5), max_retries=2)
        assert record.status == "failed"
        assert record.retries == 2  # the cap
        assert record.report is None
        e2e = clean_record.service_s
        expected = 3 * FAULT_ATTEMPT_FRACTION * e2e + 0.05 + 0.10
        assert record.service_s == pytest.approx(expected, rel=1e-9)

    def test_permanent_fault_never_retried(self, clean_record):
        record = run_one(FaultSpec(script=("permanent",)), max_retries=5)
        assert record.status == "failed"
        assert record.retries == 0
        assert record.service_s == pytest.approx(
            FAULT_ATTEMPT_FRACTION * clean_record.service_s, rel=1e-9)

    def test_retry_respects_deadline(self):
        # the first backoff period already crosses the deadline
        record = run_one(FaultSpec(script=("transient",) * 5),
                         max_retries=5, backoff=10.0, timeout=1.0)
        assert record.status == "timeout"
        assert record.report is None

    def test_submit_path_retries_too(self):
        svc = LlmService(DEVICE, admission=False,
                         fault_spec=FaultSpec(script=("transient",)),
                         tiers=tiers())
        record = svc.submit(MODEL, 512, 2, tier="interactive")
        assert record.status == "completed"
        assert record.retries == 1


class TestZeroFaultIdentity:
    def serve(self, fault_spec):
        svc = LlmService(DEVICE, EngineConfig(), admission=False,
                         fault_spec=fault_spec, tiers=tiers())
        for i in range(4):
            svc.enqueue(MODEL, 512 + 64 * i, 2, arrival_s=0.7 * i,
                        tier="interactive")
        return svc.run()

    def test_zero_rate_injector_is_byte_identical(self):
        """An attached injector with zero rates must not perturb
        anything relative to no injector at all."""
        without = self.serve(None)
        with_zero = self.serve(FaultSpec(transient_rate=0.0,
                                         permanent_rate=0.0, seed=123))
        assert [r.key() for r in without] == [r.key() for r in with_zero]

    def test_faulty_run_is_reproducible(self):
        spec = FaultSpec(transient_rate=0.5, seed=9)
        first = self.serve(spec)
        second = self.serve(spec)
        assert [r.key() for r in first] == [r.key() for r in second]
        assert any(r.retries > 0 for r in first)
