"""Tests for the llm.npu engine facade."""

import pytest

from repro.core import EngineConfig, HotChannelPolicy, LlmNpuEngine
from repro.core.hot_channels import (
    cache_saving_fraction,
    shadow_weight_bytes,
)
from repro.errors import EngineError
from repro.hw import REDMI_K60_PRO, REDMI_K70_PRO
from repro.model import QWEN15_18B, GEMMA_2B


@pytest.fixture(scope="module")
def engine():
    return LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro")


class TestConstruction:
    def test_build_from_names(self, engine):
        assert engine.model is QWEN15_18B
        assert engine.device.name == "Redmi K70 Pro"

    def test_build_from_specs(self):
        eng = LlmNpuEngine.build(GEMMA_2B, REDMI_K60_PRO)
        assert eng.model is GEMMA_2B

    def test_build_kwargs_override(self):
        eng = LlmNpuEngine.build(QWEN15_18B, REDMI_K70_PRO, chunk_len=128)
        assert eng.config.chunk_len == 128

    def test_invalid_config(self):
        with pytest.raises(EngineError):
            EngineConfig(chunk_len=0)
        with pytest.raises(EngineError):
            EngineConfig(pruning_rate=1.5)
        with pytest.raises(EngineError):
            EngineConfig(quant_mode="int4")
        with pytest.raises(EngineError):
            EngineConfig(float_backend="dsp")

    def test_max_chunks_capped_by_context(self):
        eng = LlmNpuEngine.build(GEMMA_2B, REDMI_K70_PRO,
                                 chunk_len=4096, max_chunks=100)
        assert eng.graph.max_chunks == GEMMA_2B.max_context // 4096


class TestShadowProfiles:
    def test_pruning_keeps_end_layers(self, engine):
        profiles = engine.shadow_profiles
        assert not profiles[0].pruned
        assert not profiles[QWEN15_18B.n_layers - 1].pruned
        middle = QWEN15_18B.n_layers // 2
        assert profiles[middle].pruned

    def test_default_pruning_rate(self, engine):
        pruned = sum(1 for p in engine.shadow_profiles.values() if p.pruned)
        assert pruned == round(QWEN15_18B.n_layers * 0.85)

    def test_outlier_channels_default(self, engine):
        # 0.3% of 2048 channels ~ 6
        assert engine.shadow_profiles[0].outlier_channels == 6

    def test_zero_pruning_keeps_all(self):
        eng = LlmNpuEngine.build(QWEN15_18B, REDMI_K70_PRO,
                                 pruning_rate=0.0)
        assert eng.n_unpruned_layers() == QWEN15_18B.n_layers


class TestPrefill:
    def test_prefill_latency_positive(self, engine):
        report = engine.prefill(512)
        assert report.latency_s > 0
        assert report.n_chunks == 2

    def test_longer_prompts_take_longer(self, engine):
        assert (engine.prefill(1024).latency_s
                > engine.prefill(256).latency_s)

    def test_prefill_speed_in_paper_ballpark(self, engine):
        # Fig. 14: several hundred to >1000 tok/s for Qwen1.5-1.8B.
        report = engine.prefill(1024)
        assert 400 < report.tokens_per_s < 2000

    def test_short_prompt_pays_padding(self, engine):
        # A 64-token prompt runs a full 256 chunk (§3.2 padding).
        r64 = engine.prefill(64)
        r256 = engine.prefill(256)
        assert r64.latency_s == pytest.approx(r256.latency_s, rel=0.01)
        assert r64.padded_tokens == 192

    def test_invalid_prompt(self, engine):
        with pytest.raises(EngineError):
            engine.prefill(0)

    def test_non_chunking_variant_pays_rebuild(self):
        naive = LlmNpuEngine.build(QWEN15_18B, REDMI_K70_PRO,
                                   chunking=False, quant_mode="per-group",
                                   policy="in-order")
        full = LlmNpuEngine.build(QWEN15_18B, REDMI_K70_PRO)
        assert (naive.prefill(512).latency_s
                > 5 * full.prefill(512).latency_s)

    def test_preparation_cost_only_for_chunking(self):
        full = LlmNpuEngine.build(QWEN15_18B, REDMI_K70_PRO)
        naive = LlmNpuEngine.build(QWEN15_18B, REDMI_K70_PRO,
                                   chunking=False)
        assert full.preparation_s() > 0
        assert naive.preparation_s() == 0.0


class TestInfer:
    def test_report_fields(self, engine):
        report = engine.infer(512, output_tokens=4)
        assert report.engine == "llm.npu"
        assert report.e2e_latency_s == pytest.approx(
            report.prefill_latency_s + report.decode_latency_s
        )
        assert report.energy_j > 0
        assert report.memory_bytes > 0
        assert "prefill_energy_j" in report.extras

    def test_decode_scales_with_tokens(self, engine):
        few = engine.infer(256, output_tokens=2)
        many = engine.infer(256, output_tokens=8)
        assert many.decode_latency_s > 3 * few.decode_latency_s

    def test_summary_string(self, engine):
        text = engine.infer(256, 2).summary()
        assert "llm.npu" in text
        assert "tok/s" in text

    def test_gpu_coordination_same_prefill_lower_e2e(self):
        # Fig. 18: GPU-NPU coordination does not change prefill much but
        # reduces end-to-end latency via faster decode.
        cpu = LlmNpuEngine.build(GEMMA_2B, REDMI_K70_PRO)
        gpu = LlmNpuEngine.build(GEMMA_2B, REDMI_K70_PRO,
                                 float_backend="gpu",
                                 decode_backend="gpu")
        r_cpu = cpu.infer(1024, output_tokens=16)
        r_gpu = gpu.infer(1024, output_tokens=16)
        assert r_gpu.prefill_latency_s == pytest.approx(
            r_cpu.prefill_latency_s, rel=0.35
        )
        assert r_gpu.decode_latency_s < r_cpu.decode_latency_s
        assert r_gpu.e2e_latency_s < r_cpu.e2e_latency_s


class TestHotChannels:
    def test_cache_reduces_memory(self):
        policy = HotChannelPolicy(hot_fraction=0.03)
        saving = cache_saving_fraction(QWEN15_18B, policy)
        assert saving > 0.9

    def test_shadow_weights_small_fraction_of_total(self, engine):
        # Fig. 17: shadow float weights are ~0.6-1% of total memory.
        shadow = engine.shadow_weight_bytes()
        total = engine.memory_bytes(1024)
        assert 0.0005 < shadow / total < 0.03

    def test_disabled_cache_costs_more(self):
        full = shadow_weight_bytes(QWEN15_18B, 4,
                                   HotChannelPolicy(enabled=False))
        cached = shadow_weight_bytes(QWEN15_18B, 4, HotChannelPolicy())
        assert full > 10 * cached

    def test_invalid_policy(self):
        with pytest.raises(EngineError):
            HotChannelPolicy(hot_fraction=1.5)
        with pytest.raises(EngineError):
            shadow_weight_bytes(QWEN15_18B, -1, HotChannelPolicy())


class TestAblationLadder:
    """Fig. 19's shape: each technique gives a meaningful speedup."""

    @pytest.fixture(scope="class")
    def ladder(self):
        variants = {
            "naive": dict(chunking=False, quant_mode="per-group",
                          policy="in-order", equivalent_shapes=False),
            "+chunk": dict(chunking=True, quant_mode="per-group",
                           policy="in-order", equivalent_shapes=False),
            "+outlier": dict(chunking=True, quant_mode="shadow",
                             policy="in-order", equivalent_shapes=False),
            "+ooe": dict(chunking=True, quant_mode="shadow",
                         policy="ooo", equivalent_shapes=False),
        }
        return {
            name: LlmNpuEngine.build(
                QWEN15_18B, REDMI_K70_PRO, **kw
            ).prefill(512).latency_s
            for name, kw in variants.items()
        }

    def test_each_step_improves(self, ladder):
        assert ladder["naive"] > ladder["+chunk"]
        assert ladder["+chunk"] > ladder["+outlier"]
        assert ladder["+ooe"] < ladder["+outlier"] * 1.001

    def test_chunk_gain_band(self, ladder):
        # Paper: 1.46-5.09x from chunk-sharing graphs.
        gain = ladder["naive"] / ladder["+chunk"]
        assert 1.3 < gain < 8.0

    def test_outlier_gain_band(self, ladder):
        # Paper: 3.91-8.68x from shadow execution replacing per-group.
        gain = ladder["+chunk"] / ladder["+outlier"]
        assert 3.0 < gain < 12.0


class TestMemoryValidation:
    def test_7b_fits_the_24gb_device(self):
        import dataclasses
        engine = LlmNpuEngine.build("LlaMA-2-7B", "Redmi K70 Pro")
        memory = engine.validate_memory(1024)
        report = memory.report()
        assert report["dram"] < 24 * 2**30
        # the NPU region holds only the resident (FFN-first) weights
        assert report["npu"] <= 4 * 2**30

    def test_7b_rejected_on_a_4gb_phone(self):
        import dataclasses
        from repro.errors import MemoryLimitError
        from repro.hw.memory import GiB
        budget = dataclasses.replace(REDMI_K70_PRO, name="budget",
                                     dram_bytes=4 * GiB)
        engine = LlmNpuEngine.build("LlaMA-2-7B", budget)
        with pytest.raises(MemoryLimitError):
            engine.validate_memory(1024)

    def test_small_model_fits_a_small_phone(self):
        import dataclasses
        from repro.hw.memory import GiB
        budget = dataclasses.replace(REDMI_K70_PRO, name="budget",
                                     dram_bytes=6 * GiB)
        engine = LlmNpuEngine.build("Qwen1.5-1.8B", budget)
        memory = engine.validate_memory(1024)
        assert memory.report()["dram"] > 0
