"""Tests for the LLM-as-a-System-Service layer."""

import pytest

from repro.core import LlmService
from repro.errors import EngineError
from repro.workloads import UI_AUTOMATION, sample_workload


@pytest.fixture(scope="module")
def service():
    svc = LlmService("Redmi K70 Pro")
    svc.submit("Qwen1.5-1.8B", prompt_tokens=512, output_tokens=2)
    return svc


class TestEngineCache:
    def test_preparation_paid_once(self):
        svc = LlmService("Redmi K70 Pro")
        first = svc.engine_for("Qwen1.5-1.8B")
        prep_after_first = svc.preparation_s()
        second = svc.engine_for("Qwen1.5-1.8B")
        assert first is second
        assert svc.preparation_s() == prep_after_first

    def test_multiple_models(self):
        svc = LlmService("Redmi K70 Pro")
        svc.engine_for("Qwen1.5-1.8B")
        svc.engine_for("Gemma-2B")
        assert svc.loaded_models == ["Gemma-2B", "Qwen1.5-1.8B"]
        assert svc.preparation_s() > svc.preparation_s("Gemma-2B")

    def test_unknown_model_preparation_raises(self, service):
        with pytest.raises(EngineError):
            service.preparation_s("Mistral-7B")


class TestServing:
    def test_first_request_pays_preparation(self):
        svc = LlmService("Redmi K70 Pro")
        record = svc.submit("Qwen1.5-1.8B", 512, 2)
        # arrival is stamped after preparation; service time is the
        # engine's e2e latency
        assert record.service_s == pytest.approx(
            record.report.e2e_latency_s
        )
        assert record.queueing_s == 0.0

    def test_back_to_back_requests_queue(self):
        svc = LlmService("Redmi K70 Pro")
        samples = sample_workload(UI_AUTOMATION, 3)
        records = svc.submit_workload("Qwen1.5-1.8B", samples,
                                      inter_arrival_s=0.0)
        assert records[0].queueing_s == 0.0
        assert records[1].queueing_s > 0.0
        assert records[2].queueing_s > records[1].queueing_s

    def test_sparse_arrivals_do_not_queue(self):
        svc = LlmService("Redmi K70 Pro")
        samples = sample_workload(UI_AUTOMATION, 3)
        records = svc.submit_workload("Qwen1.5-1.8B", samples,
                                      inter_arrival_s=60.0)
        assert all(r.queueing_s == 0.0 for r in records)

    def test_clock_monotone(self):
        svc = LlmService("Redmi K70 Pro")
        records = [svc.submit("Qwen1.5-1.8B", 256, 1) for _ in range(3)]
        finishes = [r.finish_s for r in records]
        assert finishes == sorted(finishes)
        starts = [r.start_s for r in records]
        assert all(s >= f - 1e-9
                   for s, f in zip(starts[1:], finishes[:-1]))

    def test_negative_gap_rejected(self):
        svc = LlmService("Redmi K70 Pro")
        with pytest.raises(EngineError):
            svc.submit_workload("Qwen1.5-1.8B",
                                sample_workload(UI_AUTOMATION, 1),
                                inter_arrival_s=-1.0)


class TestStats:
    def test_empty_raises(self):
        with pytest.raises(EngineError):
            LlmService("Redmi K70 Pro").stats()

    def test_aggregates(self):
        svc = LlmService("Redmi K70 Pro")
        svc.submit_workload("Qwen1.5-1.8B",
                            sample_workload(UI_AUTOMATION, 4),
                            inter_arrival_s=1.0)
        stats = svc.stats()
        assert stats.n_requests == 4
        assert stats.mean_turnaround_s > 0
        assert stats.p95_turnaround_s >= stats.mean_turnaround_s * 0.5
        assert stats.total_energy_j > 0
        assert stats.throughput_rps > 0
        assert stats.preparation_s > 0
