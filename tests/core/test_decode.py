"""Tests for the decode latency model."""

import pytest

from repro.core.decode import DecodeOptions, decode_latency_s, decode_token_s
from repro.errors import EngineError
from repro.hw import REDMI_K70_PRO
from repro.model import QWEN15_18B

DEV = REDMI_K70_PRO


class TestDecodeToken:
    def test_positive(self):
        t = decode_token_s(QWEN15_18B, DEV.cpu, 512, DecodeOptions())
        assert t > 0

    def test_paper_ballpark(self):
        # Table 5: ~80 ms/token for Qwen1.5-1.8B on llama.cpp-CPU; the
        # W8A8 model here should land within ~2.5x of that.
        t = decode_token_s(QWEN15_18B, DEV.cpu, 1500, DecodeOptions())
        assert 0.04 < t < 0.25

    def test_grows_with_kv(self):
        short = decode_token_s(QWEN15_18B, DEV.cpu, 128, DecodeOptions())
        long = decode_token_s(QWEN15_18B, DEV.cpu, 8192, DecodeOptions())
        assert long > short

    def test_gpu_faster_than_cpu(self):
        # Fig. 18(b): the GPU decode backend cuts end-to-end latency.
        from repro.hw.processor import DType
        cpu = decode_token_s(QWEN15_18B, DEV.cpu, 512, DecodeOptions())
        gpu = decode_token_s(
            QWEN15_18B, DEV.gpu, 512,
            DecodeOptions(backend="gpu", weight_dtype=DType.FP16),
        )
        assert gpu < cpu

    def test_per_group_slower(self):
        pt = decode_token_s(QWEN15_18B, DEV.cpu, 512, DecodeOptions())
        pg = decode_token_s(QWEN15_18B, DEV.cpu, 512,
                            DecodeOptions(per_group=True))
        assert pg >= pt

    def test_efficiency_scales(self):
        fast = decode_token_s(QWEN15_18B, DEV.cpu, 512, DecodeOptions())
        slow = decode_token_s(QWEN15_18B, DEV.cpu, 512,
                              DecodeOptions(efficiency=0.5))
        assert slow == pytest.approx(2 * fast)

    def test_invalid_kv(self):
        with pytest.raises(EngineError):
            decode_token_s(QWEN15_18B, DEV.cpu, 0, DecodeOptions())

    def test_invalid_options(self):
        with pytest.raises(EngineError):
            DecodeOptions(efficiency=0)
        with pytest.raises(EngineError):
            DecodeOptions(overhead_scale=2.0)


class TestDecodeSequence:
    def test_total_is_sum_of_steps(self):
        opts = DecodeOptions()
        total = decode_latency_s(QWEN15_18B, DEV.cpu, 256, 3, opts)
        steps = sum(
            decode_token_s(QWEN15_18B, DEV.cpu, 256 + i + 1, opts)
            for i in range(3)
        )
        assert total == pytest.approx(steps)

    def test_zero_tokens_is_free(self):
        assert decode_latency_s(QWEN15_18B, DEV.cpu, 256, 0,
                                DecodeOptions()) == 0.0

    def test_negative_raises(self):
        with pytest.raises(EngineError):
            decode_latency_s(QWEN15_18B, DEV.cpu, 256, -1, DecodeOptions())
