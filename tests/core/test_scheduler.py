"""Tests for the out-of-order scheduling policies (§3.4)."""

import pytest

from repro.core import LlmNpuEngine
from repro.core.scheduler import get_policy, newly_ready_npu_time
from repro.errors import SchedulingError
from repro.hw.sim import SimContext, Simulator, Task


def make_context(tasks, completed=frozenset()):
    by_id = {t.task_id: t for t in tasks}
    dependents = {t.task_id: [] for t in tasks}
    for t in tasks:
        for d in t.deps:
            dependents[d].append(t.task_id)
    return SimContext(
        tasks=by_id,
        submit_index={t.task_id: i for i, t in enumerate(tasks)},
        dependents={k: tuple(v) for k, v in dependents.items()},
        completed=set(completed),
        now_s=0.0,
    )


class TestNewlyReadyNpuTime:
    def test_counts_unlocked_npu_work(self):
        tasks = [
            Task("c", "cpu", 1.0),
            Task("n1", "npu", 5.0, deps=("c",)),
            Task("n2", "npu", 3.0, deps=("c",)),
        ]
        ctx = make_context(tasks)
        assert newly_ready_npu_time(tasks[0], ctx) == 8.0

    def test_ignores_cpu_dependents(self):
        tasks = [
            Task("c", "cpu", 1.0),
            Task("c2", "cpu", 5.0, deps=("c",)),
        ]
        ctx = make_context(tasks)
        assert newly_ready_npu_time(tasks[0], ctx) == 0.0

    def test_ignores_multi_dep_dependents(self):
        tasks = [
            Task("c", "cpu", 1.0),
            Task("other", "cpu", 1.0),
            Task("n", "npu", 5.0, deps=("c", "other")),
        ]
        ctx = make_context(tasks)
        # "n" still waits on "other", so completing "c" unlocks nothing.
        assert newly_ready_npu_time(tasks[0], ctx) == 0.0

    def test_counts_when_other_dep_completed(self):
        tasks = [
            Task("c", "cpu", 1.0),
            Task("other", "cpu", 1.0),
            Task("n", "npu", 5.0, deps=("c", "other")),
        ]
        ctx = make_context(tasks, completed={"other"})
        assert newly_ready_npu_time(tasks[0], ctx) == 5.0


class TestOooPolicy:
    def test_cpu_prefers_npu_unlocker(self):
        tasks = [
            Task("feeds-npu", "cpu", 1.0),
            Task("feeds-cpu", "cpu", 1.0),
            Task("npu-work", "npu", 10.0, deps=("feeds-npu",)),
            Task("cpu-work", "cpu", 10.0, deps=("feeds-cpu",)),
        ]
        policy = get_policy("ooo")
        ctx = make_context(tasks)
        chosen = policy.select("cpu", [tasks[0], tasks[1]], ctx)
        assert chosen.task_id == "feeds-npu"

    def test_npu_prefers_not_unlocking_npu(self):
        tasks = [
            Task("n1", "npu", 1.0),
            Task("n2", "npu", 1.0),
            Task("n3", "npu", 10.0, deps=("n1",)),
        ]
        policy = get_policy("ooo")
        ctx = make_context(tasks)
        chosen = policy.select("npu", [tasks[0], tasks[1]], ctx)
        # n1 would unlock 10s of NPU work -> negative C; prefer n2.
        assert chosen.task_id == "n2"


class TestHeadOfLine:
    def test_blocks_on_queue_head(self):
        tasks = [
            Task("gate", "npu", 5.0),
            Task("blocked-head", "cpu", 1.0, deps=("gate",)),
            Task("ready-later", "cpu", 1.0),
        ]
        policy = get_policy("in-order")
        ctx = make_context(tasks)
        # CPU's queue head (blocked-head) is not ready: policy idles even
        # though ready-later could run.
        assert policy.select("cpu", [tasks[2]], ctx) is None

    def test_runs_head_when_ready(self):
        tasks = [
            Task("head", "cpu", 1.0),
            Task("tail", "cpu", 1.0),
        ]
        policy = get_policy("in-order")
        ctx = make_context(tasks)
        assert policy.select("cpu", tasks, ctx).task_id == "head"

    def test_full_simulation_has_bubbles(self):
        # npu: a -> cpu: b -> npu: c, with independent npu task "d"
        # submitted after c: head-of-line forces npu to idle during b.
        tasks = [
            Task("a", "npu", 1.0),
            Task("b", "cpu", 1.0, deps=("a",)),
            Task("c", "npu", 1.0, deps=("b",)),
            Task("d", "npu", 1.0),
        ]
        inorder = Simulator(["npu", "cpu"]).run(tasks, get_policy("in-order"))
        ooo = Simulator(["npu", "cpu"]).run(tasks, get_policy("ooo"))
        assert inorder.makespan_s > ooo.makespan_s


class TestPolicyFactory:
    def test_known_policies(self):
        for name in ("ooo", "ooo-normalized", "in-order", "chunk-order",
                     "fifo", "latency-greedy"):
            assert get_policy(name) is not None

    def test_unknown_policy(self):
        with pytest.raises(SchedulingError):
            get_policy("magic")


class TestEndToEndSchedulingGains:
    """The paper's §3.4 claims on the real task graphs."""

    @pytest.fixture(scope="class")
    def engines(self):
        return {
            policy: LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro",
                                       policy=policy)
            for policy in ("in-order", "ooo")
        }

    def test_inorder_bubble_rate_near_37_percent(self, engines):
        report = engines["in-order"].prefill(1024)
        assert 0.30 < report.npu_bubble_rate < 0.60

    def test_ooo_reduces_latency_18_to_44_percent(self, engines):
        inorder = engines["in-order"].prefill(1024).latency_s
        ooo = engines["ooo"].prefill(1024).latency_s
        reduction = 1.0 - ooo / inorder
        assert 0.15 <= reduction <= 0.50

    def test_ooo_reduces_bubbles(self, engines):
        inorder = engines["in-order"].prefill(1024)
        ooo = engines["ooo"].prefill(1024)
        assert ooo.npu_bubble_rate < inorder.npu_bubble_rate

    def test_single_chunk_prompt_no_gain(self, engines):
        # With one chunk there is no cross-chunk work to reorder.
        inorder = engines["in-order"].prefill(256).latency_s
        ooo = engines["ooo"].prefill(256).latency_s
        assert ooo == pytest.approx(inorder, rel=0.02)
