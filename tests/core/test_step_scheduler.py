"""Property suite for the iteration-level step-loop scheduler.

Hypothesis drives randomized two-tier request streams through
``LlmService`` in batched mode and checks the scheduler's structural
invariants on the recorded :class:`~repro.core.StepRecord` timeline:

* a request never decodes before its last prefill chunk has executed;
* no step's batch exceeds ``max_batch_tokens``;
* neither knob extreme (``prefill_priority`` 0.0 / 1.0) starves an
  admitted request — every request completes;
* token conservation — each request's executed prefill chunks sum
  exactly to its prompt length.

Run the CI profile with ``HYPOTHESIS_PROFILE=ci`` and
``--hypothesis-seed=0`` (200 examples, like the ``batching-smoke``
job does).
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, strategies as st  # noqa: E402

from repro.core import (  # noqa: E402
    BatchConfig,
    ChunkContinuation,
    EngineConfig,
    LlmService,
    TierPolicy,
    assemble_step,
)
from repro.eval import (  # noqa: E402
    service_golden_records,
    service_golden_snapshot,
    service_golden_trace,
)
from repro.graph import chunk_token_lengths  # noqa: E402

MODEL = "Qwen1.5-1.8B"
DEVICE = "Redmi K70 Pro"
CHUNK = 32

#: Permissive tiers: no admission shedding, so every generated request
#: must run to completion (the starvation invariant needs that).
OPEN_TIERS = {
    "interactive": TierPolicy("interactive", priority=10),
    "background": TierPolicy("background", priority=0),
}

requests_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4 * CHUNK + 7),  # prompt
        st.integers(min_value=1, max_value=6),              # output
        st.floats(min_value=0.0, max_value=3.0,             # arrival
                  allow_nan=False, allow_infinity=False),
        st.sampled_from(["interactive", "background"]),
    ),
    min_size=1, max_size=6,
)

config_strategy = st.tuples(
    st.one_of(st.none(),
              st.integers(min_value=CHUNK, max_value=4 * CHUNK)),
    st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    st.floats(min_value=0.0, max_value=1.0,
              allow_nan=False, allow_infinity=False),
).filter(
    # (None budget, concurrency 1) is the degenerate sequential config
    # that routes through the legacy per-request path — no step records
    lambda cfg: not (cfg[0] is None and cfg[1] == 1))


def run_batched(reqs, max_batch_tokens, max_concurrency,
                prefill_priority):
    svc = LlmService(
        DEVICE, EngineConfig(chunk_len=CHUNK), scheduler="priority",
        admission=False, tiers=OPEN_TIERS,
        batching=BatchConfig(max_batch_tokens=max_batch_tokens,
                             max_concurrency=max_concurrency,
                             prefill_priority=prefill_priority))
    for prompt, output, arrival, tier in reqs:
        svc.enqueue(MODEL, prompt, output, arrival_s=arrival, tier=tier)
    svc.run()
    return svc


def items_by_request(svc):
    """request_id -> executed StepItems in execution order."""
    out = {}
    for step in svc.steps:
        for item in step.items:
            out.setdefault(item.request_id, []).append(item)
    return out


class TestStepInvariants:
    @given(reqs=requests_strategy, cfg=config_strategy)
    def test_no_decode_before_last_prefill_chunk(self, reqs, cfg):
        budget, conc, priority = cfg
        svc = run_batched(reqs, budget, conc, priority)
        for rid, items in items_by_request(svc).items():
            prefills = [i for i in items if i.kind == "prefill"]
            decodes = [i for i in items if i.kind == "decode"]
            # chunks execute in cursor order, exactly once each
            assert [i.index for i in prefills] == list(
                range(len(prefills)))
            if decodes:
                last_prefill_end = max(i.end_s for i in prefills)
                first_decode = min(i.start_s for i in decodes)
                assert first_decode >= last_prefill_end - 1e-12

    @given(reqs=requests_strategy, cfg=config_strategy)
    def test_step_batch_respects_token_budget(self, reqs, cfg):
        budget, conc, priority = cfg
        svc = run_batched(reqs, budget, conc, priority)
        assert svc.steps, "batched run recorded no steps"
        for step in svc.steps:
            assert step.items, "recorded an empty step"
            if budget is not None:
                assert step.batch_tokens <= budget
            assert step.prefill_tokens + step.decode_tokens \
                == step.batch_tokens

    @given(reqs=requests_strategy,
           priority=st.sampled_from([0.0, 1.0]),
           budget=st.one_of(
               st.none(),
               st.integers(min_value=CHUNK, max_value=4 * CHUNK)))
    def test_no_starvation_at_knob_extremes(self, reqs, priority,
                                            budget):
        """Both knob extremes drain every admitted request: at 0.0 the
        decode population is finite (nothing new decodes without
        prefill feeding it), at 1.0 decodes still get one token per
        step — so neither side can starve forever."""
        svc = run_batched(reqs, budget, None, priority)
        records = svc.requests
        assert len(records) == len(reqs)
        assert all(r.status == "completed" for r in records)
        for r in records:
            assert r.ttft_s is not None and r.ttft_s >= 0.0

    @given(reqs=requests_strategy, cfg=config_strategy)
    def test_token_conservation(self, reqs, cfg):
        budget, conc, priority = cfg
        svc = run_batched(reqs, budget, conc, priority)
        by_rid = items_by_request(svc)
        prompts = {rid: prompt
                   for rid, (prompt, _, _, _) in enumerate(reqs)}
        outputs = {rid: output
                   for rid, (_, output, _, _) in enumerate(reqs)}
        assert set(by_rid) == set(prompts)
        for rid, items in by_rid.items():
            prefill_tokens = sum(i.tokens for i in items
                                 if i.kind == "prefill")
            decode_tokens = sum(i.tokens for i in items
                                if i.kind == "decode")
            assert prefill_tokens == prompts[rid]
            assert decode_tokens == outputs[rid]

    @given(reqs=requests_strategy, cfg=config_strategy)
    def test_turnaround_decomposition(self, reqs, cfg):
        """Batched breakdowns still sum to turnaround within 1e-9 s."""
        from repro.obs import breakdown_request
        budget, conc, priority = cfg
        svc = run_batched(reqs, budget, conc, priority)
        for record in svc.requests:
            b = breakdown_request(record)
            assert math.isclose(b.components_s, record.turnaround_s,
                                abs_tol=1e-9)


class TestAssembleStepUnit:
    """Direct unit coverage of the pure batch-assembly function."""

    @staticmethod
    def make_state(rid, chunk_lens, priority=0, arrival=0.0,
                   outputs=1):
        return ChunkContinuation(
            request_id=rid, priority=priority, arrival_s=arrival,
            dispatch_s=arrival, tier_name="background",
            chunk_lens=list(chunk_lens),
            chunk_costs=[0.01] * len(chunk_lens),
            chunk_offset=0,
            token_costs=[0.001] * outputs,
            kv_reserved_bytes=0,
        )

    def test_progress_guarantee_with_nonzero_knob(self):
        decoding = self.make_state(0, [8])
        decoding.cursor = 1  # prefill done, decoding
        waiting = self.make_state(1, [64, 64])
        items = assemble_step([decoding, waiting], 128, 0.1)
        # budget*0.1 < one chunk, but the guarantee admits one anyway
        assert [(i.request_id, i.kind) for i in items] \
            == [(0, "decode"), (1, "prefill")]
        assert sum(i.tokens for i in items) <= 128

    def test_zero_knob_starves_prefill_behind_decoders(self):
        decoding = self.make_state(0, [8])
        decoding.cursor = 1
        waiting = self.make_state(1, [64])
        items = assemble_step([decoding, waiting], 128, 0.0)
        assert all(i.kind == "decode" for i in items)

    def test_decode_window_rotation_under_tiny_budget(self):
        states = []
        for rid in range(4):
            s = self.make_state(rid, [8], outputs=4)
            s.cursor = 1
            states.append(s)
        seen = set()
        for rotation in range(4):
            items = assemble_step(states, 2, 0.5, rotation=rotation)
            assert len(items) == 2
            seen.update(i.request_id for i in items)
        assert seen == {0, 1, 2, 3}  # every decoder eventually advances

    def test_head_of_line_blocks_later_prefills(self):
        first = self.make_state(0, [64, 64], arrival=0.0)
        second = self.make_state(1, [32], arrival=1.0)
        items = assemble_step([first, second], 96, 1.0)
        # first's second chunk does not fit; second must not jump it
        assert [(i.request_id, i.index) for i in items] == [(0, 0)]


class TestSequentialEquivalence:
    """The degenerate batching config reproduces the per-request path."""

    def test_sequential_config_is_byte_identical(self):
        seq = BatchConfig(max_concurrency=1)
        assert seq.sequential
        assert service_golden_snapshot(
            batching=seq) == service_golden_snapshot()
        assert service_golden_trace(
            batching=seq) == service_golden_trace()

    def test_step_loop_at_concurrency_one_matches_legacy(self):
        """A genuine step loop with one resident request and an
        unbounded effective budget replays the legacy schedule to
        floating-point telescoping error."""
        base = service_golden_records()
        stepped = service_golden_records(
            batching=BatchConfig(max_batch_tokens=1 << 30,
                                 max_concurrency=1))
        assert [r.request_id for r in stepped.requests] \
            == [r.request_id for r in base.requests]
        for a, b in zip(base.requests, stepped.requests):
            assert a.status == b.status
            assert a.retries == b.retries
            assert math.isclose(a.finish_s, b.finish_s, abs_tol=1e-9)
            if a.status == "completed":
                assert math.isclose(a.start_s, b.start_s,
                                    abs_tol=1e-9)


class TestCrossContamination:
    """Interleaved requests with different prompt lengths never leak
    chunk-continuation state (cursor, KV residency) into each other."""

    #: (prompt, output, tier): a long background prefill that the two
    #: interactive arrivals preempt at chunk boundaries, so its
    #: continuation state survives several other requests' chunks.
    CASES = [(7 * CHUNK + 5, 3, "background"),
             (CHUNK - 1, 5, "interactive"),
             (2 * CHUNK, 2, "background"),
             (4 * CHUNK + 1, 4, "interactive")]

    def run_order(self, order):
        """Enqueue the cases in ``order``; returns (service, id map).

        Request ids are assigned in enqueue order, so the map recovers
        which id each *case* received in this permutation.  Arrivals
        depend only on the case, never on the enqueue position.
        """
        svc = LlmService(
            DEVICE, EngineConfig(chunk_len=CHUNK),
            scheduler="priority", admission=False, tiers=OPEN_TIERS,
            batching=BatchConfig(max_batch_tokens=2 * CHUNK,
                                 max_concurrency=4,
                                 prefill_priority=0.5))
        case_to_id = {}
        for idx in order:
            prompt, output, tier = self.CASES[idx]
            case_to_id[idx] = svc.enqueue(
                MODEL, prompt, output, arrival_s=0.05 * idx, tier=tier)
        svc.run()
        return svc, case_to_id

    def test_interleaved_chunk_state_stays_per_request(self):
        svc, case_to_id = self.run_order(range(len(self.CASES)))
        by_rid = items_by_request(svc)
        # the scenario must really interleave: some step batches work
        # from several requests, and some request starts prefilling
        # before an earlier one has finished its own prefill
        assert any(len({i.request_id for i in step.items}) > 1
                   for step in svc.steps), "no multi-request step"
        prefill_windows = {
            rid: (min(i.start_s for i in items if i.kind == "prefill"),
                  max(i.end_s for i in items if i.kind == "prefill"))
            for rid, items in by_rid.items()}
        assert any(
            a != b and prefill_windows[b][0] < prefill_windows[a][1]
            and prefill_windows[a][0] < prefill_windows[b][0]
            for a in prefill_windows for b in prefill_windows
        ), "prefill phases never overlapped across requests"
        for case, (prompt, output, _tier) in enumerate(self.CASES):
            items = by_rid[case_to_id[case]]
            chunks = [i.tokens for i in items if i.kind == "prefill"]
            assert chunks == chunk_token_lengths(prompt, CHUNK)
            assert sum(i.tokens for i in items
                       if i.kind == "decode") == output

    @pytest.mark.parametrize("order", [
        (3, 2, 1, 0), (1, 3, 0, 2), (2, 0, 3, 1),
    ])
    def test_submission_order_permutation_invariant(self, order):
        """Arrivals fix the schedule; enqueue order must not."""
        ref_svc, ref_ids = self.run_order((0, 1, 2, 3))
        per_svc, per_ids = self.run_order(order)
        ref = {r.request_id: r for r in ref_svc.requests}
        got = {r.request_id: r for r in per_svc.requests}
        for case in range(len(self.CASES)):
            a, b = ref[ref_ids[case]], got[per_ids[case]]
            assert a.status == b.status == "completed"
            for field in ("arrival_s", "start_s", "finish_s",
                          "ttft_s", "itl_s", "prefill_end_s"):
                assert getattr(a, field) == getattr(b, field), field
        # the step timeline itself is identical up to request renaming
        ref_case = {rid: case for case, rid in ref_ids.items()}
        per_case = {rid: case for case, rid in per_ids.items()}
        assert [
            (s.index, s.start_s, s.end_s,
             tuple((ref_case[i.request_id], i.kind, i.tokens,
                    i.start_s, i.end_s) for i in s.items))
            for s in ref_svc.steps
        ] == [
            (s.index, s.start_s, s.end_s,
             tuple((per_case[i.request_id], i.kind, i.tokens,
                    i.start_s, i.end_s) for i in s.items))
            for s in per_svc.steps
        ]
