"""Tests for NPU-region weight residency planning (§4 impl. note (2))."""

import pytest

from repro.core import LlmNpuEngine, plan_npu_residency
from repro.core.residency import (
    DEFAULT_RESERVE_BYTES,
    npu_weight_bytes_by_subgraph,
)
from repro.errors import EngineError
from repro.graph.ops import SG_FFN, SG_QKV, SG_WO
from repro.hw.memory import GiB
from repro.model import LLAMA2_7B, QWEN15_18B


class TestWeightSizes:
    def test_covers_all_npu_subgraphs(self):
        sizes = npu_weight_bytes_by_subgraph(QWEN15_18B)
        assert len(sizes) == QWEN15_18B.n_layers * 3

    def test_matches_param_count(self):
        sizes = npu_weight_bytes_by_subgraph(QWEN15_18B)
        total = sum(sizes.values())
        norms_and_head = (
            QWEN15_18B.n_layers * 2 * QWEN15_18B.hidden_size
            + QWEN15_18B.hidden_size
        )
        assert total == QWEN15_18B.param_count(False) - norms_and_head

    def test_ffn_is_largest(self):
        sizes = npu_weight_bytes_by_subgraph(QWEN15_18B)
        assert sizes[(0, SG_FFN)] > sizes[(0, SG_QKV)] > sizes[(0, SG_WO)]


class TestPlanning:
    def test_small_model_fully_resident(self):
        plan = plan_npu_residency(QWEN15_18B, 4 * GiB)
        assert plan.fully_resident
        assert plan.resident_fraction == 1.0

    def test_7b_model_overflows(self):
        plan = plan_npu_residency(LLAMA2_7B, 4 * GiB)
        assert not plan.fully_resident
        assert 0.3 < plan.resident_fraction < 0.9
        assert plan.resident_bytes <= plan.budget_bytes

    def test_ffn_prioritized(self):
        # FFNs claim the budget first; QKV/WO entries only fill the slack
        # left when the next FFN no longer fits.
        plan = plan_npu_residency(LLAMA2_7B, 4 * GiB)
        ffn_resident = {l for (l, p) in plan.resident if p == SG_FFN}
        qkv_resident = {l for (l, p) in plan.resident if p == SG_QKV}
        # at 4 GiB the FFNs alone exceed the budget partway through...
        assert 0 < len(ffn_resident) < LLAMA2_7B.n_layers
        # ...and residency is dominated by FFNs, not attention projections
        assert len(ffn_resident) > len(qkv_resident)
        sizes = npu_weight_bytes_by_subgraph(LLAMA2_7B)
        ffn_bytes = sum(sizes[(l, SG_FFN)] for l in ffn_resident)
        assert ffn_bytes > 0.8 * plan.resident_bytes

    def test_earlier_layers_win_within_class(self):
        plan = plan_npu_residency(LLAMA2_7B, 4 * GiB)
        ffn_layers = sorted(l for (l, p) in plan.resident if p == SG_FFN)
        # a contiguous prefix of layers
        assert ffn_layers == list(range(len(ffn_layers)))

    def test_bigger_region_more_resident(self):
        small = plan_npu_residency(LLAMA2_7B, 4 * GiB)
        big = plan_npu_residency(LLAMA2_7B, 12 * GiB)
        assert big.resident_fraction > small.resident_fraction
        assert big.fully_resident

    def test_reserve_shrinks_budget(self):
        loose = plan_npu_residency(LLAMA2_7B, 4 * GiB, reserve_bytes=0)
        tight = plan_npu_residency(LLAMA2_7B, 4 * GiB,
                                   reserve_bytes=DEFAULT_RESERVE_BYTES)
        assert loose.resident_bytes >= tight.resident_bytes

    def test_fp16_weights_double_pressure(self):
        int8 = plan_npu_residency(LLAMA2_7B, 4 * GiB, bytes_per_weight=1)
        fp16 = plan_npu_residency(LLAMA2_7B, 4 * GiB, bytes_per_weight=2)
        assert fp16.resident_fraction < int8.resident_fraction

    def test_validation(self):
        with pytest.raises(EngineError):
            plan_npu_residency(QWEN15_18B, 0)
        with pytest.raises(EngineError):
            plan_npu_residency(QWEN15_18B, 4 * GiB, reserve_bytes=-1)


class TestEngineIntegration:
    def test_engine_exposes_plan(self):
        qwen = LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro")
        assert qwen.npu_residency().fully_resident
        llama = LlmNpuEngine.build("LlaMA-2-7B", "Redmi K70 Pro")
        assert not llama.npu_residency().fully_resident

    def test_is_resident_lookup(self):
        plan = LlmNpuEngine.build(
            "LlaMA-2-7B", "Redmi K70 Pro"
        ).npu_residency()
        assert plan.is_resident(0, SG_FFN)
        assert not plan.is_resident(LLAMA2_7B.n_layers - 1, SG_WO)
