"""Property-style tests for the multi-tenant service scheduler."""

import math

import pytest

from repro.core import (
    BACKGROUND_TIER,
    INTERACTIVE_TIER,
    LlmService,
    RequestQueue,
    TierPolicy,
)
from repro.errors import EngineError, SchedulingError
from repro.workloads import sample_workload
from repro.workloads.datasets import EMAIL_REPLY, UI_AUTOMATION

MODEL = "Qwen1.5-1.8B"
DEVICE = "Redmi K70 Pro"

#: Permissive tiers so overload scenarios exercise ordering, not shedding.
OPEN_TIERS = {
    "interactive": TierPolicy("interactive", priority=10),
    "background": TierPolicy("background", priority=0),
}


def overload_service(scheduler="priority", admission=False, tiers=None,
                     n_interactive=8, n_background=6, seed=3):
    """A seeded two-tier overload stream on one engine."""
    svc = LlmService(DEVICE, scheduler=scheduler, admission=admission,
                     tiers=tiers if tiers is not None else OPEN_TIERS)
    interactive = sample_workload(UI_AUTOMATION, n_interactive, seed=seed)
    background = sample_workload(EMAIL_REPLY, n_background, seed=seed + 1)
    for i, s in enumerate(interactive):
        svc.enqueue(MODEL, s.prompt_tokens, s.output_tokens,
                    arrival_s=1.0 + 1.1 * i, tier="interactive")
    for i, s in enumerate(background):
        svc.enqueue(MODEL, s.prompt_tokens, s.output_tokens,
                    arrival_s=0.2 + 0.4 * i, tier="background")
    return svc


class TestPriorityOrdering:
    def test_no_priority_inversion(self):
        """(a) No admitted request starts before a higher-priority admitted
        request that arrived earlier."""
        svc = overload_service()
        records = svc.run()
        started = [r for r in records if r.status == "completed"]
        assert len(started) == 14  # nothing shed under permissive tiers
        prio = {t.name: t.priority for t in OPEN_TIERS.values()}
        for hi in started:
            for lo in started:
                if (prio[hi.tier] > prio[lo.tier]
                        and hi.arrival_s <= lo.arrival_s):
                    assert hi.start_s <= lo.start_s

    def test_equal_priority_is_fifo(self):
        svc = overload_service()
        records = svc.run()
        for tier in ("interactive", "background"):
            same = [r for r in records
                    if r.tier == tier and r.status == "completed"]
            ordered = sorted(same, key=lambda r: r.arrival_s)
            starts = [r.start_s for r in ordered]
            assert starts == sorted(starts)

    def test_fifo_mode_ignores_tiers(self):
        svc = overload_service(scheduler="fifo")
        records = svc.run()
        done = sorted((r for r in records if r.status == "completed"),
                      key=lambda r: r.arrival_s)
        starts = [r.start_s for r in done]
        assert starts == sorted(starts)

    def test_priority_beats_fifo_for_interactive(self):
        fifo = overload_service(scheduler="fifo").run()
        prio = overload_service(scheduler="priority").run()

        def worst_interactive(records):
            return max(r.turnaround_s for r in records
                       if r.tier == "interactive")

        assert worst_interactive(prio) < worst_interactive(fifo)


class TestConservation:
    def test_accounting_conserved(self):
        """(b) arrival + queueing + service == finish for every record."""
        svc = overload_service()
        for r in svc.run():
            assert r.arrival_s + r.queueing_s + r.service_s == \
                pytest.approx(r.finish_s, rel=1e-12, abs=1e-12)
            assert r.queueing_s >= 0
            assert r.service_s >= 0

    def test_engine_never_overlaps(self):
        """One subgraph-at-a-time extends to one request-at-a-time."""
        svc = overload_service()
        done = sorted((r for r in svc.run() if r.status == "completed"),
                      key=lambda r: r.start_s)
        for prev, cur in zip(done, done[1:]):
            assert cur.start_s >= prev.finish_s - 1e-9


class TestDeterminism:
    def test_admission_and_schedule_deterministic(self):
        """(c) Two identical seeded runs produce identical records."""
        tight = {
            "interactive": TierPolicy("interactive", 10,
                                      slo_queueing_s=3.0),
            "background": TierPolicy("background", 0,
                                     slo_queueing_s=6.0),
        }
        first = overload_service(admission=True, tiers=tight).run()
        second = overload_service(admission=True, tiers=tight).run()
        assert [r.key() for r in first] == [r.key() for r in second]
        # the tight SLOs actually shed load, so the equality above
        # covers admission decisions, not just the happy path
        assert any(r.status == "rejected" for r in first)


class TestAdmission:
    def test_infinite_slo_admits_everything(self):
        svc = overload_service(admission=True, tiers=OPEN_TIERS)
        records = svc.run()
        assert all(r.status == "completed" for r in records)

    def test_zero_slo_rejects_queued_arrivals(self):
        strict = {"interactive": TierPolicy("interactive", 10,
                                            slo_queueing_s=0.0)}
        svc = LlmService(DEVICE, admission=True, tiers=strict)
        for i in range(3):
            svc.enqueue(MODEL, 512, 1, arrival_s=0.0, tier="interactive")
        records = svc.run()
        statuses = [r.status for r in records]
        # the first request sees an idle engine; the rest project a
        # positive wait and a zero SLO rejects any wait at all
        assert statuses == ["completed", "rejected", "rejected"]
        assert all(r.report is None for r in records
                   if r.status == "rejected")

    def test_rejection_is_free(self):
        """Rejected requests consume no engine time."""
        strict = {"interactive": TierPolicy("interactive", 10,
                                            slo_queueing_s=0.0)}
        lone = LlmService(DEVICE, admission=True, tiers=strict)
        lone.enqueue(MODEL, 512, 1, arrival_s=0.0)
        baseline = lone.run()[0]

        svc = LlmService(DEVICE, admission=True, tiers=strict)
        for _ in range(4):
            svc.enqueue(MODEL, 512, 1, arrival_s=0.0)
        records = svc.run()
        winner = [r for r in records if r.status == "completed"]
        assert len(winner) == 1
        assert winner[0].finish_s == pytest.approx(baseline.finish_s)


class TestTimeoutsAndCancellation:
    def test_queued_request_times_out(self):
        tiers = {"interactive": TierPolicy("interactive", 10,
                                           timeout_s=1.0)}
        svc = LlmService(DEVICE, admission=False, tiers=tiers)
        for i in range(4):
            svc.enqueue(MODEL, 700, 2, arrival_s=0.0, tier="interactive")
        records = svc.run()
        timed_out = [r for r in records if r.status == "timeout"]
        assert timed_out, "overload past the deadline must shed by timeout"
        for r in timed_out:
            assert r.finish_s == pytest.approx(r.arrival_s + 1.0)
            assert r.start_s == r.finish_s  # never dispatched
            assert r.report is None

    def test_per_request_timeout_overrides_tier(self):
        svc = LlmService(DEVICE, admission=False, tiers=OPEN_TIERS)
        svc.enqueue(MODEL, 700, 2, arrival_s=0.0)
        doomed = svc.enqueue(MODEL, 700, 2, arrival_s=0.0,
                             timeout_s=0.01)
        records = {r.request_id: r for r in svc.run()}
        assert records[doomed].status == "timeout"

    def test_cancel_pending_request(self):
        svc = LlmService(DEVICE, admission=False, tiers=OPEN_TIERS)
        keep = svc.enqueue(MODEL, 512, 1, arrival_s=0.0)
        drop = svc.enqueue(MODEL, 512, 1, arrival_s=0.0)
        svc.cancel(drop)
        records = {r.request_id: r for r in svc.run()}
        assert records[keep].status == "completed"
        assert records[drop].status == "cancelled"
        assert records[drop].service_s == 0.0


class TestPerEngineTimelines:
    def test_queues_do_not_cross_models(self):
        """Regression: one model's backlog must not inflate another's
        reported queueing delay (the seed shared a single clock)."""
        svc = LlmService(DEVICE, admission=False, tiers=OPEN_TIERS)
        for _ in range(6):
            svc.enqueue(MODEL, 800, 2, arrival_s=0.0)
        lone = svc.enqueue("Gemma-2B", 512, 1, arrival_s=0.0)
        records = {r.request_id: r for r in svc.run()}
        assert records[lone].queueing_s == 0.0
        # the loaded model really did queue
        assert max(r.queueing_s for r in records.values()) > 1.0

    def test_submit_uses_per_engine_clock(self):
        svc = LlmService(DEVICE)
        for _ in range(3):
            svc.submit(MODEL, 800, 2)  # back-to-back on Qwen's timeline
        gemma_ready = svc.engine_for("Gemma-2B")
        record = svc.submit("Gemma-2B", 512, 1,
                            arrival_s=svc.engine_clock_s("Gemma-2B"))
        assert gemma_ready is svc.engine_for("Gemma-2B")
        assert record.queueing_s == 0.0

    def test_engine_clock_accessor(self):
        svc = LlmService(DEVICE)
        with pytest.raises(EngineError):
            svc.engine_clock_s(MODEL)
        svc.engine_for(MODEL)
        assert svc.engine_clock_s(MODEL) == pytest.approx(
            svc.preparation_s(MODEL)
        )


class TestRequestQueue:
    class Entry:
        def __init__(self, request_id, priority, arrival_s):
            self.request_id = request_id
            self.priority = priority
            self.arrival_s = arrival_s

    def test_priority_order(self):
        q = RequestQueue("priority")
        a = self.Entry(0, priority=0, arrival_s=0.0)
        b = self.Entry(1, priority=10, arrival_s=5.0)
        c = self.Entry(2, priority=10, arrival_s=1.0)
        for e in (a, b, c):
            q.push(e)
        assert [e.request_id for e in q] == [2, 1, 0]
        assert q.pop() is c and q.pop() is b and q.pop() is a

    def test_fifo_order(self):
        q = RequestQueue("fifo")
        a = self.Entry(0, priority=0, arrival_s=2.0)
        b = self.Entry(1, priority=10, arrival_s=1.0)
        q.push(a)
        q.push(b)
        assert q.precedes(b, a)
        assert q.pop() is b

    def test_unknown_mode_rejected(self):
        with pytest.raises(SchedulingError):
            RequestQueue("round-robin")


class TestApiValidation:
    def test_unknown_scheduler(self):
        with pytest.raises(EngineError):
            LlmService(DEVICE, scheduler="edf")

    def test_unknown_tier(self):
        svc = LlmService(DEVICE)
        with pytest.raises(EngineError):
            svc.enqueue(MODEL, 512, 1, tier="best-effort")

    def test_negative_arrival(self):
        svc = LlmService(DEVICE)
        with pytest.raises(EngineError):
            svc.enqueue(MODEL, 512, 1, arrival_s=-1.0)

    def test_bad_tier_policy(self):
        with pytest.raises(EngineError):
            TierPolicy("x", 0, slo_queueing_s=-1.0)
        with pytest.raises(EngineError):
            TierPolicy("x", 0, max_retries=-1)

    def test_default_tiers_sane(self):
        assert INTERACTIVE_TIER.priority > BACKGROUND_TIER.priority
        assert INTERACTIVE_TIER.slo_queueing_s < \
            BACKGROUND_TIER.slo_queueing_s
        assert math.isfinite(INTERACTIVE_TIER.timeout_s)


class TestMetrics:
    def test_per_tier_metrics(self):
        tight = {
            "interactive": TierPolicy("interactive", 10,
                                      slo_queueing_s=3.0),
            "background": TierPolicy("background", 0,
                                     slo_queueing_s=6.0),
        }
        svc = overload_service(admission=True, tiers=tight)
        svc.run()
        m = svc.metrics()
        assert set(m.tiers) == {"interactive", "background"}
        assert m.n_requests == 14
        assert m.n_completed + m.n_rejected + m.n_timeout == 14
        inter = m.tier("interactive")
        assert inter.p95_turnaround_s >= inter.p50_turnaround_s
        assert 0 < m.npu_utilization <= m.busy_fraction <= 1.0
        with pytest.raises(EngineError):
            m.tier("no-such-tier")

    def test_stats_covers_completed_only(self):
        strict = {"interactive": TierPolicy("interactive", 10,
                                            slo_queueing_s=0.0)}
        svc = LlmService(DEVICE, admission=True, tiers=strict)
        for _ in range(3):
            svc.enqueue(MODEL, 512, 1, arrival_s=0.0)
        svc.run()
        stats = svc.stats()
        assert stats.n_requests == 1  # two were rejected
