"""Tests for the task-graph construction (Eqs. 2-3 and shadow tasks)."""

import pytest

from repro.core.dependency import (
    build_task_graph,
    count_cross_chunk_edges,
    shadow_id,
    sync_id,
    task_id,
)
from repro.errors import DependencyError
from repro.graph import GraphBuilder, SG_ATTN, SG_QKV
from repro.graph.builder import ShadowProfile
from repro.hw import REDMI_K70_PRO, Simulator
from repro.model import tiny_config


@pytest.fixture(scope="module")
def builder():
    cfg = tiny_config(n_layers=3, hidden_size=128, n_heads=4,
                      ffn_hidden=256, max_context=2048)
    return GraphBuilder(cfg, REDMI_K70_PRO)


def plans(builder, n_chunks, shadow_profiles=None):
    return [builder.build_chunk(i, 64, shadow_profiles)
            for i in range(n_chunks)]


class TestTaskGraphStructure:
    def test_task_count_without_shadow(self, builder):
        tasks = build_task_graph(plans(builder, 2), include_shadow=False)
        # 3 layers x 6 subgraphs x 2 chunks
        assert len(tasks) == 36

    def test_shadow_adds_two_tasks_per_npu_subgraph(self, builder):
        base = build_task_graph(plans(builder, 1), include_shadow=False)
        with_shadow = build_task_graph(plans(builder, 1),
                                       include_shadow=True)
        # 3 NPU subgraphs per layer x 3 layers x (shadow + sync)
        assert len(with_shadow) == len(base) + 3 * 3 * 2

    def test_intra_chunk_chain(self, builder):
        tasks = {t.task_id: t for t in build_task_graph(
            plans(builder, 1), include_shadow=False)}
        # attention depends on qkv of the same chunk
        attn = tasks[task_id(0, 0, SG_ATTN)]
        assert task_id(0, 0, SG_QKV) in attn.deps

    def test_cross_chunk_attention_deps(self, builder):
        tasks = {t.task_id: t for t in build_task_graph(
            plans(builder, 3), include_shadow=False)}
        attn = tasks[task_id(2, 1, SG_ATTN)]
        # Eq. 2: needs QKV of chunks 0 and 1 at the same layer.
        assert task_id(0, 1, SG_QKV) in attn.deps
        assert task_id(1, 1, SG_QKV) in attn.deps

    def test_first_subgraph_of_every_chunk_is_root(self, builder):
        tasks = build_task_graph(plans(builder, 3), include_shadow=False)
        roots = [t for t in tasks if not t.deps]
        assert len(roots) == 3  # one pre-attn per chunk at layer 0

    def test_sync_gates_next_subgraph(self, builder):
        profiles = {0: ShadowProfile(), 1: ShadowProfile(pruned=True),
                    2: ShadowProfile(pruned=True)}
        tasks = {t.task_id: t for t in build_task_graph(
            plans(builder, 1, profiles))}
        # layer 0 unpruned: attention waits for qkv's sync
        attn = tasks[task_id(0, 0, SG_ATTN)]
        assert sync_id(0, 0, SG_QKV) in attn.deps
        # sync waits for both NPU half and shadow half
        sync = tasks[sync_id(0, 0, SG_QKV)]
        assert task_id(0, 0, SG_QKV) in sync.deps
        assert shadow_id(0, 0, SG_QKV) in sync.deps

    def test_pruned_layer_has_no_shadow_tasks(self, builder):
        profiles = {l: ShadowProfile(pruned=True) for l in range(3)}
        tasks = build_task_graph(plans(builder, 1, profiles))
        assert not any(t.tag in ("shadow", "sync") for t in tasks)

    def test_shadow_runs_on_float_processor(self, builder):
        tasks = build_task_graph(plans(builder, 1), float_proc="gpu")
        shadows = [t for t in tasks if t.tag == "shadow"]
        assert shadows
        assert all(t.proc == "gpu" for t in shadows)

    def test_empty_plans_raise(self):
        with pytest.raises(DependencyError):
            build_task_graph([])

    def test_cross_chunk_edge_count(self, builder):
        tasks = build_task_graph(plans(builder, 3), include_shadow=False)
        # per layer: chunk1 attn has 1, chunk2 attn has 2 -> 3 per layer
        assert count_cross_chunk_edges(tasks) == 3 * 3


class TestTaskGraphExecutes:
    @pytest.mark.parametrize("policy", ["fifo", "in-order", "ooo"])
    def test_runs_to_completion(self, builder, policy):
        from repro.core.scheduler import get_policy
        tasks = build_task_graph(plans(builder, 3))
        trace = Simulator(["npu", "cpu"]).run(tasks, get_policy(policy))
        assert len(trace.events) == len(tasks)
        trace.validate_serial()

    def test_dependencies_respected_in_trace(self, builder):
        from repro.core.scheduler import get_policy
        tasks = build_task_graph(plans(builder, 2))
        trace = Simulator(["npu", "cpu"]).run(tasks, get_policy("ooo"))
        end_times = {e.task_id: e.end_s for e in trace.events}
        start_times = {e.task_id: e.start_s for e in trace.events}
        for t in tasks:
            for d in t.deps:
                assert start_times[t.task_id] >= end_times[d] - 1e-12
