"""Tests for multi-turn KV-cache reuse and TTFT/TPOT metrics."""

import pytest

from repro.core import ChatSession, LlmNpuEngine, LlmService
from repro.errors import EngineError, GraphError


@pytest.fixture(scope="module")
def engine():
    return LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro")


class TestCachedPrefill:
    def test_aligned_reuse_skips_chunks(self, engine):
        cold = engine.prefill(812)
        warm = engine.prefill(300, cached_tokens=512)
        assert cold.n_chunks == 4
        assert warm.n_chunks == 2
        assert warm.latency_s < cold.latency_s

    def test_unaligned_cache_repays_partial_chunk(self, engine):
        # 300 cached tokens: one full chunk (256) reused, 44 re-prefilled
        warm = engine.prefill(300, cached_tokens=300)
        # 44 + 300 = 344 new+remainder -> 2 chunks starting at index 1
        assert warm.n_chunks == 2

    def test_fully_aligned_vs_unaligned(self, engine):
        aligned = engine.prefill(256, cached_tokens=512)
        unaligned = engine.prefill(256, cached_tokens=511)
        assert aligned.n_chunks == 1
        assert unaligned.n_chunks == 2
        assert unaligned.latency_s > aligned.latency_s

    def test_reuse_beyond_capacity_raises(self, engine):
        max_tokens = engine.graph.max_chunks * engine.config.chunk_len
        with pytest.raises(GraphError):
            engine.prefill(512, cached_tokens=max_tokens)

    def test_negative_cached_raises(self, engine):
        with pytest.raises(EngineError):
            engine.prefill(256, cached_tokens=-1)

    def test_warm_prefill_slower_than_first_chunks(self, engine):
        # chunks reused are the *early* (cheap-attention) ones; the turn
        # still pays the late chunks' longer attention spans
        early = engine.prefill(512)  # chunks 0-1
        late = engine.prefill(512, cached_tokens=512)  # chunks 2-3
        assert late.latency_s > early.latency_s


class TestInferWithCache:
    def test_decode_sees_full_context(self, engine):
        short_ctx = engine.infer(256, 4)
        long_ctx = engine.infer(256, 4, cached_tokens=1024)
        assert long_ctx.decode_latency_s > short_ctx.decode_latency_s

    def test_extras_record_cache(self, engine):
        report = engine.infer(256, 2, cached_tokens=512)
        assert report.extras["cached_tokens"] == 512.0


class TestMetrics:
    def test_ttft_is_prefill(self, engine):
        report = engine.infer(512, 8)
        assert report.ttft_s == report.prefill_latency_s

    def test_tpot(self, engine):
        report = engine.infer(512, 8)
        assert report.tpot_s == pytest.approx(
            report.decode_latency_s / 8
        )

    def test_tpot_zero_without_decode(self, engine):
        assert engine.infer(512, 0).tpot_s == 0.0


class TestChatSession:
    def test_context_accumulates(self):
        service = LlmService("Redmi K70 Pro")
        chat = service.open_chat("Qwen1.5-1.8B")
        chat.submit_turn(500, 40)
        assert chat.context_tokens == 540
        chat.submit_turn(60, 35)
        assert chat.context_tokens == 635
        assert chat.n_turns == 2

    def test_later_turns_prefill_faster(self):
        service = LlmService("Redmi K70 Pro")
        chat = service.open_chat("Qwen1.5-1.8B")
        first = chat.submit_turn(520, 0)
        second = chat.submit_turn(60, 0)
        assert second.report.ttft_s < first.report.ttft_s

    def test_turn_records_cached_tokens(self):
        service = LlmService("Redmi K70 Pro")
        chat = service.open_chat("Qwen1.5-1.8B")
        chat.submit_turn(300, 10)
        second = chat.submit_turn(50, 0)
        assert second.report.extras["cached_tokens"] == 310.0

    def test_empty_turn_rejected(self):
        service = LlmService("Redmi K70 Pro")
        chat = service.open_chat("Qwen1.5-1.8B")
        with pytest.raises(EngineError):
            chat.submit_turn(0)

    def test_turns_share_service_clock(self):
        service = LlmService("Redmi K70 Pro")
        chat = service.open_chat("Qwen1.5-1.8B")
        first = chat.submit_turn(300, 2)
        second = chat.submit_turn(60, 2)
        assert second.start_s >= first.finish_s


class TestTimelineAndProfiling:
    def test_timeline_contains_prefill_and_decode(self, engine):
        report = engine.infer(512, 4)
        timeline = report.timeline()
        tags = {e.tag for e in timeline.events}
        assert "decode" in tags
        assert any(t.startswith("sg") for t in tags)
        decode_events = [e for e in timeline.events if e.tag == "decode"]
        assert len(decode_events) == 4
        # decode strictly follows prefill
        prefill_end = report.prefill.trace.makespan_s
        assert all(e.start_s >= prefill_end - 1e-9 for e in decode_events)

    def test_timeline_without_decode(self, engine):
        timeline = engine.infer(256, 0).timeline()
        assert not any(e.tag == "decode" for e in timeline.events)

    def test_timeline_exports_to_chrome(self, engine, tmp_path):
        import json
        import os
        path = os.path.join(tmp_path, "timeline.json")
        engine.infer(256, 2).timeline().save_chrome_trace(path)
        with open(path) as f:
            events = json.load(f)
        assert any(e.get("cat") == "decode" for e in events)

    def test_subgraph_profile_table(self, engine):
        table = engine.profile_subgraphs(0)
        assert len(table.rows) == engine.model.n_layers * 6
        backends = set(table.column("backend"))
        assert backends == {"npu", "cpu"}
        # NPU rows carry weights, float rows don't
        for row in table.rows:
            if row[1] == "npu":
                assert row[4] > 0
            else:
                assert row[4] == 0
