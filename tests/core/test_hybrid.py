"""Tests for the hybrid (llm.npu + GPU) dispatch engine."""

import pytest

from repro.core import HybridEngine
from repro.errors import EngineError


@pytest.fixture(scope="module")
def hybrid():
    return HybridEngine("Qwen1.5-1.8B", "Redmi K70 Pro")


class TestCrossoverProfiling:
    def test_crossover_in_sensible_range(self, hybrid):
        # below one chunk length; GPU wins only for very short prompts
        assert 0 < hybrid.crossover_tokens < 256

    def test_pick_respects_crossover(self, hybrid):
        assert hybrid.pick(hybrid.crossover_tokens - 1) == "gpu"
        assert hybrid.pick(hybrid.crossover_tokens) == "llm.npu"
        assert hybrid.pick(1024) == "llm.npu"

    def test_invalid_probes_rejected(self):
        with pytest.raises(EngineError):
            HybridEngine("Qwen1.5-1.8B", "Redmi K70 Pro",
                         probe_lengths=())
        with pytest.raises(EngineError):
            HybridEngine("Qwen1.5-1.8B", "Redmi K70 Pro",
                         probe_lengths=(0, 8))

    def test_pick_invalid_prompt(self, hybrid):
        with pytest.raises(EngineError):
            hybrid.pick(0)


class TestDispatch:
    def test_hybrid_never_slower_than_either(self, hybrid):
        for p in (8, 32, 64, 256, 700):
            h = hybrid.prefill(p).latency_s
            npu = hybrid.npu_engine.prefill(p).latency_s
            gpu = hybrid.gpu_engine.prefill(p).latency_s
            assert h <= min(npu, gpu) + 1e-9

    def test_report_names_the_winner(self, hybrid):
        short = hybrid.infer(8, 1)
        long = hybrid.infer(512, 1)
        assert short.engine.endswith("TFLite-GPU")
        assert long.engine.endswith("llm.npu")

    def test_short_prompt_beats_plain_llm_npu(self, hybrid):
        plain = hybrid.npu_engine.prefill(16).latency_s
        assert hybrid.prefill(16).latency_s < plain
