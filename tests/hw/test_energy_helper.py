"""Tests for helper-power energy accounting (the Fig. 15 distinction)."""

import pytest

from repro.errors import HardwareError
from repro.hw import REDMI_K70_PRO
from repro.hw.energy import HELPER_POWER_FRACTION

DEV = REDMI_K70_PRO


class TestHelperPower:
    def test_helper_work_costs_less_than_full_work(self):
        model = DEV.energy_model()
        full = model.energy({"cpu": 10.0}, 10.0)
        helper = model.energy({"cpu": 10.0}, 10.0,
                              helper_seconds={"cpu": 10.0})
        assert helper.total_j < full.total_j
        ratio = (helper.per_processor["cpu"]
                 / full.per_processor["cpu"])
        assert ratio == pytest.approx(HELPER_POWER_FRACTION, rel=0.05)

    def test_partial_helper_time(self):
        model = DEV.energy_model()
        mixed = model.energy({"cpu": 10.0}, 10.0,
                             helper_seconds={"cpu": 4.0})
        expected = (DEV.cpu.active_power_w * 6.0
                    + DEV.cpu.active_power_w * HELPER_POWER_FRACTION * 4.0)
        assert mixed.per_processor["cpu"] == pytest.approx(expected)

    def test_helper_exceeding_busy_raises(self):
        model = DEV.energy_model()
        with pytest.raises(HardwareError):
            model.energy({"cpu": 2.0}, 10.0, helper_seconds={"cpu": 3.0})

    def test_helper_power_never_below_idle(self):
        # a pathological spec where 45% of active < idle must clamp
        import dataclasses
        from repro.hw.energy import EnergyModel
        weird = dataclasses.replace(DEV.cpu, active_power_w=1.0,
                                    idle_power_w=0.9)
        model = EnergyModel({"cpu": weird}, platform_power_w=0.0)
        energy = model.energy({"cpu": 10.0}, 10.0,
                              helper_seconds={"cpu": 10.0})
        assert energy.per_processor["cpu"] >= 0.9 * 10.0

    def test_engine_charges_float_backend_as_helper(self):
        # the llm.npu engine's prefill energy must be below what a
        # full-power CPU accounting would charge
        from repro.core import LlmNpuEngine
        engine = LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro")
        report = engine.infer(1024, 0)
        prefill = report.prefill
        model = DEV.energy_model()
        full_power = model.energy(
            prefill.trace.busy_by_processor(), prefill.latency_s
        ).total_j
        assert report.extras["prefill_energy_j"] < full_power
