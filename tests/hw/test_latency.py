"""Tests for operator latency models, including Table 3 calibration."""

import pytest

from repro.errors import UnsupportedOperationError
from repro.hw import (
    DType,
    MatMulShape,
    REDMI_K70_PRO,
    attention_latency,
    disk_read_latency,
    matmul_latency,
    norm_latency,
    per_group_matmul_latency,
    quantize_latency,
    shadow_matmul_latency,
    sync_latency,
)

DEV = REDMI_K70_PRO

#: Table 3 of the paper: (M, K, N) -> measured ms per engine.
TABLE3_SHAPES = [
    (64, 2048, 2048), (64, 2048, 8192), (64, 2048, 11008),
    (32, 4096, 4096), (32, 4096, 8192), (32, 4096, 11008),
]
TABLE3 = {
    "npu_int8": ([0.9, 1.5, 2.0, 1.7, 2.9, 4.1], "npu", DType.INT8),
    "cpu_int8": ([4.2, 6.8, 11.6, 7.5, 13.1, 19.6], "cpu", DType.INT8),
    "gpu_fp16": ([1.7, 4.8, 6.9, 3.1, 7.7, 10.4], "gpu", DType.FP16),
    "npu_fp16": ([252, 986, 1207, 1054, 2009, 3112], "npu", DType.FP16),
}


class TestTable3Calibration:
    """The simulator must reproduce the paper's own micro-benchmarks."""

    @pytest.mark.parametrize("engine", sorted(TABLE3))
    def test_within_tolerance(self, engine):
        actual, proc_name, dtype = TABLE3[engine]
        proc = DEV.processors[proc_name]
        for shape, measured_ms in zip(TABLE3_SHAPES, actual):
            pred_ms = matmul_latency(proc, MatMulShape(*shape), dtype) * 1e3
            assert pred_ms == pytest.approx(measured_ms, rel=0.35), (
                f"{engine} {shape}: predicted {pred_ms:.2f} ms vs "
                f"measured {measured_ms} ms"
            )

    @pytest.mark.parametrize("shape", TABLE3_SHAPES)
    def test_engine_ordering(self, shape):
        # NPU INT8 < GPU FP16 < CPU INT8 << NPU FP16 for every shape.
        ms = MatMulShape(*shape)
        npu_i8 = matmul_latency(DEV.npu, ms, DType.INT8)
        gpu_f16 = matmul_latency(DEV.gpu, ms, DType.FP16)
        cpu_i8 = matmul_latency(DEV.cpu, ms, DType.INT8)
        npu_f16 = matmul_latency(DEV.npu, ms, DType.FP16)
        assert npu_i8 < gpu_f16 < cpu_i8 < npu_f16
        assert npu_f16 > 50 * npu_i8  # FP on NPU is catastrophic (§2.2)


class TestPerGroupPenalty:
    """Fig. 4: per-group MatMul costs ~8-11x on the NPU."""

    def test_npu_penalty_in_paper_band(self):
        shape = MatMulShape(256, 2048, 2048)
        pt = matmul_latency(DEV.npu, shape, DType.INT8)
        pg = per_group_matmul_latency(DEV.npu, shape, 32, DType.INT8)
        assert 6.0 <= pg / pt <= 20.0

    def test_penalty_shrinks_with_larger_groups(self):
        shape = MatMulShape(256, 2048, 2048)
        pg32 = per_group_matmul_latency(DEV.npu, shape, 32, DType.INT8)
        pg128 = per_group_matmul_latency(DEV.npu, shape, 128, DType.INT8)
        assert pg128 < pg32

    def test_cpu_penalty_is_mild(self):
        # CPUs run grouped kernels natively (llama.cpp's layout).
        shape = MatMulShape(256, 2048, 2048)
        pt = matmul_latency(DEV.cpu, shape, DType.INT8)
        pg = per_group_matmul_latency(DEV.cpu, shape, 32, DType.INT8)
        assert pg / pt < 1.5

    def test_bad_group_size_raises(self):
        with pytest.raises(UnsupportedOperationError):
            per_group_matmul_latency(DEV.npu, MatMulShape(8, 64, 64), 0)


class TestFloatOperators:
    def test_attention_grows_with_kv(self):
        a = attention_latency(DEV.cpu, 256, 256, 16, 128)
        b = attention_latency(DEV.cpu, 256, 1024, 16, 128)
        assert b > 2 * a

    def test_attention_cpu_faster_than_npu(self):
        # Float attention belongs on CPU/GPU, never the NPU (§3.4).
        cpu = attention_latency(DEV.cpu, 256, 512, 16, 128)
        npu = attention_latency(DEV.npu, 256, 512, 16, 128)
        assert npu > 5 * cpu

    def test_attention_invalid_raises(self):
        with pytest.raises(UnsupportedOperationError):
            attention_latency(DEV.cpu, 0, 10, 4, 64)

    def test_norm_scales_linearly(self):
        overhead = DEV.cpu.dispatch_overhead_s
        a = norm_latency(DEV.cpu, 64, 2048) - overhead
        b = norm_latency(DEV.cpu, 128, 2048) - overhead
        assert b == pytest.approx(2 * a, rel=1e-6)

    def test_quantize_cheaper_than_norm(self):
        assert (quantize_latency(DEV.cpu, 256, 2048)
                < norm_latency(DEV.cpu, 256, 2048))


class TestShadowAndSync:
    def test_shadow_much_cheaper_than_main(self):
        # 8 outlier channels of 2048: the shadow matmul must be far below
        # the NPU main matmul so it can hide under it (§3.3).
        main = matmul_latency(DEV.npu, MatMulShape(256, 2048, 2048),
                              DType.INT8)
        shadow = shadow_matmul_latency(DEV.cpu, 256, 8, 2048)
        assert shadow < main

    def test_zero_outliers_cost_nothing(self):
        assert shadow_matmul_latency(DEV.cpu, 256, 0, 2048) == 0.0

    def test_sync_has_base_cost(self):
        assert sync_latency(DEV.cpu, DEV.npu, 0) >= 100e-6

    def test_sync_scales_with_bytes(self):
        small = sync_latency(DEV.cpu, DEV.npu, 1024)
        big = sync_latency(DEV.cpu, DEV.npu, 100 * 1024 * 1024)
        assert big > small

    def test_sync_negative_raises(self):
        with pytest.raises(UnsupportedOperationError):
            sync_latency(DEV.cpu, DEV.npu, -1)

    def test_disk_read_slow(self):
        # Cold weight retrieval is much slower than a DRAM-side sync.
        mb = 1024 * 1024
        assert disk_read_latency(4 * mb) > sync_latency(DEV.cpu, DEV.npu,
                                                        4 * mb)

    def test_disk_read_negative_raises(self):
        with pytest.raises(UnsupportedOperationError):
            disk_read_latency(-5)


class TestChunkLengthEffect:
    """Fig. 8: per-token NPU cost falls with chunk length, then flattens."""

    def test_per_token_latency_falls_until_saturation(self):
        shape = lambda m: MatMulShape(m, 2048, 5504)  # Qwen FFN
        per_token = {
            m: matmul_latency(DEV.npu, shape(m), DType.INT8) / m
            for m in (32, 64, 128, 256, 512)
        }
        assert per_token[32] > per_token[64] > per_token[128]
        assert per_token[128] > per_token[256]
        # diminishing returns beyond saturation: doubling 256 -> 512 buys
        # far less than doubling 64 -> 128 did
        gain_small = per_token[64] / per_token[128]
        gain_large = per_token[256] / per_token[512]
        assert gain_large < gain_small
