"""Tests for Chrome-trace export."""

import json
import os

from repro.hw.trace import Trace, TraceEvent


def make_trace():
    trace = Trace()
    trace.add(TraceEvent("a", "npu", 0.0, 0.001, tag="sg1"))
    trace.add(TraceEvent("b", "cpu", 0.0, 0.002, tag="sg2.float"))
    trace.add(TraceEvent("c", "npu", 0.001, 0.003, tag="sg3"))
    return trace


class TestChromeTrace:
    def test_one_complete_event_per_task(self):
        events = make_trace().to_chrome_trace()
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3

    def test_thread_metadata(self):
        events = make_trace().to_chrome_trace()
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"cpu", "npu"}

    def test_microsecond_timestamps(self):
        events = make_trace().to_chrome_trace()
        c = next(e for e in events if e.get("name") == "c")
        assert c["ts"] == 1000.0
        assert c["dur"] == 2000.0

    def test_tids_match_processor(self):
        events = make_trace().to_chrome_trace()
        meta = {e["args"]["name"]: e["tid"]
                for e in events if e["ph"] == "M"}
        a = next(e for e in events if e.get("name") == "a")
        assert a["tid"] == meta["npu"]

    def test_save_is_valid_json(self, tmp_path):
        path = os.path.join(tmp_path, "traces", "run.json")
        make_trace().save_chrome_trace(path)
        with open(path) as f:
            data = json.load(f)
        assert isinstance(data, list)
        assert any(e.get("ph") == "X" for e in data)

    def test_engine_trace_exports(self, tmp_path):
        from repro.core import LlmNpuEngine
        report = LlmNpuEngine.build(
            "Qwen1.5-1.8B", "Redmi K70 Pro"
        ).prefill(256)
        path = os.path.join(tmp_path, "prefill.json")
        report.trace.save_chrome_trace(path)
        with open(path) as f:
            events = json.load(f)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(report.trace.events)
