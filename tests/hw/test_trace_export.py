"""Tests for Chrome-trace export."""

import json
import os

from repro.hw.trace import Trace, TraceEvent


def make_trace():
    trace = Trace()
    trace.add(TraceEvent("a", "npu", 0.0, 0.001, tag="sg1"))
    trace.add(TraceEvent("b", "cpu", 0.0, 0.002, tag="sg2.float"))
    trace.add(TraceEvent("c", "npu", 0.001, 0.003, tag="sg3"))
    return trace


class TestChromeTrace:
    def test_one_complete_event_per_task(self):
        events = make_trace().to_chrome_trace()
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3

    def test_thread_metadata(self):
        events = make_trace().to_chrome_trace()
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"cpu", "npu"}

    def test_microsecond_timestamps(self):
        events = make_trace().to_chrome_trace()
        c = next(e for e in events if e.get("name") == "c")
        assert c["ts"] == 1000.0
        assert c["dur"] == 2000.0

    def test_tids_match_processor(self):
        events = make_trace().to_chrome_trace()
        meta = {e["args"]["name"]: e["tid"]
                for e in events if e["ph"] == "M"}
        a = next(e for e in events if e.get("name") == "a")
        assert a["tid"] == meta["npu"]

    def test_save_is_valid_json(self, tmp_path):
        path = os.path.join(tmp_path, "traces", "run.json")
        make_trace().save_chrome_trace(path)
        with open(path) as f:
            data = json.load(f)
        assert isinstance(data, list)
        assert any(e.get("ph") == "X" for e in data)

    def test_engine_trace_exports(self, tmp_path):
        from repro.core import LlmNpuEngine
        report = LlmNpuEngine.build(
            "Qwen1.5-1.8B", "Redmi K70 Pro"
        ).prefill(256)
        path = os.path.join(tmp_path, "prefill.json")
        report.trace.save_chrome_trace(path)
        with open(path) as f:
            events = json.load(f)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(report.trace.events)

    def test_save_is_deterministic(self, tmp_path):
        """Equal traces serialize to byte-identical files."""
        p1 = os.path.join(tmp_path, "a.json")
        p2 = os.path.join(tmp_path, "b.json")
        make_trace().save_chrome_trace(p1)
        make_trace().save_chrome_trace(p2)
        assert open(p1, "rb").read() == open(p2, "rb").read()

    def test_untagged_events_export_as_task_cat(self):
        trace = Trace()
        trace.add(TraceEvent("plain", "npu", 0.0, 0.001))
        events = trace.to_chrome_trace()
        plain = next(e for e in events if e.get("name") == "plain")
        assert plain["cat"] == "task"


class TestChromeRoundTrip:
    def test_reload_matches_counts_and_durations(self, tmp_path):
        trace = make_trace()
        path = os.path.join(tmp_path, "rt.json")
        trace.save_chrome_trace(path)
        again = Trace.load_chrome_trace(path)
        assert len(again.events) == len(trace.events)
        assert again.processors() == trace.processors()
        for a, b in zip(sorted(trace.events, key=lambda e: e.task_id),
                        sorted(again.events, key=lambda e: e.task_id)):
            assert a.task_id == b.task_id
            assert a.proc == b.proc
            assert a.tag == b.tag
            assert abs(a.duration_s - b.duration_s) < 1e-12

    def test_untagged_round_trips_to_untagged(self, tmp_path):
        trace = Trace()
        trace.add(TraceEvent("plain", "npu", 0.0, 0.001))
        path = os.path.join(tmp_path, "rt.json")
        trace.save_chrome_trace(path)
        again = Trace.load_chrome_trace(path)
        assert again.events[0].tag == ""
        # ...so busy_by_tag buckets agree before and after the trip
        assert again.busy_by_tag() == trace.busy_by_tag()

    def test_missing_thread_metadata_rejected(self):
        import pytest
        from repro.errors import SchedulingError
        events = [{"name": "x", "cat": "task", "ph": "X", "pid": 0,
                   "tid": 3, "ts": 0.0, "dur": 1.0}]
        with pytest.raises(SchedulingError):
            Trace.from_chrome_trace(events)


class TestTraceMetricsEdgeCases:
    def test_validate_serial_accepts_back_to_back(self):
        trace = Trace()
        trace.add(TraceEvent("a", "npu", 0.0, 0.001))
        trace.add(TraceEvent("b", "npu", 0.001, 0.002))
        trace.validate_serial()  # touching endpoints are not an overlap

    def test_validate_serial_rejects_overlap(self):
        import pytest
        from repro.errors import SchedulingError
        trace = Trace()
        trace.add(TraceEvent("a", "npu", 0.0, 0.002))
        trace.add(TraceEvent("b", "npu", 0.001, 0.003))
        with pytest.raises(SchedulingError, match="overlap"):
            trace.validate_serial()

    def test_validate_serial_ignores_other_processors(self):
        trace = Trace()
        trace.add(TraceEvent("a", "npu", 0.0, 0.002))
        trace.add(TraceEvent("b", "cpu", 0.001, 0.003))
        trace.validate_serial()

    def test_bubble_rate_zero_span(self):
        """All-instant events: span 0 -> bubble rate defined as 0."""
        trace = Trace()
        trace.add(TraceEvent("a", "npu", 0.5, 0.5))
        assert trace.bubble_rate("npu") == 0.0

    def test_bubble_rate_empty_processor(self):
        assert Trace().bubble_rate("npu") == 0.0
        trace = make_trace()
        assert trace.bubble_rate("gpu") == 0.0

    def test_busy_by_tag_groups_untagged_under_task(self):
        trace = Trace()
        trace.add(TraceEvent("a", "npu", 0.0, 0.001))
        trace.add(TraceEvent("b", "npu", 0.001, 0.003, tag="sync"))
        trace.add(TraceEvent("c", "cpu", 0.0, 0.002))
        by_tag = trace.busy_by_tag()
        assert "" not in by_tag
        assert abs(by_tag["task"] - 0.003) < 1e-12
        assert abs(by_tag["sync"] - 0.002) < 1e-12
