"""Tests for energy and memory models."""

import pytest

from repro.errors import HardwareError, MemoryLimitError
from repro.hw import GiB, MiB, REDMI_K70_PRO
from repro.hw.energy import EnergyModel
from repro.hw.memory import MemorySpace, SocMemory

DEV = REDMI_K70_PRO


class TestEnergyModel:
    def test_all_idle(self):
        model = DEV.energy_model()
        breakdown = model.energy({}, makespan_s=10.0)
        expected_idle = sum(p.idle_power_w for p in DEV.processors.values())
        expected = (expected_idle + DEV.platform_power_w) * 10.0
        assert breakdown.total_j == pytest.approx(expected)

    def test_cpu_run_costs_more_than_npu_run(self):
        # Same wall time, the NPU run keeps the CPU idle and vice versa.
        model = DEV.energy_model()
        cpu_run = model.energy({"cpu": 10.0}, 10.0).total_j
        npu_run = model.energy({"npu": 10.0}, 10.0).total_j
        assert cpu_run > 3 * npu_run - (cpu_run - npu_run) * 0  # strict
        assert cpu_run > npu_run

    def test_power_hierarchy_cpu_gpu_npu(self):
        # §4.2: CPU all-cores draws most, NPU least.
        assert (DEV.cpu.active_power_w > DEV.gpu.active_power_w
                > DEV.npu.active_power_w)

    def test_busy_exceeding_makespan_raises(self):
        model = DEV.energy_model()
        with pytest.raises(HardwareError):
            model.energy({"cpu": 11.0}, 10.0)

    def test_negative_makespan_raises(self):
        with pytest.raises(HardwareError):
            DEV.energy_model().energy({}, -1.0)

    def test_busy_energy(self):
        model = DEV.energy_model()
        assert model.busy_energy_j("npu", 2.0) == pytest.approx(
            2.0 * DEV.npu.active_power_w
        )

    def test_unknown_processor_raises(self):
        with pytest.raises(HardwareError):
            DEV.energy_model().busy_energy_j("tpu", 1.0)

    def test_negative_platform_power_rejected(self):
        with pytest.raises(HardwareError):
            EnergyModel(DEV.processors, platform_power_w=-1.0)


class TestMemorySpace:
    def test_alloc_free_cycle(self):
        space = MemorySpace("test", 100)
        space.alloc("a", 60)
        assert space.used_bytes == 60
        space.free("a")
        assert space.used_bytes == 0

    def test_limit_enforced(self):
        space = MemorySpace("test", 100)
        space.alloc("a", 60)
        with pytest.raises(MemoryLimitError):
            space.alloc("b", 50)

    def test_peak_tracked(self):
        space = MemorySpace("test", 100)
        space.alloc("a", 60)
        space.free("a")
        space.alloc("b", 10)
        assert space.peak_bytes == 60

    def test_duplicate_name_rejected(self):
        space = MemorySpace("test", 100)
        space.alloc("a", 10)
        with pytest.raises(MemoryLimitError):
            space.alloc("a", 10)

    def test_free_unknown_rejected(self):
        with pytest.raises(MemoryLimitError):
            MemorySpace("test", 100).free("ghost")

    def test_unlimited_space(self):
        space = MemorySpace("test")
        space.alloc("big", 10**15)
        assert space.would_fit(10**15)

    def test_would_fit(self):
        space = MemorySpace("test", 100)
        space.alloc("a", 60)
        assert space.would_fit(40)
        assert not space.would_fit(41)


class TestSocMemory:
    def test_npu_region_capped_at_4gb(self):
        mem = SocMemory(24 * GiB)
        assert mem.npu.limit_bytes == 4 * GiB

    def test_npu_region_cannot_hold_7b_weights(self):
        # §4 implementation note: 4 GB NPU region < LLaMA-7B int8 weights
        # + activations, so llm.npu prioritizes FFN-style ops on the NPU.
        mem = SocMemory(24 * GiB)
        with pytest.raises(MemoryLimitError):
            mem.npu.alloc("llama7b-weights", 7 * GiB)

    def test_shared_alloc_rolls_back_on_failure(self):
        mem = SocMemory(24 * GiB)
        with pytest.raises(MemoryLimitError):
            mem.alloc_shared("too-big", 5 * GiB, spaces=[mem.cpu, mem.npu])
        assert mem.dram.used_bytes == 0
        assert mem.cpu.used_bytes == 0

    def test_shared_alloc_counts_dram_once(self):
        mem = SocMemory(24 * GiB)
        mem.alloc_shared("weights", 1 * GiB, spaces=[mem.cpu])
        assert mem.report() == {
            "dram": 1 * GiB, "cpu": 1 * GiB, "npu": 0,
        }

    def test_device_memory_presets(self):
        from repro.hw import REDMI_K60_PRO
        assert REDMI_K70_PRO.memory().dram.limit_bytes == 24 * GiB
        assert REDMI_K60_PRO.memory().dram.limit_bytes == 16 * GiB
