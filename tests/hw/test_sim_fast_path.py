"""The vectorized simulator fast path vs the reference implementation.

``Simulator.run`` dispatches FIFO workloads through a batched,
heap-indexed fast path and everything else through the generic loop with
O(1) dependency bookkeeping; :class:`ReferenceSimulator` keeps the
original per-event implementation verbatim.  These tests pin the only
property that makes the speedup legitimate: *every* policy, on *every*
graph shape, produces a byte-identical trace from both simulators —
including error paths.
"""

import numpy as np
import pytest

from repro.core.scheduler import (
    ChunkOrderPolicy,
    HeadOfLinePolicy,
    LatencyGreedyPolicy,
    NormalizedOooPolicy,
    OutOfOrderPolicy,
)
from repro.errors import DependencyError
from repro.eval.simbench import SIM_SCENARIOS, synthetic_task_graph
from repro.hw.sim import FifoPolicy, ReferenceSimulator, Simulator, Task

POLICIES = [
    FifoPolicy,
    OutOfOrderPolicy,
    NormalizedOooPolicy,
    LatencyGreedyPolicy,
    ChunkOrderPolicy,
    HeadOfLinePolicy,
]

PROCS = ["cpu", "npu", "dsp"]


def random_graph(seed: int, n_tasks: int = 60):
    """A random dependency DAG with policy-relevant tags and durations."""
    rng = np.random.default_rng(seed)
    tasks = []
    for i in range(n_tasks):
        n_deps = int(rng.integers(0, min(i, 3) + 1)) if i else 0
        deps = tuple(sorted({
            f"t{int(j)}" for j in rng.integers(0, i, size=n_deps)
        })) if n_deps else ()
        tasks.append(Task(
            task_id=f"t{i}",
            proc=PROCS[int(rng.integers(0, len(PROCS)))],
            duration_s=float(rng.choice(
                [0.0, 1e-4, 1e-4, rng.uniform(1e-5, 2e-3)]
            )),
            deps=deps,
            tag=f"tag{i % 4}",
            chunk=int(rng.integers(0, 4)),
            subgraph=int(rng.integers(0, 6)),
            ops=float(rng.integers(0, 1000)),
        ))
    return tasks


class TestTraceEquivalence:
    @pytest.mark.parametrize("policy_cls", POLICIES,
                             ids=lambda p: p.__name__)
    def test_random_graphs_match_reference(self, policy_cls):
        for seed in range(10):
            tasks = random_graph(seed)
            fast = Simulator(PROCS).run(tasks, policy_cls())
            ref = ReferenceSimulator(PROCS).run(tasks, policy_cls())
            assert fast.events == ref.events, (
                f"{policy_cls.__name__} diverged on graph seed {seed}"
            )

    @pytest.mark.parametrize("scenario", SIM_SCENARIOS,
                             ids=lambda s: s.name)
    def test_benchmark_scenarios_match_reference(self, scenario):
        # The exact graphs the self-benchmark times must also agree —
        # the measured speedup is meaningless otherwise.
        procs, tasks = synthetic_task_graph(scenario)
        fast = Simulator(procs).run(tasks, FifoPolicy())
        ref = ReferenceSimulator(procs).run(tasks, FifoPolicy())
        assert fast.events == ref.events

    def test_duplicate_duration_co_terminators(self):
        # Many tasks finishing at the same instant exercises the
        # co-terminator drain order on both paths.
        tasks = [Task(f"t{i}", PROCS[i % 3], 1e-3) for i in range(12)]
        tasks += [Task(f"d{i}", PROCS[i % 3], 1e-3,
                       deps=(f"t{i}", f"t{(i + 1) % 12}"))
                  for i in range(12)]
        fast = Simulator(PROCS).run(tasks, FifoPolicy())
        ref = ReferenceSimulator(PROCS).run(tasks, FifoPolicy())
        assert fast.events == ref.events

    def test_duplicate_deps_tuple(self):
        # deps with repeats hit the dup_deps recount fallback in the
        # generic path's O(1) bookkeeping.
        tasks = [
            Task("a", "cpu", 1e-4),
            Task("b", "npu", 1e-4, deps=("a", "a")),
            Task("c", "cpu", 1e-4, deps=("b", "a", "b")),
        ]
        for policy_cls in (FifoPolicy, OutOfOrderPolicy):
            fast = Simulator(PROCS).run(tasks, policy_cls())
            ref = ReferenceSimulator(PROCS).run(tasks, policy_cls())
            assert fast.events == ref.events


class TestFastPathGate:
    def test_fifo_subclass_uses_generic_path(self):
        # A FifoPolicy *subclass* may override select; the exact-type
        # gate must route it through the generic path so the override is
        # honored.
        class LifoPolicy(FifoPolicy):
            def select(self, proc, ready, context):
                return max(ready,
                           key=lambda t: context.submit_index[t.task_id])

        tasks = [Task(f"t{i}", "cpu", 1e-4) for i in range(6)]
        lifo = Simulator(["cpu"]).run(tasks, LifoPolicy())
        fifo = Simulator(["cpu"]).run(tasks, FifoPolicy())
        assert [e.task_id for e in lifo.events] == [
            f"t{i}" for i in reversed(range(6))
        ]
        assert [e.task_id for e in fifo.events] == [
            f"t{i}" for i in range(6)
        ]
        # and the subclass still matches the reference simulator
        ref = ReferenceSimulator(["cpu"]).run(tasks, LifoPolicy())
        assert lifo.events == ref.events


class TestErrorParity:
    @pytest.mark.parametrize("sim_cls", [Simulator, ReferenceSimulator],
                             ids=["fast", "reference"])
    def test_unknown_processor(self, sim_cls):
        with pytest.raises(DependencyError, match="unknown processor"):
            sim_cls(["cpu"]).run([Task("a", "gpu", 1.0)], FifoPolicy())

    @pytest.mark.parametrize("sim_cls", [Simulator, ReferenceSimulator],
                             ids=["fast", "reference"])
    def test_unknown_dependency(self, sim_cls):
        with pytest.raises(DependencyError, match="unknown dependency"):
            sim_cls(["cpu"]).run(
                [Task("a", "cpu", 1.0, deps=("ghost",))], FifoPolicy()
            )

    @pytest.mark.parametrize("sim_cls", [Simulator, ReferenceSimulator],
                             ids=["fast", "reference"])
    def test_cyclic_deadlock(self, sim_cls):
        tasks = [
            Task("a", "cpu", 1.0, deps=("b",)),
            Task("b", "cpu", 1.0, deps=("a",)),
        ]
        with pytest.raises(DependencyError, match="deadlock"):
            sim_cls(["cpu"]).run(tasks, FifoPolicy())
