"""Tests for processor specs and the MatMul profile cost model."""

import pytest

from repro.errors import ConfigError
from repro.hw.processor import DType, MatMulProfile, ProcKind, ProcessorSpec


def make_profile(**kwargs):
    defaults = dict(peak_ops=1e12, m_sat=256, m_exp=1.0,
                    overhead_s=1e-4, mem_bandwidth=3e10)
    defaults.update(kwargs)
    return MatMulProfile(**defaults)


class TestMatMulProfile:
    def test_utilization_saturates(self):
        p = make_profile()
        assert p.utilization(256) == 1.0
        assert p.utilization(512) == 1.0
        assert p.utilization(128) == pytest.approx(0.5)

    def test_min_util_floor(self):
        p = make_profile(min_util=0.1)
        assert p.utilization(1) == 0.1

    def test_zero_exp_is_flat(self):
        p = make_profile(m_exp=0.0)
        assert p.utilization(1) == 1.0

    def test_latency_monotone_in_shape(self):
        p = make_profile()
        base = p.latency(256, 1024, 1024)
        assert p.latency(256, 2048, 1024) > base
        assert p.latency(256, 1024, 2048) > base
        assert p.latency(512, 1024, 1024) > base

    def test_overhead_floor(self):
        p = make_profile(overhead_s=0.5)
        assert p.latency(1, 1, 1) >= 0.5

    def test_memory_bound_regime(self):
        # Tiny compute, huge weights: memory term dominates.
        p = make_profile(peak_ops=1e18, mem_bandwidth=1e9, overhead_s=0.0)
        lat = p.latency(1, 4096, 4096, weight_bytes=4096 * 4096)
        assert lat == pytest.approx(4096 * 4096 / 1e9)

    def test_sum_combine_adds_terms(self):
        pmax = make_profile(combine="max", overhead_s=0.0, m_exp=0.0)
        psum = make_profile(combine="sum", overhead_s=0.0, m_exp=0.0)
        assert psum.latency(64, 1024, 1024) > pmax.latency(64, 1024, 1024)

    def test_invalid_combine_raises(self):
        with pytest.raises(ConfigError):
            make_profile(combine="avg")

    def test_invalid_shape_raises(self):
        p = make_profile()
        with pytest.raises(ConfigError):
            p.latency(0, 10, 10)
        with pytest.raises(ConfigError):
            p.utilization(0)

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigError):
            make_profile(peak_ops=0)
        with pytest.raises(ConfigError):
            make_profile(min_util=1.5)


class TestProcessorSpec:
    def make_spec(self, **kwargs):
        defaults = dict(
            name="test", kind=ProcKind.CPU,
            matmul={DType.INT8: make_profile()},
            vector_ops_per_s=1e10, dispatch_overhead_s=1e-5,
            active_power_w=5.0, idle_power_w=0.2,
        )
        defaults.update(kwargs)
        return ProcessorSpec(**defaults)

    def test_supports(self):
        spec = self.make_spec()
        assert spec.supports(DType.INT8)
        assert not spec.supports(DType.FP16)

    def test_missing_profile_raises(self):
        spec = self.make_spec()
        with pytest.raises(ConfigError):
            spec.matmul_profile(DType.FP16)

    def test_vector_latency(self):
        spec = self.make_spec()
        lat = spec.vector_latency(1e10, 1.0)
        assert lat == pytest.approx(1.0 + 1e-5)

    def test_vector_latency_negative_raises(self):
        with pytest.raises(ConfigError):
            self.make_spec().vector_latency(-1)

    def test_power_sanity_enforced(self):
        with pytest.raises(ConfigError):
            self.make_spec(active_power_w=0.1, idle_power_w=0.2)

    def test_empty_matmul_raises(self):
        with pytest.raises(ConfigError):
            self.make_spec(matmul={})

    def test_dtype_bytes(self):
        assert DType.INT8.bytes == 1
        assert DType.FP16.bytes == 2
        assert DType.FP32.bytes == 4
