"""Tests for device presets and NPU graph lifecycle costs."""

import pytest

from repro.errors import ConfigError, HardwareError
from repro.hw import (
    DType,
    MatMulShape,
    NpuGraphCostModel,
    REDMI_K60_PRO,
    REDMI_K70_PRO,
    get_device,
    graph_ops_for_model,
    matmul_latency,
)
from repro.model import GEMMA_2B


class TestDevicePresets:
    def test_lookup(self):
        assert get_device("redmi k70 pro") is REDMI_K70_PRO
        with pytest.raises(ConfigError):
            get_device("pixel 9")

    def test_k60_uniformly_slower(self):
        shape = MatMulShape(256, 2048, 2048)
        for proc, dtype in (("npu", DType.INT8), ("cpu", DType.INT8),
                            ("gpu", DType.FP16)):
            fast = matmul_latency(REDMI_K70_PRO.processors[proc], shape, dtype)
            slow = matmul_latency(REDMI_K60_PRO.processors[proc], shape, dtype)
            assert slow > fast

    def test_npu_lacks_per_group_support(self):
        # Table 2: no mainstream mobile NPU supports per-group MatMul.
        assert not REDMI_K70_PRO.npu.supports_per_group_matmul
        assert REDMI_K70_PRO.cpu.supports_per_group_matmul

    def test_scaled_validation(self):
        with pytest.raises(ConfigError):
            REDMI_K70_PRO.scaled("bad", "soc", cpu_gpu=0.0, npu=1.0,
                                 dram_bytes=1)

    def test_npu_supports_no_fp32(self):
        assert not REDMI_K70_PRO.npu.supports(DType.FP32)
        assert REDMI_K70_PRO.cpu.supports(DType.FP32)


class TestNpuGraphCosts:
    """Figure 2: build 300-500ms, optimize ~seconds for full models."""

    def test_gemma_full_graph_matches_paper(self):
        # Paper: Gemma-2B build 360 ms, optimize 11.54 s.
        cost = NpuGraphCostModel()
        n_ops = graph_ops_for_model(GEMMA_2B.n_layers)
        assert cost.build_s(n_ops) == pytest.approx(0.360, rel=0.15)
        assert cost.optimize_s(n_ops) == pytest.approx(11.54, rel=0.15)

    def test_optimize_dominates_build(self):
        cost = NpuGraphCostModel()
        assert cost.optimize_s(100) > 10 * cost.build_s(100)

    def test_prepare_sums_stages(self):
        cost = NpuGraphCostModel()
        assert cost.prepare_s(50) == pytest.approx(
            cost.env_setup_s + cost.build_s(50) + cost.optimize_s(50)
        )

    def test_small_graphs_cheaper(self):
        cost = NpuGraphCostModel()
        assert cost.prepare_s(10) < cost.prepare_s(100)

    def test_invalid_op_count(self):
        with pytest.raises(HardwareError):
            NpuGraphCostModel().build_s(0)
        with pytest.raises(HardwareError):
            graph_ops_for_model(0)

    def test_rebuild_per_prompt_dwarfs_execution(self):
        # §2.3: re-preparing the graph per prompt costs more than any
        # plausible prefill execution — the reason naive NPU offload loses.
        cost = NpuGraphCostModel()
        n_ops = graph_ops_for_model(24)
        prepare = cost.prepare_s(n_ops)
        ffn = matmul_latency(REDMI_K70_PRO.npu,
                             MatMulShape(1024, 2048, 5504), DType.INT8)
        assert prepare > 100 * ffn
