"""Tests for the discrete-event simulator and traces."""

import pytest

from repro.errors import DependencyError, SchedulingError
from repro.hw.sim import (
    FifoPolicy,
    SchedulingPolicy,
    Simulator,
    Task,
    critical_path_s,
)
from repro.hw.trace import Trace, TraceEvent


def sim():
    return Simulator(["cpu", "npu"])


class TestSimulatorBasics:
    def test_single_task(self):
        trace = sim().run([Task("a", "cpu", 1.0)])
        assert trace.makespan_s == 1.0
        assert trace.busy_seconds("cpu") == 1.0

    def test_chain_serializes(self):
        tasks = [
            Task("a", "cpu", 1.0),
            Task("b", "cpu", 2.0, deps=("a",)),
            Task("c", "cpu", 3.0, deps=("b",)),
        ]
        trace = sim().run(tasks)
        assert trace.makespan_s == 6.0

    def test_independent_tasks_on_different_procs_overlap(self):
        tasks = [Task("a", "cpu", 2.0), Task("b", "npu", 2.0)]
        trace = sim().run(tasks)
        assert trace.makespan_s == 2.0

    def test_same_proc_serial_even_if_independent(self):
        # Eq. 4: one subgraph per processor at a time.
        tasks = [Task("a", "cpu", 2.0), Task("b", "cpu", 2.0)]
        trace = sim().run(tasks)
        assert trace.makespan_s == 4.0

    def test_cross_proc_dependency(self):
        tasks = [
            Task("npu1", "npu", 1.0),
            Task("cpu1", "cpu", 1.0, deps=("npu1",)),
            Task("npu2", "npu", 1.0, deps=("cpu1",)),
        ]
        trace = sim().run(tasks)
        assert trace.makespan_s == 3.0

    def test_empty_tasks(self):
        assert sim().run([]).makespan_s == 0.0

    def test_zero_duration_tasks(self):
        tasks = [Task("a", "cpu", 0.0), Task("b", "cpu", 1.0, deps=("a",))]
        assert sim().run(tasks).makespan_s == 1.0


class TestValidation:
    def test_unknown_processor(self):
        with pytest.raises(DependencyError):
            sim().run([Task("a", "tpu", 1.0)])

    def test_unknown_dependency(self):
        with pytest.raises(DependencyError):
            sim().run([Task("a", "cpu", 1.0, deps=("ghost",))])

    def test_duplicate_ids(self):
        with pytest.raises(DependencyError):
            sim().run([Task("a", "cpu", 1.0), Task("a", "cpu", 1.0)])

    def test_cycle_deadlocks(self):
        tasks = [
            Task("a", "cpu", 1.0, deps=("b",)),
            Task("b", "cpu", 1.0, deps=("a",)),
        ]
        with pytest.raises(DependencyError):
            sim().run(tasks)

    def test_negative_duration(self):
        with pytest.raises(SchedulingError):
            Task("a", "cpu", -1.0)

    def test_no_processors(self):
        with pytest.raises(SchedulingError):
            Simulator([])


class TestFifoPolicy:
    def test_respects_submission_order(self):
        tasks = [Task("late", "cpu", 1.0), Task("early", "cpu", 1.0)]
        trace = sim().run(tasks, FifoPolicy())
        assert trace.order_on("cpu") == ["late", "early"]

    def test_fifo_creates_bubbles_on_cross_dependencies(self):
        # npu: a1 -> (cpu: f1) -> npu: a2 ; an independent npu task "x"
        # could fill the gap but FIFO (submission order) runs it last.
        tasks = [
            Task("a1", "npu", 1.0),
            Task("f1", "cpu", 1.0, deps=("a1",)),
            Task("a2", "npu", 1.0, deps=("f1",)),
            Task("x", "npu", 1.0),
        ]
        # Submission order puts x after a2 — but x is ready at t=0 and FIFO
        # picks the lowest submit index among *ready* tasks, so it runs at
        # t=1 filling the bubble.  Force the bubble by submitting x first
        # is impossible; instead verify the trace is valid and serial.
        trace = sim().run(tasks, FifoPolicy())
        trace.validate_serial()
        assert trace.makespan_s >= 3.0


class GreedyLongest(SchedulingPolicy):
    name = "longest-first"

    def select(self, proc, ready, context):
        return max(ready, key=lambda t: t.duration_s)


class TestCustomPolicy:
    def test_policy_changes_order(self):
        tasks = [Task("short", "cpu", 1.0), Task("long", "cpu", 5.0)]
        fifo = sim().run(tasks, FifoPolicy())
        greedy = sim().run(tasks, GreedyLongest())
        assert fifo.order_on("cpu") == ["short", "long"]
        assert greedy.order_on("cpu") == ["long", "short"]

    def test_bad_policy_selection_caught(self):
        class Rogue(SchedulingPolicy):
            name = "rogue"
            def select(self, proc, ready, context):
                return Task("fake", proc, 1.0)
        with pytest.raises(SchedulingError):
            sim().run([Task("a", "cpu", 1.0)], Rogue())


class TestCriticalPath:
    def test_chain(self):
        tasks = [
            Task("a", "cpu", 1.0),
            Task("b", "npu", 2.0, deps=("a",)),
            Task("c", "cpu", 3.0, deps=("b",)),
        ]
        assert critical_path_s(tasks) == 6.0

    def test_parallel_branches(self):
        tasks = [
            Task("a", "cpu", 1.0),
            Task("b1", "cpu", 5.0, deps=("a",)),
            Task("b2", "npu", 2.0, deps=("a",)),
            Task("c", "cpu", 1.0, deps=("b1", "b2")),
        ]
        assert critical_path_s(tasks) == 7.0

    def test_makespan_bounded_below_by_critical_path(self):
        tasks = [
            Task(f"t{i}", "npu" if i % 2 else "cpu", 1.0,
                 deps=(f"t{i-1}",) if i else ())
            for i in range(10)
        ]
        trace = sim().run(tasks)
        assert trace.makespan_s >= critical_path_s(tasks) - 1e-9

    def test_cycle_detected(self):
        tasks = [
            Task("a", "cpu", 1.0, deps=("b",)),
            Task("b", "cpu", 1.0, deps=("a",)),
        ]
        with pytest.raises(DependencyError):
            critical_path_s(tasks)


class TestTrace:
    def test_bubble_rate(self):
        trace = Trace()
        trace.add(TraceEvent("a", "npu", 0.0, 1.0))
        trace.add(TraceEvent("b", "npu", 3.0, 4.0))
        assert trace.bubble_rate("npu") == pytest.approx(0.5)

    def test_bubble_rate_zero_when_packed(self):
        trace = Trace()
        trace.add(TraceEvent("a", "npu", 0.0, 2.0))
        trace.add(TraceEvent("b", "npu", 2.0, 4.0))
        assert trace.bubble_rate("npu") == 0.0

    def test_utilization(self):
        trace = Trace()
        trace.add(TraceEvent("a", "npu", 0.0, 1.0))
        trace.add(TraceEvent("b", "cpu", 0.0, 4.0))
        assert trace.utilization("npu") == pytest.approx(0.25)

    def test_busy_by_tag(self):
        trace = Trace()
        trace.add(TraceEvent("a", "npu", 0.0, 1.0, tag="linear"))
        trace.add(TraceEvent("b", "cpu", 0.0, 2.0, tag="attention"))
        trace.add(TraceEvent("c", "npu", 1.0, 3.0, tag="linear"))
        by_tag = trace.busy_by_tag()
        assert by_tag["linear"] == pytest.approx(3.0)
        assert by_tag["attention"] == pytest.approx(2.0)

    def test_overlap_detection(self):
        trace = Trace()
        trace.add(TraceEvent("a", "npu", 0.0, 2.0))
        trace.add(TraceEvent("b", "npu", 1.0, 3.0))
        with pytest.raises(SchedulingError):
            trace.validate_serial()

    def test_invalid_event_rejected(self):
        trace = Trace()
        with pytest.raises(SchedulingError):
            trace.add(TraceEvent("a", "npu", 2.0, 1.0))

    def test_empty_trace_metrics(self):
        trace = Trace()
        assert trace.makespan_s == 0.0
        assert trace.bubble_rate("npu") == 0.0
        assert trace.utilization("npu") == 0.0
        assert trace.span_s("npu") == 0.0
