"""Property-based tests: simulator invariants over random task DAGs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import get_policy
from repro.hw.sim import FifoPolicy, Simulator, Task, critical_path_s

PROCS = ("cpu", "npu")


@st.composite
def task_dags(draw, max_tasks=14):
    """Random DAGs: dependencies only point to earlier tasks (acyclic)."""
    n = draw(st.integers(1, max_tasks))
    tasks = []
    for i in range(n):
        n_deps = draw(st.integers(0, min(i, 3)))
        deps = tuple(
            f"t{j}" for j in sorted(
                draw(st.permutations(range(i)))[:n_deps]
            )
        ) if i else ()
        tasks.append(Task(
            task_id=f"t{i}",
            proc=draw(st.sampled_from(PROCS)),
            duration_s=draw(st.floats(0.0, 5.0, allow_nan=False)),
            deps=deps,
            chunk=draw(st.integers(0, 3)),
            subgraph=i,
        ))
    return tasks


POLICIES = ["fifo", "in-order", "chunk-order", "ooo", "ooo-normalized",
            "latency-greedy"]


class TestScheduleInvariants:
    @settings(max_examples=60, deadline=None)
    @given(tasks=task_dags(), policy=st.sampled_from(POLICIES))
    def test_valid_complete_schedule(self, tasks, policy):
        trace = Simulator(PROCS).run(tasks, get_policy(policy))
        # completeness: every task ran exactly once
        assert sorted(e.task_id for e in trace.events) == sorted(
            t.task_id for t in tasks
        )
        # Eq. 4: serial per processor
        trace.validate_serial()
        # dependencies respected
        start = {e.task_id: e.start_s for e in trace.events}
        end = {e.task_id: e.end_s for e in trace.events}
        for t in tasks:
            for d in t.deps:
                assert start[t.task_id] >= end[d] - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(tasks=task_dags(), policy=st.sampled_from(POLICIES))
    def test_makespan_bounds(self, tasks, policy):
        trace = Simulator(PROCS).run(tasks, get_policy(policy))
        total = sum(t.duration_s for t in tasks)
        cp = critical_path_s(tasks)
        busiest = max(
            sum(t.duration_s for t in tasks if t.proc == p) for p in PROCS
        )
        # lower bounds: critical path and the busiest processor
        assert trace.makespan_s >= cp - 1e-9
        assert trace.makespan_s >= busiest - 1e-9
        # upper bound: fully serial execution
        assert trace.makespan_s <= total + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(tasks=task_dags())
    def test_work_conservation(self, tasks):
        # every policy executes exactly the same total work
        busies = []
        for policy in POLICIES:
            trace = Simulator(PROCS).run(tasks, get_policy(policy))
            busies.append(sum(trace.busy_seconds(p) for p in PROCS))
        expected = sum(t.duration_s for t in tasks)
        for busy in busies:
            assert busy == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(tasks=task_dags())
    def test_determinism(self, tasks):
        a = Simulator(PROCS).run(tasks, get_policy("ooo"))
        b = Simulator(PROCS).run(tasks, get_policy("ooo"))
        assert [(e.task_id, e.start_s) for e in a.events] == [
            (e.task_id, e.start_s) for e in b.events
        ]

    @settings(max_examples=40, deadline=None)
    @given(tasks=task_dags())
    def test_single_processor_equals_serial(self, tasks):
        # all tasks forced to one processor: makespan == total work
        serial = [
            Task(t.task_id, "cpu", t.duration_s, t.deps) for t in tasks
        ]
        trace = Simulator(["cpu"]).run(serial, FifoPolicy())
        assert trace.makespan_s == pytest.approx(
            sum(t.duration_s for t in tasks)
        )


class TestChunkedTaskGraphProperties:
    """Invariants of the real llm.npu task graphs across random configs."""

    @settings(max_examples=12, deadline=None)
    @given(
        n_chunks=st.integers(1, 4),
        n_layers=st.integers(1, 4),
        pruned=st.booleans(),
        policy=st.sampled_from(["ooo", "in-order", "latency-greedy"]),
    )
    def test_prefill_graph_always_schedulable(self, n_chunks, n_layers,
                                              pruned, policy):
        from repro.core.dependency import build_task_graph
        from repro.graph import GraphBuilder
        from repro.graph.builder import ShadowProfile
        from repro.hw import REDMI_K70_PRO
        from repro.model import tiny_config

        cfg = tiny_config(n_layers=n_layers, hidden_size=128, n_heads=4,
                          ffn_hidden=256, max_context=8192)
        builder = GraphBuilder(cfg, REDMI_K70_PRO)
        profiles = {
            l: ShadowProfile(pruned=pruned) for l in range(n_layers)
        }
        plans = [builder.build_chunk(i, 64, profiles)
                 for i in range(n_chunks)]
        tasks = build_task_graph(plans)
        trace = Simulator(["npu", "cpu"]).run(tasks, get_policy(policy))
        trace.validate_serial()
        assert len(trace.events) == len(tasks)
        # the OOO policy never loses to serial execution
        assert trace.makespan_s <= sum(t.duration_s for t in tasks) + 1e-9
