"""Tests for the synthetic accuracy benchmarks and calibration corpora."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.model import build_synthetic_model, tiny_config
from repro.workloads import (
    ACCURACY_BENCHMARKS,
    AccuracyBenchmark,
    build_items,
    calibration_corpus,
    evaluate,
    get_benchmark,
    heldout_sequences,
    model_answers,
    teacher_agreement,
)


@pytest.fixture(scope="module")
def model():
    return build_synthetic_model(tiny_config(), seed=2)


class TestBenchmarkDefinitions:
    def test_five_suites(self):
        assert len(ACCURACY_BENCHMARKS) == 5

    def test_lookup(self):
        assert get_benchmark("lambada").kind == "cloze"
        assert get_benchmark("winogrande").n_choices == 2
        with pytest.raises(WorkloadError):
            get_benchmark("gsm8k")

    def test_invalid_definitions(self):
        with pytest.raises(WorkloadError):
            AccuracyBenchmark("x", "X", "ranking", 10, 8)
        with pytest.raises(WorkloadError):
            AccuracyBenchmark("x", "X", "mcq", 10, 8, n_choices=1)
        with pytest.raises(WorkloadError):
            AccuracyBenchmark("x", "X", "cloze", 0, 8)


class TestItems:
    def test_item_counts(self, model):
        bench = get_benchmark("hellaswag")
        items = build_items(bench, model.config)
        assert len(items) == bench.n_items
        assert all(len(i.choices) == 4 for i in items)

    def test_cloze_has_no_choices(self, model):
        bench = get_benchmark("lambada")
        items = build_items(bench, model.config)
        assert all(i.choices == () for i in items)

    def test_items_deterministic(self, model):
        bench = get_benchmark("mmlu")
        a = build_items(bench, model.config)
        b = build_items(bench, model.config)
        assert all(np.array_equal(x.context, y.context)
                   for x, y in zip(a, b))

    def test_choices_unique(self, model):
        bench = get_benchmark("openbookqa")
        for item in build_items(bench, model.config):
            assert len(set(item.choices)) == len(item.choices)


class TestScoring:
    def test_model_agrees_with_itself(self, model):
        bench = get_benchmark("hellaswag")
        items = build_items(bench, model.config)[:8]
        answers = model_answers(model, bench, items)
        assert evaluate(model, answers, bench, items) == 1.0

    def test_different_model_disagrees(self, model):
        bench = get_benchmark("lambada")
        items = build_items(bench, model.config)[:16]
        answers = model_answers(model, bench, items)
        other = build_synthetic_model(tiny_config(), seed=99)
        assert evaluate(other, answers, bench, items) < 0.9

    def test_mcq_answers_are_choice_indices(self, model):
        bench = get_benchmark("winogrande")
        items = build_items(bench, model.config)[:8]
        answers = model_answers(model, bench, items)
        assert np.all(answers >= 0)
        assert np.all(answers < bench.n_choices)

    def test_teacher_agreement_validation(self):
        with pytest.raises(WorkloadError):
            teacher_agreement(np.zeros(3), np.zeros(4))
        with pytest.raises(WorkloadError):
            teacher_agreement(np.zeros(0), np.zeros(0))


class TestCorpus:
    def test_shapes(self, model):
        corpus = calibration_corpus(model.config, 4, 16)
        assert len(corpus) == 4
        assert all(seq.shape == (16,) for seq in corpus)

    def test_ids_avoid_reserved(self, model):
        for seq in calibration_corpus(model.config, 4, 16):
            assert seq.min() >= 4
            assert seq.max() < model.config.vocab_size

    def test_heldout_differs_from_calibration(self, model):
        calib = calibration_corpus(model.config, 2, 16, seed=0)
        held = heldout_sequences(model.config, 2, 16)
        assert not np.array_equal(calib[0], held[0])

    def test_validation(self, model):
        with pytest.raises(WorkloadError):
            calibration_corpus(model.config, 0, 16)
        with pytest.raises(WorkloadError):
            calibration_corpus(model.config, 2, 10 ** 9)
