"""Tests for workload specs, sampling, and prompt generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.model import ToyTokenizer
from repro.workloads import (
    CHAT_SUMMARY,
    EMAIL_REPLY,
    UI_AUTOMATION,
    WORKLOADS,
    WorkloadSpec,
    chat_dialogue,
    email_history,
    geomean,
    get_workload,
    sample_workload,
    ui_view_hierarchy,
)


class TestWorkloadSpecs:
    def test_five_workloads(self):
        assert len(WORKLOADS) == 5

    def test_lookup(self):
        assert get_workload("ui_automation") is UI_AUTOMATION
        with pytest.raises(WorkloadError):
            get_workload("tiktok")

    def test_ranges_match_table5(self):
        assert UI_AUTOMATION.prompt_range == (656, 827)
        assert EMAIL_REPLY.prompt_range == (1451, 1672)
        assert CHAT_SUMMARY.output_range == (35, 57)

    def test_invalid_spec(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec("bad", "x", (10, 5), (1, 2))
        with pytest.raises(WorkloadError):
            WorkloadSpec("bad", "x", (5, 10), (0, 2))


class TestSampling:
    def test_lengths_within_ranges(self):
        for spec in WORKLOADS.values():
            for s in sample_workload(spec, 50, seed=1):
                assert spec.prompt_range[0] <= s.prompt_tokens <= spec.prompt_range[1]
                assert spec.output_range[0] <= s.output_tokens <= spec.output_range[1]

    def test_deterministic_per_seed(self):
        a = sample_workload(UI_AUTOMATION, 10, seed=5)
        b = sample_workload(UI_AUTOMATION, 10, seed=5)
        assert a == b

    def test_seeds_differ(self):
        a = sample_workload(UI_AUTOMATION, 10, seed=5)
        b = sample_workload(UI_AUTOMATION, 10, seed=6)
        assert a != b

    def test_invalid_count(self):
        with pytest.raises(WorkloadError):
            sample_workload(UI_AUTOMATION, 0)


class TestGeomean:
    def test_known_value(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geomean([3.5]) == pytest.approx(3.5)

    def test_below_arithmetic_mean(self):
        values = [1.0, 10.0, 100.0]
        assert geomean(values) < np.mean(values)

    def test_empty_raises(self):
        with pytest.raises(WorkloadError):
            geomean([])

    def test_nonpositive_raises(self):
        with pytest.raises(WorkloadError):
            geomean([1.0, 0.0])


class TestPromptGenerators:
    """Prompt texts should tokenize into the paper's length ranges."""

    def test_ui_hierarchy_token_range(self):
        tok = ToyTokenizer()
        count = tok.count(ui_view_hierarchy(seed=1))
        assert 500 <= count <= 900

    def test_email_history_token_range(self):
        tok = ToyTokenizer()
        count = tok.count(email_history(seed=1))
        assert 1300 <= count <= 1900

    def test_chat_dialogue_token_range(self):
        tok = ToyTokenizer()
        count = tok.count(chat_dialogue(seed=1))
        assert 400 <= count <= 700

    def test_deterministic(self):
        assert ui_view_hierarchy(seed=3) == ui_view_hierarchy(seed=3)
        assert email_history(seed=3) == email_history(seed=3)

    def test_invalid_sizes(self):
        with pytest.raises(WorkloadError):
            ui_view_hierarchy(n_nodes=0)
        with pytest.raises(WorkloadError):
            email_history(n_messages=0)
        with pytest.raises(WorkloadError):
            chat_dialogue(n_turns=0)
