"""Tests for the equivalent-shape optimizer (§4 implementation note)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.shapes import (
    MAX_SQUARE_SPEEDUP,
    best_equivalent_shape,
    equivalent_shape_gain,
    factor_pairs,
    shape_speedup,
)


class TestFactorPairs:
    def test_basic(self):
        assert factor_pairs(12) == [(1, 12), (2, 6), (3, 4)]

    def test_prime(self):
        assert factor_pairs(13) == [(1, 13)]

    def test_square(self):
        assert (16, 16) in factor_pairs(256)

    def test_invalid(self):
        with pytest.raises(GraphError):
            factor_pairs(0)


class TestShapeSpeedup:
    def test_paper_data_point(self):
        # 1024 rows viewed as 32x32 is 1.62x faster than 1024x1.
        assert shape_speedup(32, 32) == pytest.approx(MAX_SQUARE_SPEEDUP)
        assert shape_speedup(1, 1024) == pytest.approx(1.0, abs=0.06)

    def test_square_is_best(self):
        assert shape_speedup(16, 16) > shape_speedup(4, 64) > shape_speedup(1, 256)

    def test_invalid(self):
        with pytest.raises(GraphError):
            shape_speedup(0, 4)


class TestBestShape:
    def test_perfect_square(self):
        assert best_equivalent_shape(256) == (16, 16)
        assert best_equivalent_shape(1024) == (32, 32)

    def test_non_square_picks_most_balanced(self):
        assert best_equivalent_shape(512) == (16, 32)

    def test_prime_degenerate(self):
        assert best_equivalent_shape(127) == (1, 127)
        assert equivalent_shape_gain(127) == pytest.approx(
            shape_speedup(1, 127)
        )

    def test_gain_for_chunk_256(self):
        # The default chunk length gets the full square speedup.
        assert equivalent_shape_gain(256) == pytest.approx(MAX_SQUARE_SPEEDUP)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 4096))
    def test_gain_bounded(self, m):
        gain = equivalent_shape_gain(m)
        assert 1.0 <= gain <= MAX_SQUARE_SPEEDUP + 1e-9
