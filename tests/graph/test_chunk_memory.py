"""Tests for chunk-sharing graphs and memory planning (§3.2, Fig. 17)."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    ChunkSharingGraph,
    GraphBuilder,
    n_chunks_for,
    padded_tokens,
    plan_chunk_sharing,
    plan_naive_chunk_graphs,
    sharing_saving_fraction,
)
from repro.hw import REDMI_K70_PRO
from repro.model import QWEN15_18B


@pytest.fixture(scope="module")
def graph():
    builder = GraphBuilder(QWEN15_18B, REDMI_K70_PRO)
    return ChunkSharingGraph(builder, chunk_len=256, max_chunks=4)


class TestChunking:
    def test_n_chunks(self):
        assert n_chunks_for(1024, 256) == 4
        assert n_chunks_for(1, 256) == 1
        assert n_chunks_for(257, 256) == 2

    def test_padding(self):
        assert padded_tokens(1024, 256) == 0
        assert padded_tokens(1000, 256) == 24
        assert padded_tokens(1, 256) == 255

    def test_invalid(self):
        with pytest.raises(GraphError):
            n_chunks_for(0, 256)
        with pytest.raises(GraphError):
            n_chunks_for(256, 0)


class TestChunkSharingGraph:
    def test_plans_for_prompt(self, graph):
        plans = graph.plans_for_prompt(700)
        assert len(plans) == 3
        assert [p.chunk_index for p in plans] == [0, 1, 2]

    def test_prompt_beyond_capacity_raises(self, graph):
        with pytest.raises(GraphError):
            graph.plans_for_prompt(2000)

    def test_chunk_out_of_range(self, graph):
        with pytest.raises(GraphError):
            graph.plan_for_chunk(4)

    def test_sharing_stats_match_paper(self, graph):
        stats = graph.sharing_stats()
        assert stats.shared_subgraphs == 120
        assert stats.shared_fraction == pytest.approx(120 / 144)
        # naive would hold 144 per chunk position
        assert stats.naive_subgraph_instances == 144 * 4
        assert (stats.total_subgraph_instances
                < stats.naive_subgraph_instances)

    def test_preparation_cheaper_than_naive_after_few_prompts(self, graph):
        # Chunk-sharing pays once; naive pays per prompt.  Within a handful
        # of prompts the one-time cost wins.
        once = graph.preparation_s()
        per_prompt = graph.naive_per_prompt_preparation_s()
        assert once < 5 * per_prompt

    def test_invalid_max_chunks(self):
        builder = GraphBuilder(QWEN15_18B, REDMI_K70_PRO)
        with pytest.raises(GraphError):
            ChunkSharingGraph(builder, 256, 0)


class TestMemoryPlans:
    def test_sharing_saves_activation_memory(self, graph):
        saving = sharing_saving_fraction(graph, 1024)
        assert saving > 0.3  # paper: up to 75% for chunk 256 / prompt 1024

    def test_naive_holds_every_copy(self, graph):
        shared = plan_chunk_sharing(graph, 1024)
        naive = plan_naive_chunk_graphs(graph, 1024)
        assert naive.activation_bytes > shared.activation_bytes
        assert naive.weights_bytes == shared.weights_bytes

    def test_weights_are_int8_scale(self, graph):
        plan = plan_chunk_sharing(graph, 1024)
        # int8 weights: ~1 byte/param for the transformer blocks
        expected = QWEN15_18B.weight_bytes(8, include_embeddings=False)
        assert plan.weights_bytes == pytest.approx(expected, rel=0.01)

    def test_shadow_weights_add_small_overhead(self, graph):
        # Fig. 17: shadow float weights are 0.6-1% of total memory.
        base = plan_chunk_sharing(graph, 1024)
        with_shadow = plan_chunk_sharing(
            graph, 1024,
            shadow_weights_bytes=int(0.008 * base.total_bytes),
        )
        overhead = (with_shadow.total_bytes - base.total_bytes) / base.total_bytes
        assert 0.005 < overhead < 0.015

    def test_kv_cache_scales_with_prompt(self, graph):
        short = plan_chunk_sharing(graph, 256)
        long = plan_chunk_sharing(graph, 1024)
        assert long.kv_cache_bytes == 4 * short.kv_cache_bytes

    def test_negative_tokens_raises(self):
        from repro.graph import kv_cache_bytes
        with pytest.raises(GraphError):
            kv_cache_bytes(QWEN15_18B, -1)
