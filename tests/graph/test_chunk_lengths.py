"""Edge cases for :func:`repro.graph.chunk_token_lengths` — the chunk
splitter the step-loop scheduler builds continuation state from."""

import pytest

from repro.errors import GraphError
from repro.graph import chunk_token_lengths


class TestChunkTokenLengths:
    def test_prompt_shorter_than_one_chunk(self):
        assert chunk_token_lengths(100, 256) == [100]

    def test_single_token_prompt(self):
        assert chunk_token_lengths(1, 256) == [1]

    def test_exact_multiple_of_chunk_size(self):
        assert chunk_token_lengths(768, 256) == [256, 256, 256]

    def test_exactly_one_chunk(self):
        assert chunk_token_lengths(256, 256) == [256]

    def test_single_token_tail_chunk(self):
        assert chunk_token_lengths(513, 256) == [256, 256, 1]

    def test_cached_prefix_shortens_first_chunk(self):
        # 100 cached tokens leave 156 slots in the first chunk
        assert chunk_token_lengths(500, 256, cached_tokens=100) \
            == [156, 256, 88]

    def test_cached_prefix_multiple_of_chunk_is_neutral(self):
        assert chunk_token_lengths(500, 256, cached_tokens=512) \
            == chunk_token_lengths(500, 256)

    def test_cached_prefix_larger_than_prompt_remainder(self):
        # remainder 255 leaves one slot; prompt of one token fits it
        assert chunk_token_lengths(1, 256, cached_tokens=255) == [1]

    @pytest.mark.parametrize("prompt,chunk,cached", [
        (0, 256, 0), (-1, 256, 0), (10, 0, 0), (10, -4, 0), (10, 8, -1),
    ])
    def test_invalid_arguments_raise(self, prompt, chunk, cached):
        with pytest.raises(GraphError):
            chunk_token_lengths(prompt, chunk, cached_tokens=cached)

    def test_conservation_and_bounds_sweep(self):
        """Deterministic sweep of the conservation invariant: chunk
        lengths are positive, at most chunk_len, sum to the prompt, and
        only the first chunk may be shortened by the cached prefix."""
        for chunk in (1, 3, 32, 256):
            for prompt in (1, 2, chunk - 1 or 1, chunk, chunk + 1,
                           3 * chunk, 3 * chunk + 1, 7 * chunk - 1):
                for cached in (0, 1, chunk - 1, chunk, 2 * chunk + 1):
                    if prompt <= 0 or cached < 0:
                        continue
                    lens = chunk_token_lengths(prompt, chunk,
                                               cached_tokens=cached)
                    assert sum(lens) == prompt
                    assert all(0 < n <= chunk for n in lens)
                    assert all(n == chunk for n in lens[1:-1])
                    if len(lens) > 1:
                        first_room = chunk - cached % chunk
                        assert lens[0] == first_room
