"""Tests for the subgraph builder."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    Backend,
    BuildOptions,
    GraphBuilder,
    SG_ATTN,
    SG_FFN,
    SG_QKV,
    SUBGRAPHS_PER_BLOCK,
    ShadowProfile,
)
from repro.hw import REDMI_K70_PRO
from repro.model import GEMMA_2B, QWEN15_18B

DEV = REDMI_K70_PRO


@pytest.fixture(scope="module")
def builder():
    return GraphBuilder(QWEN15_18B, DEV)


class TestChunkPlan:
    def test_subgraph_count(self, builder):
        plan = builder.build_chunk(0, 256)
        assert len(plan.subgraphs) == QWEN15_18B.n_layers * SUBGRAPHS_PER_BLOCK

    def test_backend_assignment(self, builder):
        plan = builder.build_chunk(0, 256)
        for sg in plan.subgraphs:
            if sg.position in (SG_QKV, 3, SG_FFN):
                assert sg.backend is Backend.NPU
            else:
                assert sg.backend is Backend.FLOAT

    def test_only_attention_is_dynamic(self, builder):
        plan = builder.build_chunk(0, 256)
        for sg in plan.subgraphs:
            assert sg.static == (sg.position != SG_ATTN)

    def test_qwen_sharing_matches_paper(self, builder):
        # §3.2: 120 of 144 subgraphs shareable on Qwen1.5-1.8B.
        plan = builder.build_chunk(0, 256)
        assert len(plan.subgraphs) == 144
        assert sum(1 for s in plan.subgraphs if s.static) == 120

    def test_attention_latency_grows_with_chunk_index(self, builder):
        first = builder.build_chunk(0, 256)
        last = builder.build_chunk(3, 256)
        attn0 = first.subgraph(0, SG_ATTN).latency_s
        attn3 = last.subgraph(0, SG_ATTN).latency_s
        assert attn3 > 2 * attn0

    def test_static_subgraphs_identical_across_chunks(self, builder):
        first = builder.build_chunk(0, 256)
        last = builder.build_chunk(3, 256)
        for pos in (0, SG_QKV, 3, 4, SG_FFN):
            assert (first.subgraph(0, pos).latency_s
                    == last.subgraph(0, pos).latency_s)

    def test_npu_dominates_float_for_first_chunk(self, builder):
        # §3.4: NPU work is the critical path (~2x CPU at 256 tokens).
        plan = builder.build_chunk(0, 256)
        ratio = plan.npu_latency_s() / plan.float_latency_s()
        assert 1.3 < ratio < 3.5

    def test_invalid_chunk_args(self, builder):
        with pytest.raises(GraphError):
            builder.build_chunk(-1, 256)
        with pytest.raises(GraphError):
            builder.build_chunk(0, 0)

    def test_weights_only_on_npu_subgraphs(self, builder):
        plan = builder.build_chunk(0, 256)
        for sg in plan.subgraphs:
            if sg.backend is Backend.NPU:
                assert sg.weight_bytes > 0
            else:
                assert sg.weight_bytes == 0

    def test_weight_bytes_match_param_count(self, builder):
        plan = builder.build_chunk(0, 256)
        total = sum(s.weight_bytes for s in plan.subgraphs)
        assert total == QWEN15_18B.param_count(include_embeddings=False) - (
            # norms are float parameters outside NPU subgraphs
            QWEN15_18B.n_layers * 2 * QWEN15_18B.hidden_size
            + QWEN15_18B.hidden_size
        )


class TestBuildOptions:
    def test_per_group_slows_npu(self):
        fast = GraphBuilder(QWEN15_18B, DEV, BuildOptions())
        slow = GraphBuilder(QWEN15_18B, DEV, BuildOptions(per_group=True))
        assert (slow.build_chunk(0, 256).npu_latency_s()
                > 5 * fast.build_chunk(0, 256).npu_latency_s())

    def test_equivalent_shapes_speed_up_npu(self):
        with_shapes = GraphBuilder(QWEN15_18B, DEV,
                                   BuildOptions(equivalent_shapes=True))
        without = GraphBuilder(QWEN15_18B, DEV,
                               BuildOptions(equivalent_shapes=False))
        assert (with_shapes.build_chunk(0, 256).npu_latency_s()
                < without.build_chunk(0, 256).npu_latency_s())

    def test_gpu_float_backend(self):
        gpu = GraphBuilder(QWEN15_18B, DEV, BuildOptions(float_backend="gpu"))
        plan = gpu.build_chunk(0, 256)
        assert plan.float_latency_s() > 0

    def test_invalid_backend(self):
        with pytest.raises(GraphError):
            BuildOptions(float_backend="dsp")


class TestShadowSpecs:
    def test_default_shadows_enabled(self, builder):
        plan = builder.build_chunk(0, 256)
        shadow = plan.shadows[(0, SG_QKV)]
        assert shadow.enabled
        assert shadow.matmul_s > 0
        assert shadow.sync_s > 0

    def test_pruned_shadow_disabled(self, builder):
        profiles = {l: ShadowProfile(pruned=True)
                    for l in range(QWEN15_18B.n_layers)}
        plan = builder.build_chunk(0, 256, profiles)
        for spec in plan.shadows.values():
            assert not spec.enabled
            assert spec.total_s == 0.0

    def test_shadow_hidden_under_npu(self, builder):
        # §3.3: shadow matmul is far cheaper than its NPU subgraph.
        plan = builder.build_chunk(0, 256)
        for (layer, pos), shadow in plan.shadows.items():
            npu_sg = plan.subgraph(layer, pos)
            assert shadow.matmul_s < npu_sg.latency_s

    def test_cold_miss_adds_disk_time(self, builder):
        warm = {0: ShadowProfile(hot_hit_rate=1.0,
                                 cold_bytes_per_miss=4096)}
        cold = {0: ShadowProfile(hot_hit_rate=0.5,
                                 cold_bytes_per_miss=4096)}
        plan_warm = builder.build_chunk(0, 256, warm)
        plan_cold = builder.build_chunk(0, 256, cold)
        assert plan_warm.shadows[(0, SG_QKV)].disk_s == 0.0
        assert plan_cold.shadows[(0, SG_QKV)].disk_s > 0.0

    def test_gemma_mqa_shapes(self):
        builder = GraphBuilder(GEMMA_2B, DEV)
        plan = builder.build_chunk(0, 256)
        qkv = plan.subgraph(0, SG_QKV)
        # Gemma is MQA: kv projections are tiny relative to q.
        assert qkv.ops[1].shape[2] < qkv.ops[0].shape[2]
