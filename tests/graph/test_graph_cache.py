"""Chunk-plan memoization: hit/miss accounting and cache safety.

Within one :class:`GraphBuilder` the (config, device, options) triple is
fixed, so a chunk plan is a pure function of ``(chunk_index, chunk_len,
shadow_profiles)``; the step loop replays the same chunk ladder for
every request and must hit the cache.  The cache may never leak shared
mutable state: callers get shallow copies they can rearrange freely.
"""

import pytest

from repro.graph import GraphBuilder, ShadowProfile
from repro.graph.builder import graph_cache_stats, reset_graph_cache_stats
from repro.hw import REDMI_K70_PRO
from repro.model import QWEN15_18B
from repro.obs import MetricsRegistry


@pytest.fixture()
def builder():
    return GraphBuilder(QWEN15_18B, REDMI_K70_PRO)


@pytest.fixture(autouse=True)
def clean_stats():
    reset_graph_cache_stats()
    yield
    reset_graph_cache_stats()


class TestMemoization:
    def test_repeat_build_hits(self, builder):
        first = builder.build_chunk(0, 256)
        before = graph_cache_stats()
        second = builder.build_chunk(0, 256)
        after = graph_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]
        assert second.subgraphs == first.subgraphs
        assert second.shadows == first.shadows

    def test_distinct_shapes_miss(self, builder):
        builder.build_chunk(0, 256)
        builder.build_chunk(1, 256)   # different chunk index
        builder.build_chunk(0, 128)   # different chunk length
        stats = graph_cache_stats()
        assert stats["misses"] == 3
        assert stats["hits"] == 0

    def test_shadow_profiles_are_part_of_the_key(self, builder):
        plain = builder.build_chunk(0, 256)
        pruned = builder.build_chunk(
            0, 256, shadow_profiles={0: ShadowProfile(pruned=True)}
        )
        assert graph_cache_stats()["misses"] == 2
        assert plain.shadows != pruned.shadows
        # and the profiled variant caches independently
        builder.build_chunk(
            0, 256, shadow_profiles={0: ShadowProfile(pruned=True)}
        )
        assert graph_cache_stats()["hits"] == 1

    def test_cached_plan_is_a_defensive_copy(self, builder):
        first = builder.build_chunk(0, 256)
        first.subgraphs.clear()
        first.shadows.clear()
        second = builder.build_chunk(0, 256)
        assert len(second.subgraphs) > 0
        assert len(second.shadows) > 0
        assert second.subgraphs is not first.subgraphs
        assert second.shadows is not first.shadows

    def test_builders_do_not_share_entries(self):
        a = GraphBuilder(QWEN15_18B, REDMI_K70_PRO)
        b = GraphBuilder(QWEN15_18B, REDMI_K70_PRO)
        a.build_chunk(0, 256)
        b.build_chunk(0, 256)
        # same shape in a fresh builder is a miss (per-builder cache:
        # options/device could differ between builders)
        assert graph_cache_stats() == {"hits": 0, "misses": 2}


class TestMetricsMirror:
    def test_attached_registry_sees_hits_and_misses(self, builder):
        registry = MetricsRegistry()
        builder.attach_metrics(registry)
        builder.build_chunk(0, 256)
        builder.build_chunk(0, 256)
        builder.build_chunk(1, 256)
        snapshot = {m["name"]: m["value"] for m in registry.snapshot()
                    if m["name"].startswith("graph_cache")}
        assert snapshot["graph_cache_misses_total"] == 2.0
        assert snapshot["graph_cache_hits_total"] == 1.0

    def test_unattached_builder_needs_no_registry(self, builder):
        builder.build_chunk(0, 64)
        builder.build_chunk(0, 64)  # must not raise
        assert graph_cache_stats()["hits"] == 1
