"""Graph-layer behaviour across architecture variants (MQA, ungated, GQA)."""

import pytest

from repro.graph import (
    ChunkSharingGraph,
    GraphBuilder,
    SG_FFN,
    SG_QKV,
    plan_chunk_sharing,
    sharing_saving_fraction,
)
from repro.hw import REDMI_K70_PRO
from repro.model import (
    GEMMA_2B,
    MISTRAL_7B,
    PHI2_27B,
    QWEN2_15B,
    get_model_config,
)

DEV = REDMI_K70_PRO


class TestMqaGemma:
    """Gemma-2B: multi-query attention (1 KV head) + huge ungated... no,
    gated FFN with f=16384."""

    @pytest.fixture(scope="class")
    def plan(self):
        return GraphBuilder(GEMMA_2B, DEV).build_chunk(0, 256)

    def test_kv_projections_tiny(self, plan):
        qkv = plan.subgraph(0, SG_QKV)
        q_op, k_op, v_op = qkv.ops
        assert k_op.shape[2] == GEMMA_2B.kv_dim == 256
        assert q_op.shape[2] == GEMMA_2B.q_dim == 2048

    def test_ffn_dominates_npu_time(self, plan):
        ffn = plan.subgraph(0, SG_FFN).latency_s
        qkv = plan.subgraph(0, SG_QKV).latency_s
        assert ffn > 3 * qkv  # 16384-wide FFN vs MQA projections

    def test_weight_bytes_match_params(self, plan):
        total = sum(s.weight_bytes for s in plan.subgraphs)
        norms = GEMMA_2B.n_layers * 2 * GEMMA_2B.hidden_size
        expected = GEMMA_2B.param_count(False) - norms - GEMMA_2B.hidden_size
        assert total == expected


class TestUngatedPhi2:
    def test_ffn_has_two_matmuls(self):
        plan = GraphBuilder(PHI2_27B, DEV).build_chunk(0, 256)
        ffn = plan.subgraph(0, SG_FFN)
        from repro.graph import OpKind
        linears = [op for op in ffn.ops if op.kind is OpKind.LINEAR]
        assert len(linears) == 2  # up + down, no gate

    def test_gated_has_three(self):
        plan = GraphBuilder(MISTRAL_7B, DEV).build_chunk(0, 256)
        from repro.graph import OpKind
        linears = [op for op in plan.subgraph(0, SG_FFN).ops
                   if op.kind is OpKind.LINEAR]
        assert len(linears) == 3


class TestSharingAcrossVariants:
    @pytest.mark.parametrize("model", [
        "Gemma-2B", "Phi-2-2.7B", "Mistral-7B", "Qwen2-1.5B",
    ])
    def test_five_sixths_shared_everywhere(self, model):
        cfg = get_model_config(model)
        graph = ChunkSharingGraph(GraphBuilder(cfg, DEV), 256, 4)
        stats = graph.sharing_stats()
        assert stats.shared_fraction == pytest.approx(5 / 6)

    @pytest.mark.parametrize("model", ["Gemma-2B", "Mistral-7B"])
    def test_sharing_saves_memory(self, model):
        cfg = get_model_config(model)
        graph = ChunkSharingGraph(GraphBuilder(cfg, DEV), 256, 4)
        assert sharing_saving_fraction(graph, 1024) > 0.3

    def test_mqa_kv_cache_small(self):
        # Gemma's 1 KV head makes its cache far smaller than Qwen's MHA
        from repro.graph import kv_cache_bytes
        from repro.model import QWEN15_18B
        gemma = kv_cache_bytes(GEMMA_2B, 1024)
        qwen = kv_cache_bytes(QWEN15_18B, 1024)
        assert gemma < qwen / 4
