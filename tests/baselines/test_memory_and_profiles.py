"""Tests for baseline memory accounting and profile consistency."""

import pytest

from repro.baselines import (
    BASELINES,
    LlamaCppEngine,
    MnnEngine,
    TfliteEngine,
    make_baseline,
)
from repro.hw.processor import DType
from repro.model import LLAMA2_7B, QWEN15_18B

MODEL = "Qwen1.5-1.8B"
DEVICE = "Redmi K70 Pro"


class TestBaselineMemory:
    def test_int8_engines_store_one_byte_per_param(self):
        engine = LlamaCppEngine(MODEL, DEVICE)
        weights_only = engine.memory_bytes(1)
        assert weights_only >= QWEN15_18B.param_count(False)
        assert weights_only < QWEN15_18B.param_count(False) * 1.2

    def test_fp16_engine_stores_two_bytes(self):
        int8 = LlamaCppEngine(MODEL, DEVICE).memory_bytes(512)
        fp16 = TfliteEngine(MODEL, DEVICE).memory_bytes(512)
        assert fp16 > 1.6 * int8

    def test_memory_grows_with_context(self):
        engine = MnnEngine(MODEL, DEVICE)
        assert engine.memory_bytes(2048) > engine.memory_bytes(128)

    def test_7b_memory_larger_than_2b(self):
        small = LlamaCppEngine(QWEN15_18B, DEVICE).memory_bytes(512)
        big = LlamaCppEngine(LLAMA2_7B, DEVICE).memory_bytes(512)
        assert big > 4 * small


class TestProfileConsistency:
    def test_cpu_engines_use_cpu(self):
        for name in ("llama.cpp-CPU", "MNN-CPU"):
            engine = make_baseline(name, MODEL, DEVICE)
            assert engine.profile.prefill_proc == "cpu"
            assert engine.profile.decode_proc == "cpu"

    def test_gpu_engines_use_fp16(self):
        for name in ("TFLite-GPU", "MLC-GPU"):
            engine = make_baseline(name, MODEL, DEVICE)
            assert engine.profile.prefill_proc == "gpu"
            assert engine.profile.weight_dtype is DType.FP16

    def test_llama_cpp_is_per_group(self):
        engine = make_baseline("llama.cpp-CPU", MODEL, DEVICE)
        assert engine.profile.per_group
        assert engine.profile.group_size == 32

    def test_mnn_is_per_tensor(self):
        engine = make_baseline("MNN-CPU", MODEL, DEVICE)
        assert not engine.profile.per_group

    def test_prefill_reports_have_single_chunk(self):
        # baselines process the prompt in one batch (no static-shape
        # constraint on CPU/GPU)
        engine = make_baseline("TFLite-GPU", MODEL, DEVICE)
        assert engine.prefill(700).n_chunks == 1
        assert engine.prefill(700).padded_tokens == 0


class TestBaselineScaling:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_prefill_latency_superlinear_in_prompt(self, name):
        engine = make_baseline(name, MODEL, DEVICE)
        short = engine.prefill(256).latency_s
        long = engine.prefill(1024).latency_s
        assert long > 2.5 * short  # 4x tokens, attention is quadratic

    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_devices_ordered(self, name):
        fast = make_baseline(name, MODEL, "Redmi K70 Pro").prefill(512)
        slow = make_baseline(name, MODEL, "Redmi K60 Pro").prefill(512)
        assert slow.latency_s > fast.latency_s
