"""Tests for the baseline engines and the Fig. 14 comparison shape."""

import pytest

from repro.baselines import (
    BASELINES,
    BaselineProfile,
    LlamaCppEngine,
    MlcEngine,
    MnnEngine,
    NaiveNpuEngine,
    PowerInferV2Engine,
    TfliteEngine,
    make_baseline,
)
from repro.core import LlmNpuEngine
from repro.errors import EngineError

MODEL = "Qwen1.5-1.8B"
DEVICE = "Redmi K70 Pro"


@pytest.fixture(scope="module")
def ours():
    return LlmNpuEngine.build(MODEL, DEVICE)


@pytest.fixture(scope="module")
def speeds(ours):
    out = {"llm.npu": ours.prefill(1024).tokens_per_s}
    for name in BASELINES:
        engine = make_baseline(name, MODEL, DEVICE)
        out[name] = engine.prefill(1024).tokens_per_s
    return out


class TestRegistry:
    def test_all_five_baselines(self):
        assert len(BASELINES) == 5

    def test_unknown_baseline(self):
        with pytest.raises(EngineError):
            make_baseline("vllm", MODEL, DEVICE)

    def test_invalid_profile(self):
        with pytest.raises(EngineError):
            BaselineProfile(name="x", prefill_proc="cpu",
                            decode_proc="cpu", prefill_efficiency=0)


class TestFig14Shape:
    """Who wins and by roughly what factor, prompt length 1024."""

    def test_llm_npu_beats_everyone(self, speeds):
        for name, speed in speeds.items():
            if name != "llm.npu":
                assert speeds["llm.npu"] > speed, name

    def test_llama_cpp_absolute_anchor(self, speeds):
        # Table 5: llama.cpp prefills Qwen1.5-1.8B at ~59 tok/s.
        assert speeds["llama.cpp-CPU"] == pytest.approx(59, rel=0.25)

    def test_llama_cpp_gap(self, speeds):
        # Paper: 18.2x for Qwen (across models 18-38x); shape check >= 10x.
        ratio = speeds["llm.npu"] / speeds["llama.cpp-CPU"]
        assert 10 < ratio < 45

    def test_mnn_gap(self, speeds):
        # Paper: 7.3x.
        ratio = speeds["llm.npu"] / speeds["MNN-CPU"]
        assert 5 < ratio < 10

    def test_tflite_gap(self, speeds):
        # Paper: 1.27-2.34x (the strongest baseline).
        ratio = speeds["llm.npu"] / speeds["TFLite-GPU"]
        assert 1.2 < ratio < 2.6

    def test_mlc_gap(self, speeds):
        # Paper: 32.5-43.6x.
        ratio = speeds["llm.npu"] / speeds["MLC-GPU"]
        assert 25 < ratio < 55

    def test_powerinfer_gap(self, speeds):
        # Paper: 3.28-5.32x.
        ratio = speeds["llm.npu"] / speeds["PowerInfer-V2-NPU"]
        assert 3.0 < ratio < 6.0

    def test_baseline_ordering(self, speeds):
        # TFLite > MNN > llama.cpp > MLC among baselines.
        assert (speeds["TFLite-GPU"] > speeds["MNN-CPU"]
                > speeds["llama.cpp-CPU"] > speeds["MLC-GPU"])

    def test_gaps_shrink_for_short_prompts(self, ours):
        # §4.2: speedups at 64 tokens are much smaller than at 1024.
        lcpp = make_baseline("llama.cpp-CPU", MODEL, DEVICE)
        gap_64 = (ours.prefill(64).tokens_per_s
                  / lcpp.prefill(64).tokens_per_s)
        gap_1024 = (ours.prefill(1024).tokens_per_s
                    / lcpp.prefill(1024).tokens_per_s)
        assert gap_64 < 0.6 * gap_1024


class TestDevicesAndEnergy:
    def test_k60_slower_than_k70(self):
        fast = LlmNpuEngine.build(MODEL, "Redmi K70 Pro").prefill(1024)
        slow = LlmNpuEngine.build(MODEL, "Redmi K60 Pro").prefill(1024)
        assert slow.latency_s > fast.latency_s

    def test_energy_savings_shape(self):
        # Fig. 15 on the K60 Pro: llm.npu saves large factors vs CPU
        # engines and smaller ones vs TFLite-GPU.
        ours = LlmNpuEngine.build(MODEL, "Redmi K60 Pro").infer(1024)
        ours_j = ours.extras["prefill_energy_j"]
        lcpp = LlamaCppEngine(MODEL, "Redmi K60 Pro").infer(1024)
        tfl = TfliteEngine(MODEL, "Redmi K60 Pro").infer(1024)
        mlc = MlcEngine(MODEL, "Redmi K60 Pro").infer(1024)
        assert lcpp.extras["prefill_energy_j"] / ours_j > 8
        assert mlc.extras["prefill_energy_j"] / ours_j > 20
        assert 1.3 < tfl.extras["prefill_energy_j"] / ours_j < 5


class TestDecodeBehaviour:
    def test_mnn_decodes_slower_than_llama_cpp(self):
        # Table 5's odd-but-real observation.
        lcpp = LlamaCppEngine(MODEL, DEVICE)
        mnn = MnnEngine(MODEL, DEVICE)
        assert mnn.decode(1024, 4) > lcpp.decode(1024, 4)

    def test_ours_decode_matches_llama_cpp(self):
        # Both use the same CPU decode path (§4: MLLM CPU backend).
        ours = LlmNpuEngine.build(MODEL, DEVICE)
        lcpp = LlamaCppEngine(MODEL, DEVICE)
        assert ours.decode(1024, 4) == pytest.approx(
            lcpp.decode(1024, 4), rel=0.15
        )


class TestNaiveNpu:
    def test_slower_than_llama_cpp(self, speeds):
        # §2.3: direct NPU offload is often slower than the CPU.
        naive = NaiveNpuEngine(MODEL, DEVICE)
        assert naive.prefill(1024).tokens_per_s < speeds["llama.cpp-CPU"]

    def test_dominated_by_graph_rebuild(self):
        naive = NaiveNpuEngine(MODEL, DEVICE)
        report = naive.prefill(512)
        rebuild = naive.graph.naive_per_prompt_preparation_s()
        assert rebuild > 0.5 * report.latency_s
