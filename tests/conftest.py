"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest

from repro.model import OutlierSpec, build_synthetic_model, tiny_config

try:  # hypothesis is a dev extra; the property suites importorskip it
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "ci", max_examples=200, deadline=None,
        suppress_health_check=[HealthCheck.too_slow])
    settings.register_profile(
        "dev", max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow])
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover
    pass


@pytest.fixture(scope="session")
def tiny_cfg():
    """Small config used across the numerical tests."""
    return tiny_config()


@pytest.fixture(scope="session")
def tiny_model(tiny_cfg):
    """A session-scoped synthetic model (read-only use only)."""
    return build_synthetic_model(tiny_cfg, seed=7)


@pytest.fixture()
def fresh_tiny_model(tiny_cfg):
    """A per-test model instance that tests may mutate (quantize, etc.)."""
    return build_synthetic_model(tiny_cfg, seed=7)


@pytest.fixture(scope="session")
def no_outlier_model(tiny_cfg):
    """Model without injected outliers, for contrast experiments."""
    spec = OutlierSpec(enabled=False)
    return build_synthetic_model(tiny_cfg, seed=7, outliers=spec)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def random_prompt(rng, vocab_size, length):
    """Random token ids avoiding the reserved control range."""
    return rng.integers(4, vocab_size, size=length)


@pytest.fixture()
def prompt_ids(rng, tiny_cfg):
    return random_prompt(rng, tiny_cfg.vocab_size, 24)
