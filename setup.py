"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` requires bdist_wheel (PEP 660); this offline environment
lacks the wheel module, so `python setup.py develop` provides the editable
install instead. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
