#!/usr/bin/env bash
# Determinism tripwire for the service scheduler: serve the golden
# two-tier workload (with seeded fault injection) twice in separate
# interpreter processes and require byte-identical reports.  Catches any
# nondeterminism that leaks into admission decisions, queue order,
# retry timing, or the underlying simulator (hash-order iteration,
# wall-clock reads, unseeded RNG...).
#
# The same pairing is applied to the *unified observability trace*: the
# merged service+hardware Perfetto export must also be byte-identical —
# the tracer stamps only sim-clock times and the exporter's pid/tid
# mapping and event order are sorted, so any diff means wall-clock or
# hash-order leakage into the observability layer.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

snapshot() {
    python -c 'from repro.eval import service_golden_snapshot
print(service_golden_snapshot(seed=42))'
}

trace() {
    python -c 'from repro.eval import service_golden_trace
print(service_golden_trace(seed=42))'
}

profile() {
    python -c 'from repro.eval import golden_profile_json
print(golden_profile_json(seed=42))'
}

out1=$(mktemp)
out2=$(mktemp)
trace1=$(mktemp)
trace2=$(mktemp)
prof1=$(mktemp)
prof2=$(mktemp)
trap 'rm -f "$out1" "$out2" "$trace1" "$trace2" "$prof1" "$prof2"' EXIT

snapshot > "$out1"
snapshot > "$out2"

if ! diff -u "$out1" "$out2"; then
    echo "FAIL: consecutive golden service runs differ" >&2
    exit 1
fi
echo "OK: golden service report is byte-identical across runs" \
     "($(wc -l < "$out1") lines)"

trace > "$trace1"
trace > "$trace2"

if ! cmp -s "$trace1" "$trace2"; then
    echo "FAIL: consecutive golden trace exports differ" >&2
    exit 1
fi
echo "OK: golden unified trace is byte-identical across runs" \
     "($(wc -c < "$trace1") bytes)"

# The profile report (repro.profile/v1) carries no timestamps and no
# environment capture, so the full attribution — busy/idle seconds,
# idle-cause classification, roofline numerators, per-event energy,
# flamegraph weights — must also serialize to identical bytes.
profile > "$prof1"
profile > "$prof2"

if ! cmp -s "$prof1" "$prof2"; then
    echo "FAIL: consecutive golden profile reports differ" >&2
    exit 1
fi
python scripts/check_trace_schema.py "$prof1"
echo "OK: golden profile report is byte-identical across runs" \
     "($(wc -c < "$prof1") bytes)"

# The fleet SLO report (repro.fleet/v1) rolls per-device monitors into
# merged quantile sketches, compliance counts, and burn-rate incident
# timelines — all sim-clock-stamped, so it too must be a pure function
# of the seed.
fleet() {
    python -c 'from repro.eval import fleet_golden_json
print(fleet_golden_json(seed=42))'
}

fleet1=$(mktemp)
fleet2=$(mktemp)
trap 'rm -f "$out1" "$out2" "$trace1" "$trace2" "$prof1" "$prof2" \
     "$fleet1" "$fleet2"' EXIT

fleet > "$fleet1"
fleet > "$fleet2"

if ! cmp -s "$fleet1" "$fleet2"; then
    echo "FAIL: consecutive fleet SLO reports differ" >&2
    exit 1
fi
python scripts/check_trace_schema.py "$fleet1"
echo "OK: fleet SLO report is byte-identical across runs" \
     "($(wc -c < "$fleet1") bytes)"

# Step-loop equivalence: the degenerate batching config (unbounded
# batch, concurrency 1) must route through the per-request path and
# reproduce the golden snapshot, trace, and profile byte-for-byte —
# the regression gate for the continuous-batching refactor.
seq_snapshot() {
    python -c 'from repro.core import BatchConfig
from repro.eval import service_golden_snapshot
print(service_golden_snapshot(
    seed=42, batching=BatchConfig(max_concurrency=1)))'
}

seq_trace() {
    python -c 'from repro.core import BatchConfig
from repro.eval import service_golden_trace
print(service_golden_trace(
    seed=42, batching=BatchConfig(max_concurrency=1)))'
}

seq_profile() {
    python -c 'from repro.core import BatchConfig
from repro.eval import golden_profile_json
print(golden_profile_json(
    seed=42, batching=BatchConfig(max_concurrency=1)))'
}

seq1=$(mktemp)
seq2=$(mktemp)
seq3=$(mktemp)
trap 'rm -f "$out1" "$out2" "$trace1" "$trace2" "$prof1" "$prof2" \
     "$fleet1" "$fleet2" "$seq1" "$seq2" "$seq3"' EXIT

seq_snapshot > "$seq1"
if ! diff -u "$out1" "$seq1"; then
    echo "FAIL: sequential batching config diverges from the" \
         "per-request golden snapshot" >&2
    exit 1
fi
seq_trace > "$seq2"
if ! cmp -s "$trace1" "$seq2"; then
    echo "FAIL: sequential batching config diverges from the" \
         "per-request golden trace" >&2
    exit 1
fi
seq_profile > "$seq3"
if ! cmp -s "$prof1" "$seq3"; then
    echo "FAIL: sequential batching config diverges from the" \
         "per-request golden profile" >&2
    exit 1
fi
echo "OK: sequential batching config reproduces the per-request" \
     "golden snapshot, trace, and profile byte-for-byte"

# The step loop proper is deterministic too: the batching snapshot
# (per-request timings + per-step batch digests + goodput) at two knob
# settings must be byte-identical across independent processes.
batching() {
    python -c "from repro.eval import service_batching_golden_snapshot
print(service_batching_golden_snapshot(seed=42, prefill_priority=$1))"
}

for p in 0.0 1.0; do
    b1=$(mktemp)
    b2=$(mktemp)
    batching "$p" > "$b1"
    batching "$p" > "$b2"
    if ! cmp -s "$b1" "$b2"; then
        echo "FAIL: consecutive step-loop runs differ" \
             "(prefill_priority=$p)" >&2
        rm -f "$b1" "$b2"
        exit 1
    fi
    echo "OK: step-loop batching snapshot is byte-identical across" \
         "runs (prefill_priority=$p, $(wc -l < "$b1") lines)"
    rm -f "$b1" "$b2"
done

# The scheduler step log (repro.steps/v1) — queue snapshots, typed
# decisions, embedded breakdowns — is itself a golden artifact: two
# independent evaluations must serialize to identical bytes, and the
# schema checker must accept it.
steplog() {
    python -c 'from repro.eval import golden_steplog_json
print(golden_steplog_json(seed=42, batched=True))'
}

steps1=$(mktemp)
steps2=$(mktemp)
noop1=$(mktemp)
trap 'rm -f "$out1" "$out2" "$trace1" "$trace2" "$prof1" "$prof2" \
     "$fleet1" "$fleet2" "$seq1" "$seq2" "$seq3" "$steps1" "$steps2" \
     "$noop1"' EXIT

steplog > "$steps1"
steplog > "$steps2"

if ! cmp -s "$steps1" "$steps2"; then
    echo "FAIL: consecutive golden step logs differ" >&2
    exit 1
fi
python scripts/check_trace_schema.py "$steps1"
echo "OK: golden step log is byte-identical across runs" \
     "($(wc -c < "$steps1") bytes)"

# Observation is a no-op: the golden snapshot with a StepLogger
# attached (decision emission enabled) must equal the unobserved one
# byte-for-byte.
observed_snapshot() {
    python -c 'from repro.eval import service_golden_snapshot
from repro.obs import StepLogger
print(service_golden_snapshot(seed=42, steplog=StepLogger()))'
}

observed_snapshot > "$noop1"
if ! diff -u "$out1" "$noop1"; then
    echo "FAIL: attaching a StepLogger changed the golden snapshot" \
         "(observation must be a no-op)" >&2
    exit 1
fi
echo "OK: golden snapshot is unchanged with step logging attached" \
     "(observation is a no-op)"

# The parallel fleet fan-out is pure plumbing: fanning the per-device
# pipelines across a worker pool (and any submission order of the same
# specs) must reproduce the sequential report byte-for-byte, on both
# the legacy 3-device golden and a splitmix-seeded fleet.
par1=$(mktemp)
par2=$(mktemp)
trap 'rm -f "$out1" "$out2" "$trace1" "$trace2" "$prof1" "$prof2" \
     "$fleet1" "$fleet2" "$seq1" "$seq2" "$seq3" "$steps1" "$steps2" \
     "$noop1" "$par1" "$par2"' EXIT

python -c 'from repro.eval import fleet_golden_json
print(fleet_golden_json(seed=42, workers=4))' > "$par1"
if ! cmp -s "$fleet1" "$par1"; then
    echo "FAIL: parallel fleet report (workers=4) differs from" \
         "sequential" >&2
    exit 1
fi

splitmix_fleet() {
    python -c "import json
from repro.eval import default_fleet, fleet_report
specs = default_fleet(n_devices=4, seed=42)
print(json.dumps(fleet_report(specs=specs, seed=42, workers=$1)))"
}

splitmix_fleet 1 > "$par2"
splitmix_fleet 3 | cmp -s "$par2" - || {
    echo "FAIL: splitmix fleet report changes with worker count" >&2
    exit 1
}
echo "OK: parallel fleet fan-out is byte-identical to sequential" \
     "(legacy golden workers=4, splitmix workers=3)"

# The critical-path document (repro.critpath/v1) is derived purely
# from the golden workload's simulated timelines plus the service-side
# queueing facts, so it too must be a pure function of the seed — and
# the schema checker enforces per-path conservation (sum of waits +
# durations == e2e within 1e-9 s) on it.
critpath() {
    python -c 'from repro.eval import golden_critpath_json
print(golden_critpath_json(seed=42))'
}

cp1=$(mktemp)
cp2=$(mktemp)
trap 'rm -f "$out1" "$out2" "$trace1" "$trace2" "$prof1" "$prof2" \
     "$fleet1" "$fleet2" "$seq1" "$seq2" "$seq3" "$steps1" "$steps2" \
     "$noop1" "$par1" "$par2" "$cp1" "$cp2"' EXIT

critpath > "$cp1"
critpath > "$cp2"

if ! cmp -s "$cp1" "$cp2"; then
    echo "FAIL: consecutive golden critical-path documents differ" >&2
    exit 1
fi
python scripts/check_trace_schema.py "$cp1"
echo "OK: golden critical-path document is byte-identical across runs" \
     "($(wc -c < "$cp1") bytes)"

# The what-if estimator's replay loop must agree with the simulator it
# models: predicted TTFT/e2e for representative perturbations of the
# reference engine run match a real re-simulation within 1e-9 s.
python -c '
from repro.obs import (WHATIF_TOL_S, OperatorSpeedup, ProcessorReassign,
                       capture_engine_run, predict, resimulate)
from repro.core.engine import LlmNpuEngine

engine = LlmNpuEngine.build("Qwen1.5-1.8B", "Redmi K70 Pro")
run = capture_engine_run(engine, 512, output_tokens=4)
for perts in ([OperatorSpeedup("sg1", 2.0)],
              [ProcessorReassign("sg2.float", "gpu")],
              [OperatorSpeedup("decode", 1.5),
               ProcessorReassign("sg4.float", "gpu")]):
    pred = predict(run, perts)
    actual = resimulate(run, perts)
    for key, a, b in (("ttft", pred.predicted.ttft_s, actual.ttft_s),
                      ("e2e", pred.predicted.e2e_s, actual.e2e_s),
                      ("itl", pred.predicted.itl_s, actual.itl_s)):
        err = abs(a - b)
        assert err <= WHATIF_TOL_S, (key, perts, err)
print("OK: what-if predictions match re-simulation within",
      WHATIF_TOL_S, "s on 3 perturbation sets")
'

# The vectorized simulator fast path must make exactly the choices of
# the kept-verbatim reference implementation on the self-benchmark
# graphs (the speedup suite's correctness precondition).
python -c '
from repro.eval.simbench import SIM_SCENARIOS, synthetic_task_graph
from repro.hw.sim import FifoPolicy, ReferenceSimulator, Simulator

for scenario in SIM_SCENARIOS:
    procs, tasks = synthetic_task_graph(scenario)
    fast = Simulator(procs).run(tasks, FifoPolicy())
    ref = ReferenceSimulator(procs).run(tasks, FifoPolicy())
    assert fast.events == ref.events, scenario.name
print("OK: vectorized simulator matches the reference on",
      len(SIM_SCENARIOS), "benchmark graph shapes")
'

# The run-to-run diff layer (repro.diff/v1): diffing a run against
# itself must come back identical; the injected-slowdown golden pair
# must be a pure function of its arguments, rank exactly the injected
# operator as the top contributor, and telescope its per-segment deltas
# to the observed e2e delta (the schema checker enforces the residual
# bound per aligned request).
diffpair() {
    python -c 'from repro.eval import golden_diff_json
print(golden_diff_json())'
}

diff1=$(mktemp)
diff2=$(mktemp)
trap 'rm -f "$out1" "$out2" "$trace1" "$trace2" "$prof1" "$prof2" \
     "$fleet1" "$fleet2" "$seq1" "$seq2" "$seq3" "$steps1" "$steps2" \
     "$noop1" "$par1" "$par2" "$cp1" "$cp2" "$diff1" "$diff2"' EXIT

diffpair > "$diff1"
diffpair > "$diff2"

if ! cmp -s "$diff1" "$diff2"; then
    echo "FAIL: consecutive injected-slowdown diffs differ" >&2
    exit 1
fi
python scripts/check_trace_schema.py "$diff1"
python -c '
import json, sys
from repro.eval import INJECTED_TAG, injected_slowdown_docs
from repro.obs import diff_docs

doc = json.load(open(sys.argv[1]))
top = doc["top_contributors"][0]
assert top["tag"] == INJECTED_TAG, \
    f"top contributor is {top['\''tag'\'']!r}, not the injected {INJECTED_TAG!r}"
assert doc["e2e"]["delta_s"] > 0.0
worst = max(abs(r["residual_s"]) for r in doc["requests"])
assert worst <= doc["tol_s"], worst
base_doc, _ = injected_slowdown_docs()
self_doc = diff_docs(base_doc, base_doc)
assert self_doc["identical"], "self-diff is not identical"
assert self_doc["e2e"]["delta_s"] == 0.0
print(f"OK: injected slowdown attributes to {INJECTED_TAG!r} "
      f"(+{top['\''delta_s'\'']*1e3:.1f} ms, worst residual {worst:.3e} s) "
      f"and the self-diff is empty")
' "$diff1"
echo "OK: injected-slowdown diff is byte-identical across runs" \
     "($(wc -c < "$diff1") bytes)"
