"""Fit MatMulProfile parameters against the paper's Table 3 (Redmi K70 Pro).

Run once; the fitted constants are baked into repro/hw/soc.py.

NPU engines use roofline max(compute, memory); CPU/GPU use additive
compute + memory (poor overlap of streaming and arithmetic on those
engines fits the published points better).
"""
import itertools
import numpy as np
from scipy.optimize import least_squares

SHAPES = [(64,2048,2048),(64,2048,8192),(64,2048,11008),
          (32,4096,4096),(32,4096,8192),(32,4096,11008)]
DATA = {
  "npu_int8": ([0.9,1.5,2.0,1.7,2.9,4.1], 1, "max"),
  "cpu_int8": ([4.2,6.8,11.6,7.5,13.1,19.6], 1, "sum"),
  "gpu_fp16": ([1.7,4.8,6.9,3.1,7.7,10.4], 2, "sum"),
  "npu_fp16": ([252,986,1207,1054,2009,3112], 2, "max"),
}

def model(params, bpw, combine):
    peak, m_sat, m_exp, overhead_ms, bw = params
    out = []
    for (M,K,N) in SHAPES:
        util = min(1.0, (M/m_sat)**m_exp) if m_exp>0 else 1.0
        compute = 2.0*M*K*N/(peak*util) * 1e3
        mem = K*N*bpw/bw * 1e3
        body = max(compute, mem) if combine=="max" else compute+mem
        out.append(overhead_ms + body)
    return np.array(out)

best = {}
for name,(ms,bpw,combine) in DATA.items():
    ms = np.array(ms)
    def resid(p):
        return np.log(model(p,bpw,combine)) - np.log(ms)
    lb=[1e8, 1, 0.0, 1e-3, 1e8]; ub=[1e14, 4096, 3.0, 50.0, 1e12]
    best_cost, best_x = np.inf, None
    for peak0 in (1e11,5e11,2e12,1e13):
        for bw0 in (2e9, 8e9, 30e9):
            for msat0 in (32, 128, 512):
                x0=[peak0, msat0, 1.0, 0.3, bw0]
                try:
                    r = least_squares(resid, x0, bounds=(lb,ub), max_nfev=3000)
                except Exception:
                    continue
                if r.cost < best_cost:
                    best_cost, best_x = r.cost, r.x
    pred = model(best_x, bpw, combine)
    err = np.abs(pred-ms)/ms
    best[name]=best_x
    print(f"{name}: peak={best_x[0]:.4e} m_sat={best_x[1]:.1f} m_exp={best_x[2]:.3f} overhead={best_x[3]:.4f}ms bw={best_x[4]:.3e} combine={combine}")
    print(f"   pred={np.round(pred,2)} actual={ms} maxerr={err.max()*100:.1f}%")
