#!/usr/bin/env python3
"""Validate an observability export (stdlib only — CI-friendly).

Four modes, selectable by file content:

* ``*.jsonl`` event logs written by :func:`repro.obs.write_jsonl` —
  one JSON object per line, each a ``span`` / ``instant`` / ``metric``
  record.  Checks required keys, types, non-negative timestamps, span
  end >= start, and that metric records carry a numeric payload.
* Chrome-trace JSON written by :func:`repro.obs.export_service_trace`
  (a single JSON array) — checks the metadata/body event shapes and
  that no two complete events overlap on the same (pid, tid) track.
* ``repro.profile/v1`` reports written by
  :meth:`repro.obs.ProfileReport.save` (a JSON object whose ``schema``
  key names the version) — checks the processor/operator/energy record
  shapes and the conservation invariant: per processor,
  busy + classified idle == window within 1e-9 s scaled by the merged
  trace count, and per-operator busy sums to the owning processor's.
* ``repro.bench/v1`` artifacts written by
  :meth:`repro.obs.BenchArtifact.save` — checks that every metric has
  a finite numeric ``value`` and a known ``direction`` and the ``env``
  block is string-valued.
* ``repro.alerts/v1`` incident timelines written by
  :meth:`repro.obs.SloMonitor.timeline_json` / ``llmnpu monitor`` /
  ``llmnpu fleet`` — checks that incidents reference declared SLOs and
  rules, respect ``pending <= firing <= resolved``, never overlap for
  the same ``(source, slo, rule)``, and that every firing incident
  cross-links at least one request span or fault draw.
* ``repro.fleet/v1`` reports written by ``llmnpu fleet`` — checks the
  device records, the merged percentile blocks, and the embedded
  alerts timeline (same invariants as above).
* ``repro.steps/v1`` scheduler step logs written by
  :meth:`repro.obs.StepLogger.save` / ``llmnpu explain --steplog-out``
  — checks the step/decision/request record shapes, that every decision
  uses the closed action taxonomy, and per-step work conservation:
  the items' summed span equals the step window within 1e-9 s.
* ``repro.critpath/v1`` critical-path documents written by
  :func:`repro.obs.critpath_doc` / ``llmnpu critpath`` — checks the
  per-path segment chains (telescoping starts, non-negative waits,
  edges from the closed taxonomy) and the conservation invariant:
  per path, sum(wait + duration) over the segments equals the
  end-to-end latency within 1e-9 s, and slack is never negative.
* ``repro.diff/v1`` run-to-run diffs written by
  :func:`repro.obs.diff_json` / ``llmnpu diff`` — checks the segment
  statuses against the closed taxonomy, that appeared/vanished
  segments carry a zero base/new side, and (critpath kind) the
  attribution conservation invariant: per aligned request, the
  per-segment deltas sum to the observed e2e delta within the doc's
  tolerance.
* ``repro.benchdiff/v1`` delta reports written by
  ``llmnpu bench-compare --json-out`` — checks the per-metric delta
  records, verdict taxonomy, and that ``ok`` agrees with the
  regression count.

Schema strings and the decision taxonomy are loaded from
``src/repro/obs/schemas.py`` *by file path*, so this checker and the
writers can never disagree about them.  Files ending in ``.gz`` are
transparently decompressed.

Usage::

    python scripts/check_trace_schema.py traces/service.jsonl \
        traces/service_trace.json benchmarks/results/json/BENCH_*.json

Exits non-zero with a line-numbered message on the first violation.
"""

import gzip
import importlib.util
import json
import math
import os
import sys

SPAN_KEYS = {"type", "name", "cat", "proc", "thread", "start_s", "end_s",
             "args"}
INSTANT_KEYS = {"type", "name", "cat", "proc", "thread", "ts_s", "args"}
METRIC_KINDS = {"counter", "gauge", "histogram"}


def _load_schemas():
    """The ``repro.*/v1`` constant table, loaded by file path.

    ``src/repro/obs/schemas.py`` is dependency-free by contract, so the
    checker executes the very module the writers import — schema strings
    and the decision taxonomy cannot drift between the two.
    """
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "src", "repro", "obs", "schemas.py")
    spec = importlib.util.spec_from_file_location("_repro_schemas", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_SCHEMAS = _load_schemas()
PROFILE_SCHEMA = _SCHEMAS.PROFILE_SCHEMA
BENCH_SCHEMA = _SCHEMAS.BENCH_SCHEMA
ALERTS_SCHEMA = _SCHEMAS.ALERTS_SCHEMA
FLEET_SCHEMA = _SCHEMAS.FLEET_SCHEMA
STEPS_SCHEMA = _SCHEMAS.STEPS_SCHEMA
CRITPATH_SCHEMA = _SCHEMAS.CRITPATH_SCHEMA
DIFF_SCHEMA = _SCHEMAS.DIFF_SCHEMA
BENCHDIFF_SCHEMA = _SCHEMAS.BENCHDIFF_SCHEMA
DECISION_ACTIONS = set(_SCHEMAS.DECISION_ACTIONS)
CRITPATH_EDGES = set(_SCHEMAS.CRITPATH_EDGES)
DIFF_STATUSES = set(_SCHEMAS.DIFF_STATUSES)
DIFF_KINDS = set(_SCHEMAS.DIFF_KINDS)
CRITPATH_TOL_S = 1e-9
ALERT_STATES = {"pending", "firing", "resolved"}
LINK_KINDS = {"request", "fault"}
IDLE_CAUSES = {"graph_build", "sync_wait", "dependency", "starvation"}
PROFILE_TOL_S = 1e-9
DIRECTIONS = {"lower", "higher", "info"}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_jsonl_record(record, where):
    kind = record.get("type")
    if kind == "span":
        missing = SPAN_KEYS - set(record)
        if missing:
            fail(f"{where}: span missing keys {sorted(missing)}")
        if not isinstance(record["start_s"], (int, float)) \
                or not isinstance(record["end_s"], (int, float)):
            fail(f"{where}: span timestamps must be numbers")
        if record["end_s"] < record["start_s"]:
            fail(f"{where}: span ends before it starts")
        if record["start_s"] < 0:
            fail(f"{where}: negative span start")
    elif kind == "instant":
        missing = INSTANT_KEYS - set(record)
        if missing:
            fail(f"{where}: instant missing keys {sorted(missing)}")
        if not isinstance(record["ts_s"], (int, float)):
            fail(f"{where}: instant timestamp must be a number")
        if record["ts_s"] < 0:
            fail(f"{where}: negative instant timestamp")
    elif kind == "metric":
        if record.get("kind") not in METRIC_KINDS:
            fail(f"{where}: metric kind {record.get('kind')!r} not in "
                 f"{sorted(METRIC_KINDS)}")
        if not isinstance(record.get("labels"), dict):
            fail(f"{where}: metric labels must be an object")
        if record["kind"] == "histogram":
            for key in ("count", "sum", "mean", "p50", "p95", "max"):
                if not isinstance(record.get(key), (int, float)):
                    fail(f"{where}: histogram missing numeric {key!r}")
        elif not isinstance(record.get("value"), (int, float)):
            fail(f"{where}: {record['kind']} missing numeric 'value'")
    else:
        fail(f"{where}: unknown record type {kind!r}")
    return kind


def check_jsonl(path):
    counts = {"span": 0, "instant": 0, "metric": 0}
    with _open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                fail(f"{path}:{lineno}: invalid JSON ({exc})")
            counts[check_jsonl_record(record, f"{path}:{lineno}")] += 1
    if counts["span"] == 0:
        fail(f"{path}: no span records")
    if counts["metric"] == 0:
        fail(f"{path}: no metric records")
    print(f"OK: {path}: {counts['span']} spans, {counts['instant']} "
          f"instants, {counts['metric']} metrics")


def check_chrome(path, events):
    tracks = {}
    named = set()
    for i, e in enumerate(events):
        where = f"{path}[{i}]"
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                fail(f"{where}: unknown metadata {e.get('name')!r}")
            if "name" not in e.get("args", {}):
                fail(f"{where}: metadata without args.name")
            named.add((e["pid"], e.get("tid", 0)))
        elif ph == "X":
            for key in ("name", "cat", "pid", "tid", "ts", "dur"):
                if key not in e:
                    fail(f"{where}: complete event missing {key!r}")
            if e["dur"] < 0 or e["ts"] < 0:
                fail(f"{where}: negative ts/dur")
            tracks.setdefault((e["pid"], e["tid"]), []).append(e)
        elif ph == "i":
            for key in ("name", "pid", "tid", "ts"):
                if key not in e:
                    fail(f"{where}: instant event missing {key!r}")
        elif ph == "C":
            # Perfetto counter samples (scheduler queue depth / batch
            # occupancy / KV headroom tracks).
            for key in ("name", "pid", "tid", "ts", "args"):
                if key not in e:
                    fail(f"{where}: counter event missing {key!r}")
            if not isinstance(e["args"], dict) or not e["args"]:
                fail(f"{where}: counter event needs a non-empty "
                     f"args series")
            for series, value in e["args"].items():
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    fail(f"{where}: counter series {series!r} must be "
                         f"numeric")
        else:
            fail(f"{where}: unknown phase {ph!r}")
    n_overlap_checked = 0
    for (pid, tid), track in sorted(tracks.items()):
        if not any(p == pid for p, _t in named):
            fail(f"{path}: pid {pid} has events but no process_name")
        track.sort(key=lambda ev: (ev["ts"], ev["ts"] + ev["dur"]))
        for a, b in zip(track, track[1:]):
            n_overlap_checked += 1
            if b["ts"] < a["ts"] + a["dur"] - 1e-6:  # 1e-12 s in µs
                fail(f"{path}: pid {pid} tid {tid}: {a['name']!r} and "
                     f"{b['name']!r} overlap")
    if not tracks:
        fail(f"{path}: no complete events")
    print(f"OK: {path}: {sum(map(len, tracks.values()))} spans on "
          f"{len(tracks)} tracks, serial per track "
          f"({n_overlap_checked} adjacencies checked)")


def _finite(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def check_profile(path, doc):
    for key in ("window_s", "n_traces", "processors", "operators",
                "phases", "energy", "flamegraph"):
        if key not in doc:
            fail(f"{path}: profile missing {key!r}")
    if not _finite(doc["window_s"]) or doc["window_s"] < 0:
        fail(f"{path}: window_s must be a non-negative number")
    if not isinstance(doc["n_traces"], int) or doc["n_traces"] < 0:
        fail(f"{path}: n_traces must be a non-negative integer")
    tol = PROFILE_TOL_S * max(1, doc["n_traces"])
    busy_by_proc = {}
    for i, proc in enumerate(doc["processors"]):
        where = f"{path}: processors[{i}]"
        for key in ("proc", "busy_s", "span_s", "idle_s", "idle_by_cause",
                    "matmul_busy_s", "matmul_ops"):
            if key not in proc:
                fail(f"{where}: missing {key!r}")
        for key in ("busy_s", "span_s", "idle_s", "matmul_busy_s",
                    "matmul_ops"):
            if not _finite(proc[key]) or proc[key] < 0:
                fail(f"{where}: {key!r} must be a non-negative number")
        idle = proc["idle_by_cause"]
        if set(idle) != IDLE_CAUSES:
            fail(f"{where}: idle causes {sorted(idle)} != "
                 f"{sorted(IDLE_CAUSES)}")
        if any(not _finite(v) or v < 0 for v in idle.values()):
            fail(f"{where}: idle seconds must be non-negative numbers")
        if abs(sum(idle.values()) - proc["idle_s"]) > tol:
            fail(f"{where}: idle_by_cause does not sum to idle_s")
        gap = abs(proc["busy_s"] + proc["idle_s"] - doc["window_s"])
        if gap > tol:
            fail(f"{where}: busy + idle != window "
                 f"(off by {gap:.3e} s > {tol:.3e} s)")
        if proc["proc"] in busy_by_proc:
            fail(f"{where}: duplicate processor {proc['proc']!r}")
        busy_by_proc[proc["proc"]] = proc["busy_s"]
    op_busy = dict.fromkeys(busy_by_proc, 0.0)
    for i, op in enumerate(doc["operators"]):
        where = f"{path}: operators[{i}]"
        for key in ("proc", "tag", "n_events", "busy_s", "ops"):
            if key not in op:
                fail(f"{where}: missing {key!r}")
        if op["proc"] not in busy_by_proc:
            fail(f"{where}: unknown processor {op['proc']!r}")
        if not _finite(op["busy_s"]) or op["busy_s"] < 0:
            fail(f"{where}: busy_s must be a non-negative number")
        op_busy[op["proc"]] += op["busy_s"]
    for proc, total in sorted(op_busy.items()):
        if abs(total - busy_by_proc[proc]) > tol:
            fail(f"{path}: operator busy on {proc!r} does not sum to "
                 f"processor busy")
    energy = doc["energy"]
    if energy is not None:
        for key in ("per_processor", "platform_j", "total_j"):
            if key not in energy:
                fail(f"{path}: energy missing {key!r}")
        attributed = energy["platform_j"]
        for proc in sorted(energy["per_processor"]):
            section = energy["per_processor"][proc]
            for key in ("tags", "idle_j", "total_j"):
                if key not in section:
                    fail(f"{path}: energy[{proc!r}] missing {key!r}")
            if abs(sum(section["tags"].values()) + section["idle_j"]
                   - section["total_j"]) > tol:
                fail(f"{path}: energy[{proc!r}] tags + idle != total")
            attributed += section["total_j"]
        if abs(attributed - energy["total_j"]) > tol:
            fail(f"{path}: energy components do not sum to total_j")
    for i, line in enumerate(doc["flamegraph"]):
        parts = line.rsplit(" ", 1)
        if len(parts) != 2 or not parts[1].isdigit():
            fail(f"{path}: flamegraph[{i}] not 'stack <integer-ns>': "
                 f"{line!r}")
    metrics = doc.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, list):
            fail(f"{path}: metrics must be a snapshot list")
        for i, record in enumerate(metrics):
            where = f"{path}: metrics[{i}]"
            kind = record.get("kind")
            if kind not in METRIC_KINDS:
                fail(f"{where}: metric kind {kind!r} not in "
                     f"{sorted(METRIC_KINDS)}")
            if kind == "histogram":
                empty = record.get("count", 0) == 0
                for key in ("p50", "p95", "max"):
                    value = record.get(key)
                    # Null percentiles are legal only for empty histograms.
                    if empty and value is not None:
                        fail(f"{where}: empty histogram with non-null "
                             f"{key!r}")
                    if not empty and not _finite(value):
                        fail(f"{where}: histogram has count > 0 but "
                             f"non-numeric {key!r}")
            elif not _finite(record.get("value")):
                fail(f"{where}: {kind} missing numeric 'value'")
    print(f"OK: {path}: profile over {len(doc['processors'])} processors, "
          f"{len(doc['operators'])} operator buckets, "
          f"{len(doc['flamegraph'])} stacks "
          f"(conservation within {tol:.1e} s)")


def check_bench(path, doc):
    for key in ("name", "metrics", "env"):
        if key not in doc:
            fail(f"{path}: artifact missing {key!r}")
    if not isinstance(doc["metrics"], dict) or not doc["metrics"]:
        fail(f"{path}: metrics must be a non-empty object")
    for metric in sorted(doc["metrics"]):
        record = doc["metrics"][metric]
        where = f"{path}: metric {metric!r}"
        if not isinstance(record, dict):
            fail(f"{where}: record must be an object")
        if not _finite(record.get("value")):
            fail(f"{where}: 'value' must be a finite number")
        if record.get("direction") not in DIRECTIONS:
            fail(f"{where}: direction {record.get('direction')!r} not in "
                 f"{sorted(DIRECTIONS)}")
    if not isinstance(doc["env"], dict):
        fail(f"{path}: env must be an object")
    for key in sorted(doc["env"]):
        if not isinstance(doc["env"][key], str):
            fail(f"{path}: env[{key!r}] must be a string")
    print(f"OK: {path}: artifact {doc['name']!r} with "
          f"{len(doc['metrics'])} metrics")


def check_alerts(path, doc, quiet=False):
    for key in ("source", "start_s", "end_s", "n_request_events",
                "n_fault_events", "slos", "rules", "incidents"):
        if key not in doc:
            fail(f"{path}: alerts timeline missing {key!r}")
    slo_names = set()
    for i, slo in enumerate(doc["slos"]):
        where = f"{path}: slos[{i}]"
        for key in ("name", "objective", "target", "n_events", "n_bad",
                    "good_fraction", "met"):
            if key not in slo:
                fail(f"{where}: missing {key!r}")
        if not _finite(slo["target"]) or not 0 < slo["target"] < 1:
            fail(f"{where}: target must be in (0, 1)")
        slo_names.add(slo["name"])
    rule_names = set()
    for i, rule in enumerate(doc["rules"]):
        where = f"{path}: rules[{i}]"
        for key in ("name", "long_window_s", "short_window_s",
                    "max_burn_rate", "for_s", "severity"):
            if key not in rule:
                fail(f"{where}: missing {key!r}")
        if rule["short_window_s"] > rule["long_window_s"]:
            fail(f"{where}: short window exceeds long window")
        rule_names.add(rule["name"])
    n_firing = 0
    by_pair = {}
    for i, inc in enumerate(doc["incidents"]):
        where = f"{path}: incidents[{i}]"
        for key in ("slo", "rule", "severity", "state", "pending_s",
                    "firing_s", "resolved_s", "peak_burn_rate", "links"):
            if key not in inc:
                fail(f"{where}: missing {key!r}")
        if inc["slo"] not in slo_names:
            fail(f"{where}: unknown SLO {inc['slo']!r}")
        if inc["rule"] not in rule_names:
            fail(f"{where}: unknown rule {inc['rule']!r}")
        if inc["state"] not in ALERT_STATES:
            fail(f"{where}: unknown state {inc['state']!r}")
        pending, firing, resolved = (inc["pending_s"], inc["firing_s"],
                                     inc["resolved_s"])
        if not _finite(pending):
            fail(f"{where}: pending_s must be a finite number")
        if firing is not None:
            n_firing += 1
            if not _finite(firing) or firing < pending:
                fail(f"{where}: firing_s must be >= pending_s")
            if not inc["links"]:
                fail(f"{where}: firing incident with no cross-links")
        if resolved is not None:
            anchor = pending if firing is None else firing
            if not _finite(resolved) or resolved < anchor:
                fail(f"{where}: resolved_s precedes "
                     f"{'firing' if firing is not None else 'pending'}_s")
        for j, link in enumerate(inc["links"]):
            if link.get("kind") not in LINK_KINDS:
                fail(f"{where}: links[{j}] kind {link.get('kind')!r} "
                     f"not in {sorted(LINK_KINDS)}")
            need = ("request_id", "track") if link["kind"] == "request" \
                else ("draw", "fault")
            for key in need:
                if key not in link:
                    fail(f"{where}: links[{j}] missing {key!r}")
        pair = (inc.get("source", doc["source"]), inc["slo"], inc["rule"])
        by_pair.setdefault(pair, []).append((i, inc))
    for pair in sorted(by_pair):
        ordered = sorted(by_pair[pair], key=lambda item: item[1]["pending_s"])
        for (_, a), (bi, b) in zip(ordered, ordered[1:]):
            if a["resolved_s"] is None:
                fail(f"{path}: incidents[{bi}]: {pair} has a new incident "
                     f"while an earlier one is still open")
            if b["pending_s"] < a["resolved_s"]:
                fail(f"{path}: incidents[{bi}]: {pair} incidents overlap "
                     f"({b['pending_s']!r} < {a['resolved_s']!r})")
    if not quiet:
        print(f"OK: {path}: alerts timeline from {doc['source']!r}: "
              f"{len(doc['incidents'])} incidents ({n_firing} fired) over "
              f"{len(slo_names)} SLOs x {len(rule_names)} rules, "
              f"non-overlapping per (source, slo, rule)")


def check_fleet(path, doc):
    for key in ("n_devices", "devices", "percentiles", "sketches",
                "alerts"):
        if key not in doc:
            fail(f"{path}: fleet report missing {key!r}")
    if len(doc["devices"]) != doc["n_devices"]:
        fail(f"{path}: n_devices != len(devices)")
    for i, device in enumerate(doc["devices"]):
        where = f"{path}: devices[{i}]"
        for key in ("name", "device", "seed", "n_requests", "n_completed",
                    "n_incidents", "n_firing", "ttft_p50_s", "ttft_p95_s",
                    "mean_itl_s", "goodput_rps"):
            if key not in device:
                fail(f"{where}: missing {key!r}")
        for key in ("ttft_p50_s", "ttft_p95_s", "mean_itl_s"):
            value = device[key]
            if value is not None and not _finite(value):
                fail(f"{where}: non-finite {key!r}")
        if not _finite(device["goodput_rps"]) or device["goodput_rps"] < 0:
            fail(f"{where}: goodput_rps must be finite and non-negative")
    for key in sorted(doc["percentiles"]):
        snap = doc["percentiles"][key]
        where = f"{path}: percentiles[{key!r}]"
        if not isinstance(snap.get("count"), int) or snap["count"] < 0:
            fail(f"{where}: count must be a non-negative integer")
        for stat in ("p50", "p90", "p95", "p99", "max"):
            value = snap.get(stat)
            if snap["count"] == 0:
                if value is not None:
                    fail(f"{where}: empty sketch with non-null {stat!r}")
            elif not _finite(value):
                fail(f"{where}: non-finite {stat!r}")
        if key not in doc["sketches"]:
            fail(f"{where}: no matching sketch payload")
    if doc["alerts"].get("schema") != ALERTS_SCHEMA:
        fail(f"{path}: embedded alerts schema is "
             f"{doc['alerts'].get('schema')!r}")
    check_alerts(path, doc["alerts"], quiet=True)
    print(f"OK: {path}: fleet report over {doc['n_devices']} devices, "
          f"{len(doc['percentiles'])} merged percentile keys, "
          f"{len(doc['alerts']['incidents'])} incidents")


def check_steps(path, doc):
    """``repro.steps/v1``: the invariants of
    ``repro.obs.steplog.validate_steps_doc``, stdlib-only."""
    for key in ("source", "n_steps", "n_requests", "n_decisions",
                "steps", "decisions", "requests"):
        if key not in doc:
            fail(f"{path}: step log missing {key!r}")
    for key in ("steps", "decisions", "requests"):
        if not isinstance(doc[key], list):
            fail(f"{path}: {key!r} must be a list")
    if doc["n_steps"] != len(doc["steps"]):
        fail(f"{path}: n_steps != len(steps)")
    if doc["n_requests"] != len(doc["requests"]):
        fail(f"{path}: n_requests != len(requests)")
    if doc["n_decisions"] != len(doc["decisions"]):
        fail(f"{path}: n_decisions != len(decisions)")
    for i, step in enumerate(doc["steps"]):
        where = f"{path}: steps[{i}]"
        for key in ("index", "start_s", "end_s", "n_inflight",
                    "batch_tokens", "items", "queued_ids",
                    "queue_depths"):
            if key not in step:
                fail(f"{where}: missing {key!r}")
        if not _finite(step["start_s"]) or not _finite(step["end_s"]):
            fail(f"{where}: step window must be finite")
        if step["end_s"] < step["start_s"]:
            fail(f"{where}: step ends before it starts")
        span = sum(it["end_s"] - it["start_s"] for it in step["items"])
        window = step["end_s"] - step["start_s"]
        if abs(span - window) > 1e-9:
            fail(f"{where}: items span {span!r} != step window "
                 f"{window!r} (work conservation)")
    for i, dec in enumerate(doc["decisions"]):
        where = f"{path}: decisions[{i}]"
        for key in ("t_s", "request_id", "action", "tier"):
            if key not in dec:
                fail(f"{where}: missing {key!r}")
        if dec["action"] not in DECISION_ACTIONS:
            fail(f"{where}: unknown action {dec['action']!r}")
        if not _finite(dec["t_s"]):
            fail(f"{where}: t_s must be a finite number")
    for i, req in enumerate(doc["requests"]):
        where = f"{path}: requests[{i}]"
        for key in ("request_id", "tier", "status", "arrival_s",
                    "start_s", "finish_s", "breakdown"):
            if key not in req:
                fail(f"{where}: missing {key!r}")
        breakdown = req["breakdown"]
        for key in ("queue_s", "admission_s", "retry_s", "prefill_s",
                    "decode_s", "turnaround_s"):
            if not _finite(breakdown.get(key)):
                fail(f"{where}: breakdown missing numeric {key!r}")
    print(f"OK: {path}: step log from {doc['source']!r}: "
          f"{len(doc['steps'])} steps, {len(doc['decisions'])} "
          f"decisions, {len(doc['requests'])} requests")


def check_critpath(path, doc):
    """``repro.critpath/v1``: the invariants of
    ``repro.obs.critical_path.validate_critical_path``, stdlib-only."""
    for key in ("source", "n_paths", "paths", "totals"):
        if key not in doc:
            fail(f"{path}: critpath doc missing {key!r}")
    if not isinstance(doc["paths"], list) or not doc["paths"]:
        fail(f"{path}: 'paths' must be a non-empty list")
    if doc["n_paths"] != len(doc["paths"]):
        fail(f"{path}: n_paths != len(paths)")
    total_work = 0.0
    total_wait = 0.0
    by_proc = {}
    by_tag = {}
    for i, p in enumerate(doc["paths"]):
        where = f"{path}: paths[{i}]"
        for key in ("source", "origin_s", "e2e_s", "n_events",
                    "n_segments", "work_s", "wait_s", "by_proc",
                    "by_tag", "segments", "slack"):
            if key not in p:
                fail(f"{where}: missing {key!r}")
        if p["n_segments"] != len(p["segments"]):
            fail(f"{where}: n_segments != len(segments)")
        if not _finite(p["origin_s"]) or not _finite(p["e2e_s"]):
            fail(f"{where}: origin_s/e2e_s must be finite")
        prev_end = p["origin_s"]
        covered = 0.0
        work = 0.0
        for j, seg in enumerate(p["segments"]):
            sw = f"{where}: segments[{j}]"
            for key in ("task_id", "proc", "tag", "start_s", "end_s",
                        "duration_s", "wait_s", "edge"):
                if key not in seg:
                    fail(f"{sw}: missing {key!r}")
            for key in ("start_s", "end_s", "duration_s", "wait_s"):
                if not _finite(seg[key]):
                    fail(f"{sw}: non-finite {key!r}")
            if seg["edge"] not in CRITPATH_EDGES:
                fail(f"{sw}: unknown edge {seg['edge']!r} (expected one "
                     f"of {sorted(CRITPATH_EDGES)})")
            if abs(seg["duration_s"] - (seg["end_s"] - seg["start_s"])) \
                    > CRITPATH_TOL_S:
                fail(f"{sw}: duration_s != end_s - start_s")
            if seg["wait_s"] < -CRITPATH_TOL_S:
                fail(f"{sw}: negative wait {seg['wait_s']!r}")
            if abs(seg["start_s"] - (prev_end + seg["wait_s"])) \
                    > CRITPATH_TOL_S:
                fail(f"{sw}: start_s != previous end + wait_s "
                     f"(chain broken)")
            covered += seg["wait_s"] + seg["duration_s"]
            work += seg["duration_s"]
            prev_end = seg["end_s"]
        if abs(covered - p["e2e_s"]) > CRITPATH_TOL_S:
            fail(f"{where}: sum(wait + duration) {covered!r} != e2e_s "
                 f"{p['e2e_s']!r} (conservation)")
        if abs(work - p["work_s"]) > CRITPATH_TOL_S:
            fail(f"{where}: segment durations do not sum to work_s")
        for block in ("by_proc", "by_tag"):
            acc = sum(p[block].values())
            if abs(acc - work) > CRITPATH_TOL_S:
                fail(f"{where}: {block} sums to {acc!r}, not on-path "
                     f"work {work!r}")
        for j, rec in enumerate(p["slack"]):
            sw = f"{where}: slack[{j}]"
            for key in ("task_id", "proc", "tag", "start_s", "end_s",
                        "slack_s"):
                if key not in rec:
                    fail(f"{sw}: missing {key!r}")
            if not _finite(rec["slack_s"]) \
                    or rec["slack_s"] < -CRITPATH_TOL_S:
                fail(f"{sw}: slack must be finite and non-negative, "
                     f"got {rec['slack_s']!r}")
        total_work += work
        total_wait += p["wait_s"]
        for block, acc in (("by_proc", by_proc), ("by_tag", by_tag)):
            for key, s in p[block].items():
                acc[key] = acc.get(key, 0.0) + s
    totals = doc["totals"]
    n = len(doc["paths"])
    if abs(totals.get("work_s", math.nan) - total_work) \
            > CRITPATH_TOL_S * n:
        fail(f"{path}: totals.work_s != sum of per-path work")
    if abs(totals.get("wait_s", math.nan) - total_wait) \
            > CRITPATH_TOL_S * n:
        fail(f"{path}: totals.wait_s != sum of per-path waits")
    for block, acc in (("by_proc", by_proc), ("by_tag", by_tag)):
        declared = totals.get(block, {})
        if sorted(declared) != sorted(acc):
            fail(f"{path}: totals.{block} keys do not match the paths")
        for key in acc:
            if abs(declared[key] - acc[key]) > CRITPATH_TOL_S * n:
                fail(f"{path}: totals.{block}[{key!r}] drifts from the "
                     f"per-path sum")
    print(f"OK: {path}: critpath doc from {doc['source']!r}: {n} paths, "
          f"{sum(p['n_segments'] for p in doc['paths'])} on-path "
          f"segments, work {total_work:.6f} s + waits {total_wait:.6f} s")


VERDICTS = {"ok", "improved", "regressed", "missing", "new"}


def check_diff(path, doc):
    """``repro.diff/v1``: the invariants of
    ``repro.obs.diff.validate_diff``, stdlib-only."""
    for key in ("kind", "tol_s", "base", "new", "identical"):
        if key not in doc:
            fail(f"{path}: diff doc missing {key!r}")
    kind = doc["kind"]
    if kind not in DIFF_KINDS:
        fail(f"{path}: unknown diff kind {kind!r} (expected one of "
             f"{sorted(DIFF_KINDS)})")
    tol = doc["tol_s"]
    if not _finite(tol) or tol <= 0:
        fail(f"{path}: tol_s must be a positive number")
    if kind != "critpath":
        print(f"OK: {path}: {kind} diff "
              f"({'identical' if doc['identical'] else 'differs'})")
        return
    for key in ("e2e", "n_requests", "only_base", "only_new", "by_stage",
                "by_proc", "by_status", "top_contributors", "requests"):
        if key not in doc:
            fail(f"{path}: critpath diff missing {key!r}")
    if set(doc["by_status"]) != DIFF_STATUSES:
        fail(f"{path}: by_status keys {sorted(doc['by_status'])} != "
             f"{sorted(DIFF_STATUSES)}")
    if doc["n_requests"] != len(doc["requests"]):
        fail(f"{path}: n_requests != len(requests)")
    worst = 0.0
    changed = bool(doc["only_base"] or doc["only_new"])
    for i, req in enumerate(doc["requests"]):
        where = f"{path}: requests[{i}]"
        for key in ("source", "base_e2e_s", "new_e2e_s", "delta_s",
                    "attributed_s", "residual_s", "segments"):
            if key not in req:
                fail(f"{where}: missing {key!r}")
        attributed = 0.0
        for j, seg in enumerate(req["segments"]):
            sw = f"{where}: segments[{j}]"
            for key in ("task_id", "tag", "base_s", "new_s", "delta_s",
                        "status"):
                if key not in seg:
                    fail(f"{sw}: missing {key!r}")
            if seg["status"] not in DIFF_STATUSES:
                fail(f"{sw}: unknown status {seg['status']!r}")
            if seg["status"] == "appeared" and seg["base_s"] != 0.0:
                fail(f"{sw}: appeared segment with nonzero base_s")
            if seg["status"] == "vanished" and seg["new_s"] != 0.0:
                fail(f"{sw}: vanished segment with nonzero new_s")
            if abs(seg["delta_s"] - (seg["new_s"] - seg["base_s"])) > tol:
                fail(f"{sw}: delta_s != new_s - base_s")
            if seg["status"] != "unchanged":
                changed = True
            attributed += seg["delta_s"]
        # ACCEPTANCE: attribution conservation — the per-segment deltas
        # telescope to the observed e2e delta of the aligned request.
        e2e_delta = req["new_e2e_s"] - req["base_e2e_s"]
        residual = abs(attributed - e2e_delta)
        worst = max(worst, residual)
        if residual > tol:
            fail(f"{where}: per-segment deltas sum to {attributed!r} but "
                 f"e2e moved {e2e_delta!r} (residual {residual:.3e} s > "
                 f"{tol:.1e} s)")
        if abs(req["delta_s"]) > tol:
            changed = True
    if doc["identical"] and changed:
        fail(f"{path}: diff marked identical but segments moved")
    print(f"OK: {path}: critpath diff over {doc['n_requests']} aligned "
          f"requests, attribution telescopes to the e2e delta "
          f"(worst residual {worst:.3e} s <= {tol:.1e} s); "
          f"{'identical' if doc['identical'] else 'differs'}")


def check_benchdiff(path, doc):
    """``repro.benchdiff/v1``: bench-compare delta report shape."""
    for key in ("baseline", "candidate", "rel_tol", "abs_tol", "ok",
                "n_metrics", "n_regressed", "deltas"):
        if key not in doc:
            fail(f"{path}: benchdiff missing {key!r}")
    if doc["n_metrics"] != len(doc["deltas"]):
        fail(f"{path}: n_metrics != len(deltas)")
    n_regressed = 0
    for i, d in enumerate(doc["deltas"]):
        where = f"{path}: deltas[{i}]"
        for key in ("metric", "direction", "baseline", "candidate",
                    "delta", "rel_delta", "verdict"):
            if key not in d:
                fail(f"{where}: missing {key!r}")
        if d["direction"] not in DIRECTIONS:
            fail(f"{where}: direction {d['direction']!r} not in "
                 f"{sorted(DIRECTIONS)}")
        if d["verdict"] not in VERDICTS:
            fail(f"{where}: verdict {d['verdict']!r} not in "
                 f"{sorted(VERDICTS)}")
        for key in ("baseline", "candidate", "delta", "rel_delta"):
            if d[key] is not None and not _finite(d[key]):
                fail(f"{where}: {key!r} must be null or finite")
        if d["verdict"] in ("regressed", "missing"):
            n_regressed += 1
    if n_regressed != doc["n_regressed"]:
        fail(f"{path}: n_regressed {doc['n_regressed']!r} != gating "
             f"verdict count {n_regressed}")
    if doc["ok"] != (n_regressed == 0):
        fail(f"{path}: ok flag disagrees with the regression count")
    print(f"OK: {path}: benchdiff {doc['baseline']!r} -> "
          f"{doc['candidate']!r}: {doc['n_metrics']} metrics, "
          f"{doc['n_regressed']} regressed")


def _open(path):
    """Open ``path`` for text reading, decompressing ``.gz`` files."""
    if path.endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path)


def check_file(path):
    with _open(path) as f:
        head = f.read(1)
    if head == "[":
        with _open(path) as f:
            check_chrome(path, json.load(f))
    elif head == "{":
        # Either a schema-stamped report/artifact (one JSON object) or a
        # JSONL event log (one object per line, not valid as a whole).
        try:
            with _open(path) as f:
                doc = json.load(f)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and "schema" in doc:
            schema = doc["schema"]
            if schema == PROFILE_SCHEMA:
                check_profile(path, doc)
            elif schema == BENCH_SCHEMA:
                check_bench(path, doc)
            elif schema == ALERTS_SCHEMA:
                check_alerts(path, doc)
            elif schema == FLEET_SCHEMA:
                check_fleet(path, doc)
            elif schema == STEPS_SCHEMA:
                check_steps(path, doc)
            elif schema == CRITPATH_SCHEMA:
                check_critpath(path, doc)
            elif schema == DIFF_SCHEMA:
                check_diff(path, doc)
            elif schema == BENCHDIFF_SCHEMA:
                check_benchdiff(path, doc)
            else:
                fail(f"{path}: unknown schema {schema!r} (expected one "
                     f"of {sorted(_SCHEMAS.SCHEMA_TABLE)})")
        else:
            check_jsonl(path)
    else:
        check_jsonl(path)


def main(argv):
    if not argv:
        print(__doc__)
        return 2
    for path in argv:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
