#!/usr/bin/env python3
"""Validate an observability export (stdlib only — CI-friendly).

Two modes, selectable by file content:

* ``*.jsonl`` event logs written by :func:`repro.obs.write_jsonl` —
  one JSON object per line, each a ``span`` / ``instant`` / ``metric``
  record.  Checks required keys, types, non-negative timestamps, span
  end >= start, and that metric records carry a numeric payload.
* Chrome-trace JSON written by :func:`repro.obs.export_service_trace`
  (a single JSON array) — checks the metadata/body event shapes and
  that no two complete events overlap on the same (pid, tid) track.

Usage::

    python scripts/check_trace_schema.py traces/service.jsonl \
        traces/service_trace.json

Exits non-zero with a line-numbered message on the first violation.
"""

import json
import sys

SPAN_KEYS = {"type", "name", "cat", "proc", "thread", "start_s", "end_s",
             "args"}
INSTANT_KEYS = {"type", "name", "cat", "proc", "thread", "ts_s", "args"}
METRIC_KINDS = {"counter", "gauge", "histogram"}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_jsonl_record(record, where):
    kind = record.get("type")
    if kind == "span":
        missing = SPAN_KEYS - set(record)
        if missing:
            fail(f"{where}: span missing keys {sorted(missing)}")
        if not isinstance(record["start_s"], (int, float)) \
                or not isinstance(record["end_s"], (int, float)):
            fail(f"{where}: span timestamps must be numbers")
        if record["end_s"] < record["start_s"]:
            fail(f"{where}: span ends before it starts")
        if record["start_s"] < 0:
            fail(f"{where}: negative span start")
    elif kind == "instant":
        missing = INSTANT_KEYS - set(record)
        if missing:
            fail(f"{where}: instant missing keys {sorted(missing)}")
        if not isinstance(record["ts_s"], (int, float)):
            fail(f"{where}: instant timestamp must be a number")
        if record["ts_s"] < 0:
            fail(f"{where}: negative instant timestamp")
    elif kind == "metric":
        if record.get("kind") not in METRIC_KINDS:
            fail(f"{where}: metric kind {record.get('kind')!r} not in "
                 f"{sorted(METRIC_KINDS)}")
        if not isinstance(record.get("labels"), dict):
            fail(f"{where}: metric labels must be an object")
        if record["kind"] == "histogram":
            for key in ("count", "sum", "mean", "p50", "p95", "max"):
                if not isinstance(record.get(key), (int, float)):
                    fail(f"{where}: histogram missing numeric {key!r}")
        elif not isinstance(record.get("value"), (int, float)):
            fail(f"{where}: {record['kind']} missing numeric 'value'")
    else:
        fail(f"{where}: unknown record type {kind!r}")
    return kind


def check_jsonl(path):
    counts = {"span": 0, "instant": 0, "metric": 0}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                fail(f"{path}:{lineno}: invalid JSON ({exc})")
            counts[check_jsonl_record(record, f"{path}:{lineno}")] += 1
    if counts["span"] == 0:
        fail(f"{path}: no span records")
    if counts["metric"] == 0:
        fail(f"{path}: no metric records")
    print(f"OK: {path}: {counts['span']} spans, {counts['instant']} "
          f"instants, {counts['metric']} metrics")


def check_chrome(path, events):
    tracks = {}
    named = set()
    for i, e in enumerate(events):
        where = f"{path}[{i}]"
        ph = e.get("ph")
        if ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                fail(f"{where}: unknown metadata {e.get('name')!r}")
            if "name" not in e.get("args", {}):
                fail(f"{where}: metadata without args.name")
            named.add((e["pid"], e.get("tid", 0)))
        elif ph == "X":
            for key in ("name", "cat", "pid", "tid", "ts", "dur"):
                if key not in e:
                    fail(f"{where}: complete event missing {key!r}")
            if e["dur"] < 0 or e["ts"] < 0:
                fail(f"{where}: negative ts/dur")
            tracks.setdefault((e["pid"], e["tid"]), []).append(e)
        elif ph == "i":
            for key in ("name", "pid", "tid", "ts"):
                if key not in e:
                    fail(f"{where}: instant event missing {key!r}")
        else:
            fail(f"{where}: unknown phase {ph!r}")
    n_overlap_checked = 0
    for (pid, tid), track in sorted(tracks.items()):
        if not any(p == pid for p, _t in named):
            fail(f"{path}: pid {pid} has events but no process_name")
        track.sort(key=lambda ev: (ev["ts"], ev["ts"] + ev["dur"]))
        for a, b in zip(track, track[1:]):
            n_overlap_checked += 1
            if b["ts"] < a["ts"] + a["dur"] - 1e-6:  # 1e-12 s in µs
                fail(f"{path}: pid {pid} tid {tid}: {a['name']!r} and "
                     f"{b['name']!r} overlap")
    if not tracks:
        fail(f"{path}: no complete events")
    print(f"OK: {path}: {sum(map(len, tracks.values()))} spans on "
          f"{len(tracks)} tracks, serial per track "
          f"({n_overlap_checked} adjacencies checked)")


def check_file(path):
    with open(path) as f:
        head = f.read(1)
    if head == "[":
        with open(path) as f:
            check_chrome(path, json.load(f))
    else:
        check_jsonl(path)


def main(argv):
    if not argv:
        print(__doc__)
        return 2
    for path in argv:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
