"""Command-line interface: run any of the paper's experiments.

Usage::

    llmnpu list                      # list experiments and options
    llmnpu run fig14                 # regenerate Figure 14
    llmnpu run all                   # regenerate everything
    llmnpu infer --model Qwen1.5-1.8B --prompt-tokens 1024 --output-tokens 8
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List

from repro.eval import (
    ablation_chunk_length,
    calibration_dashboard,
    diff_demo,
    dma_ablation,
    fleet_slo,
    service_batching,
    service_breakdown,
    service_critpath,
    service_fault_recovery,
    service_load,
    service_profile,
    service_tier_comparison,
    stage_crossover,
    ablation_equivalent_shapes,
    ablation_hot_channels,
    dma_overlap,
    ablation_scheduler,
    archive,
    future_hardware,
    mixed_precision_npu,
    tri_processor,
    short_prompt_crossover,
    fig1_breakdown,
    fig4_quant_npu,
    fig8_chunk_length,
    fig10_fig11_outlier_stats,
    fig12_importance,
    fig14_prefill_speed,
    fig15_energy,
    fig16_pruning_tradeoff,
    fig17_memory,
    fig18_coordination,
    fig19_ablation,
    table3_matmul,
    table5_e2e,
    table6_accuracy,
)

#: Experiment id -> (description, zero-arg driver returning Table(s)).
EXPERIMENTS: Dict[str, tuple] = {
    "table3": ("MatMul micro-benchmarks per engine", table3_matmul),
    "fig1": ("prefill share of end-to-end latency", fig1_breakdown),
    "fig4": ("quantization layout cost on the NPU", fig4_quant_npu),
    "fig8": ("chunk-length sweep (per-token NPU latency)",
             fig8_chunk_length),
    "fig10-11": ("outlier channel statistics", fig10_fig11_outlier_stats),
    "fig12": ("outlier importance and pruning sweep", fig12_importance),
    "fig14": ("prefill speed vs five baselines", fig14_prefill_speed),
    "fig15": ("prefill energy vs baselines", fig15_energy),
    "fig16": ("accuracy vs speed across pruning rates",
              fig16_pruning_tradeoff),
    "fig17": ("memory consumption vs INT8 baselines", fig17_memory),
    "fig18": ("CPU-NPU vs GPU-NPU coordination", fig18_coordination),
    "fig19": ("technique ablation ladder", fig19_ablation),
    "table5": ("end-to-end latency on the mobile workloads", table5_e2e),
    "table6": ("quantization accuracy comparison", table6_accuracy),
    # extensions beyond the paper's own figures:
    "abl-chunk": ("ablation: chunk length sweep", ablation_chunk_length),
    "abl-sched": ("ablation: scheduling policies", ablation_scheduler),
    "abl-hot": ("ablation: hot-channel cache sizing",
                ablation_hot_channels),
    "abl-shapes": ("ablation: equivalent-shape optimization",
                   ablation_equivalent_shapes),
    "dma-overlap": ("hw model: double/quad-buffered weight streaming",
                    dma_overlap),
    "future-hw": ("§5 what-if: faster NPUs", future_hardware),
    "future-fp16": ("§5 what-if: mixed-precision NPU", mixed_precision_npu),
    "tri-proc": ("extension: tri-processor execution", tri_processor),
    "crossover": ("extension: short-prompt crossover + hybrid dispatch",
                  short_prompt_crossover),
    "validate": ("calibration dashboard: paper anchors vs this build",
                 calibration_dashboard),
    "service": ("LLM-as-a-System-Service load analysis", service_load),
    "service-tiers": ("two-tier scheduling + admission control vs FIFO",
                      service_tier_comparison),
    "service-faults": ("retry-with-backoff under injected engine faults",
                       service_fault_recovery),
    "service-breakdown": ("per-tier turnaround decomposition "
                          "(queue/retry/prefill/decode)",
                          service_breakdown),
    "service-batching": ("continuous batching with chunked prefill vs "
                         "per-request dispatch, sweeping the "
                         "prefill_priority TTFT/ITL knob",
                         service_batching),
    "service-profile": ("per-operator/processor attribution + roofline "
                        "+ idle causes + energy over the golden workload",
                        service_profile),
    "fleet-slo": ("fleet telemetry: merged sketch percentiles + SLO "
                  "compliance + burn-rate incidents across devices",
                  fleet_slo),
    "critpath": ("critical-path attribution over the golden service "
                 "workload (which tasks gated each request)",
                 service_critpath),
    "dma-ablation": ("calibrated DMA buffer-depth ladder, cross-checked "
                     "by the what-if estimator", dma_ablation),
    "stage-crossover": ("prompt length x float placement sweep with "
                        "critical-path gating stages (ROADMAP item 3)",
                        stage_crossover),
    "diff-eval": ("differential attribution: inject a known operator "
                  "slowdown, diff the runs, recover exactly that "
                  "operator as the top contributor", diff_demo),
}


def _print_tables(result, save_as: str = "") -> None:
    tables = result if isinstance(result, tuple) else (result,)
    for i, table in enumerate(tables):
        print(table.render())
        print()
        if save_as:
            suffix = f"_{i}" if len(tables) > 1 else ""
            path = archive(table, f"{save_as}{suffix}.txt")
            print(f"[saved to {path}]")


def cmd_list(_args) -> int:
    print("Available experiments:")
    for name, (desc, _fn) in EXPERIMENTS.items():
        print(f"  {name:10s} {desc}")
    return 0


def cmd_run(args) -> int:
    names: List[str] = (list(EXPERIMENTS) if "all" in args.experiment
                        else args.experiment)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; try `llmnpu list`",
                  file=sys.stderr)
            return 2
    import inspect
    for name in names:
        desc, fn = EXPERIMENTS[name]
        print(f"== {name}: {desc} ==")
        start = time.time()
        kwargs = {}
        params = inspect.signature(fn).parameters
        for flag in ("trace_out", "metrics_out", "critpath_out",
                     "diff_out"):
            value = getattr(args, flag, None)
            if value and flag in params:
                kwargs[flag] = value
        result = fn(**kwargs)
        _print_tables(result, save_as=name if args.save else "")
        for flag, label in (("trace_out", "trace"),
                            ("metrics_out", "metrics"),
                            ("critpath_out", "critpath artifact"),
                            ("diff_out", "diff artifact")):
            if getattr(args, flag, None):
                if flag in kwargs:
                    print(f"[{label} written to {kwargs[flag]}]")
                else:
                    print(f"[--{flag.replace('_', '-')} ignored: "
                          f"{name} does not export a {label}]")
        print(f"[{name} took {time.time() - start:.1f}s]\n")
    return 0


def cmd_report(args) -> int:
    from repro.eval.summary import generate_report
    skip = tuple(args.skip) if args.skip else ()
    path = generate_report(skip=skip)
    print(f"report written to {path}")
    return 0


def cmd_quantize(args) -> int:
    """The paper's §A.5 workflow: calibrate + quantize a float checkpoint
    and export the quantized model for "on-device" use."""
    import numpy as np
    from repro.model import build_synthetic_model, tiny_config
    from repro.model.io import load_model, save_model
    from repro.quant import quantize_model, save_quantized, top1_agreement
    from repro.workloads import calibration_corpus, heldout_sequences

    if args.input:
        model = load_model(args.input)
        reference = load_model(args.input)
        print(f"loaded checkpoint {args.input} "
              f"({model.config.name}, {model.config.n_layers} layers)")
    else:
        config = tiny_config(n_layers=16, hidden_size=96, n_heads=4,
                             ffn_hidden=256)
        model = build_synthetic_model(config, seed=args.seed)
        reference = build_synthetic_model(config, seed=args.seed)
        print(f"built synthetic substrate ({config.n_layers} layers, "
              f"width {config.hidden_size})")

    corpus = calibration_corpus(model.config, seed=args.seed)
    report = quantize_model(model, args.scheme, calib_corpus=corpus,
                            pruning_rate=args.pruning_rate)
    heldout = heldout_sequences(model.config, seed=args.seed + 1000)
    ref_logits = np.concatenate([reference.prefill(ids) for ids in heldout])
    q_logits = np.concatenate([model.prefill(ids) for ids in heldout])
    agreement = top1_agreement(ref_logits, q_logits)
    print(f"scheme={args.scheme} sites={report.n_sites} "
          f"weights={report.weight_bytes:,} bytes "
          f"teacher-agreement={agreement:.1%}")
    if report.pruning_plan is not None:
        print(f"shadow kept on layers: "
              f"{sorted(report.pruning_plan.kept_layers)}")
    save_quantized(model, args.output)
    print(f"quantized checkpoint written to {args.output}")
    return 0


def cmd_infer(args) -> int:
    from repro.core import LlmNpuEngine
    tracer = None
    if args.trace_out:
        from repro.obs import Tracer
        tracer = Tracer()
    engine = LlmNpuEngine.build(args.model, args.device,
                                pruning_rate=args.pruning_rate,
                                chunk_len=args.chunk_len,
                                tracer=tracer)
    report = engine.infer(args.prompt_tokens, args.output_tokens)
    print(report.summary())
    if report.prefill.trace is not None:
        print(f"NPU bubble rate: {report.prefill.npu_bubble_rate:.1%}  "
              f"NPU busy: {report.prefill.npu_busy_s:.3f}s  "
              f"float busy: {report.prefill.float_busy_s:.3f}s")
    if args.trace_out:
        from repro.obs import save_chrome_trace
        # merge the engine-level spans with the prefill task schedule
        if report.prefill.trace is not None:
            for ev in report.prefill.trace.events:
                tracer.span(ev.task_id, proc=f"hw {engine.model.name}",
                            thread=ev.proc, start_s=ev.start_s,
                            end_s=ev.end_s, cat=ev.tag or "task")
        save_chrome_trace(args.trace_out, tracer)
        print(f"[trace written to {args.trace_out}]")
    if args.metrics_out:
        from repro.obs import MetricsRegistry
        reg = MetricsRegistry()
        reg.counter("infer_requests_total", model=engine.model.name).inc()
        reg.counter("infer_prompt_tokens_total").inc(report.prompt_tokens)
        reg.counter("infer_output_tokens_total").inc(report.output_tokens)
        reg.histogram("infer_prefill_s").observe(report.prefill_latency_s)
        reg.histogram("infer_decode_s").observe(report.decode_latency_s)
        reg.gauge("infer_npu_bubble_rate").set(
            report.prefill.npu_bubble_rate)
        reg.save(args.metrics_out)
        print(f"[metrics written to {args.metrics_out}]")
    return 0


def cmd_trace(args) -> int:
    """Run the seeded golden service workload fully traced and export
    the unified timeline, the JSONL event log, the metrics snapshot,
    and the per-tier latency breakdown."""
    from repro.eval import service_golden_records
    from repro.obs import (
        MetricsRegistry,
        Tracer,
        breakdown_table,
        export_service_trace,
        write_jsonl,
    )
    tracer = Tracer()
    metrics = MetricsRegistry()
    service = service_golden_records(seed=args.seed, tracer=tracer,
                                     metrics=metrics)
    events = export_service_trace(service, args.trace_out,
                                  validate=not args.no_validate,
                                  critpath=args.critpath)
    n_spans = sum(1 for e in events if e.get("ph") == "X")
    print(f"[unified trace: {len(events)} events ({n_spans} spans) "
          f"-> {args.trace_out}]")
    if args.jsonl_out:
        n = write_jsonl(args.jsonl_out, tracer=service.tracer,
                        metrics=service.metrics_registry)
        print(f"[JSONL event log: {n} records -> {args.jsonl_out}]")
    if args.metrics_out:
        service.metrics_registry.save(args.metrics_out)
        print(f"[metrics snapshot -> {args.metrics_out}]")
    print()
    print(breakdown_table(service.requests).render())
    return 0


def cmd_profile(args) -> int:
    """Profile the golden service workload (or a single inference with
    --prompt-tokens): attribution tables on stdout, full JSON report to
    --profile-out, flamegraph collapsed stacks to --flamegraph-out."""
    from repro.eval.profiling import (
        energy_table,
        operator_table,
        service_profile_report,
    )
    from repro.obs import validate_profile

    if args.prompt_tokens:
        from repro.core import LlmNpuEngine
        from repro.obs import profile_inference
        engine = LlmNpuEngine.build(args.model, args.device)
        inference = engine.infer(args.prompt_tokens, args.output_tokens)
        report = profile_inference(
            inference, engine.device,
            float_backend=engine.config.float_backend,
            decode_backend=engine.config.decode_backend,
        )
        title = (f"Per-processor attribution — {args.model} "
                 f"({args.prompt_tokens} prompt tokens)")
    else:
        report, service = service_profile_report(seed=args.seed)
        n_done = sum(1 for r in service.requests
                     if r.status == "completed")
        title = (f"Per-processor attribution — golden service workload "
                 f"(seed={args.seed}, {n_done} completed requests)")
    validate_profile(report)
    summary = report.summary_table()
    summary.title = title
    operators = operator_table(report)
    if args.operator:
        pattern = args.operator
        operators.rows = [
            row for row in operators.rows
            if row[1] == pattern or str(row[1]).startswith(pattern + ".")
        ]
        operators.add_note(f"filtered to operator {pattern!r} "
                           f"({len(operators.rows)} rows)")
    if args.top:
        # rows are (proc, tag, events, busy ms, share, gops); keep the
        # N biggest time sinks so huge traces stay skimmable
        ranked = sorted(operators.rows, key=lambda row: -row[3])
        if len(ranked) > args.top:
            operators.add_note(f"top {args.top} of {len(ranked)} "
                               f"operators by busy time")
        operators.rows = ranked[:args.top]
    for table in (summary, operators, energy_table(report)):
        print(table.render())
        print()
    flamegraph = list(report.flamegraph)
    if args.operator:
        pattern = args.operator
        flamegraph = [
            line for line in flamegraph
            if any(frame == pattern or frame.startswith(pattern + ".")
                   for frame in line.rsplit(" ", 1)[0].split(";"))
        ]
    if args.top:
        flamegraph = sorted(
            flamegraph, key=lambda line: -int(line.rsplit(" ", 1)[1])
        )[:args.top]
    if args.profile_out:
        report.save(args.profile_out)
        print(f"[profile report ({len(report.to_json())} bytes) -> "
              f"{args.profile_out}]")
    if args.flamegraph_out:
        import os
        os.makedirs(os.path.dirname(args.flamegraph_out) or ".",
                    exist_ok=True)
        with open(args.flamegraph_out, "w") as f:
            f.write("\n".join(flamegraph))
            f.write("\n")
        print(f"[flamegraph: {len(flamegraph)} stacks -> "
              f"{args.flamegraph_out}]")
    return 0


def _write_json(path: str, text: str) -> None:
    import os

    from repro.obs.export import open_text
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open_text(path, "w") as f:
        f.write(text)
        if not text.endswith("\n"):
            f.write("\n")


def cmd_fleet(args) -> int:
    """Simulate a heterogeneous device fleet under SLO monitoring and
    aggregate the mergeable telemetry: fleet percentiles, compliance,
    and the merged incident timeline."""
    import json

    from repro.errors import ReproError
    from repro.eval import (
        default_fleet,
        fleet_compliance_table,
        fleet_latency_table,
        fleet_percentile_table,
        fleet_report,
        fleet_scheduler_table,
        incident_table,
    )
    from repro.obs import validate_timeline_doc

    try:
        report = fleet_report(
            specs=default_fleet(args.devices, seed=args.seed,
                                seeding=args.seeding),
            seed=args.seed,
            workers=args.workers,
        )
        validate_timeline_doc(report["alerts"])
    except ReproError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    for table in (fleet_percentile_table(report),
                  fleet_latency_table(report),
                  fleet_compliance_table(report),
                  fleet_scheduler_table(report),
                  incident_table(report["alerts"],
                                 title=f"Fleet incident timeline "
                                       f"(seed={args.seed})")):
        print(table.render())
        print()
    if args.report_out:
        _write_json(args.report_out,
                    json.dumps(report, indent=2, sort_keys=True))
        print(f"[fleet report (repro.fleet/v1) -> {args.report_out}]")
    if args.alerts_out:
        _write_json(args.alerts_out,
                    json.dumps(report["alerts"], indent=2, sort_keys=True))
        print(f"[incident timeline (repro.alerts/v1) -> "
              f"{args.alerts_out}]")
    return 0


def cmd_monitor(args) -> int:
    """Run the seeded fault-storm scenario under SLO monitoring and
    print the compliance scoreboard + burn-rate incident timeline."""
    from repro.errors import ReproError
    from repro.eval import fault_storm_monitor, incident_table
    from repro.eval.report import Table
    from repro.obs import validate_timeline_doc

    try:
        monitor = fault_storm_monitor(seed=args.seed,
                                      transient_rate=args.transient_rate,
                                      permanent_rate=args.permanent_rate)
        doc = monitor.timeline()
        validate_timeline_doc(doc)
    except ReproError as exc:
        print(f"monitor: {exc}", file=sys.stderr)
        return 2
    scoreboard = Table(
        title=f"SLO compliance — fault storm (seed={args.seed}, "
              f"transient={args.transient_rate:g}, "
              f"permanent={args.permanent_rate:g})",
        columns=["slo", "objective", "tier", "target", "events", "bad",
                 "good", "met"],
    )
    for slo in doc["slos"]:
        scoreboard.add_row(slo["name"], slo["objective"],
                           slo["tier"] or "*", slo["target"],
                           slo["n_events"], slo["n_bad"],
                           slo["good_fraction"],
                           "yes" if slo["met"] else "NO")
    print(scoreboard.render())
    print()
    print(incident_table(
        doc, title=f"Incident timeline (seed={args.seed})").render())
    if args.alerts_out:
        _write_json(args.alerts_out,
                    monitor.timeline_json(indent=2))
        print(f"\n[incident timeline (repro.alerts/v1) -> "
              f"{args.alerts_out}]")
    return 0


def cmd_bench_compare(args) -> int:
    """Compare benchmark artifacts; exit 1 on regression."""
    from repro.obs import ArtifactError, benchdiff_json, compare_paths
    try:
        comparison = compare_paths(args.baseline, args.candidate,
                                   rel_tol=args.rel_tol,
                                   abs_tol=args.abs_tol)
    except ArtifactError as exc:
        print(f"bench-compare: {exc}", file=sys.stderr)
        return 2
    if args.json_out:
        _write_json(args.json_out, benchdiff_json(comparison))
        print(f"[delta report (repro.benchdiff/v1) -> {args.json_out}]")
    table = comparison.table()
    if not args.all_metrics:
        interesting = [d for d in comparison.deltas
                       if d.verdict != "ok"]
        if interesting:
            shown = {d.metric for d in interesting}
            table.rows = [row for row in table.rows if row[0] in shown]
        else:
            table.rows = []
            table.add_note("all metrics within thresholds "
                           "(use --all-metrics to list them)")
    print(table.render())
    n_regressed = len(comparison.regressions)
    n_total = len(comparison.deltas)
    if n_regressed:
        if args.explain:
            _explain_regressions(comparison)
        # One line per offender on stderr: which metric, which way it
        # is allowed to move, golden vs fresh value, and the artifact
        # to regenerate — so CI logs are actionable without rerunning.
        for d in comparison.regressions:
            fresh = ("<missing>" if d.candidate is None
                     else f"{d.candidate:g}")
            where = f" [artifact {d.path}]" if d.path else ""
            print(f"regressed: {d.metric} ({d.direction} is better): "
                  f"baseline {d.baseline:g} -> candidate {fresh}{where}",
                  file=sys.stderr)
        print(f"\nFAIL: {n_regressed}/{n_total} metrics regressed",
              file=sys.stderr)
        return 1
    print(f"\nOK: {n_total} metrics within thresholds")
    return 0


def _artifact_stem(path: str) -> str:
    """``.../BENCH_critpath.json`` -> ``critpath``."""
    import os
    name = os.path.basename(path or "")
    if name.startswith("BENCH_"):
        name = name[len("BENCH_"):]
    if name.endswith(".json"):
        name = name[:-len(".json")]
    return name


def _explain_regressions(comparison) -> None:
    """``bench-compare --explain``: per regressed artifact, re-run its
    registered golden scenario and print the run-to-run attribution —
    which operators ate the delta.  Stdout only; the per-regression
    stderr lines stay machine-stable."""
    from repro.errors import ReproError
    from repro.eval.diff_eval import explain_regression
    from repro.obs import diff_narrative, diff_table

    seen = []
    for d in comparison.regressions:
        stem = _artifact_stem(d.path or comparison.baseline_name)
        if stem not in seen:
            seen.append(stem)
    for stem in seen:
        print(f"\n== explain: {stem} ==")
        try:
            doc = explain_regression(stem)
        except ReproError as exc:
            print(f"(attribution unavailable: {exc})")
            continue
        if doc is None:
            print(f"(no golden scenario registered for {stem!r} — "
                  f"see repro.eval.diff_eval.golden_scenarios)")
            continue
        print(diff_table(doc).render())
        for line in diff_narrative(doc):
            print(line)


def cmd_diff(args) -> int:
    """Run-to-run differential attribution: align two saved artifacts
    (critpath / profile / steps / fleet, optionally gzipped) and
    attribute the deltas.  Exit 0 when identical within tolerance,
    1 when the runs differ, 2 on usage errors — mirroring
    ``bench-compare``."""
    import json

    from repro.errors import ReproError
    from repro.obs import (
        diff_docs,
        diff_json,
        diff_narrative,
        diff_table,
        open_text,
    )

    try:
        docs = []
        for path in (args.base, args.new):
            try:
                with open_text(path) as fh:
                    docs.append(json.load(fh))
            except (OSError, ValueError) as exc:
                raise ReproError(
                    f"cannot read {path!r}: {exc}") from None
        doc = diff_docs(docs[0], docs[1], tol_s=args.tol)
    except ReproError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    print(diff_table(doc, top=args.top).render())
    if doc["kind"] == "critpath" and not args.no_narrative:
        print()
        for line in diff_narrative(doc, top=args.top):
            print(line)
    if args.out:
        _write_json(args.out, diff_json(doc))
        print(f"[diff (repro.diff/v1) -> {args.out}]")
    if doc["identical"]:
        print(f"\nOK: runs identical within {doc['tol_s']:g} s")
        return 0
    print(f"\nDIFFER: {args.base} -> {args.new}", file=sys.stderr)
    return 1


def cmd_explain(args) -> int:
    """Explain one request of a step-logged run: per-request wait
    attribution (behind whom, which knob) reconstructed from the
    ``repro.steps/v1`` decision log, reconciled against the traced
    breakdown within 1e-9 s."""
    import json

    from repro.errors import ReproError
    from repro.obs import (
        explain_lines,
        explain_table,
        load_steps,
        validate_steps_doc,
    )

    try:
        if args.steplog:
            doc = load_steps(args.steplog)
            validate_steps_doc(doc)
        else:
            from repro.eval import golden_steplog
            doc = golden_steplog(
                seed=args.seed, batched=args.batched,
                prefill_priority=args.prefill_priority,
            ).to_dict()
        if args.steplog_out:
            _write_json(args.steplog_out,
                        json.dumps(doc, indent=2, sort_keys=True))
            print(f"[step log (repro.steps/v1) -> {args.steplog_out}]")
        if args.request_id is None:
            print(explain_table(
                doc, title=f"Wait attribution — {doc['source']} "
                           f"({doc['n_requests']} requests, "
                           f"{doc['n_steps']} steps)").render())
        else:
            for line in explain_lines(doc, args.request_id):
                print(line)
            if not args.steplog and not args.no_critpath:
                print()
                for line in _request_narrative(args.seed, args.batched,
                                               args.request_id):
                    print(line)
    except ReproError as exc:
        print(f"explain: {exc}", file=sys.stderr)
        return 2
    return 0


def _request_narrative(seed: int, batched: bool,
                       request_id: int) -> List[str]:
    """Critical-path narrative lines for one golden-workload request
    (the causal half of ``explain``: wait attribution says how long the
    scheduler held the request, the critical path says which tasks then
    gated it)."""
    from repro.eval import batched_golden_service, service_golden_records
    from repro.obs import narrative_lines, request_critical_path

    service = (batched_golden_service(seed=seed) if batched
               else service_golden_records(seed=seed))
    for record in service.requests:
        if record.request_id == request_id:
            if record.status != "completed" or record.report is None:
                return [f"(no critical path: request {request_id} "
                        f"status is {record.status!r})"]
            path = request_critical_path(
                record, decode_backend=service.config.decode_backend)
            return narrative_lines(path)
    return [f"(no critical path: request {request_id} not in the "
            f"golden workload)"]


def cmd_critpath(args) -> int:
    """Critical-path attribution: which tasks actually gated completion.

    Three modes: the golden service workload (default), one synthetic
    inference (--prompt-tokens), or a fleet roll-up of top gating
    segments (--fleet N)."""
    import json

    from repro.errors import ReproError
    from repro.obs import (
        critpath_doc,
        narrative_lines,
        validate_critical_path,
    )

    try:
        if args.fleet:
            from repro.eval import (
                default_fleet,
                fleet_critpath_table,
                fleet_report,
            )
            report = fleet_report(
                specs=default_fleet(args.fleet, seed=args.seed,
                                    seeding=args.seeding),
                seed=args.seed, workers=args.workers, critpath=True)
            print(fleet_critpath_table(report, top=args.top).render())
            return 0
        if args.prompt_tokens:
            from repro.core import LlmNpuEngine
            from repro.obs import critical_path
            engine = LlmNpuEngine.build(args.model, args.device)
            inference = engine.infer(args.prompt_tokens,
                                     args.output_tokens)
            timeline = inference.timeline(engine.config.decode_backend)
            path = critical_path(
                timeline, source=f"{args.model} "
                                 f"prompt={args.prompt_tokens}")
            paths = [path]
            for line in narrative_lines(path, top=args.top):
                print(line)
        else:
            from repro.eval import (
                critpath_request_table,
                critpath_stage_table,
                service_critical_paths,
            )
            paths, _service = service_critical_paths(seed=args.seed)
            if args.request_id is not None:
                wanted = f"request {args.request_id}"
                matches = [p for p in paths if p.source == wanted]
                if not matches:
                    raise ReproError(
                        f"request {args.request_id} has no critical "
                        f"path (not completed, or not in the workload)")
                for line in narrative_lines(matches[0], top=args.top):
                    print(line)
            else:
                print(critpath_stage_table(
                    paths, title=f"Critical-path attribution by stage — "
                                 f"golden workload (seed={args.seed})"
                ).render())
                print()
                print(critpath_request_table(paths).render())
        for path in paths:
            validate_critical_path(path)
        if args.critpath_out:
            doc = critpath_doc(
                paths, source=f"golden service workload seed={args.seed}"
                if not args.prompt_tokens else paths[0].source)
            _write_json(args.critpath_out,
                        json.dumps(doc, indent=2, sort_keys=True,
                                   allow_nan=False))
            print(f"[critpath artifact (repro.critpath/v1) -> "
                  f"{args.critpath_out}]")
    except ReproError as exc:
        print(f"critpath: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_whatif(args) -> int:
    """Counterfactual latency estimation: replay the captured task DAG
    with perturbed latencies and report predicted TTFT/ITL/e2e deltas,
    optionally verified against a ground-truth re-simulation."""
    from repro.core import LlmNpuEngine
    from repro.errors import ReproError
    from repro.eval.report import Table
    from repro.obs import (
        WHATIF_TOL_S,
        capture_engine_run,
        dma_overlap_perturbation,
        predict,
        reassign_from_spec,
        resimulate,
        speedup_from_spec,
    )

    try:
        engine = LlmNpuEngine.build(args.model, args.device)
        perturbations = []
        for spec in args.speedup or ():
            perturbations.append(speedup_from_spec(spec))
        for spec in args.reassign or ():
            perturbations.append(reassign_from_spec(spec))
        if args.dma_buffers:
            from repro.hw.dma import DmaConfig
            pert, _clone = dma_overlap_perturbation(
                engine, args.prompt_tokens,
                DmaConfig(buffers=args.dma_buffers),
                output_tokens=args.output_tokens)
            perturbations.append(pert)
        if not perturbations:
            raise ReproError(
                "no perturbations given — use --speedup TAG=FACTOR, "
                "--reassign TAG=PROC[*SCALE], and/or --dma-buffers N")
        run = capture_engine_run(engine, args.prompt_tokens,
                                 output_tokens=args.output_tokens)
        report = predict(run, perturbations)
    except ReproError as exc:
        print(f"whatif: {exc}", file=sys.stderr)
        return 2
    table = Table(
        title=f"What-if — {args.model}, prompt={args.prompt_tokens}, "
              f"out={args.output_tokens}",
        columns=["metric", "baseline ms", "predicted ms", "delta ms"],
    )
    for metric, base, pred in (
            ("TTFT", report.baseline.ttft_s, report.predicted.ttft_s),
            ("ITL", report.baseline.itl_s, report.predicted.itl_s),
            ("e2e", report.baseline.e2e_s, report.predicted.e2e_s)):
        table.add_row(metric, base * 1e3, pred * 1e3,
                      (pred - base) * 1e3)
    for label in report.perturbations:
        table.add_note(f"perturbation: {label}")
    print(table.render())
    if args.verify:
        truth = resimulate(run, perturbations)
        error = max(abs(report.predicted.ttft_s - truth.ttft_s),
                    abs(report.predicted.itl_s - truth.itl_s),
                    abs(report.predicted.e2e_s - truth.e2e_s))
        verdict = "OK" if error <= WHATIF_TOL_S else "FAIL"
        print(f"\n[{verdict}] re-simulation check: max |prediction - "
              f"ground truth| = {error:.3e} s (tolerance "
              f"{WHATIF_TOL_S:g} s)")
        if error > WHATIF_TOL_S:
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="llmnpu",
        description="llm.npu reproduction — run the paper's experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(
        func=cmd_list
    )

    run = sub.add_parser("run", help="run experiments")
    run.add_argument("experiment", nargs="+",
                     help="experiment ids (or 'all')")
    run.add_argument("--save", action="store_true",
                     help="archive tables under benchmarks/results/")
    run.add_argument("--trace-out", default=None,
                     help="write a Perfetto trace (drivers that trace)")
    run.add_argument("--metrics-out", default=None,
                     help="write a metrics snapshot (drivers that trace)")
    run.add_argument("--critpath-out", default=None,
                     help="write the repro.critpath/v1 artifact (drivers "
                          "that attribute critical paths)")
    run.add_argument("--diff-out", default=None,
                     help="write the repro.diff/v1 artifact (drivers "
                          "that diff runs)")
    run.set_defaults(func=cmd_run)

    report = sub.add_parser(
        "report", help="run every experiment into one markdown report"
    )
    report.add_argument("--skip", nargs="*", default=None,
                        help="experiment ids to skip")
    report.set_defaults(func=cmd_report)

    quantize = sub.add_parser(
        "quantize",
        help="calibrate + quantize a checkpoint (the paper's §A.5 step)",
    )
    quantize.add_argument("--input", default=None,
                          help="float checkpoint (.npz); default: build a "
                               "synthetic substrate")
    quantize.add_argument("--output", required=True,
                          help="quantized checkpoint path (.npz)")
    quantize.add_argument("--scheme", default="llm.npu",
                          choices=["llm.npu", "per-tensor", "per-group"])
    quantize.add_argument("--pruning-rate", type=float, default=0.85)
    quantize.add_argument("--seed", type=int, default=7)
    quantize.set_defaults(func=cmd_quantize)

    infer = sub.add_parser("infer", help="simulate one inference")
    infer.add_argument("--model", default="Qwen1.5-1.8B")
    infer.add_argument("--device", default="Redmi K70 Pro")
    infer.add_argument("--prompt-tokens", type=int, default=1024)
    infer.add_argument("--output-tokens", type=int, default=8)
    infer.add_argument("--pruning-rate", type=float, default=0.85)
    infer.add_argument("--chunk-len", type=int, default=256)
    infer.add_argument("--trace-out", default=None,
                       help="write the engine + task timeline "
                            "(Chrome/Perfetto JSON)")
    infer.add_argument("--metrics-out", default=None,
                       help="write an inference metrics snapshot (JSON)")
    infer.set_defaults(func=cmd_infer)

    trace = sub.add_parser(
        "trace",
        help="run the golden service workload fully traced; export the "
             "unified Perfetto timeline, JSONL log, and metrics",
    )
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--trace-out", default="traces/service_trace.json")
    trace.add_argument("--jsonl-out", default=None,
                       help="also write the JSONL event log")
    trace.add_argument("--metrics-out", default=None,
                       help="also write the metrics snapshot (JSON)")
    trace.add_argument("--no-validate", action="store_true",
                       help="skip the per-track serial-overlap check")
    trace.add_argument("--critpath", action="store_true",
                       help="stamp hw spans with an on_path arg marking "
                            "each request's critical path")
    trace.set_defaults(func=cmd_trace)

    profile = sub.add_parser(
        "profile",
        help="attribution report: per-operator/processor time + energy, "
             "roofline, idle causes, flamegraph",
    )
    profile.add_argument("--seed", type=int, default=42,
                         help="golden-workload seed (service mode)")
    profile.add_argument("--model", default="Qwen1.5-1.8B")
    profile.add_argument("--device", default="Redmi K70 Pro")
    profile.add_argument("--prompt-tokens", type=int, default=0,
                         help="profile one inference of this many prompt "
                              "tokens instead of the golden workload")
    profile.add_argument("--output-tokens", type=int, default=8)
    profile.add_argument("--profile-out", default=None,
                         help="write the repro.profile/v1 JSON report")
    profile.add_argument("--flamegraph-out", default=None,
                         help="write collapsed-stack flamegraph lines")
    profile.add_argument("--top", type=int, default=0,
                         help="only the N biggest operators / flamegraph "
                              "stacks (0 = all)")
    profile.add_argument("--operator", default=None,
                         help="filter tables + flamegraph to one operator "
                              "tag (exact or dotted-prefix match)")
    profile.set_defaults(func=cmd_profile)

    fleet = sub.add_parser(
        "fleet",
        help="simulate a heterogeneous device fleet under SLO "
             "monitoring; merge sketches + incident timelines",
    )
    fleet.add_argument("--devices", type=int, default=3,
                       help="fleet size (cycles flagship/mid/budget)")
    fleet.add_argument("--seed", type=int, default=42)
    fleet.add_argument("--workers", type=int, default=1,
                       help="process-pool size for the device fan-out "
                            "(report is byte-identical for any value)")
    fleet.add_argument("--seeding", choices=("legacy", "splitmix"),
                       default="legacy",
                       help="per-device seed derivation; 'legacy' is the "
                            "seed+100*i ladder the 3-device goldens pin, "
                            "'splitmix' decorrelates large fleets")
    fleet.add_argument("--report-out", default=None,
                       help="write the repro.fleet/v1 report JSON")
    fleet.add_argument("--alerts-out", default=None,
                       help="write the merged repro.alerts/v1 timeline")
    fleet.set_defaults(func=cmd_fleet)

    monitor = sub.add_parser(
        "monitor",
        help="run the seeded fault-storm scenario under SLO monitoring; "
             "print compliance + burn-rate incidents",
    )
    monitor.add_argument("--seed", type=int, default=42)
    monitor.add_argument("--transient-rate", type=float, default=0.35)
    monitor.add_argument("--permanent-rate", type=float, default=0.1)
    monitor.add_argument("--alerts-out", default=None,
                         help="write the repro.alerts/v1 timeline JSON")
    monitor.set_defaults(func=cmd_monitor)

    compare = sub.add_parser(
        "bench-compare",
        help="compare BENCH_*.json artifacts (files or directories); "
             "exits nonzero on regression",
    )
    compare.add_argument("baseline", help="baseline artifact file or dir")
    compare.add_argument("candidate", help="candidate artifact file or dir")
    compare.add_argument("--rel-tol", type=float, default=0.05,
                         help="relative noise threshold (default 5%%)")
    compare.add_argument("--abs-tol", type=float, default=1e-9,
                         help="absolute noise threshold")
    compare.add_argument("--all-metrics", action="store_true",
                         help="list every metric, not just movers")
    compare.add_argument("--json-out", default=None,
                         help="write the machine-readable "
                              "repro.benchdiff/v1 delta report")
    compare.add_argument("--explain", action="store_true",
                         help="for each regressed artifact with a "
                              "registered golden scenario, re-run it and "
                              "print the run-to-run attribution")
    compare.set_defaults(func=cmd_bench_compare)

    diff = sub.add_parser(
        "diff",
        help="run-to-run differential attribution: align two saved "
             "critpath/profile/steps/fleet artifacts and attribute "
             "the deltas; exits 1 when the runs differ",
    )
    diff.add_argument("base", help="baseline artifact (JSON, .gz ok)")
    diff.add_argument("new", help="new-run artifact (same schema)")
    diff.add_argument("--top", type=int, default=5,
                      help="movers per table / narrative block")
    diff.add_argument("--tol", type=float, default=1e-9,
                      help="conservation + identity tolerance in "
                           "seconds")
    diff.add_argument("--out", default=None,
                      help="write the repro.diff/v1 document (.gz ok)")
    diff.add_argument("--no-narrative", action="store_true",
                      help="skip the per-request narrative (critpath "
                           "diffs)")
    diff.set_defaults(func=cmd_diff)

    explain = sub.add_parser(
        "explain",
        help="per-request wait attribution from the scheduler's step "
             "log: behind whom, held by which knob, reconciled to the "
             "traced breakdown",
    )
    explain.add_argument("request_id", nargs="?", type=int, default=None,
                         help="request id to explain (omit for the "
                              "all-requests attribution table)")
    explain.add_argument("--seed", type=int, default=42,
                         help="golden-workload seed (ignored with "
                              "--steplog)")
    explain.add_argument("--batched", action="store_true",
                         help="explain the batched golden run instead "
                              "of the legacy per-request run")
    explain.add_argument("--prefill-priority", type=float, default=0.5,
                         help="batched run's prefill/decode knob")
    explain.add_argument("--steplog", default=None,
                         help="read a saved repro.steps/v1 log instead "
                              "of rerunning the golden workload")
    explain.add_argument("--steplog-out", default=None,
                         help="also write the run's repro.steps/v1 log")
    explain.add_argument("--no-critpath", action="store_true",
                         help="skip the per-request critical-path "
                              "narrative")
    explain.set_defaults(func=cmd_explain)

    critpath = sub.add_parser(
        "critpath",
        help="critical-path attribution: the dependency-respecting "
             "chain of tasks that gated completion, with per-segment "
             "slack for everything off-path",
    )
    critpath.add_argument("request_id", nargs="?", type=int, default=None,
                          help="narrate one golden-workload request "
                               "(omit for the attribution tables)")
    critpath.add_argument("--seed", type=int, default=42)
    critpath.add_argument("--model", default="Qwen1.5-1.8B")
    critpath.add_argument("--device", default="Redmi K70 Pro")
    critpath.add_argument("--prompt-tokens", type=int, default=0,
                          help="attribute one inference of this many "
                               "prompt tokens instead of the golden "
                               "workload")
    critpath.add_argument("--output-tokens", type=int, default=8)
    critpath.add_argument("--top", type=int, default=5,
                          help="gating segments per narrative / fleet "
                               "stages to list")
    critpath.add_argument("--fleet", type=int, default=0,
                          help="roll up top gating segments across N "
                               "fleet devices instead")
    critpath.add_argument("--seeding", choices=("legacy", "splitmix"),
                          default="legacy",
                          help="fleet-mode per-device seed derivation")
    critpath.add_argument("--workers", type=int, default=1,
                          help="fleet-mode process-pool size")
    critpath.add_argument("--critpath-out", default=None,
                          help="write the repro.critpath/v1 artifact")
    critpath.set_defaults(func=cmd_critpath)

    whatif = sub.add_parser(
        "whatif",
        help="counterfactual latency: replay the captured task DAG with "
             "perturbed latencies; predicted TTFT/ITL/e2e deltas",
    )
    whatif.add_argument("--model", default="Qwen1.5-1.8B")
    whatif.add_argument("--device", default="Redmi K70 Pro")
    whatif.add_argument("--prompt-tokens", type=int, default=1024)
    whatif.add_argument("--output-tokens", type=int, default=8)
    whatif.add_argument("--speedup", action="append", metavar="TAG=FACTOR",
                        help="operator TAG becomes FACTOR times faster "
                             "(repeatable)")
    whatif.add_argument("--reassign", action="append",
                        metavar="TAG=PROC[*SCALE]",
                        help="operator TAG moves to PROC, durations "
                             "scaled by SCALE (repeatable)")
    whatif.add_argument("--dma-buffers", type=int, default=0,
                        help="re-model NPU weight streaming with an "
                             "N-buffer DMA pool")
    whatif.add_argument("--verify", action="store_true",
                        help="cross-check the prediction against a "
                             "ground-truth re-simulation (exits 1 if "
                             "beyond tolerance)")
    whatif.set_defaults(func=cmd_whatif)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
