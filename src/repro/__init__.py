"""repro — a reproduction of "Fast On-device LLM Inference with NPUs"
(llm.npu, ASPLOS 2025).

The library implements the paper's full system stack in Python:

* :mod:`repro.model` — a decoder-only transformer substrate (numpy) with
  chunked prefill, KV cache, and synthetic weights with realistic
  activation-outlier structure;
* :mod:`repro.quant` — six quantization schemes (per-tensor, per-group
  K-Quant style, SmoothQuant, LLM.int8(), AWQ-style, and llm.npu's
  shadow-outlier per-tensor scheme) plus calibration and importance pruning;
* :mod:`repro.hw` — a mobile SoC simulator (CPU/GPU/NPU latency, energy and
  memory models calibrated against the paper's published micro-benchmarks,
  plus a discrete-event execution engine);
* :mod:`repro.graph` — operator IR, backend partitioning, and the
  chunk-sharing graph construction of §3.2;
* :mod:`repro.core` — the llm.npu engine: chunked prefill, shadow outlier
  execution (§3.3), hot-channel caching, importance pruning, and the
  out-of-order subgraph scheduler (§3.4);
* :mod:`repro.baselines` — simulated llama.cpp / MNN / TFLite / MLC /
  PowerInfer-V2 engines for the paper's comparisons;
* :mod:`repro.workloads` — synthetic DroidTask / LongBench / Persona-Chat
  workload generators and accuracy benchmarks;
* :mod:`repro.eval` — drivers that regenerate every table and figure of the
  paper's evaluation section.

Quickstart::

    from repro import LlmNpuEngine, QWEN15_18B, REDMI_K70_PRO

    engine = LlmNpuEngine.build(QWEN15_18B, REDMI_K70_PRO)
    report = engine.infer(prompt_tokens=1024, output_tokens=8)
    print(report.prefill_latency_s, report.prefill_tokens_per_s)
"""

from repro.errors import ReproError
from repro.model import (
    GEMMA_2B,
    LLAMA2_7B,
    MISTRAL_7B,
    PAPER_MODELS,
    PHI2_27B,
    QWEN15_18B,
    DecoderModel,
    ModelConfig,
    OutlierSpec,
    ToyTokenizer,
    build_synthetic_model,
    get_model_config,
    tiny_config,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ModelConfig",
    "get_model_config",
    "tiny_config",
    "PAPER_MODELS",
    "QWEN15_18B",
    "GEMMA_2B",
    "PHI2_27B",
    "LLAMA2_7B",
    "MISTRAL_7B",
    "DecoderModel",
    "OutlierSpec",
    "build_synthetic_model",
    "ToyTokenizer",
    "LlmNpuEngine",
    "REDMI_K60_PRO",
    "REDMI_K70_PRO",
    "__version__",
]


def __getattr__(name):
    # Lazy imports keep `import repro` light and avoid circular imports
    # while the heavier subsystems (hw, core) pull in the whole stack.
    if name == "LlmNpuEngine":
        from repro.core.engine import LlmNpuEngine
        return LlmNpuEngine
    if name in ("REDMI_K60_PRO", "REDMI_K70_PRO"):
        from repro.hw import soc
        return getattr(soc, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
