"""AWQ-style activation-aware weight-only quantization (Lin et al., 2023).

AWQ protects *salient* weight channels — the ones multiplying large
activations — by scaling them up before per-group weight quantization and
compensating in the activation.  Activations stay float (Table 4: AWQ runs
every MatMul in FP16), so accuracy is high; the cost is that the MatMul is
a float operation, which mobile NPUs execute hundreds of times slower than
INT8 (Table 3) — the reason llm.npu does not adopt it despite its accuracy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import QuantizationError
from repro.quant.base import QuantLinear, QuantizedTensor, quantize_weight_per_group


def awq_scales(channel_absmax: np.ndarray, alpha: float = 0.5) -> np.ndarray:
    """Per-input-channel protection factors from calibration statistics.

    Channels with larger typical activations get their weights scaled up
    (quantized more precisely) and the activation scaled down to match.
    """
    if not 0.0 <= alpha <= 1.0:
        raise QuantizationError(f"alpha must be in [0, 1], got {alpha}")
    act = np.maximum(np.asarray(channel_absmax, dtype=np.float64), 1e-8)
    s = act ** alpha
    s /= np.sqrt(s.max() * s.min())  # normalize around 1
    return np.maximum(s, 1e-4).astype(np.float32)


class AwqLinear(QuantLinear):
    """Weight-only per-group quantized linear with float activations."""

    scheme = "awq"

    def __init__(self, weight: np.ndarray, channel_absmax: np.ndarray,
                 group_size: int = 32, alpha: float = 0.5,
                 bias: Optional[np.ndarray] = None, name: str = "awq"):
        if weight.shape[1] % group_size != 0:
            raise QuantizationError(
                f"{name}: group_size {group_size} must divide "
                f"in_features {weight.shape[1]}"
            )
        super().__init__(weight.shape[1], weight.shape[0], bias, name)
        self.scales = awq_scales(channel_absmax, alpha)
        scaled = weight * self.scales[None, :]
        self.qweight: QuantizedTensor = quantize_weight_per_group(
            scaled, group_size
        )
        # Dequantized-once weight with the scales folded back out, so the
        # float MatMul uses exactly what the int codes can express.
        self._w_eff = self.qweight.dequantize() / self.scales[None, :]

    def _forward(self, x: np.ndarray) -> np.ndarray:
        y = x @ self._w_eff.T
        self.stats.record_call(
            rows=x.shape[0],
            float_macs=x.shape[0] * self.in_features * self.out_features,
        )
        return y

    def weight_nbytes(self) -> int:
        return self.qweight.nbytes() + self.scales.nbytes
