"""Naive per-tensor W8A8 quantization (Fig. 3a).

One scale for the whole weight tensor and one *static* scale for the whole
activation tensor, calibrated from the raw activation absmax.  This is the
only layout mobile NPUs execute at full speed — but activation outliers
stretch the scale so far that ordinary values lose most of their precision,
which is why the paper's Table 6 shows naive per-tensor schemes losing
double-digit accuracy.  llm.npu's shadow scheme (``repro.quant.shadow``)
fixes exactly this.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quant.base import (
    QuantLinear,
    QuantizedTensor,
    quantize_int8,
    quantize_weight_per_tensor,
)


class PerTensorLinear(QuantLinear):
    """W8A8 linear with whole-tensor scales for weight and activation."""

    scheme = "per-tensor"

    def __init__(self, weight: np.ndarray, act_scale: float,
                 bias: Optional[np.ndarray] = None, name: str = "pt"):
        super().__init__(weight.shape[1], weight.shape[0], bias, name)
        self.qweight: QuantizedTensor = quantize_weight_per_tensor(weight)
        self.act_scale = float(act_scale)

    def _forward(self, x: np.ndarray) -> np.ndarray:
        # Activation quantization with the static calibrated scale — what a
        # pre-built NPU graph must do (no data-dependent scales on-device).
        xq = quantize_int8(x, self.act_scale)
        # INT8 MatMul with int32 accumulation, then one float rescale.
        acc = xq.astype(np.int32) @ self.qweight.data.astype(np.int32).T
        y = acc.astype(np.float32) * (self.act_scale * float(self.qweight.scale))
        self.stats.record_call(
            rows=x.shape[0],
            int8_macs=x.shape[0] * self.in_features * self.out_features,
        )
        return y

    def weight_nbytes(self) -> int:
        return self.qweight.nbytes()
