"""Quantization library.

Six schemes spanning the paper's Table 4 / Table 6 comparison space:

================  =============  ==========  =======================
scheme            weight layout  activation  NPU-compatible MatMul?
================  =============  ==========  =======================
``fp16``          float16        float16     no (FP ops ~100× slower)
``per-tensor``    per-tensor     static PT   yes, but poor accuracy
``per-group``     per-group      dynamic PG  only via sub-MatMul split
``smoothquant``   per-tensor     static PT   yes, moderate accuracy
``llm.int8``      per-channel    dynamic     no (dynamic outlier path)
``awq``           per-group      float16     no (float MatMul)
``llm.npu``       per-tensor     static PT   **yes** + CPU shadow
================  =============  ==========  =======================

Plus calibration observers, outlier importance pruning, and error metrics.
"""

from repro.quant.api import (
    SCHEMES,
    Fp16Linear,
    QuantizationReport,
    quantize_model,
)
from repro.quant.awq import AwqLinear, awq_scales
from repro.quant.base import (
    INT8_MAX,
    qmax_for_bits,
    QuantizedTensor,
    QuantLinear,
    QuantLinearStats,
    dequantize,
    quantize_dequantize,
    quantize_int8,
    quantize_weight_per_channel,
    quantize_weight_per_group,
    quantize_weight_per_tensor,
    symmetric_scale,
)
from repro.quant.io import load_quantized, save_quantized
from repro.quant.importance import (
    PruningPlan,
    importance_profile,
    make_pruning_plan,
    rank_layers_by_importance,
    u_shape_score,
)
from repro.quant.llm_int8 import LlmInt8Linear
from repro.quant.metrics import (
    kl_divergence,
    mse,
    pseudo_perplexity,
    sqnr_db,
    teacher_cross_entropy,
    top1_agreement,
    topk_agreement,
)
from repro.quant.observers import (
    ActivationObserver,
    CalibrationResult,
    SiteStats,
    calibrate,
)
from repro.quant.per_group import PerGroupLinear
from repro.quant.per_tensor import PerTensorLinear
from repro.quant.shadow import ShadowOutlierLinear, ShadowStats
from repro.quant.smoothquant import SmoothQuantLinear, smoothing_factors

__all__ = [
    "SCHEMES",
    "quantize_model",
    "QuantizationReport",
    "Fp16Linear",
    "PerTensorLinear",
    "PerGroupLinear",
    "SmoothQuantLinear",
    "smoothing_factors",
    "LlmInt8Linear",
    "AwqLinear",
    "awq_scales",
    "ShadowOutlierLinear",
    "ShadowStats",
    "QuantizedTensor",
    "QuantLinear",
    "QuantLinearStats",
    "INT8_MAX",
    "qmax_for_bits",
    "symmetric_scale",
    "quantize_int8",
    "dequantize",
    "quantize_dequantize",
    "quantize_weight_per_tensor",
    "quantize_weight_per_channel",
    "quantize_weight_per_group",
    "ActivationObserver",
    "CalibrationResult",
    "SiteStats",
    "calibrate",
    "save_quantized",
    "load_quantized",
    "PruningPlan",
    "make_pruning_plan",
    "rank_layers_by_importance",
    "importance_profile",
    "u_shape_score",
    "mse",
    "sqnr_db",
    "kl_divergence",
    "teacher_cross_entropy",
    "pseudo_perplexity",
    "top1_agreement",
    "topk_agreement",
]
