"""Outlier importance scoring and layer-level pruning (§3.3, Fig. 12).

The importance of a layer's outliers is the ratio between its largest
outlier and its quantization scale ``s``: a larger ratio means a more
dispersed activation distribution and a larger error if the outlier is
clamped without compensation.  llm.npu profiles this offline and prunes the
shadow execution of the top-85% *least* important layers, eliminating their
CPU↔NPU synchronization.

The paper observes (and the synthetic models reproduce via their U-shaped
depth profile) that layers near the input and output are the most
important: early layers see raw token disparity; late layers accumulate
error from everything below them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import QuantizationError
from repro.quant.observers import CalibrationResult


@dataclass(frozen=True)
class PruningPlan:
    """Which layers keep shadow execution and which are pruned."""

    pruning_rate: float
    kept_layers: frozenset
    pruned_layers: frozenset
    importance: Dict[int, float]

    def is_pruned(self, layer: int) -> bool:
        return layer in self.pruned_layers

    @property
    def n_layers(self) -> int:
        return len(self.kept_layers) + len(self.pruned_layers)


def rank_layers_by_importance(calib: CalibrationResult) -> List[int]:
    """Layers sorted from *least* to *most* important."""
    importance = calib.layer_importance()
    return sorted(importance, key=lambda layer: importance[layer])


def make_pruning_plan(calib: CalibrationResult,
                      pruning_rate: float = 0.85) -> PruningPlan:
    """Prune the ``pruning_rate`` fraction of least-important layers.

    ``pruning_rate=0`` keeps shadow execution everywhere (max accuracy,
    max sync overhead); ``1.0`` prunes everything (the fastest, least
    accurate end of Fig. 16).
    """
    if not 0.0 <= pruning_rate <= 1.0:
        raise QuantizationError(
            f"pruning_rate must be in [0, 1], got {pruning_rate}"
        )
    importance = calib.layer_importance()
    ranked = rank_layers_by_importance(calib)
    n_pruned = int(round(len(ranked) * pruning_rate))
    pruned = frozenset(ranked[:n_pruned])
    kept = frozenset(ranked[n_pruned:])
    return PruningPlan(pruning_rate, kept, pruned, importance)


def importance_profile(calib: CalibrationResult) -> np.ndarray:
    """Per-layer importance as an array indexed by layer (Fig. 12 left)."""
    importance = calib.layer_importance()
    n_layers = max(importance) + 1
    out = np.zeros(n_layers, dtype=np.float64)
    layers = np.fromiter(importance.keys(), dtype=np.int64,
                         count=len(importance))
    out[layers] = np.fromiter(importance.values(), dtype=np.float64,
                              count=len(importance))
    return out


def u_shape_score(profile: np.ndarray) -> float:
    """How U-shaped an importance profile is.

    Positive when the ends exceed the middle (the paper's observation);
    used by tests and the Fig. 12 bench to verify the reproduction.
    """
    n = len(profile)
    if n < 4:
        return 0.0
    edge = max(2, n // 4)
    ends = np.concatenate([profile[:edge], profile[-edge:]])
    middle = profile[edge:-edge]
    if middle.size == 0:
        return 0.0
    return float(ends.mean() - middle.mean())
