"""LLM.int8() (Dettmers et al., NeurIPS'22) — mixed-precision decomposition.

Activation columns whose magnitude exceeds a threshold are pulled out and
multiplied against the corresponding *float* weight columns; the rest run
as int8 with per-row (vector-wise) dynamic activation scales.  Accuracy is
essentially FP16 (Table 6 "Int8()" column), but the dynamic outlier-column
detection and float path make it a CPU/GPU technique — it cannot live
inside a static NPU graph, which is the gap llm.npu's shadow execution
closes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quant.base import (
    INT8_MAX,
    QuantLinear,
    QuantizedTensor,
    quantize_int8,
    quantize_weight_per_channel,
)


class LlmInt8Linear(QuantLinear):
    """Mixed int8 / float decomposition linear.

    ``outlier_threshold`` is the absolute activation magnitude above which a
    column is treated in float for that call (6.0 in the original paper;
    configurable here because synthetic models have different ranges).
    """

    scheme = "llm.int8"

    def __init__(self, weight: np.ndarray, outlier_threshold: float = 6.0,
                 bias: Optional[np.ndarray] = None, name: str = "int8"):
        super().__init__(weight.shape[1], weight.shape[0], bias, name)
        self.outlier_threshold = float(outlier_threshold)
        self.qweight: QuantizedTensor = quantize_weight_per_channel(weight)
        # Float weights kept around for the outlier columns (the 2x memory
        # issue §3.3 discusses; llm.npu's hot-channel cache reduces it).
        self.float_weight = weight.astype(np.float32)

    def _forward(self, x: np.ndarray) -> np.ndarray:
        rows = x.shape[0]
        col_max = np.abs(x).max(axis=0)
        outlier_cols = np.flatnonzero(col_max > self.outlier_threshold)

        x_regular = x.copy()
        if outlier_cols.size:
            x_regular[:, outlier_cols] = 0.0

        # Vector-wise (per-row) dynamic activation quantization.
        row_absmax = np.abs(x_regular).max(axis=1)
        a_scale = np.where(row_absmax == 0, 1.0, row_absmax / INT8_MAX)
        xq = quantize_int8(x_regular, a_scale[:, None])
        acc = xq.astype(np.int32) @ self.qweight.data.astype(np.int32).T
        y = acc.astype(np.float32) * (
            a_scale[:, None] * self.qweight.scale[None, :]
        )

        float_macs = 0
        if outlier_cols.size:
            y = y + x[:, outlier_cols] @ self.float_weight[:, outlier_cols].T
            float_macs = rows * int(outlier_cols.size) * self.out_features

        self.stats.record_call(
            rows=rows,
            int8_macs=rows * self.in_features * self.out_features,
            float_macs=float_macs,
            outlier_channels=int(outlier_cols.size),
        )
        return y

    def weight_nbytes(self) -> int:
        # int8 weights plus the float copy for outlier columns.
        return self.qweight.nbytes() + self.float_weight.nbytes
