"""Quantization primitives shared by every scheme.

All schemes here are **symmetric int8** (the format mobile NPUs accelerate,
§2.2): a float tensor ``x`` is represented as ``q * scale`` with
``q ∈ [-127, 127]``.  Weight quantization happens offline; activation
quantization follows each scheme's policy (static per-tensor for the
NPU-resident schemes, dynamic for the CPU schemes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import QuantizationError

#: Largest representable int8 magnitude used for symmetric quantization.
INT8_MAX = 127


def symmetric_scale(absmax: float, qmax: int = INT8_MAX) -> float:
    """Scale factor mapping ``[-absmax, absmax]`` onto ``[-qmax, qmax]``.

    A zero ``absmax`` (all-zero tensor) returns 1.0 so division is safe.
    """
    if absmax < 0:
        raise QuantizationError(f"absmax must be non-negative, got {absmax}")
    if absmax == 0.0:
        return 1.0
    return float(absmax) / qmax


def quantize_int8(x: np.ndarray, scale, qmax: int = INT8_MAX) -> np.ndarray:
    """Round-to-nearest symmetric quantization to int8 codes.

    ``scale`` may be a scalar or an array broadcastable against ``x``
    (per-channel / per-group quantization).  Zero scales (degenerate
    all-zero tensors) are treated as 1.0 so the codes come out zero
    instead of NaN.
    """
    scale = np.asarray(scale, dtype=np.float64)
    safe_scale = np.where(scale == 0.0, 1.0, scale)
    q = np.rint(x / safe_scale)
    return np.clip(q, -qmax, qmax).astype(np.int8)


def dequantize(q: np.ndarray, scale) -> np.ndarray:
    """Map int codes back to float: ``q * scale``."""
    return q.astype(np.float32) * np.asarray(scale, dtype=np.float32)


def quantize_dequantize(x: np.ndarray, scale,
                        qmax: int = INT8_MAX) -> np.ndarray:
    """Fake-quantize: the float values the int8 representation can express."""
    return dequantize(quantize_int8(x, scale, qmax), scale)


@dataclass
class QuantizedTensor:
    """A low-bit integer tensor with its quantization metadata.

    ``scale`` is scalar for per-tensor quantization, shape ``(out,)`` for
    per-output-channel, or shape ``(out, n_groups)`` for per-group along the
    input dimension (``group_size`` columns share a scale).  ``bits`` is
    the storage width (8 or 4 — K-Quant/AWQ checkpoints are 4-bit); 4-bit
    codes are held unpacked in an int8 array but accounted at their packed
    size by :meth:`nbytes`.
    """

    data: np.ndarray
    scale: np.ndarray
    group_size: Optional[int] = None
    bits: int = 8

    def __post_init__(self) -> None:
        if self.data.dtype != np.int8:
            raise QuantizationError(
                f"QuantizedTensor data must be int8, got {self.data.dtype}"
            )
        if self.bits not in (4, 8):
            raise QuantizationError(f"bits must be 4 or 8, got {self.bits}")
        self.scale = np.asarray(self.scale, dtype=np.float32)

    @property
    def shape(self):
        return self.data.shape

    @property
    def n_groups(self) -> int:
        """Number of input-dimension groups (1 unless per-group)."""
        if self.group_size is None:
            return 1
        return self.data.shape[-1] // self.group_size

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float tensor."""
        if self.group_size is None:
            if self.scale.ndim == 0:
                return dequantize(self.data, self.scale)
            # per-output-channel: scale shape (out,)
            return dequantize(self.data, self.scale[:, None])
        out, k = self.data.shape
        g = self.group_size
        data = self.data.reshape(out, k // g, g).astype(np.float32)
        return (data * self.scale[:, :, None]).reshape(out, k)

    def nbytes(self) -> int:
        """Storage footprint: packed integer payload + float32 scales."""
        payload = self.data.size * self.bits // 8
        return int(payload + self.scale.nbytes)


def qmax_for_bits(bits: int) -> int:
    """Largest symmetric code magnitude for a bit width (127 or 7)."""
    if bits == 8:
        return INT8_MAX
    if bits == 4:
        return 7
    raise QuantizationError(f"bits must be 4 or 8, got {bits}")


def quantize_weight_per_tensor(w: np.ndarray) -> QuantizedTensor:
    """Whole-tensor symmetric weight quantization (Fig. 3a)."""
    scale = symmetric_scale(float(np.abs(w).max()))
    return QuantizedTensor(quantize_int8(w, scale), np.float32(scale))


def quantize_weight_per_channel(w: np.ndarray) -> QuantizedTensor:
    """Per-output-row symmetric weight quantization."""
    absmax = np.abs(w).max(axis=1)
    scale = np.where(absmax == 0, 1.0, absmax / INT8_MAX).astype(np.float32)
    return QuantizedTensor(quantize_int8(w, scale[:, None]), scale)


def quantize_weight_per_group(w: np.ndarray, group_size: int,
                              bits: int = 8) -> QuantizedTensor:
    """Per-group quantization along the input dimension (Fig. 3b).

    This is the layout K-Quant/AWQ use (usually at ``bits=4`` in shipped
    checkpoints); on mobile NPUs it forces the MatMul to be split into
    ``n_groups`` sub-MatMuls plus a float reduction, which is the
    8.1–10.7× penalty the paper measures (Fig. 4).
    """
    out, k = w.shape
    if group_size <= 0 or k % group_size != 0:
        raise QuantizationError(
            f"group_size {group_size} must divide in_features {k}"
        )
    qmax = qmax_for_bits(bits)
    grouped = w.reshape(out, k // group_size, group_size)
    absmax = np.abs(grouped).max(axis=2)
    scale = np.where(absmax == 0, 1.0, absmax / qmax).astype(np.float32)
    q = quantize_int8(grouped, scale[:, :, None], qmax=qmax).reshape(out, k)
    return QuantizedTensor(q, scale, group_size=group_size, bits=bits)


@dataclass
class QuantLinearStats:
    """Counters every quantized linear accumulates while running."""

    calls: int = 0
    rows: int = 0
    int8_macs: int = 0
    float_macs: int = 0
    outlier_channel_counts: list = field(default_factory=list)

    def record_call(self, rows: int, int8_macs: int = 0,
                    float_macs: int = 0,
                    outlier_channels: Optional[int] = None) -> None:
        self.calls += 1
        self.rows += rows
        self.int8_macs += int8_macs
        self.float_macs += float_macs
        if outlier_channels is not None:
            self.outlier_channel_counts.append(outlier_channels)


class QuantLinear:
    """Base class for quantized linear operators.

    Subclasses implement :meth:`_forward`; the base class handles shape
    validation, bias, and statistics.  Instances are drop-in replacements
    for :class:`repro.model.layers.Linear` via ``DecoderModel.replace_linear``.
    """

    #: Human-readable scheme name, overridden by subclasses.
    scheme = "base"

    def __init__(self, in_features: int, out_features: int,
                 bias: Optional[np.ndarray] = None, name: str = "qlinear"):
        self.in_features = in_features
        self.out_features = out_features
        self.bias = None if bias is None else bias.astype(np.float32)
        self.name = name
        self.stats = QuantLinearStats()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise QuantizationError(
                f"{self.name}: input width {x.shape[-1]} != "
                f"in_features {self.in_features}"
            )
        y = self._forward(np.asarray(x, dtype=np.float32))
        if self.bias is not None:
            y = y + self.bias
        return y

    def _forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def weight_nbytes(self) -> int:
        """Quantized weight storage in bytes (scheme-specific)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}({self.name}: "
                f"{self.in_features}->{self.out_features})")
