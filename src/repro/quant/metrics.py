"""Error metrics for comparing quantized models against the float reference."""

from __future__ import annotations

import numpy as np

from repro.errors import QuantizationError
from repro.model.layers import softmax


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error."""
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        raise QuantizationError(f"shape mismatch {a.shape} vs {b.shape}")
    return float(np.mean((a - b) ** 2))


def sqnr_db(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB (higher is better)."""
    reference, quantized = np.asarray(reference), np.asarray(quantized)
    if reference.shape != quantized.shape:
        raise QuantizationError(
            f"shape mismatch {reference.shape} vs {quantized.shape}"
        )
    noise = np.mean((reference - quantized) ** 2)
    signal = np.mean(reference ** 2)
    if noise == 0:
        return float("inf")
    if signal == 0:
        return float("-inf")
    return float(10.0 * np.log10(signal / noise))


def kl_divergence(reference_logits: np.ndarray,
                  quantized_logits: np.ndarray) -> float:
    """Mean per-row KL(softmax(ref) || softmax(quant)) — distribution drift."""
    p = softmax(np.asarray(reference_logits, dtype=np.float64))
    q = softmax(np.asarray(quantized_logits, dtype=np.float64))
    if p.shape != q.shape:
        raise QuantizationError(f"shape mismatch {p.shape} vs {q.shape}")
    eps = 1e-12
    kl = np.sum(p * (np.log(p + eps) - np.log(q + eps)), axis=-1)
    return float(np.mean(kl))


def top1_agreement(reference_logits: np.ndarray,
                   quantized_logits: np.ndarray) -> float:
    """Fraction of rows where both models pick the same argmax token.

    This is the paper's accuracy quantity in substitute form: how faithful
    the quantized model is to the full-precision one (FP16 scores ~1.0 by
    construction; degradation below 1.0 mirrors Table 6's "Degrad." column).
    """
    ref = np.asarray(reference_logits)
    qnt = np.asarray(quantized_logits)
    if ref.shape != qnt.shape:
        raise QuantizationError(f"shape mismatch {ref.shape} vs {qnt.shape}")
    if ref.ndim == 1:
        ref, qnt = ref[None, :], qnt[None, :]
    return float(np.mean(np.argmax(ref, -1) == np.argmax(qnt, -1)))


def teacher_cross_entropy(reference_logits: np.ndarray,
                          quantized_logits: np.ndarray) -> float:
    """Mean cross-entropy of the quantized model against the teacher's
    argmax tokens — the perplexity-style counterpart of
    :func:`top1_agreement` (lower is better).

    Where top-1 agreement only sees rank flips, this metric also registers
    *confidence* erosion: a quantized model that still ranks the teacher
    token first but with a shrunken margin scores measurably worse.
    """
    ref = np.asarray(reference_logits, dtype=np.float64)
    qnt = np.asarray(quantized_logits, dtype=np.float64)
    if ref.shape != qnt.shape:
        raise QuantizationError(f"shape mismatch {ref.shape} vs {qnt.shape}")
    if ref.ndim == 1:
        ref, qnt = ref[None, :], qnt[None, :]
    targets = np.argmax(ref, axis=-1)
    log_probs = qnt - np.log(
        np.sum(np.exp(qnt - qnt.max(axis=-1, keepdims=True)), axis=-1,
               keepdims=True)
    ) - qnt.max(axis=-1, keepdims=True)
    nll = -log_probs[np.arange(len(targets)), targets]
    return float(np.mean(nll))


def pseudo_perplexity(reference_logits: np.ndarray,
                      quantized_logits: np.ndarray) -> float:
    """``exp(teacher_cross_entropy)`` — a perplexity-scaled fidelity score."""
    return float(np.exp(teacher_cross_entropy(reference_logits,
                                              quantized_logits)))


def topk_agreement(reference_logits: np.ndarray,
                   quantized_logits: np.ndarray, k: int = 5) -> float:
    """Fraction of rows where the reference argmax is in the quantized top-k."""
    ref = np.asarray(reference_logits)
    qnt = np.asarray(quantized_logits)
    if ref.shape != qnt.shape:
        raise QuantizationError(f"shape mismatch {ref.shape} vs {qnt.shape}")
    if ref.ndim == 1:
        ref, qnt = ref[None, :], qnt[None, :]
    if k <= 0:
        raise QuantizationError(f"k must be positive, got {k}")
    ref_top = np.argmax(ref, -1)
    qnt_topk = np.argpartition(qnt, -k, axis=-1)[:, -k:]
    hits = (qnt_topk == ref_top[:, None]).any(axis=-1)
    return float(np.mean(hits))
