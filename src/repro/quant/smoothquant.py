"""SmoothQuant (Xiao et al., ICML'23) — per-tensor W8A8 with offline
activation smoothing.

Outlier channels are divided by a per-channel factor
``s_j = max|X_j|^alpha / max|W_j|^(1-alpha)`` and the weight columns are
multiplied by the same factor, preserving the product while shifting
quantization difficulty from activations to weights.  The result quantizes
per-tensor (NPU-friendly), but with strong outliers the migrated weight
columns still hurt — the paper measures 3.9%/8.4% HellaSwag drops for
LlaMA-2-7B/Qwen1.5-1.8B, and Table 6 shows it consistently below
LLM.int8() and llm.npu.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import CalibrationError
from repro.quant.base import (
    QuantLinear,
    QuantizedTensor,
    quantize_int8,
    quantize_weight_per_tensor,
)


def smoothing_factors(channel_absmax: np.ndarray, weight: np.ndarray,
                      alpha: float = 0.5) -> np.ndarray:
    """Per-input-channel smoothing factors.

    ``channel_absmax`` comes from calibration (max |x_j| over the corpus);
    the migration strength ``alpha`` balances activation vs weight
    difficulty (0.5 is the paper default).
    """
    if not 0.0 <= alpha <= 1.0:
        raise CalibrationError(f"alpha must be in [0, 1], got {alpha}")
    act = np.maximum(np.asarray(channel_absmax, dtype=np.float64), 1e-8)
    wmax = np.maximum(np.abs(weight).max(axis=0), 1e-8)
    s = act ** alpha / wmax ** (1.0 - alpha)
    # Never *amplify* activations: factors below 1 would move difficulty the
    # wrong way for already-quiet channels.
    return np.maximum(s, 1.0).astype(np.float32)


class SmoothQuantLinear(QuantLinear):
    """Per-tensor W8A8 linear over smoothed activations."""

    scheme = "smoothquant"

    def __init__(self, weight: np.ndarray, channel_absmax: np.ndarray,
                 act_scale_hint: float, alpha: float = 0.5,
                 bias: Optional[np.ndarray] = None, name: str = "sq"):
        super().__init__(weight.shape[1], weight.shape[0], bias, name)
        self.smooth = smoothing_factors(channel_absmax, weight, alpha)
        smoothed_weight = weight * self.smooth[None, :]
        self.qweight: QuantizedTensor = quantize_weight_per_tensor(
            smoothed_weight
        )
        # The static activation scale after smoothing: the calibrated
        # per-channel maxima divided by the factors, reduced per-tensor.
        smoothed_absmax = float(
            np.max(np.asarray(channel_absmax) / self.smooth)
        )
        self.act_scale = max(smoothed_absmax, 1e-8) / 127.0
        del act_scale_hint  # superseded by the smoothed absmax

    def _forward(self, x: np.ndarray) -> np.ndarray:
        x_smooth = x / self.smooth[None, :]
        xq = quantize_int8(x_smooth, self.act_scale)
        acc = xq.astype(np.int32) @ self.qweight.data.astype(np.int32).T
        y = acc.astype(np.float32) * (self.act_scale * float(self.qweight.scale))
        self.stats.record_call(
            rows=x.shape[0],
            int8_macs=x.shape[0] * self.in_features * self.out_features,
        )
        return y

    def weight_nbytes(self) -> int:
        # int8 weights + per-channel smoothing factors folded at load time.
        return self.qweight.nbytes() + self.smooth.nbytes
