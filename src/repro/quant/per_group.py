"""Per-group W8A8 quantization in the style of llama.cpp's K-Quant (Fig. 3b).

Weights carry one scale per ``group_size`` input columns; activations are
quantized dynamically per row-group at runtime (a luxury CPU kernels have
but pre-built NPU graphs do not).  Accuracy is much better than naive
per-tensor because an outlier only corrupts its own group — but on a mobile
NPU this layout must be decomposed into ``n_groups`` sub-MatMuls reduced
with float adds, the 8.1–10.7× overhead of the paper's Fig. 4.  The
simulator charges that penalty via :mod:`repro.hw.latency`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import QuantizationError
from repro.quant.base import (
    INT8_MAX,
    QuantLinear,
    QuantizedTensor,
    quantize_int8,
    quantize_weight_per_group,
)


class PerGroupLinear(QuantLinear):
    """Per-group linear with dynamic per-group activation scales.

    ``weight_bits`` selects the weight storage width: 8 (W8A8) or 4
    (W4A8, the layout llama.cpp's shipped K-Quant checkpoints use).
    Activations are always dynamic int8.
    """

    scheme = "per-group"

    def __init__(self, weight: np.ndarray, group_size: int = 32,
                 bias: Optional[np.ndarray] = None, name: str = "pg",
                 weight_bits: int = 8):
        if weight.shape[1] % group_size != 0:
            raise QuantizationError(
                f"{name}: group_size {group_size} must divide "
                f"in_features {weight.shape[1]}"
            )
        super().__init__(weight.shape[1], weight.shape[0], bias, name)
        self.group_size = group_size
        self.weight_bits = weight_bits
        self.qweight: QuantizedTensor = quantize_weight_per_group(
            weight, group_size, bits=weight_bits
        )

    def _forward(self, x: np.ndarray) -> np.ndarray:
        rows, k = x.shape
        g = self.group_size
        n_groups = k // g

        # Dynamic activation quantization: one scale per (row, group).
        xg = x.reshape(rows, n_groups, g)
        absmax = np.abs(xg).max(axis=2)
        a_scale = np.where(absmax == 0, 1.0, absmax / INT8_MAX)
        xq = quantize_int8(xg, a_scale[:, :, None])

        # Per-group sub-MatMuls with int32 accumulation, then a float
        # reduction across groups — the structure that hurts NPUs.
        wq = self.qweight.data.reshape(self.out_features, n_groups, g)
        # (rows, groups, out) partial products
        partial = np.einsum(
            "rgi,ogi->rgo", xq.astype(np.int32), wq.astype(np.int32)
        ).astype(np.float32)
        partial *= a_scale[:, :, None] * self.qweight.scale.T[None, :, :]
        y = partial.sum(axis=1)

        self.stats.record_call(
            rows=rows,
            int8_macs=rows * k * self.out_features,
            # the float group reduction
            float_macs=rows * n_groups * self.out_features,
        )
        return y

    def weight_nbytes(self) -> int:
        return self.qweight.nbytes()
