"""llm.npu's shadow outlier execution (§3.3) — Eq. 1 of the paper.

The MatMul ``(x / s) ⊙ w`` is split exactly as the paper derives::

    (x/s) ⊙ w =  clip(x/s, -127, 127) ⊙ w        # INT8, runs on the NPU
              +  extract(residual beyond s) ⊙ w   # sparse float, CPU/GPU

The NPU half is an ordinary per-tensor W8A8 MatMul with a *static* scale
``s`` calibrated offline as a high percentile of |x| — not the absmax — so
ordinary values keep full int8 precision and only the rare outliers are
clamped.  The CPU half extracts the clamped outlier channels into a compact
tensor and multiplies them against the float weight columns, restoring the
clipped mass.  Because outliers occupy 0.1–0.3% of channels (Fig. 10), the
shadow MatMul is tiny and (in the full system) overlaps with NPU execution.

Two practicality mechanisms from the paper are modelled here:

* **outlier pruning** — ``shadow_enabled=False`` drops the CPU half for
  layers whose outlier importance is low (the top-85% least important by
  default), removing their CPU↔NPU synchronization entirely;
* **hot-channel weight cache** — only hot channels' float weight columns
  stay resident in CPU memory; touches outside that set are counted as
  disk retrievals (latency charged by the engine, §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

import numpy as np

from repro.quant.base import (
    QuantLinear,
    QuantizedTensor,
    quantize_int8,
    quantize_weight_per_channel,
    quantize_weight_per_tensor,
)


@dataclass
class ShadowStats:
    """Shadow-path counters beyond the base QuantLinearStats."""

    shadow_calls: int = 0
    skipped_calls: int = 0
    outlier_channels: list = field(default_factory=list)
    hot_hits: int = 0
    cold_misses: int = 0


class ShadowOutlierLinear(QuantLinear):
    """Per-tensor W8A8 linear with shadow outlier execution.

    Parameters
    ----------
    weight:
        Float weight, shape ``(out, in)``.
    act_scale:
        The calibrated outlier threshold ``s`` of Eq. 1 (percentile-based,
        from :class:`repro.quant.observers.SiteStats.scale`).
    shadow_enabled:
        When ``False`` the CPU compensation is pruned (§3.3 importance
        pruning) and outliers are simply clamped.
    hot_channels:
        Channel indices whose float weight columns are cached in CPU
        memory. ``None`` means "cache everything" (no miss accounting).
    per_channel_weights:
        Quantize weights with one scale per output row (default).  This is
        NPU-compatible — output-row scales fold into the single float
        rescale after the int32 accumulation, unlike input-dimension
        grouping — and is what the paper's "enhanced per-tensor" W8A8
        pipeline exports.
    equalize:
        Per-input-channel equalization factors ``e`` (all <= 1): the
        activation is divided by ``e`` (amplifying quiet channels toward
        the outlier threshold) while the weight columns are multiplied by
        ``e``.  Exactly like SmoothQuant's migration this folds into the
        preceding norm's gains offline, so the NPU graph is unchanged —
        it is part of the paper's "enhanced per-tensor quantization
        algorithm".  ``None`` disables equalization.
    """

    scheme = "llm.npu-shadow"

    def __init__(self, weight: np.ndarray, act_scale: float,
                 shadow_enabled: bool = True,
                 hot_channels: Optional[np.ndarray] = None,
                 bias: Optional[np.ndarray] = None, name: str = "shadow",
                 per_channel_weights: bool = True,
                 equalize: Optional[np.ndarray] = None):
        super().__init__(weight.shape[1], weight.shape[0], bias, name)
        self.per_channel_weights = per_channel_weights
        if equalize is None:
            self.equalize = None
            effective_weight = weight
        else:
            equalize = np.asarray(equalize, dtype=np.float32)
            if equalize.shape != (weight.shape[1],):
                raise ValueError(
                    f"{name}: equalize shape {equalize.shape} must be "
                    f"({weight.shape[1]},)"
                )
            self.equalize = np.minimum(np.maximum(equalize, 1e-6), 1.0)
            effective_weight = weight * self.equalize[None, :]
        self.qweight: QuantizedTensor = (
            quantize_weight_per_channel(effective_weight)
            if per_channel_weights
            else quantize_weight_per_tensor(effective_weight)
        )
        self.act_scale = float(act_scale)
        self.shadow_enabled = bool(shadow_enabled)
        # Float weights in the *equalized* basis, matching the activations
        # the shadow path sees.
        self.float_weight = effective_weight.astype(np.float32)
        self.hot_channel_set: Optional[Set[int]] = (
            None if hot_channels is None else set(int(c) for c in hot_channels)
        )
        # Sorted-array twin of hot_channel_set for vectorized membership
        # tests in the per-call accounting path.
        self._hot_channel_array: Optional[np.ndarray] = (
            None if self.hot_channel_set is None
            else np.fromiter(sorted(self.hot_channel_set), dtype=np.int64,
                             count=len(self.hot_channel_set))
        )
        self.shadow_stats = ShadowStats()

    # -- the two halves of Eq. 1 -------------------------------------------

    def npu_half(self, x: np.ndarray) -> np.ndarray:
        """The NPU-resident per-tensor W8A8 MatMul (values within ±127·s)."""
        xq = quantize_int8(x, self.act_scale)
        acc = xq.astype(np.int32) @ self.qweight.data.astype(np.int32).T
        self.stats.record_call(
            rows=x.shape[0],
            int8_macs=x.shape[0] * self.in_features * self.out_features,
        )
        if self.per_channel_weights:
            rescale = self.act_scale * self.qweight.scale[None, :]
        else:
            rescale = self.act_scale * float(self.qweight.scale)
        return acc.astype(np.float32) * rescale

    def outlier_columns(self, x: np.ndarray) -> np.ndarray:
        """Channels containing at least one clamped value in this call."""
        limit = 127.0 * self.act_scale
        return np.flatnonzero(np.abs(x).max(axis=0) > limit)

    def shadow_half(self, x: np.ndarray,
                    cols: np.ndarray) -> Optional[np.ndarray]:
        """The CPU-resident compensation MatMul over outlier channels.

        Returns ``None`` when there is nothing to compensate.  The residual
        is ``x - dequant(clip(round(x/s)))`` restricted to outlier columns —
        the ``extract(⌊(x/s)/128⌋·128)`` term of Eq. 1 computed exactly.
        """
        if cols.size == 0:
            return None
        x_cols = x[:, cols]
        reconstructed = quantize_int8(x_cols, self.act_scale).astype(
            np.float32
        ) * self.act_scale
        residual = x_cols - reconstructed
        y = residual @ self.float_weight[:, cols].T
        self.stats.float_macs += x.shape[0] * int(cols.size) * self.out_features
        return y

    def _forward(self, x: np.ndarray) -> np.ndarray:
        if self.equalize is not None:
            x = x / self.equalize[None, :]
        y = self.npu_half(x)
        cols = self.outlier_columns(x)
        self.shadow_stats.outlier_channels.append(int(cols.size))
        if not self.shadow_enabled:
            self.shadow_stats.skipped_calls += 1
            return y
        self.shadow_stats.shadow_calls += 1
        self._account_hot_channels(cols)
        shadow = self.shadow_half(x, cols)
        if shadow is not None:
            y = y + shadow
        return y

    def _account_hot_channels(self, cols: np.ndarray) -> None:
        if self.hot_channel_set is None:
            self.shadow_stats.hot_hits += int(cols.size)
            return
        if cols.size == 0:
            return
        hits = int(np.isin(cols, self._hot_channel_array).sum())
        self.shadow_stats.hot_hits += hits
        self.shadow_stats.cold_misses += int(cols.size) - hits

    # -- memory accounting ---------------------------------------------------

    def weight_nbytes(self) -> int:
        """Quantized weights + resident float outlier columns.

        With a hot-channel cache only those columns' float weights count
        (the 34.3% shadow-memory saving of §3.3); without one, the full
        float copy is resident (the naive 2× footprint the paper fixes).
        """
        base = self.qweight.nbytes()
        if not self.shadow_enabled:
            return base
        if self.hot_channel_set is None:
            return base + self.float_weight.nbytes
        resident_cols = len(self.hot_channel_set)
        return base + resident_cols * self.out_features * 4

    def mean_outlier_channels(self) -> float:
        """Average outlier channels per call (Fig. 10 runtime counterpart)."""
        if not self.shadow_stats.outlier_channels:
            return 0.0
        return float(np.mean(self.shadow_stats.outlier_channels))
