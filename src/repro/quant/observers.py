"""Calibration observers: the offline profiling stage of llm.npu (§3.3).

The paper determines each linear site's quantization scale and outlier
threshold "by profiling a large corpora at offline" time.  An
:class:`ActivationObserver` hooks into :meth:`DecoderModel.prefill` and
records per-call, per-channel absolute maxima; :meth:`result` then derives,
per (layer, site):

* the **outlier threshold** — a percentile of the per-channel absmax
  distribution.  Activation outliers in LLMs are a *channel* phenomenon
  (Figs. 10–11): a few channels carry values far beyond everyone else, so
  the per-tensor scale must cover the well-behaved channels and leave the
  outlier channels to the shadow path;
* per-channel outlier hit counts (the data behind Fig. 11 and the
  hot-channel cache);
* the largest-outlier/threshold ratio — outlier *importance* (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import CalibrationError

#: Key identifying one linear site: (layer_index, site_name).
SiteKey = Tuple[int, str]


@dataclass
class SiteStats:
    """Derived activation statistics for one linear site."""

    width: int
    absmax: float
    threshold: float
    channel_absmax: np.ndarray
    channel_outlier_hits: np.ndarray
    outlier_channels_per_call: List[int]
    calls: int
    rows: int

    @property
    def scale(self) -> float:
        """Per-tensor activation scale: the outlier threshold over 127.

        Values beyond ``threshold`` are *outliers* in the paper's sense and
        are clamped on the NPU / compensated on the CPU (Eq. 1).
        """
        return max(self.threshold, 1e-8) / 127.0

    @property
    def naive_scale(self) -> float:
        """Per-tensor scale from the raw absmax (no outlier separation).

        This is what naive per-tensor quantization must use: the scale is
        stretched by the largest outlier and ordinary values lose precision.
        """
        return max(self.absmax, 1e-8) / 127.0

    @property
    def importance(self) -> float:
        """Outlier importance: largest outlier over the outlier threshold.

        §3.3 / Fig. 12 — a larger ratio means a more dispersed activation
        distribution and a larger error if outliers are clamped without the
        shadow compensation.
        """
        return self.absmax / max(self.threshold, 1e-8)

    def mean_outlier_channels(self) -> float:
        """Average count of outlier channels per inference (Fig. 10)."""
        if not self.outlier_channels_per_call:
            return 0.0
        return float(np.mean(self.outlier_channels_per_call))

    def outlier_channel_fraction(self) -> float:
        """Mean per-call outlier channels as a fraction of the width."""
        return self.mean_outlier_channels() / self.width

    def hot_channels(self, coverage: float = 0.8) -> np.ndarray:
        """Smallest channel set covering ``coverage`` of outlier hits (Fig. 11).

        Returns channel indices sorted by descending hit count.
        """
        if not 0.0 < coverage <= 1.0:
            raise CalibrationError(
                f"coverage must be in (0, 1], got {coverage}"
            )
        hits = self.channel_outlier_hits
        total = hits.sum()
        if total == 0:
            return np.array([], dtype=np.int64)
        order = np.argsort(hits)[::-1]
        cum = np.cumsum(hits[order])
        count = int(np.searchsorted(cum, coverage * total)) + 1
        return order[:count]

    def hot_channel_fraction(self, coverage: float = 0.8) -> float:
        """Fraction of channels needed to cover ``coverage`` of outliers."""
        return self.hot_channels(coverage).size / self.width


@dataclass
class _RawSite:
    """Accumulating (pre-finalize) record for one site."""

    width: int
    call_channel_max: List[np.ndarray] = field(default_factory=list)
    rows: int = 0


class ActivationObserver:
    """Records activation statistics for every linear site during prefill.

    Use as a hook::

        observer = ActivationObserver(channel_percentile=99.5)
        model.prefill(ids, hook=observer)
        calib = observer.result()

    ``channel_percentile`` sets the outlier threshold: the percentile of
    each site's per-channel absmax distribution.  99.5 means "the ~0.5%
    loudest channels are outlier channels" — tune downward for narrow
    models where a single channel is a large fraction of the width.
    """

    def __init__(self, channel_percentile: float = 99.5):
        if not 0.0 < channel_percentile <= 100.0:
            raise CalibrationError(
                f"channel_percentile must be in (0, 100], "
                f"got {channel_percentile}"
            )
        self.channel_percentile = channel_percentile
        self._sites: Dict[SiteKey, _RawSite] = {}

    def __call__(self, layer: int, site: str, x: np.ndarray) -> None:
        key = (layer, site)
        raw = self._sites.get(key)
        if raw is None:
            raw = _RawSite(width=x.shape[-1])
            self._sites[key] = raw
        if x.size == 0:
            return
        raw.call_channel_max.append(np.abs(x).max(axis=0))
        raw.rows += x.shape[0]

    def result(self) -> "CalibrationResult":
        if not self._sites:
            raise CalibrationError(
                "observer saw no activations; run prefill with hook=observer"
            )
        sites: Dict[SiteKey, SiteStats] = {}
        for key, raw in self._sites.items():
            if not raw.call_channel_max:
                raise CalibrationError(f"site {key} saw only empty inputs")
            per_call = np.stack(raw.call_channel_max)  # (calls, width)
            channel_absmax = per_call.max(axis=0)
            absmax = float(channel_absmax.max())
            threshold = float(
                np.percentile(channel_absmax, self.channel_percentile)
            )
            outlier_mask = per_call > max(threshold, 1e-12)
            sites[key] = SiteStats(
                width=raw.width,
                absmax=absmax,
                threshold=threshold,
                channel_absmax=channel_absmax.astype(np.float32),
                channel_outlier_hits=outlier_mask.sum(axis=0).astype(np.int64),
                outlier_channels_per_call=outlier_mask.sum(
                    axis=1
                ).astype(np.int64).tolist(),
                calls=per_call.shape[0],
                rows=raw.rows,
            )
        return CalibrationResult(sites, self.channel_percentile)


@dataclass
class CalibrationResult:
    """Frozen outcome of a calibration pass."""

    sites: Dict[SiteKey, SiteStats]
    channel_percentile: float

    def __getitem__(self, key: SiteKey) -> SiteStats:
        try:
            return self.sites[key]
        except KeyError:
            raise CalibrationError(
                f"no calibration data for site {key}"
            ) from None

    def __contains__(self, key: SiteKey) -> bool:
        return key in self.sites

    def keys(self) -> Iterable[SiteKey]:
        return self.sites.keys()

    def layer_importance(self) -> Dict[int, float]:
        """Per-layer outlier importance: max over the layer's sites (Fig. 12)."""
        out: Dict[int, float] = {}
        for (layer, _site), stats in self.sites.items():
            out[layer] = max(out.get(layer, 0.0), stats.importance)
        return out

    def site_importance(self) -> Dict[SiteKey, float]:
        """Per-site outlier importance."""
        return {key: stats.importance for key, stats in self.sites.items()}


def calibrate(model, corpus: Iterable[np.ndarray],
              channel_percentile: float = 99.5) -> CalibrationResult:
    """Run the model over calibration sequences and collect statistics.

    ``corpus`` yields 1-D token-id arrays; each is prefilled through a fresh
    KV cache, mirroring the paper's offline corpus profiling.
    """
    observer = ActivationObserver(channel_percentile)
    count = 0
    for ids in corpus:
        model.prefill(np.asarray(ids), hook=observer)
        count += 1
    if count == 0:
        raise CalibrationError("calibration corpus is empty")
    return observer.result()
