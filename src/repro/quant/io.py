"""Quantized checkpoint serialization.

The paper's artifact flow quantizes on a server and ships the quantized
model to the device (§A.5: the accuracy stage "generate[s] the quantized
model necessary for on-device inference").  This module mirrors that:
:func:`save_quantized` writes every quantized linear's codes, scales and
scheme metadata to ``.npz``; :func:`load_quantized` re-attaches them to a
freshly built float model without re-running calibration.

Supported schemes: ``llm.npu`` (shadow), ``per-tensor`` and ``per-group``
— the ones whose operators are fully determined by their stored tensors.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.model.transformer import DecoderModel
from repro.quant.base import QuantizedTensor
from repro.quant.per_group import PerGroupLinear
from repro.quant.per_tensor import PerTensorLinear
from repro.quant.shadow import ShadowOutlierLinear

#: Checkpoint format version.
QFORMAT_VERSION = 1

_SAVABLE = (ShadowOutlierLinear, PerTensorLinear, PerGroupLinear)


def _site_prefix(layer: int, site: str) -> str:
    return f"q.{layer}.{site}"


def save_quantized(model: DecoderModel, path: str) -> None:
    """Write the quantized linears of ``model`` to ``path`` (``.npz``)."""
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, dict] = {}
    for layer, site, op in model.iter_linears():
        if not isinstance(op, _SAVABLE):
            raise QuantizationError(
                f"layer {layer} site {site!r}: scheme "
                f"{type(op).__name__} is not serializable "
                "(supported: llm.npu / per-tensor / per-group)"
            )
        prefix = _site_prefix(layer, site)
        arrays[f"{prefix}.codes"] = op.qweight.data
        arrays[f"{prefix}.scale"] = np.asarray(op.qweight.scale)
        if op.bias is not None:
            arrays[f"{prefix}.bias"] = op.bias
        entry: dict = {"scheme": op.scheme}
        if isinstance(op, ShadowOutlierLinear):
            entry.update(
                act_scale=op.act_scale,
                shadow_enabled=op.shadow_enabled,
                per_channel_weights=op.per_channel_weights,
            )
            arrays[f"{prefix}.float_weight"] = op.float_weight
            if op.equalize is not None:
                arrays[f"{prefix}.equalize"] = op.equalize
            if op.hot_channel_set is not None:
                arrays[f"{prefix}.hot"] = np.array(
                    sorted(op.hot_channel_set), dtype=np.int64
                )
        elif isinstance(op, PerTensorLinear):
            entry.update(act_scale=op.act_scale)
        elif isinstance(op, PerGroupLinear):
            entry.update(group_size=op.group_size,
                         weight_bits=op.weight_bits)
        meta[prefix] = entry

    header = {"format_version": QFORMAT_VERSION, "sites": meta}
    arrays["__qmeta__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def _rebuild(prefix: str, entry: dict, arrays) -> object:
    codes = arrays[f"{prefix}.codes"]
    scale = arrays[f"{prefix}.scale"]
    bias_key = f"{prefix}.bias"
    bias = arrays[bias_key] if bias_key in arrays else None
    scheme = entry["scheme"]

    if scheme == "llm.npu-shadow":
        float_weight = arrays[f"{prefix}.float_weight"]
        eq_key = f"{prefix}.equalize"
        hot_key = f"{prefix}.hot"
        op = ShadowOutlierLinear.__new__(ShadowOutlierLinear)
        # Rebuild through __init__ on the float weights, then overwrite
        # the quantized payload with the stored codes for bit-exactness.
        op.__init__(
            float_weight if eq_key not in arrays
            else float_weight / arrays[eq_key][None, :],
            act_scale=entry["act_scale"],
            shadow_enabled=entry["shadow_enabled"],
            hot_channels=arrays[hot_key] if hot_key in arrays else None,
            bias=bias,
            name=prefix,
            per_channel_weights=entry["per_channel_weights"],
            equalize=arrays[eq_key] if eq_key in arrays else None,
        )
        op.qweight = QuantizedTensor(codes, scale)
        op.float_weight = float_weight.astype(np.float32)
        return op
    if scheme == "per-tensor":
        op = PerTensorLinear(np.zeros_like(codes, dtype=np.float32),
                             entry["act_scale"], bias, name=prefix)
        op.qweight = QuantizedTensor(codes, scale)
        return op
    if scheme == "per-group":
        op = PerGroupLinear(np.zeros_like(codes, dtype=np.float32),
                            entry["group_size"], bias, name=prefix,
                            weight_bits=entry["weight_bits"])
        op.qweight = QuantizedTensor(codes, scale,
                                     group_size=entry["group_size"],
                                     bits=entry["weight_bits"])
        return op
    raise QuantizationError(f"unknown serialized scheme {scheme!r}")


def load_quantized(model: DecoderModel, path: str) -> List[Tuple[int, str]]:
    """Attach the quantized linears stored at ``path`` to ``model``.

    ``model`` must be a float model with matching architecture (its float
    weights are discarded in favour of the checkpoint).  Returns the list
    of (layer, site) pairs replaced.
    """
    with np.load(path) as arrays:
        if "__qmeta__" not in arrays:
            raise QuantizationError(
                f"{path}: not a quantized checkpoint"
            )
        header = json.loads(bytes(arrays["__qmeta__"]).decode("utf-8"))
        if header.get("format_version") != QFORMAT_VERSION:
            raise QuantizationError(
                f"{path}: unsupported version "
                f"{header.get('format_version')!r}"
            )
        replaced = []
        expected = {
            _site_prefix(layer, site): (layer, site)
            for layer, site, _op in model.iter_linears()
        }
        sites = header["sites"]
        if set(sites) != set(expected):
            raise QuantizationError(
                f"{path}: checkpoint sites do not match the model "
                f"architecture ({len(sites)} vs {len(expected)})"
            )
        for prefix, entry in sites.items():
            layer, site = expected[prefix]
            op = _rebuild(prefix, entry, arrays)
            model.replace_linear(layer, site, op)
            replaced.append((layer, site))
    return replaced
