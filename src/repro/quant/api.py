"""Model-level quantization entry points.

:func:`quantize_model` converts every transformer-block linear of a
:class:`~repro.model.transformer.DecoderModel` to the requested scheme,
using a calibration pass over a token corpus (the paper's offline
preparation stage).  Attention, normalization, embeddings and the LM head
stay float — exactly the operator split of Fig. 5 / Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import QuantizationError
from repro.model.layers import Linear
from repro.model.transformer import DecoderModel
from repro.quant.awq import AwqLinear
from repro.quant.base import QuantLinear
from repro.quant.importance import PruningPlan, make_pruning_plan
from repro.quant.llm_int8 import LlmInt8Linear
from repro.quant.observers import CalibrationResult, calibrate
from repro.quant.per_group import PerGroupLinear
from repro.quant.per_tensor import PerTensorLinear
from repro.quant.shadow import ShadowOutlierLinear
from repro.quant.smoothquant import SmoothQuantLinear

#: Scheme names accepted by :func:`quantize_model`.
SCHEMES = (
    "fp16",
    "per-tensor",
    "per-group",
    "smoothquant",
    "llm.int8",
    "awq",
    "llm.npu",
)


class Fp16Linear(QuantLinear):
    """FP16 reference path: weights and activations round-tripped to half.

    This is the paper's "FP16" baseline — not quantization, but also not
    exact float32, so Table 6-style comparisons measure against what a real
    device computes.
    """

    scheme = "fp16"

    def __init__(self, weight: np.ndarray, bias=None, name: str = "fp16"):
        super().__init__(weight.shape[1], weight.shape[0], bias, name)
        self.weight = weight.astype(np.float16).astype(np.float32)

    def _forward(self, x: np.ndarray) -> np.ndarray:
        xh = x.astype(np.float16).astype(np.float32)
        self.stats.record_call(
            rows=x.shape[0],
            float_macs=x.shape[0] * self.in_features * self.out_features,
        )
        return xh @ self.weight.T

    def weight_nbytes(self) -> int:
        return self.weight.size * 2


@dataclass
class QuantizationReport:
    """What :func:`quantize_model` did to a model."""

    scheme: str
    n_sites: int
    weight_bytes: int
    calibration: Optional[CalibrationResult] = None
    pruning_plan: Optional[PruningPlan] = None
    options: Dict = field(default_factory=dict)
    sites: List[QuantLinear] = field(default_factory=list)

    def shadow_sites(self) -> List[ShadowOutlierLinear]:
        """The shadow-scheme sites, for runtime outlier inspection."""
        return [s for s in self.sites if isinstance(s, ShadowOutlierLinear)]


def _require_float_linear(op, layer: int, site: str) -> Linear:
    if not isinstance(op, Linear):
        raise QuantizationError(
            f"layer {layer} site {site!r} is already quantized "
            f"({type(op).__name__}); quantize a fresh model"
        )
    return op


def auto_channel_percentile(width: int,
                            outlier_channels_target: float = 0.005) -> float:
    """Outlier-threshold percentile leaving ~max(2, target·width) channels out."""
    excluded = max(2.0, outlier_channels_target * width)
    return max(50.0, 100.0 * (1.0 - excluded / width))


def _group_size_for(width: int, requested: int) -> int:
    """Largest group size <= requested that divides ``width``."""
    g = min(requested, width)
    while width % g != 0:
        g -= 1
    return max(g, 1)


def quantize_model(
    model: DecoderModel,
    scheme: str,
    calibration: Optional[CalibrationResult] = None,
    calib_corpus: Optional[Iterable[np.ndarray]] = None,
    group_size: int = 32,
    weight_bits: int = 8,
    alpha: float = 0.5,
    pruning_rate: float = 0.85,
    hot_coverage: Optional[float] = 0.8,
    outlier_threshold_sigma: float = 1.0,
    channel_percentile: Optional[float] = None,
    equalize_alpha: Optional[float] = 0.75,
) -> QuantizationReport:
    """Quantize ``model`` in place with the named ``scheme``.

    Either pass an existing ``calibration`` result, or a ``calib_corpus``
    of token-id sequences to profile (required for every scheme except
    ``"fp16"``).

    llm.npu-specific options: ``pruning_rate`` is the fraction of
    least-important layers whose shadow execution is pruned (paper default
    0.85); ``hot_coverage`` sets the hot-channel cache to cover that
    fraction of outlier hits (``None`` disables the cache model and keeps
    all float columns resident).

    ``channel_percentile`` sets the calibration outlier threshold; the
    default (``None``) auto-tunes it so roughly ``max(2, 0.5% of width)``
    channels sit above the threshold, matching the paper's 0.1–0.3%
    outlier-channel range on full-width models while staying meaningful on
    narrow test models.  ``equalize_alpha`` controls the static
    channel-equalization strength of the enhanced per-tensor quantizer
    (``None`` disables it).
    """
    if scheme not in SCHEMES:
        raise QuantizationError(
            f"unknown scheme {scheme!r}; available: {SCHEMES}"
        )

    if scheme != "fp16" and calibration is None:
        if calib_corpus is None:
            raise QuantizationError(
                f"scheme {scheme!r} needs calibration data"
            )
        if channel_percentile is None:
            channel_percentile = auto_channel_percentile(
                model.config.hidden_size
            )
        calibration = calibrate(model, calib_corpus,
                                channel_percentile=channel_percentile)

    plan = None
    if scheme == "llm.npu":
        plan = make_pruning_plan(calibration, pruning_rate)

    new_sites: List[QuantLinear] = []
    replacements = []
    for layer, site, op in model.iter_linears():
        lin = _require_float_linear(op, layer, site)
        w, b = lin.weight, lin.bias
        if scheme == "fp16":
            qop: QuantLinear = Fp16Linear(w, b, name=lin.name)
        else:
            stats = calibration[(layer, site)]
            if scheme == "per-tensor":
                qop = PerTensorLinear(w, stats.naive_scale, b, name=lin.name)
            elif scheme == "per-group":
                g = _group_size_for(lin.in_features, group_size)
                qop = PerGroupLinear(w, g, b, name=lin.name,
                                     weight_bits=weight_bits)
            elif scheme == "smoothquant":
                qop = SmoothQuantLinear(
                    w, stats.channel_absmax, stats.naive_scale,
                    alpha=alpha, bias=b, name=lin.name,
                )
            elif scheme == "llm.int8":
                threshold = outlier_threshold_sigma * 127.0 * stats.scale
                qop = LlmInt8Linear(w, threshold, b, name=lin.name)
            elif scheme == "awq":
                g = _group_size_for(lin.in_features, group_size)
                qop = AwqLinear(w, stats.channel_absmax, g,
                                alpha=alpha, bias=b, name=lin.name)
            else:  # llm.npu
                hot = (None if hot_coverage is None
                       else stats.hot_channels(hot_coverage))
                equalize = None
                if equalize_alpha is not None:
                    ratio = stats.channel_absmax / max(stats.threshold, 1e-8)
                    equalize = np.minimum(ratio, 1.0) ** equalize_alpha
                qop = ShadowOutlierLinear(
                    w, stats.scale,
                    shadow_enabled=not plan.is_pruned(layer),
                    hot_channels=hot, bias=b, name=lin.name,
                    equalize=equalize,
                )
        replacements.append((layer, site, qop))
        new_sites.append(qop)

    for layer, site, qop in replacements:
        model.replace_linear(layer, site, qop)

    return QuantizationReport(
        scheme=scheme,
        n_sites=len(new_sites),
        weight_bytes=sum(s.weight_nbytes() for s in new_sites),
        calibration=calibration,
        pruning_plan=plan,
        options={
            "group_size": group_size,
            "weight_bits": weight_bits,
            "alpha": alpha,
            "pruning_rate": pruning_rate,
            "hot_coverage": hot_coverage,
            "equalize_alpha": equalize_alpha,
        },
        sites=new_sites,
    )
