"""Single source of truth for the ``repro.*/v1`` artifact schemas.

Every schema-versioned JSON document the repo emits declares itself via
a ``"schema"`` key whose value lives here and **only** here.  Producer
modules (``obs/profile.py``, ``obs/artifact.py``, ``obs/monitor.py``,
``obs/sketch.py``, ``obs/steplog.py``, ``eval/fleet.py``) import their
constant from this table, and ``scripts/check_trace_schema.py`` loads
this file *by path* (``importlib.util.spec_from_file_location``) so the
stdlib-only checker validates against the very same strings — a new
schema cannot drift between writer and checker.

This module must stay dependency-free (pure constants): the schema
checker executes it without numpy or the ``repro`` package on its path.
"""

#: Per-operator/per-processor attribution reports (``llmnpu profile``).
PROFILE_SCHEMA = "repro.profile/v1"

#: Machine-readable benchmark artifacts (``BENCH_<name>.json``).
BENCH_SCHEMA = "repro.bench/v1"

#: Burn-rate incident timelines (:class:`~repro.obs.monitor.SloMonitor`).
ALERTS_SCHEMA = "repro.alerts/v1"

#: Fleet roll-up reports (``llmnpu fleet``).
FLEET_SCHEMA = "repro.fleet/v1"

#: Serialized mergeable quantile sketches.
SKETCH_SCHEMA = "repro.sketch/v1"

#: Step-level scheduler telemetry logs (``obs/steplog.py``).
STEPS_SCHEMA = "repro.steps/v1"

#: Critical-path attribution documents (``obs/critical_path.py``,
#: ``llmnpu critpath``).
CRITPATH_SCHEMA = "repro.critpath/v1"

#: Run-to-run differential attribution documents (``obs/diff.py``,
#: ``llmnpu diff``).
DIFF_SCHEMA = "repro.diff/v1"

#: Machine-readable ``bench-compare`` delta documents
#: (``llmnpu bench-compare --json-out``).
BENCHDIFF_SCHEMA = "repro.benchdiff/v1"

#: The ``repro.diff/v1`` per-segment status taxonomy: how an aligned
#: critical-path segment moved between the base and new runs (see
#: ``obs/diff.py``).  Lives here so the stdlib-only schema checker
#: validates against the same closed set the writer enforces.
DIFF_STATUSES = (
    "grew",
    "shrank",
    "appeared",
    "vanished",
    "unchanged",
)

#: The ``repro.diff/v1`` document kinds — which artifact pair was
#: aligned (see ``obs/diff.py`` for the per-kind delta sections).
DIFF_KINDS = (
    "critpath",
    "profile",
    "steps",
    "fleet",
)

#: The ``repro.critpath/v1`` edge taxonomy: what gated each on-path
#: segment (see ``obs/critical_path.py`` for the per-edge semantics).
#: Lives here so the stdlib-only schema checker validates against the
#: same closed set the writer enforces.
CRITPATH_EDGES = (
    "origin",
    "inferred",
    "resource",
    "dep",
    "service",
)

#: The ``repro.steps/v1`` decision taxonomy (see ``obs/steplog.py`` for
#: the per-action semantics).  Lives here so the stdlib-only schema
#: checker validates against the same closed set the writer enforces.
DECISION_ACTIONS = (
    "admitted",
    "admission-rejected",
    "started",
    "kv-deferred",
    "concurrency-deferred",
    "dispatched",
    "chunk-scheduled",
    "decode-scheduled",
    "budget-exhausted",
    "decode-rotated-out",
    "completed",
    "rejected",
    "cancelled",
    "timeout",
    "failed",
)

#: Every document schema, keyed by its ``"schema"`` string.  The schema
#: checker iterates this to dispatch validation; keep descriptions short
#: — they surface in ``check_trace_schema.py --help``-style output.
SCHEMA_TABLE = {
    PROFILE_SCHEMA: "time/energy attribution report",
    BENCH_SCHEMA: "benchmark artifact with directional metrics",
    ALERTS_SCHEMA: "SLO burn-rate incident timeline",
    FLEET_SCHEMA: "fleet telemetry roll-up",
    SKETCH_SCHEMA: "mergeable quantile sketch",
    STEPS_SCHEMA: "per-step scheduler telemetry + decision log",
    CRITPATH_SCHEMA: "critical-path attribution with per-segment slack",
    DIFF_SCHEMA: "run-to-run differential attribution",
    BENCHDIFF_SCHEMA: "bench-compare machine-readable delta report",
}

__all__ = [
    "PROFILE_SCHEMA",
    "BENCH_SCHEMA",
    "ALERTS_SCHEMA",
    "FLEET_SCHEMA",
    "SKETCH_SCHEMA",
    "STEPS_SCHEMA",
    "CRITPATH_SCHEMA",
    "DIFF_SCHEMA",
    "BENCHDIFF_SCHEMA",
    "DIFF_STATUSES",
    "DIFF_KINDS",
    "CRITPATH_EDGES",
    "DECISION_ACTIONS",
    "SCHEMA_TABLE",
]
