"""Critical-path attribution over simulated task timelines (§3.4's why).

The paper's headline wins come from overlapping subgraph stages across
heterogeneous processors, which means wall-clock latency is governed by
the *critical path* through the scheduled task DAG — the longest
dependency-respecting chain of events from origin to the last finisher.
The additive buckets the rest of the observability stack reports (busy
seconds, idle causes, queue/prefill/decode splits) say where time went;
the critical path says which tasks actually *gated* completion and how
much slack every off-path task had before it would start gating.

Extraction walks backward from the sink event picking, at each step,
the *gating parent* — the latest-finishing event the current one had to
wait for.  Three edge kinds are distinguished:

* ``dep`` — an explicit task-graph dependency (available when the
  :class:`~repro.hw.sim.Task` list that produced the trace is given);
* ``resource`` — the previous event on the same processor (the
  scheduler serialized them);
* ``inferred`` — without a task list, the latest event anywhere that
  finished by the current one's start (the schedule's observable
  gating structure).

The resulting chain telescopes: segment waits and durations sum to the
traced end-to-end latency *exactly* up to float re-association, which
:func:`validate_critical_path` enforces within 1e-9 s (CI runs it on
the golden artifact).  Off-path events get a per-segment slack from a
latest-finish backward pass over the schedule-fixed DAG.

Documents serialize under ``repro.critpath/v1`` with fully
deterministic bytes; ``scripts/check_trace_schema.py`` validates the
conservation invariant stdlib-only.
"""

from __future__ import annotations

import heapq
import json
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.hw.trace import Trace, TraceEvent
from repro.obs.schemas import CRITPATH_EDGES, CRITPATH_SCHEMA

#: Maximum tolerated conservation residual (segments vs end-to-end).
CRITPATH_TOL_S = 1e-9

#: Scheduling tolerance when matching "finished by my start" (mirrors
#: the simulator's serial-overlap tolerance).
_GATE_TOL_S = 1e-12

#: Gating-edge kinds, in tie-break priority order (low to high).
#: Defined next to the schema string so the stdlib-only checker reads
#: the same closed set.
PATH_EDGES = CRITPATH_EDGES

_EDGE_RANK = {edge: i for i, edge in enumerate(PATH_EDGES)}


class CritPathError(ReproError):
    """Critical-path extraction or validation failure."""


@dataclass(frozen=True)
class PathSegment:
    """One on-path event plus the wait that preceded it.

    ``wait_s`` is the gap between the gating parent's finish (or the
    path origin) and this event's start; ``edge`` names how the event
    was gated (:data:`PATH_EDGES`).
    """

    task_id: str
    proc: str
    tag: str
    start_s: float
    end_s: float
    wait_s: float
    edge: str

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "proc": self.proc,
            "tag": self.tag,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "wait_s": self.wait_s,
            "edge": self.edge,
        }


@dataclass(frozen=True)
class SlackRecord:
    """An off-path event and how late it could finish without gating."""

    task_id: str
    proc: str
    tag: str
    start_s: float
    end_s: float
    slack_s: float

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "proc": self.proc,
            "tag": self.tag,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "slack_s": self.slack_s,
        }


@dataclass(frozen=True)
class CriticalPath:
    """The gating chain of one timeline, origin to last finisher."""

    source: str
    origin_s: float
    e2e_s: float
    segments: Tuple[PathSegment, ...]
    slack: Tuple[SlackRecord, ...]
    n_events: int

    @property
    def work_s(self) -> float:
        return sum(s.duration_s for s in self.segments)

    @property
    def wait_s(self) -> float:
        return sum(s.wait_s for s in self.segments)

    @property
    def end_s(self) -> float:
        return self.segments[-1].end_s if self.segments else self.origin_s

    def by_proc(self) -> Dict[str, float]:
        """On-path seconds per processor (sorted keys)."""
        acc: Dict[str, float] = {}
        for s in self.segments:
            acc[s.proc] = acc.get(s.proc, 0.0) + s.duration_s
        return {k: acc[k] for k in sorted(acc)}

    def by_tag(self) -> Dict[str, float]:
        """On-path seconds per operator tag (sorted keys)."""
        acc: Dict[str, float] = {}
        for s in self.segments:
            tag = s.tag or "task"
            acc[tag] = acc.get(tag, 0.0) + s.duration_s
        return {k: acc[k] for k in sorted(acc)}

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "origin_s": self.origin_s,
            "e2e_s": self.e2e_s,
            "n_events": self.n_events,
            "n_segments": len(self.segments),
            "work_s": self.work_s,
            "wait_s": self.wait_s,
            "by_proc": self.by_proc(),
            "by_tag": self.by_tag(),
            "segments": [s.to_dict() for s in self.segments],
            "slack": [s.to_dict() for s in self.slack],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          allow_nan=False)


def _sort_key(e: TraceEvent) -> Tuple[float, float, str]:
    return (e.start_s, e.end_s, e.task_id)


def _pick_parent(candidates: List[Tuple[TraceEvent, str]]
                 ) -> Optional[Tuple[TraceEvent, str]]:
    """The gating parent: latest finish, then edge priority, then id."""
    best = None
    best_key = None
    for event, edge in candidates:
        key = (event.end_s, _EDGE_RANK[edge], event.task_id)
        if best_key is None or key > best_key:
            best, best_key = (event, edge), key
    return best


def critical_path(trace: Trace, tasks=None,
                  source: str = "trace") -> CriticalPath:
    """Extract the critical path of a :class:`~repro.hw.trace.Trace`.

    ``tasks`` is the :class:`~repro.hw.sim.Task` sequence that produced
    the trace; with it, explicit dependency edges join the candidate
    set (``edge="dep"``), without it gating is inferred from the
    schedule alone.  The returned chain telescopes from time 0 to the
    trace makespan: Σ(wait + duration) over segments equals the
    makespan up to float re-association.
    """
    events = sorted(trace.events, key=_sort_key)
    if not events:
        raise CritPathError(f"{source}: cannot attribute an empty trace")
    by_id: Dict[str, TraceEvent] = {}
    for e in events:
        if e.task_id not in by_id:
            by_id[e.task_id] = e
    resource_prev: Dict[str, Optional[TraceEvent]] = {}
    last_on: Dict[str, TraceEvent] = {}
    for e in events:
        resource_prev[e.task_id] = last_on.get(e.proc)
        last_on[e.proc] = e
    deps: Dict[str, Tuple[str, ...]] = {}
    if tasks is not None:
        deps = {t.task_id: tuple(t.deps) for t in tasks}
    # For inferred gating: events by finish time, latest-eligible wins.
    by_end = sorted(events, key=lambda e: (e.end_s, e.start_s, e.task_id))
    end_times = [e.end_s for e in by_end]

    sink = max(events, key=lambda e: (e.end_s, e.start_s, e.task_id))
    chain: List[Tuple[TraceEvent, str]] = []
    visited = set()
    current: Optional[TraceEvent] = sink
    edge_in = "origin"
    while current is not None:
        if current.task_id in visited:
            raise CritPathError(
                f"{source}: gating cycle through {current.task_id!r}")
        visited.add(current.task_id)
        candidates: List[Tuple[TraceEvent, str]] = []
        gate = current.start_s + _GATE_TOL_S
        prev = resource_prev[current.task_id]
        if prev is not None and prev.end_s <= gate \
                and prev.task_id not in visited:
            candidates.append((prev, "resource"))
        for dep_id in deps.get(current.task_id, ()):
            dep_event = by_id.get(dep_id)
            if dep_event is not None and dep_event.end_s <= gate \
                    and dep_id not in visited:
                candidates.append((dep_event, "dep"))
        if tasks is None:
            pos = bisect_right(end_times, gate) - 1
            while pos >= 0 and by_end[pos].task_id in visited:
                pos -= 1
            if pos >= 0:
                candidates.append((by_end[pos], "inferred"))
        parent = _pick_parent(candidates)
        chain.append((current, edge_in))
        if parent is None:
            break
        current, edge_in = parent[0], parent[1]
    chain.reverse()
    # The walk labels each node with the edge that *led to* it during
    # the backward pass, i.e. the edge into its child; re-associate so
    # each segment carries the edge it was gated BY.
    segments: List[PathSegment] = []
    prev_end = 0.0
    prev_edge = "origin"
    for event, _edge_to_child in chain:
        segments.append(PathSegment(
            task_id=event.task_id, proc=event.proc,
            tag=event.tag or "task",
            start_s=event.start_s, end_s=event.end_s,
            wait_s=event.start_s - prev_end, edge=prev_edge,
        ))
        prev_end = event.end_s
        prev_edge = _edge_to_child
    on_path = {s.task_id for s in segments}
    slack = _slack_records(events, deps, on_path, trace.makespan_s)
    path = CriticalPath(
        source=source,
        origin_s=0.0,
        e2e_s=trace.makespan_s,
        segments=tuple(segments),
        slack=tuple(slack),
        n_events=len(events),
    )
    validate_critical_path(path)
    return path


def _slack_records(events: Sequence[TraceEvent],
                   deps: Dict[str, Tuple[str, ...]],
                   on_path: set,
                   makespan_s: float) -> List[SlackRecord]:
    """Latest-finish backward pass over the schedule-fixed DAG.

    Edges are resource successors (next event on the same processor)
    plus explicit dependency successors when the task list was given.
    Processed in a deterministic Kahn order — sync fences can have
    ~zero duration, so plain schedule-sort order is not a safe
    topological order.
    """
    index = {e.task_id: i for i, e in enumerate(events)}
    succs: Dict[int, set] = {i: set() for i in range(len(events))}
    last_on: Dict[str, int] = {}
    for i, e in enumerate(events):
        prev = last_on.get(e.proc)
        if prev is not None:
            succs[prev].add(i)
        last_on[e.proc] = i
    for task_id, dep_ids in deps.items():
        child = index.get(task_id)
        if child is None:
            continue
        for dep_id in dep_ids:
            parent = index.get(dep_id)
            if parent is not None:
                succs[parent].add(child)
    in_deg = [0] * len(events)
    for i in succs:
        for j in succs[i]:
            in_deg[j] += 1
    heap = [( events[i].start_s, events[i].end_s, events[i].task_id, i)
            for i in range(len(events)) if in_deg[i] == 0]
    heapq.heapify(heap)
    topo: List[int] = []
    while heap:
        _, _, _, i = heapq.heappop(heap)
        topo.append(i)
        for j in sorted(succs[i]):
            in_deg[j] -= 1
            if in_deg[j] == 0:
                e = events[j]
                heapq.heappush(heap, (e.start_s, e.end_s, e.task_id, j))
    if len(topo) != len(events):
        raise CritPathError("slack pass: cycle in the schedule DAG")
    latest_end = [makespan_s] * len(events)
    for i in reversed(topo):
        for j in succs[i]:
            e = events[j]
            latest_end[i] = min(latest_end[i],
                                latest_end[j] - e.duration_s)
    out: List[SlackRecord] = []
    for i, e in enumerate(events):
        if e.task_id in on_path:
            continue
        out.append(SlackRecord(
            task_id=e.task_id, proc=e.proc, tag=e.tag or "task",
            start_s=e.start_s, end_s=e.end_s,
            slack_s=latest_end[i] - e.end_s,
        ))
    return out


def validate_critical_path(path, tol_s: float = CRITPATH_TOL_S) -> None:
    """Assert the telescoping invariant on a path (object or dict).

    Per segment: duration equals ``end - start`` and the segment starts
    exactly ``wait`` after its predecessor's end; globally, the waits
    and durations sum to the end-to-end latency, the last finish minus
    the origin equals it too, and every wait/slack is non-negative —
    all within ``tol_s``.
    """
    if isinstance(path, CriticalPath):
        doc = path.to_dict()
    else:
        doc = path
    segments = doc["segments"]
    e2e = doc["e2e_s"]
    origin = doc["origin_s"]
    if not segments:
        raise CritPathError(f"{doc.get('source')}: path has no segments")
    prev_end = origin
    total = 0.0
    for i, seg in enumerate(segments):
        where = f"{doc.get('source')}: segments[{i}] ({seg['task_id']})"
        dur = seg["end_s"] - seg["start_s"]
        if dur < -tol_s:
            raise CritPathError(f"{where}: negative duration {dur!r}")
        if abs(seg["duration_s"] - dur) > tol_s:
            raise CritPathError(
                f"{where}: duration_s {seg['duration_s']!r} != "
                f"end - start {dur!r}")
        if seg["wait_s"] < -tol_s:
            raise CritPathError(
                f"{where}: negative wait {seg['wait_s']!r}")
        gap = seg["start_s"] - (prev_end + seg["wait_s"])
        if abs(gap) > tol_s:
            raise CritPathError(
                f"{where}: start {seg['start_s']!r} != previous end "
                f"{prev_end!r} + wait {seg['wait_s']!r}")
        if seg["edge"] not in PATH_EDGES:
            raise CritPathError(
                f"{where}: unknown edge {seg['edge']!r}")
        total += seg["wait_s"] + seg["duration_s"]
        prev_end = seg["end_s"]
    if abs(total - e2e) > tol_s:
        raise CritPathError(
            f"{doc.get('source')}: segment waits + durations sum to "
            f"{total!r}, end-to-end is {e2e!r} "
            f"(residual {total - e2e:.3e} s)")
    if abs((prev_end - origin) - e2e) > tol_s:
        raise CritPathError(
            f"{doc.get('source')}: last finish {prev_end!r} - origin "
            f"{origin!r} != e2e {e2e!r}")
    for i, rec in enumerate(doc["slack"]):
        if rec["slack_s"] < -tol_s:
            raise CritPathError(
                f"{doc.get('source')}: slack[{i}] ({rec['task_id']}): "
                f"negative slack {rec['slack_s']!r}")


def _shift_segment(seg: PathSegment, t0: float,
                   prev_end: float) -> PathSegment:
    """Re-anchor a hw segment at ``t0``, recomputing the wait *in the
    shifted frame* — ``(t0 + a) - (t0 + b)`` is not ``a - b`` in
    floats, and the telescoping invariant must hold on the shifted
    numbers the artifact carries."""
    start = t0 + seg.start_s
    end = t0 + seg.end_s
    return PathSegment(
        task_id=seg.task_id, proc=seg.proc, tag=seg.tag,
        start_s=start, end_s=end, wait_s=start - prev_end,
        edge=seg.edge,
    )


def request_critical_path(record, decode_backend: str = "cpu",
                          tasks=None) -> CriticalPath:
    """The admission-to-completion critical path of one served request.

    Extends the hardware chain (prefill tasks + decode steps from the
    request's :meth:`~repro.core.results.InferenceReport.timeline`)
    with the service-level gating segments: time queued before the
    scheduler started it, time held by retries/backoff before the
    successful attempt, and the serial graph-preparation tail (naive
    engines only).  The chain telescopes from arrival to finish: the
    conservation invariant now covers the request's full turnaround.
    """
    if record.status != "completed" or record.report is None:
        raise CritPathError(
            f"request {record.request_id}: no completed report to "
            f"attribute (status {record.status!r})")
    report = record.report
    hw = critical_path(report.timeline(decode_backend), tasks=tasks,
                       source=f"request {record.request_id}")
    t0 = record.finish_s - report.e2e_latency_s
    segments: List[PathSegment] = []
    prev_end = record.arrival_s
    queued = record.start_s - record.arrival_s
    if queued > 0.0:
        segments.append(PathSegment(
            task_id="service.queued", proc="service", tag="queued",
            start_s=record.arrival_s, end_s=record.start_s,
            wait_s=0.0, edge="origin",
        ))
        prev_end = record.start_s
    held = t0 - prev_end
    if held > 0.0:
        segments.append(PathSegment(
            task_id="service.held", proc="service", tag="held",
            start_s=prev_end, end_s=t0, wait_s=0.0,
            edge="service" if segments else "origin",
        ))
        prev_end = t0
    first_hw_edge = "service" if segments else "origin"
    for i, seg in enumerate(hw.segments):
        shifted = _shift_segment(seg, t0, prev_end)
        if i == 0:
            shifted = PathSegment(
                task_id=shifted.task_id, proc=shifted.proc,
                tag=shifted.tag, start_s=shifted.start_s,
                end_s=shifted.end_s, wait_s=shifted.wait_s,
                edge=first_hw_edge,
            )
        segments.append(shifted)
        prev_end = shifted.end_s
    prep = record.finish_s - prev_end
    if prep > 0.0:
        segments.append(PathSegment(
            task_id="service.prepare", proc="service", tag="prepare",
            start_s=prev_end, end_s=record.finish_s, wait_s=0.0,
            edge="service",
        ))
    slack = tuple(SlackRecord(
        task_id=r.task_id, proc=r.proc, tag=r.tag,
        start_s=t0 + r.start_s, end_s=t0 + r.end_s, slack_s=r.slack_s,
    ) for r in hw.slack)
    path = CriticalPath(
        source=f"request {record.request_id}",
        origin_s=record.arrival_s,
        e2e_s=record.finish_s - record.arrival_s,
        segments=tuple(segments),
        slack=slack,
        n_events=hw.n_events,
    )
    validate_critical_path(path)
    return path


def critpath_doc(paths: Sequence[CriticalPath],
                 source: str = "critpath") -> dict:
    """Roll paths into one ``repro.critpath/v1`` document."""
    if not paths:
        raise CritPathError("critpath_doc needs at least one path")
    by_proc: Dict[str, float] = {}
    by_tag: Dict[str, float] = {}
    work = 0.0
    wait = 0.0
    for p in paths:
        work += p.work_s
        wait += p.wait_s
        for proc, s in p.by_proc().items():
            by_proc[proc] = by_proc.get(proc, 0.0) + s
        for tag, s in p.by_tag().items():
            by_tag[tag] = by_tag.get(tag, 0.0) + s
    return {
        "schema": CRITPATH_SCHEMA,
        "source": source,
        "n_paths": len(paths),
        "paths": [p.to_dict() for p in paths],
        "totals": {
            "work_s": work,
            "wait_s": wait,
            "by_proc": {k: by_proc[k] for k in sorted(by_proc)},
            "by_tag": {k: by_tag[k] for k in sorted(by_tag)},
        },
    }


def narrative_lines(path: CriticalPath, top: int = 5) -> List[str]:
    """A human-readable walk of one critical path (``llmnpu explain``
    and ``llmnpu critpath <request>``)."""
    lines = [
        f"critical path — {path.source}: {len(path.segments)} of "
        f"{path.n_events} events gate the outcome",
        f"  end-to-end {path.e2e_s * 1e3:.3f} ms = on-path work "
        f"{path.work_s * 1e3:.3f} ms + waits {path.wait_s * 1e3:.3f} ms",
    ]
    for proc, s in path.by_proc().items():
        share = s / path.e2e_s * 100 if path.e2e_s > 0 else 0.0
        lines.append(f"  on-path {proc}: {s * 1e3:.3f} ms "
                     f"({share:.1f}% of e2e)")
    ranked = sorted(path.segments,
                    key=lambda s: (-s.duration_s, s.start_s, s.task_id))
    lines.append(f"  top {min(top, len(ranked))} gating segments:")
    for seg in ranked[:top]:
        share = (seg.duration_s / path.e2e_s * 100
                 if path.e2e_s > 0 else 0.0)
        lines.append(
            f"    {seg.task_id} [{seg.proc}/{seg.tag}] "
            f"{seg.duration_s * 1e3:.3f} ms ({share:.1f}%), "
            f"gated by {seg.edge}, waited {seg.wait_s * 1e3:.3f} ms")
    if path.slack:
        loose = sorted(path.slack,
                       key=lambda r: (-r.slack_s, r.start_s, r.task_id))
        best = loose[0]
        lines.append(
            f"  {len(path.slack)} off-path events; most slack: "
            f"{best.task_id} [{best.proc}] could finish "
            f"{best.slack_s * 1e3:.3f} ms later without gating")
    return lines
