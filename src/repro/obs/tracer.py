"""Span-based tracing over the simulator's deterministic clock.

Every layer of the serving path runs on *simulated* time — the service
clocks, the engine timelines, the discrete-event schedule.  The tracer
therefore never reads a wall clock: callers pass explicit sim-clock
timestamps, which keeps traces a pure function of the workload (two runs
of the same seeded workload produce byte-identical traces).

Two record kinds:

* :class:`Span` — an interval ``[start_s, end_s]`` on a *track*.  A track
  is a ``(proc, thread)`` pair mirroring the Chrome trace format's
  process/thread axes: e.g. ``("service", "req 00003")`` for one
  request's lifecycle, ``("hw Qwen1.5-1.8B", "npu")`` for a processor of
  one engine's timeline.
* :class:`Instant` — a zero-width marker (admission decisions, fault
  draws, queue operations).

Spans come from :meth:`Tracer.span`, either fully formed (``end_s=``
given, recorded immediately) or as a context manager that must be closed
with an explicit end timestamp::

    with tracer.span("prefill", proc="service", thread=track,
                     start_s=t0) as span:
        ...
        span.finish(t1)

The disabled path is :data:`NULL_TRACER`, a shared no-op whose methods
allocate nothing and record nothing — instrumented code can call it
unconditionally, and hot paths can skip argument construction entirely by
checking :attr:`Tracer.enabled` first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ReproError


class ObservabilityError(ReproError):
    """Tracing / metrics misuse (unfinished span, bad timestamps...)."""


@dataclass(frozen=True)
class Span:
    """One completed interval on a track."""

    name: str
    cat: str
    proc: str
    thread: str
    start_s: float
    end_s: float
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def arg(self, key: str, default=None):
        for k, v in self.args:
            if k == key:
                return v
        return default

    def to_record(self) -> dict:
        return {
            "type": "span", "name": self.name, "cat": self.cat,
            "proc": self.proc, "thread": self.thread,
            "start_s": self.start_s, "end_s": self.end_s,
            "args": dict(self.args),
        }


@dataclass(frozen=True)
class Instant:
    """One zero-width marker on a track."""

    name: str
    cat: str
    proc: str
    thread: str
    ts_s: float
    args: Tuple[Tuple[str, object], ...] = ()

    def arg(self, key: str, default=None):
        for k, v in self.args:
            if k == key:
                return v
        return default

    def to_record(self) -> dict:
        return {
            "type": "instant", "name": self.name, "cat": self.cat,
            "proc": self.proc, "thread": self.thread, "ts_s": self.ts_s,
            "args": dict(self.args),
        }


TraceRecord = Union[Span, Instant]


def _freeze_args(args: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(args.items()))


class SpanHandle:
    """An open span awaiting its end timestamp (context manager).

    ``finish(end_s)`` records the span; exiting the ``with`` block
    without finishing raises :class:`ObservabilityError` (unless an
    exception is already propagating, in which case the span is recorded
    zero-width at its start so tracing never masks the real error).
    """

    __slots__ = ("_tracer", "name", "cat", "proc", "thread", "start_s",
                 "_args", "_done")

    def __init__(self, tracer: "Tracer", name: str, cat: str, proc: str,
                 thread: str, start_s: float,
                 args: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.proc = proc
        self.thread = thread
        self.start_s = start_s
        self._args = args
        self._done = False

    def finish(self, end_s: float, **more_args) -> Span:
        """Record the span with an explicit sim-clock end timestamp."""
        if self._done:
            raise ObservabilityError(
                f"span {self.name!r} finished twice"
            )
        self._done = True
        if more_args:
            self._args.update(more_args)
        return self._tracer._record_span(
            self.name, self.cat, self.proc, self.thread,
            self.start_s, end_s, self._args,
        )

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._done:
            return
        if exc_type is not None:
            # record zero-width so the failure point stays visible, and
            # let the original exception propagate
            self._done = True
            self._tracer._record_span(
                self.name, self.cat, self.proc, self.thread,
                self.start_s, self.start_s,
                dict(self._args, error=exc_type.__name__),
            )
            return
        raise ObservabilityError(
            f"span {self.name!r} exited without finish(end_s)"
        )


class _NullSpanHandle:
    """Shared no-op handle returned by the null tracer."""

    __slots__ = ()

    def finish(self, end_s: float, **more_args) -> None:
        return None

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN_HANDLE = _NullSpanHandle()


@dataclass
class Tracer:
    """Collects spans and instants in emission order.

    Emission order is deterministic because every emitter runs on the
    deterministic simulator, so the record list itself is a stable
    artifact (the JSONL export preserves it verbatim).
    """

    events: List[TraceRecord] = field(default_factory=list)

    #: The no-op check instrumented code uses to skip argument
    #: construction on hot paths.
    enabled: bool = True

    def span(self, name: str, *, proc: str, thread: str, start_s: float,
             end_s: Optional[float] = None, cat: str = "",
             **args) -> Union[Span, SpanHandle]:
        """Record a span (``end_s`` given) or open one (context manager)."""
        if end_s is not None:
            return self._record_span(name, cat, proc, thread,
                                     start_s, end_s, args)
        return SpanHandle(self, name, cat, proc, thread, start_s, args)

    def instant(self, name: str, *, proc: str, thread: str, ts_s: float,
                cat: str = "", **args) -> Instant:
        """Record a zero-width marker."""
        record = Instant(name=name, cat=cat, proc=proc, thread=thread,
                         ts_s=float(ts_s), args=_freeze_args(args))
        self.events.append(record)
        return record

    def _record_span(self, name: str, cat: str, proc: str, thread: str,
                     start_s: float, end_s: float,
                     args: Dict[str, object]) -> Span:
        if end_s < start_s:
            raise ObservabilityError(
                f"span {name!r} ends before it starts "
                f"({end_s!r} < {start_s!r})"
            )
        record = Span(name=name, cat=cat, proc=proc, thread=thread,
                      start_s=float(start_s), end_s=float(end_s),
                      args=_freeze_args(args))
        self.events.append(record)
        return record

    # -- queries --------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        return [e for e in self.events if isinstance(e, Span)]

    @property
    def instants(self) -> List[Instant]:
        return [e for e in self.events if isinstance(e, Instant)]

    def on_track(self, proc: str,
                 thread: Optional[str] = None) -> List[TraceRecord]:
        """Records on one process (optionally one thread), emission order."""
        return [e for e in self.events
                if e.proc == proc and (thread is None or e.thread == thread)]

    def tracks(self) -> List[Tuple[str, str]]:
        """Sorted unique ``(proc, thread)`` pairs."""
        return sorted({(e.proc, e.thread) for e in self.events})

    def extend(self, events: Iterable[TraceRecord]) -> None:
        self.events.extend(events)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class NullTracer(Tracer):
    """Zero-overhead tracer: records nothing, allocates nothing."""

    def __init__(self):
        super().__init__(events=[], enabled=False)

    def span(self, name: str, *, proc: str, thread: str, start_s: float,
             end_s: Optional[float] = None, cat: str = "",
             **args) -> _NullSpanHandle:
        return _NULL_SPAN_HANDLE

    def instant(self, name: str, *, proc: str, thread: str, ts_s: float,
                cat: str = "", **args) -> None:
        return None

    def extend(self, events: Iterable[TraceRecord]) -> None:
        return None


#: Shared no-op instance — the default for every instrumented component.
NULL_TRACER = NullTracer()


def as_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Normalize an optional tracer argument to a usable instance."""
    return NULL_TRACER if tracer is None else tracer
