"""Step-level scheduler telemetry: ``repro.steps/v1`` logs.

The step loop (:meth:`~repro.core.service.LlmService._run_step_loop`)
makes its interesting choices *between* the spans the tracer records:
which queued request starts, which decoder rotates out of an
over-subscribed step, which prefill chunk the token budget cuts off.
This module captures those choices through the service's PR-4-style
step-observer hook (:meth:`~repro.core.service.LlmService
.add_step_observer`) as two synchronized streams:

* :class:`~repro.core.scheduler.StepRecord` — one per executed
  sim-clock step, now carrying the queue snapshot that governed its
  assembly (waiting ids, per-tier depths, KV/concurrency blocks);
* :class:`Decision` — one per request *touched or skipped*, typed by
  :data:`DECISION_ACTIONS` and stamped with the governing quantity
  (projected wait vs. SLO, chunk tokens vs. budget, KV projection vs.
  budget, ...).

A :class:`StepLogger` folds both (plus the finished-request stream)
into a self-contained ``repro.steps/v1`` document that
``obs/explain.py`` can replay offline.  Observation is strictly a
no-op: with no step observers attached the service emits nothing and
does no extra work, so golden snapshot/trace/profile artifacts stay
byte-identical (``scripts/check_determinism.sh`` enforces this).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

# The decision taxonomy lives in the dependency-free constant table so
# the stdlib-only schema checker validates against the same closed set.
# Admission-time: ``admitted`` / ``admission-rejected``.  Start-loop:
# ``started`` / ``kv-deferred`` / ``concurrency-deferred``.  Per-step
# assembly: ``chunk-scheduled`` / ``decode-scheduled`` /
# ``budget-exhausted`` (a prefilling request the token budget skipped) /
# ``decode-rotated-out`` (a decoder outside the rotation window).
# Legacy-path dispatch: ``dispatched``.  Terminal: the record's status
# (``completed`` / ``rejected`` / ``cancelled`` / ``timeout`` /
# ``failed``).
from repro.obs.schemas import DECISION_ACTIONS, STEPS_SCHEMA


class StepLogError(ReproError):
    """Malformed or unusable step-log input."""


@dataclass(frozen=True)
class Decision:
    """One typed scheduler decision about one request.

    ``quantity`` names the governing quantity (``projected_wait_s``,
    ``tokens``, ``kv_projected_bytes``, ...), ``value`` its value and
    ``limit`` the bound it was compared against (None when the relevant
    knob is unbounded).  ``step`` is the step index for decisions made
    inside the step loop, None for admission-time / legacy-path /
    terminal decisions.
    """

    t_s: float
    request_id: int
    action: str
    tier: str
    step: Optional[int] = None
    quantity: Optional[str] = None
    value: Optional[float] = None
    limit: Optional[float] = None

    def __post_init__(self) -> None:
        if self.action not in DECISION_ACTIONS:
            raise StepLogError(
                f"unknown decision action {self.action!r}; "
                f"expected one of {DECISION_ACTIONS}"
            )

    def to_dict(self) -> dict:
        return {
            "t_s": self.t_s,
            "request_id": self.request_id,
            "action": self.action,
            "tier": self.tier,
            "step": self.step,
            "quantity": self.quantity,
            "value": self.value,
            "limit": self.limit,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Decision":
        try:
            return cls(
                t_s=doc["t_s"], request_id=doc["request_id"],
                action=doc["action"], tier=doc["tier"],
                step=doc.get("step"), quantity=doc.get("quantity"),
                value=doc.get("value"), limit=doc.get("limit"),
            )
        except KeyError as exc:
            raise StepLogError(f"decision missing key {exc}") from None


def _step_to_dict(step) -> dict:
    """One :class:`~repro.core.scheduler.StepRecord` as plain JSON."""
    return {
        "index": step.index,
        "start_s": step.start_s,
        "end_s": step.end_s,
        "n_inflight": step.n_inflight,
        "kv_reserved_bytes": step.kv_reserved_bytes,
        "prefill_tokens": step.prefill_tokens,
        "decode_tokens": step.decode_tokens,
        "batch_tokens": step.batch_tokens,
        "budget_tokens": step.budget_tokens,
        "budget_utilization": step.budget_utilization,
        "kv_budget_bytes": step.kv_budget_bytes,
        "kv_utilization": step.kv_utilization,
        "queued_ids": list(step.queued_ids),
        "queue_depths": {tier: depth
                         for tier, depth in step.queue_depths},
        "kv_blocked_id": step.kv_blocked_id,
        "concurrency_full": step.concurrency_full,
        "items": [
            {"request_id": it.request_id, "kind": it.kind,
             "tokens": it.tokens, "cost_s": it.cost_s,
             "index": it.index, "start_s": it.start_s,
             "end_s": it.end_s}
            for it in step.items
        ],
    }


def _record_to_dict(record) -> dict:
    """One :class:`~repro.core.service.ServedRequest` as plain JSON.

    Embeds the request's validated latency breakdown so a saved step
    log is self-contained: ``obs/explain.py`` reconciles its wait
    attribution against these components without needing the live
    records (whose reports don't serialize).
    """
    from repro.obs.breakdown import breakdown_request
    b = breakdown_request(record)
    return {
        "request_id": record.request_id,
        "model": record.model,
        "tier": record.tier,
        "status": record.status,
        "retries": record.retries,
        "arrival_s": record.arrival_s,
        "start_s": record.start_s,
        "finish_s": record.finish_s,
        "batched": record.batched,
        "prefill_end_s": record.prefill_end_s,
        "first_token_s": record.first_token_s,
        "retry_held_s": record.retry_held_s,
        "breakdown": {
            "queue_s": b.queue_s,
            "admission_s": b.admission_s,
            "retry_s": b.retry_s,
            "prefill_s": b.prefill_s,
            "decode_s": b.decode_s,
            "turnaround_s": b.turnaround_s,
        },
    }


class StepLogger:
    """Collects a service run's step/decision/record streams.

    Attach before :meth:`~repro.core.service.LlmService.run`::

        logger = StepLogger().attach(service)
        service.run()
        doc = logger.to_dict()          # repro.steps/v1

    The logger is a passive sink — it never mutates the service, and a
    run with it attached serves byte-identical records (the PR-4
    observation guarantee).
    """

    def __init__(self, source: str = "service"):
        self.source = source
        self.steps: List = []
        self.decisions: List[Decision] = []
        self.records: List = []
        self.batching = None

    def attach(self, service) -> "StepLogger":
        """Register on a service's step + record observer hooks."""
        service.add_step_observer(self)
        service.add_observer(self.on_record)
        self.batching = service.batching
        return self

    # -- observer hooks (called by the service) -------------------------------

    def on_step(self, record) -> None:
        self.steps.append(record)

    def on_decision(self, decision: Decision) -> None:
        self.decisions.append(decision)

    def on_record(self, record) -> None:
        self.records.append(record)

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> dict:
        """The ``repro.steps/v1`` document (self-contained for replay)."""
        batching = None
        if self.batching is not None:
            batching = {
                "max_batch_tokens": self.batching.max_batch_tokens,
                "max_concurrency": self.batching.max_concurrency,
                "prefill_priority": self.batching.prefill_priority,
                "kv_budget_bytes": self.batching.kv_budget_bytes,
            }
        records = sorted(self.records, key=lambda r: r.request_id)
        return {
            "schema": STEPS_SCHEMA,
            "source": self.source,
            "batching": batching,
            "n_steps": len(self.steps),
            "n_requests": len(records),
            "n_decisions": len(self.decisions),
            "steps": [_step_to_dict(s) for s in self.steps],
            "decisions": [d.to_dict() for d in self.decisions],
            "requests": [_record_to_dict(r) for r in records],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str) -> str:
        """Write the log (gzipped on a ``.gz`` suffix)."""
        from repro.obs.export import open_text
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open_text(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")
        return path


def load_steps(path: str) -> dict:
    """Read and structurally validate a (possibly gzipped)
    ``repro.steps/v1`` file."""
    from repro.obs.export import open_text
    try:
        with open_text(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        raise StepLogError(f"cannot read step log {path!r}: {exc}") from None
    validate_steps_doc(doc)
    return doc


def validate_steps_doc(doc: dict) -> None:
    """Structural validation of a ``repro.steps/v1`` document."""
    if not isinstance(doc, dict):
        raise StepLogError("step log must be a JSON object")
    if doc.get("schema") != STEPS_SCHEMA:
        raise StepLogError(
            f"expected schema {STEPS_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    for key in ("steps", "decisions", "requests"):
        if not isinstance(doc.get(key), list):
            raise StepLogError(f"step log missing list {key!r}")
    if doc.get("n_steps") != len(doc["steps"]):
        raise StepLogError("n_steps does not match the steps list")
    for step in doc["steps"]:
        for key in ("index", "start_s", "end_s", "n_inflight",
                    "batch_tokens", "items", "queued_ids"):
            if key not in step:
                raise StepLogError(f"step missing key {key!r}")
        if step["end_s"] < step["start_s"]:
            raise StepLogError(f"step {step['index']}: end before start")
        span = sum(it["end_s"] - it["start_s"] for it in step["items"])
        if abs(span - (step["end_s"] - step["start_s"])) > 1e-9:
            raise StepLogError(
                f"step {step['index']}: items span {span!r} != step "
                f"window {step['end_s'] - step['start_s']!r}"
            )
    for dec in doc["decisions"]:
        Decision.from_dict(dec)
    for req in doc["requests"]:
        for key in ("request_id", "tier", "status", "arrival_s",
                    "start_s", "finish_s", "breakdown"):
            if key not in req:
                raise StepLogError(f"request record missing key {key!r}")


def as_steps_doc(source) -> dict:
    """Normalize a step-log source into a ``repro.steps/v1`` dict.

    Accepts an already-loaded dict, a :class:`StepLogger`, or a live
    :class:`~repro.core.service.LlmService` (whose :attr:`steps` and
    :attr:`requests` are folded into a document with an empty decision
    log — decisions only exist where a logger was attached).
    """
    if isinstance(source, dict):
        validate_steps_doc(source)
        return source
    if isinstance(source, StepLogger):
        return source.to_dict()
    if hasattr(source, "requests") and hasattr(source, "steps"):
        logger = StepLogger()
        logger.batching = source.batching
        logger.steps = list(source.steps)
        logger.records = list(source.requests)
        return logger.to_dict()
    raise StepLogError(
        f"cannot interpret {type(source).__name__} as a step log"
    )


# -- derived detectors --------------------------------------------------------


def decision_mix(decisions) -> Dict[str, int]:
    """Counts per decision action (accepts Decisions or dicts)."""
    counts: Dict[str, int] = {}
    for d in decisions:
        action = d["action"] if isinstance(d, dict) else d.action
        counts[action] = counts.get(action, 0) + 1
    return dict(sorted(counts.items()))


def occupancy_summary(steps) -> Dict[str, float]:
    """Mean/max occupancy statistics over a run's steps.

    Accepts :class:`~repro.core.scheduler.StepRecord` objects or their
    serialized dicts.  ``budget_utilization`` keys are only present when
    every step ran under a token budget.
    """
    def get(step, key):
        return step[key] if isinstance(step, dict) else getattr(step, key)

    if not steps:
        return {"n_steps": 0.0}
    tokens = [float(get(s, "batch_tokens")) for s in steps]
    inflight = [float(get(s, "n_inflight")) for s in steps]
    depth = [float(len(get(s, "queued_ids"))) for s in steps]
    out = {
        "n_steps": float(len(steps)),
        "mean_batch_tokens": sum(tokens) / len(tokens),
        "max_batch_tokens": max(tokens),
        "mean_inflight": sum(inflight) / len(inflight),
        "max_inflight": max(inflight),
        "mean_queue_depth": sum(depth) / len(depth),
        "max_queue_depth": max(depth),
    }
    utils = [get(s, "budget_utilization") for s in steps]
    if all(u is not None for u in utils):
        out["mean_budget_utilization"] = sum(utils) / len(utils)
        out["max_budget_utilization"] = max(utils)
    return out


def starved_requests(steps, min_steps: int = 8) -> List[Tuple[int, int]]:
    """Requests stuck in the waiting queue for long consecutive runs.

    Returns ``(request_id, n_consecutive_steps)`` pairs (sorted by id)
    for every request that stayed in some step's ``queued_ids`` snapshot
    for at least ``min_steps`` consecutive steps — the starvation signal
    the :class:`~repro.obs.monitor.SloMonitor` detector surfaces.
    """
    if min_steps <= 0:
        raise StepLogError("min_steps must be positive")
    streak: Dict[int, int] = {}
    worst: Dict[int, int] = {}
    for step in steps:
        queued = (step["queued_ids"] if isinstance(step, dict)
                  else step.queued_ids)
        queued = set(queued)
        for rid in queued:
            streak[rid] = streak.get(rid, 0) + 1
            worst[rid] = max(worst.get(rid, 0), streak[rid])
        for rid in list(streak):
            if rid not in queued:
                del streak[rid]
    return sorted((rid, n) for rid, n in worst.items()
                  if n >= min_steps)
