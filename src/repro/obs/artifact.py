"""Schema-versioned benchmark artifacts with noise-aware comparison.

``benchmarks/results/`` used to be text-only: human-readable tables that
no tool could diff, so a performance regression would sail through CI
silently.  This module gives every benchmark a machine-readable twin —
``BENCH_<name>.json`` (schema ``repro.bench/v1``) holding the table's
numeric cells as named metrics — plus the comparison logic behind
``llmnpu bench-compare``.

Design rules:

* **Metrics are deterministic, env is informational.**  The ``metrics``
  section is a pure function of the simulation (the drivers are
  deterministic), so identical runs produce identical metric values;
  the ``env`` section (git SHA, python version, platform) is recorded
  for provenance but never compared.  No timestamps anywhere.
* **Directions are explicit.**  Each metric carries ``direction``:
  ``"lower"`` (latency/energy — an increase is a regression),
  ``"higher"`` (throughput — a decrease is a regression) or ``"info"``
  (counts, configuration echoes — never gated).  Directions are
  inferred from the table column names; unknown columns default to
  ``info`` so a new column can never produce a false CI failure.
* **Noise-aware thresholds.**  A metric regresses only when it moves
  past ``max(rel_tol * |baseline|, abs_tol)`` in its bad direction —
  byte-identical reruns always compare clean, and a 10% latency
  regression is always caught at the default 5% tolerance.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import subprocess
import sys
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.errors import ReproError

#: Schema identifiers stamped into benchmark artifacts and
#: ``bench-compare --json-out`` delta documents.
from repro.obs.schemas import (  # noqa: E402 (constant table)
    BENCH_SCHEMA,
    BENCHDIFF_SCHEMA,
)

#: Default relative regression threshold (fraction of the baseline).
DEFAULT_REL_TOL = 0.05

#: Default absolute regression threshold (units of the metric).
DEFAULT_ABS_TOL = 1e-9

#: Metric directions.
DIRECTIONS = ("lower", "higher", "info")

#: Column-name fragments that mark a lower-is-better metric.
_LOWER_HINTS = ("latency", "turnaround", "queue", "retry", "bubble",
                "energy", "prepare", "prefill s", "decode s", "e2e",
                "ttft", "tpot", "shed", "idle", "sync")

#: Column-name fragments that mark a higher-is-better metric.
_HIGHER_HINTS = ("tok/s", "req/s", "rps", "throughput", "/s",
                 "completion", "speedup", "hit rate", "util")


class ArtifactError(ReproError):
    """Benchmark artifact construction, IO, or comparison failure."""


def metric_direction(column: str) -> str:
    """Infer a metric's direction from its table column name.

    Checks higher-is-better hints first (``tok/s`` must not match the
    bare ``s`` suffix), then lower-is-better hints and time/energy unit
    suffixes; anything unrecognized is ``info`` and never gated.
    """
    name = column.lower().strip()
    for hint in _HIGHER_HINTS:
        if hint in name:
            return "higher"
    for hint in _LOWER_HINTS:
        if hint in name:
            return "lower"
    if name.endswith((" s", " ms", " us", " j", " mj", " mib", " bytes")):
        return "lower"
    return "info"


def _slug(text: str) -> str:
    """Metric-id fragment: lowercase, spaces/slashes to underscores."""
    out = []
    for ch in str(text).strip().lower():
        out.append(ch if ch.isalnum() or ch in "._%" else "_")
    slug = "".join(out)
    while "__" in slug:
        slug = slug.replace("__", "_")
    return slug.strip("_")


def metrics_from_table(table) -> Dict[str, dict]:
    """Extract named metrics from a :class:`~repro.eval.report.Table`.

    Each numeric cell becomes one metric ``<row_label>.<column>`` where
    the row label joins the row's string cells (the key columns).
    All-numeric rows are labelled by their first cell (the sweep key).
    """
    metrics: Dict[str, dict] = {}
    for i, row in enumerate(table.rows):
        keys = [str(c) for c in row if isinstance(c, str)]
        if keys:
            label = _slug("_".join(keys))
        elif row and row[0] is not None:
            label = _slug(str(row[0]))
        else:
            label = f"row{i}"
        for column, cell in zip(table.columns, row):
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                continue
            metric_id = f"{label}.{_slug(column)}"
            if metric_id in metrics:
                raise ArtifactError(
                    f"table {table.title!r}: duplicate metric id "
                    f"{metric_id!r} (non-unique row labels?)"
                )
            metrics[metric_id] = {
                "value": float(cell),
                "direction": metric_direction(column),
            }
    return metrics


def capture_env() -> Dict[str, str]:
    """Provenance for the ``env`` section (informational, never compared)."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    return {
        "git_sha": sha,
        "python": sys.version.split()[0],
        "platform": _platform.system().lower(),
    }


@dataclass
class BenchArtifact:
    """One benchmark's machine-readable results (``repro.bench/v1``)."""

    name: str
    metrics: Dict[str, dict]
    env: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": BENCH_SCHEMA,
            "name": self.name,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "env": {k: self.env[k] for k in sorted(self.env)},
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          allow_nan=False)

    def save(self, path: str) -> str:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")
        return path


def make_artifact(name: str, tables,
                  env: Optional[Dict[str, str]] = None) -> BenchArtifact:
    """Build an artifact from one or more result tables.

    Metric ids from multiple tables are namespaced by a slug of each
    table's title to keep them collision-free.
    """
    if not isinstance(tables, (list, tuple)):
        tables = [tables]
    if not tables:
        raise ArtifactError(f"artifact {name!r}: no tables")
    metrics: Dict[str, dict] = {}
    for table in tables:
        extracted = metrics_from_table(table)
        prefix = "" if len(tables) == 1 else _slug(table.title) + "."
        for metric_id, record in extracted.items():
            full_id = prefix + metric_id
            if full_id in metrics:
                raise ArtifactError(
                    f"artifact {name!r}: duplicate metric {full_id!r}"
                )
            metrics[full_id] = record
    return BenchArtifact(
        name=name, metrics=metrics,
        env=capture_env() if env is None else dict(env),
    )


def load_artifact(path: str) -> BenchArtifact:
    """Read and structurally validate a ``repro.bench/v1`` file."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path!r} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != BENCH_SCHEMA:
        raise ArtifactError(
            f"{path!r}: expected schema {BENCH_SCHEMA!r}, got "
            f"{data.get('schema') if isinstance(data, dict) else type(data)}"
        )
    metrics = data.get("metrics")
    if not isinstance(metrics, dict):
        raise ArtifactError(f"{path!r}: missing metrics section")
    for metric_id, record in metrics.items():
        if (not isinstance(record, dict)
                or not isinstance(record.get("value"), (int, float))
                or record.get("direction") not in DIRECTIONS):
            raise ArtifactError(
                f"{path!r}: malformed metric {metric_id!r}: {record!r}"
            )
    return BenchArtifact(
        name=str(data.get("name", "")),
        metrics=metrics,
        env=dict(data.get("env", {})),
    )


# -- comparison ---------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline→candidate movement and verdict."""

    metric: str
    direction: str
    baseline: Optional[float]
    candidate: Optional[float]
    verdict: str  # 'ok' | 'improved' | 'regressed' | 'missing' | 'new'
    #: Baseline artifact file this metric came from (set by
    #: :func:`compare_paths`; None when comparing in-memory artifacts).
    path: Optional[str] = None

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.candidate is None:
            return None
        return self.candidate - self.baseline

    @property
    def rel_delta(self) -> Optional[float]:
        if self.delta is None or self.baseline == 0:
            return None
        return self.delta / abs(self.baseline)


@dataclass
class Comparison:
    """Outcome of a baseline-vs-candidate artifact comparison."""

    baseline_name: str
    candidate_name: str
    rel_tol: float
    abs_tol: float
    deltas: List[MetricDelta]

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas
                if d.verdict in ("regressed", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def table(self):
        """Per-metric delta table for terminal output."""
        from repro.eval.report import Table
        table = Table(
            title=(f"bench-compare: {self.baseline_name} -> "
                   f"{self.candidate_name}"),
            columns=["metric", "dir", "baseline", "candidate", "delta %",
                     "verdict"],
        )
        for d in self.deltas:
            rel = d.rel_delta
            table.add_row(
                d.metric, d.direction,
                d.baseline, d.candidate,
                None if rel is None else rel * 100.0,
                d.verdict,
            )
        table.add_note(
            f"threshold: max({self.rel_tol:.1%} of baseline, "
            f"{self.abs_tol:g}); 'info' metrics are never gated"
        )
        return table


def benchdiff_doc(comparison: Comparison) -> dict:
    """A comparison as a machine-readable ``repro.benchdiff/v1`` doc.

    ``llmnpu bench-compare --json-out`` writes this; the ``--explain``
    path consumes it to pick which regressed metrics need critpath
    attribution.  Deterministic: pure function of the comparison.
    """
    return {
        "schema": BENCHDIFF_SCHEMA,
        "baseline": comparison.baseline_name,
        "candidate": comparison.candidate_name,
        "rel_tol": comparison.rel_tol,
        "abs_tol": comparison.abs_tol,
        "ok": comparison.ok,
        "n_metrics": len(comparison.deltas),
        "n_regressed": len(comparison.regressions),
        "deltas": [
            {
                "metric": d.metric,
                "direction": d.direction,
                "baseline": d.baseline,
                "candidate": d.candidate,
                "delta": d.delta,
                "rel_delta": d.rel_delta,
                "verdict": d.verdict,
                "path": d.path,
            }
            for d in comparison.deltas
        ],
    }


def benchdiff_json(comparison: Comparison) -> str:
    """Deterministic JSON bytes of :func:`benchdiff_doc`."""
    return json.dumps(benchdiff_doc(comparison), indent=2, sort_keys=True,
                      allow_nan=False)


def compare_artifacts(baseline: BenchArtifact, candidate: BenchArtifact,
                      rel_tol: float = DEFAULT_REL_TOL,
                      abs_tol: float = DEFAULT_ABS_TOL) -> Comparison:
    """Compare two artifacts metric-by-metric.

    A directional metric regresses when it moves past
    ``max(rel_tol * |baseline|, abs_tol)`` in its bad direction, and
    improves past the same margin in its good direction.  Metrics
    missing from the candidate are regressions (a benchmark silently
    dropping a measurement must fail loudly); metrics new in the
    candidate are reported but never fail.
    """
    if rel_tol < 0 or abs_tol < 0:
        raise ArtifactError("tolerances must be non-negative")
    deltas: List[MetricDelta] = []
    for metric_id in sorted(set(baseline.metrics) | set(candidate.metrics)):
        base = baseline.metrics.get(metric_id)
        cand = candidate.metrics.get(metric_id)
        if base is None:
            deltas.append(MetricDelta(
                metric=metric_id, direction=cand["direction"],
                baseline=None, candidate=float(cand["value"]),
                verdict="new",
            ))
            continue
        direction = base["direction"]
        if cand is None:
            deltas.append(MetricDelta(
                metric=metric_id, direction=direction,
                baseline=float(base["value"]), candidate=None,
                verdict=("missing" if direction != "info" else "ok"),
            ))
            continue
        base_v, cand_v = float(base["value"]), float(cand["value"])
        margin = max(rel_tol * abs(base_v), abs_tol)
        verdict = "ok"
        if direction == "lower":
            if cand_v > base_v + margin:
                verdict = "regressed"
            elif cand_v < base_v - margin:
                verdict = "improved"
        elif direction == "higher":
            if cand_v < base_v - margin:
                verdict = "regressed"
            elif cand_v > base_v + margin:
                verdict = "improved"
        deltas.append(MetricDelta(
            metric=metric_id, direction=direction,
            baseline=base_v, candidate=cand_v, verdict=verdict,
        ))
    return Comparison(
        baseline_name=baseline.name or "baseline",
        candidate_name=candidate.name or "candidate",
        rel_tol=rel_tol, abs_tol=abs_tol, deltas=deltas,
    )


def compare_paths(baseline_path: str, candidate_path: str,
                  rel_tol: float = DEFAULT_REL_TOL,
                  abs_tol: float = DEFAULT_ABS_TOL) -> Comparison:
    """Compare two artifact files, or two directories of them pairwise.

    Directory mode matches files by name; a baseline file without a
    candidate counterpart is a regression (coverage must not silently
    shrink), while extra candidate files are ignored.
    """
    if os.path.isdir(baseline_path) != os.path.isdir(candidate_path):
        raise ArtifactError(
            "baseline and candidate must both be files or both be "
            "directories"
        )
    if not os.path.isdir(baseline_path):
        comparison = compare_artifacts(
            load_artifact(baseline_path), load_artifact(candidate_path),
            rel_tol=rel_tol, abs_tol=abs_tol,
        )
        comparison.deltas = [replace(d, path=baseline_path)
                             for d in comparison.deltas]
        return comparison
    names = sorted(
        n for n in os.listdir(baseline_path)
        if n.startswith("BENCH_") and n.endswith(".json")
    )
    if not names:
        # An empty baseline would make every comparison vacuously pass —
        # the same silent-shrink failure mode as a missing metric, so it
        # is a usage error (`llmnpu bench-compare` exits 2), never a
        # clean run.
        raise ArtifactError(
            f"no BENCH_*.json artifacts under {baseline_path!r} — "
            f"an empty baseline cannot gate anything (wrong directory?)"
        )
    deltas: List[MetricDelta] = []
    for name in names:
        base = load_artifact(os.path.join(baseline_path, name))
        cand_file = os.path.join(candidate_path, name)
        base_file = os.path.join(baseline_path, name)
        if not os.path.exists(cand_file):
            deltas.append(MetricDelta(
                metric=f"{base.name or name}.<artifact>",
                direction="info", baseline=float(len(base.metrics)),
                candidate=None, verdict="missing", path=base_file,
            ))
            continue
        cand = load_artifact(cand_file)
        prefix = base.name or name
        for d in compare_artifacts(base, cand, rel_tol=rel_tol,
                                   abs_tol=abs_tol).deltas:
            deltas.append(MetricDelta(
                metric=f"{prefix}.{d.metric}", direction=d.direction,
                baseline=d.baseline, candidate=d.candidate,
                verdict=d.verdict, path=base_file,
            ))
    return Comparison(
        baseline_name=baseline_path, candidate_name=candidate_path,
        rel_tol=rel_tol, abs_tol=abs_tol, deltas=deltas,
    )
