"""Per-request latency breakdown for the service layer.

Decomposes each :class:`~repro.core.service.ServedRequest`'s turnaround
into the components the paper's timeline arguments care about:

* ``queue_s`` — arrival to dispatch (waiting for the engine);
* ``admission_s`` — time spent in the admission controller.  The
  simulated controller decides at the arrival instant, so this is
  always 0; it is kept as an explicit component so the decomposition
  stays total if admission ever grows a cost model;
* ``retry_s`` — engine time consumed by failed execution attempts plus
  the backoff between attempts;
* ``prefill_s`` / ``decode_s`` — the successful attempt's two stages.

The invariant — checked by :func:`validate_breakdowns` and asserted by
the service benchmarks — is that the components sum to the measured
turnaround within 1e-9 s for every request, including shed ones
(rejected / cancelled / timed-out requests decompose into pure queueing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import EngineError

#: Maximum tolerated |sum(components) - turnaround| per request.
SUM_TOL_S = 1e-9


@dataclass(frozen=True)
class RequestBreakdown:
    """One request's turnaround decomposed into components."""

    request_id: int
    tier: str
    status: str
    retries: int
    queue_s: float
    admission_s: float
    retry_s: float
    prefill_s: float
    decode_s: float
    turnaround_s: float

    @property
    def components_s(self) -> float:
        return (self.queue_s + self.admission_s + self.retry_s
                + self.prefill_s + self.decode_s)

    @property
    def residual_s(self) -> float:
        """Decomposition error (should be ~float rounding, < 1e-9)."""
        return self.turnaround_s - self.components_s


def breakdown_request(record) -> RequestBreakdown:
    """Decompose one :class:`ServedRequest` (any status).

    For records the step loop produced (``record.batched``) the stage
    boundaries are measured, not estimated: ``prefill_s`` spans dispatch
    (after the retry prelude) to the last prefill chunk's completion and
    ``decode_s`` spans from there to the finish.  Under batching those
    spans include time the engine spent on *other* requests' interleaved
    items — that is the cost of sharing, and keeping it inside the
    stages is what keeps the decomposition total (summing to turnaround
    within 1e-9 s) without inventing a separate "interference"
    component the simulator cannot attribute per-stage.
    """
    queue_s = record.start_s - record.arrival_s
    prefill_s = decode_s = 0.0
    if record.status == "completed" and record.report is not None:
        if (getattr(record, "batched", False)
                and record.prefill_end_s is not None):
            retry_s = record.retry_held_s
            prefill_s = (record.prefill_end_s - record.start_s
                         - retry_s)
            decode_s = record.finish_s - record.prefill_end_s
            return RequestBreakdown(
                request_id=record.request_id,
                tier=record.tier,
                status=record.status,
                retries=record.retries,
                queue_s=queue_s,
                admission_s=0.0,
                retry_s=retry_s,
                prefill_s=prefill_s,
                decode_s=decode_s,
                turnaround_s=record.turnaround_s,
            )
        prefill_s = record.report.prefill.latency_s
        decode_s = record.report.decode_latency_s
    # Whatever engine-held time the stages don't explain is retry cost
    # (failed attempts' partial executions + exponential backoff).  For
    # shed requests service_s is 0 and this is 0; for requests that
    # timed out mid-retry it is the whole service span.
    retry_s = record.service_s - prefill_s - decode_s
    return RequestBreakdown(
        request_id=record.request_id,
        tier=record.tier,
        status=record.status,
        retries=record.retries,
        queue_s=queue_s,
        admission_s=0.0,
        retry_s=retry_s,
        prefill_s=prefill_s,
        decode_s=decode_s,
        turnaround_s=record.turnaround_s,
    )


def breakdown_requests(records: Iterable) -> List[RequestBreakdown]:
    return [breakdown_request(r) for r in records]


def validate_breakdowns(breakdowns: Iterable[RequestBreakdown],
                        tol_s: float = SUM_TOL_S) -> None:
    """Assert every decomposition sums to its turnaround within ``tol_s``."""
    for b in breakdowns:
        if abs(b.residual_s) > tol_s:
            raise EngineError(
                f"request {b.request_id}: breakdown components sum to "
                f"{b.components_s!r} but turnaround is "
                f"{b.turnaround_s!r} (residual {b.residual_s:.3e} s)"
            )


def tier_component_means(
        breakdowns: List[RequestBreakdown]) -> Dict[str, Dict[str, float]]:
    """Per-tier mean of each component over *completed* requests, plus
    shed/total counts.  Keys are tier names (sorted)."""
    by_tier: Dict[str, List[RequestBreakdown]] = {}
    for b in breakdowns:
        by_tier.setdefault(b.tier, []).append(b)
    out: Dict[str, Dict[str, float]] = {}
    for tier in sorted(by_tier):
        rows = by_tier[tier]
        done = [b for b in rows if b.status == "completed"]
        n = len(done)

        def mean(attr: str) -> float:
            if n == 0:
                return 0.0
            return sum(getattr(b, attr) for b in done) / n

        out[tier] = {
            "n_requests": float(len(rows)),
            "n_completed": float(n),
            "n_shed": float(len(rows) - n),
            "queue_s": mean("queue_s"),
            "retry_s": mean("retry_s"),
            "prefill_s": mean("prefill_s"),
            "decode_s": mean("decode_s"),
            "turnaround_s": mean("turnaround_s"),
        }
    return out


def breakdown_table(records: Iterable, title: str = "Latency breakdown"):
    """Per-tier component table (validated before rendering).

    Returns a :class:`~repro.eval.report.Table` with one row per tier:
    request counts and the mean queue/retry/prefill/decode split of
    completed requests — the report the service benchmarks print
    alongside their percentile columns.
    """
    from repro.eval.report import Table
    breakdowns = breakdown_requests(records)
    validate_breakdowns(breakdowns)
    means = tier_component_means(breakdowns)
    table = Table(
        title=title,
        columns=["tier", "requests", "completed", "shed", "queue s",
                 "retry s", "prefill s", "decode s", "turnaround s"],
    )
    for tier, m in means.items():
        table.add_row(tier, int(m["n_requests"]), int(m["n_completed"]),
                      int(m["n_shed"]), m["queue_s"], m["retry_s"],
                      m["prefill_s"], m["decode_s"], m["turnaround_s"])
    table.add_note("components sum to turnaround within 1e-9 s per "
                   "request; shed requests decompose into pure queueing")
    return table
