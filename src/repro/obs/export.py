"""Trace exporters: Chrome/Perfetto timeline and JSONL event log.

The Chrome export maps tracer tracks onto the trace format's
process/thread axes with a **stable** pid/tid assignment: processes are
the sorted unique ``proc`` names (pid 1, 2, ...), threads the sorted
unique ``thread`` names within each process.  Two runs of the same
seeded workload therefore produce byte-identical trace files — the
property ``scripts/check_determinism.sh`` enforces.

:func:`service_timeline` builds the paper's cross-layer view: the
service tracer's request spans (queued → retries → prefill → decode)
merged with the per-request :class:`~repro.hw.trace.Trace` task events
(each completed request's simulated prefill schedule and per-token
decode, shifted from its engine-relative origin onto the service
clock).  Open the saved file in https://ui.perfetto.dev or
``chrome://tracing``.

The JSONL log is the machine-readable twin: one JSON object per tracer
record (emission order) followed by one per metrics instrument;
``scripts/check_trace_schema.py`` validates it.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Instant, Span, Tracer

#: Serial-execution tolerance, matching ``Trace.validate_serial``.
_OVERLAP_TOL_S = 1e-12


def open_text(path: str, mode: str = "r"):
    """Open a text file, transparently gzipping on a ``.gz`` suffix.

    1000-device fleet traces run to hundreds of megabytes uncompressed;
    every JSONL / Chrome-trace / step-log reader and writer routes
    through here so ``foo.jsonl.gz`` Just Works.  Writes pin the gzip
    header (``mtime=0``, no embedded filename), so equal text always
    compresses to equal bytes regardless of path or wall clock —
    compressed goldens stay byte-diffable.
    """
    if path.endswith(".gz"):
        if "w" in mode:
            return io.TextIOWrapper(_DeterministicGzipWriter(path),
                                    encoding="utf-8")
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


class _DeterministicGzipWriter(gzip.GzipFile):
    """A gzip writer whose bytes depend only on the written text.

    ``GzipFile(path, ...)`` embeds the basename in the header's FNAME
    field, so renaming a golden changes its bytes; opening the raw
    stream ourselves with ``filename=""`` (and ``mtime=0``) strips both
    varying header fields.  Owns the raw stream: closing the writer
    closes it too (plain ``GzipFile`` leaves external fileobjs open).
    """

    def __init__(self, path: str):
        raw = open(path, "wb")
        try:
            super().__init__(filename="", mode="wb", fileobj=raw,
                             mtime=0)
        except Exception:
            raw.close()
            raise
        self._raw = raw

    def close(self):
        try:
            super().close()
        finally:
            self._raw.close()


def to_chrome_trace(tracer: Tracer,
                    steps: Optional[list] = None) -> List[dict]:
    """Tracer records as Chrome-trace events with stable pid/tid mapping.

    ``steps`` (a run's :class:`~repro.core.scheduler.StepRecord` list or
    their serialized dicts) additionally merges the scheduler's counter
    tracks — queue depth, batch occupancy, KV headroom — onto the
    ``service`` process (see :func:`step_counter_events`).
    """
    procs = sorted({e.proc for e in tracer.events})
    pids = {proc: i + 1 for i, proc in enumerate(procs)}
    tids: Dict[Tuple[str, str], int] = {}
    out: List[dict] = []
    for proc in procs:
        pid = pids[proc]
        out.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": proc},
        })
        threads = sorted({e.thread for e in tracer.events
                          if e.proc == proc})
        for j, thread in enumerate(threads):
            tids[(proc, thread)] = j + 1
            out.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": j + 1, "args": {"name": thread},
            })
    body: List[dict] = []
    for e in tracer.events:
        pid, tid = pids[e.proc], tids[(e.proc, e.thread)]
        if isinstance(e, Span):
            body.append({
                "name": e.name, "cat": e.cat or "task", "ph": "X",
                "pid": pid, "tid": tid, "ts": e.start_s * 1e6,
                "dur": e.duration_s * 1e6, "args": dict(e.args),
            })
        else:
            body.append({
                "name": e.name, "cat": e.cat or "task", "ph": "i",
                "s": "t", "pid": pid, "tid": tid, "ts": e.ts_s * 1e6,
                "args": dict(e.args),
            })
    if steps:
        counter_pid = pids.get("service", len(procs) + 1)
        if "service" not in pids:
            out.append({
                "name": "process_name", "ph": "M", "pid": counter_pid,
                "tid": 0, "args": {"name": "service"},
            })
        body.extend(step_counter_events(steps, pid=counter_pid))
    body.sort(key=lambda ev: (ev["ts"], ev["pid"], ev["tid"],
                              ev["ph"], ev["name"]))
    return out + body


def step_counter_events(steps, pid: int = 1) -> List[dict]:
    """Perfetto counter-track ('C') events from a run's step records.

    Three tracks, sampled at each step's start on process ``pid``:

    * ``queue depth`` — waiting requests per tier (stacked series);
    * ``batch occupancy`` — the step's prefill vs. decode token split;
    * ``kv headroom`` — budget minus reserved bytes (only when the run
      had a ``kv_budget_bytes``; without a budget the reservation is
      emitted as ``kv reserved`` instead).

    Accepts :class:`~repro.core.scheduler.StepRecord` objects or their
    ``repro.steps/v1`` dicts.  Counter events carry no duration, so
    :func:`validate_timeline`'s overlap check ignores them.
    """
    def get(step, key):
        return step[key] if isinstance(step, dict) else getattr(step, key)

    events: List[dict] = []
    for step in steps:
        ts = get(step, "start_s") * 1e6
        depths = get(step, "queue_depths")
        if not isinstance(depths, dict):
            depths = dict(depths)
        events.append({
            "name": "queue depth", "cat": "scheduler", "ph": "C",
            "pid": pid, "tid": 0, "ts": ts,
            "args": {tier: depths.get(tier, 0)
                     for tier in sorted(depths)} or {"total": 0},
        })
        events.append({
            "name": "batch occupancy", "cat": "scheduler", "ph": "C",
            "pid": pid, "tid": 0, "ts": ts,
            "args": {"prefill_tokens": get(step, "prefill_tokens"),
                     "decode_tokens": get(step, "decode_tokens")},
        })
        kv_budget = get(step, "kv_budget_bytes")
        reserved = get(step, "kv_reserved_bytes")
        if kv_budget is not None:
            events.append({
                "name": "kv headroom", "cat": "scheduler", "ph": "C",
                "pid": pid, "tid": 0, "ts": ts,
                "args": {"bytes": kv_budget - reserved},
            })
        else:
            events.append({
                "name": "kv reserved", "cat": "scheduler", "ph": "C",
                "pid": pid, "tid": 0, "ts": ts,
                "args": {"bytes": reserved},
            })
    return events


def save_chrome_trace(path: str, tracer: Tracer) -> None:
    """Write the Chrome-trace JSON (deterministic byte output)."""
    events = to_chrome_trace(tracer)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open_text(path, "w") as f:
        json.dump(events, f, sort_keys=True)
        f.write("\n")


def validate_timeline(events: List[dict], tol: float = _OVERLAP_TOL_S) -> None:
    """``Trace.validate_serial`` for Chrome events: per (pid, tid), no
    two complete ('X') events overlap.  Raises :class:`SchedulingError`.
    """
    by_track: Dict[Tuple[int, int], List[dict]] = {}
    for e in events:
        if e.get("ph") == "X":
            by_track.setdefault((e["pid"], e["tid"]), []).append(e)
    for (pid, tid), track in sorted(by_track.items()):
        track.sort(key=lambda ev: (ev["ts"], ev["ts"] + ev["dur"]))
        for a, b in zip(track, track[1:]):
            if b["ts"] < a["ts"] + a["dur"] - tol * 1e6:
                raise SchedulingError(
                    f"pid {pid} tid {tid}: events {a['name']!r} and "
                    f"{b['name']!r} overlap"
                )


def service_timeline(service, critpath: bool = False,
                     deltas: Optional[Dict[str, float]] = None) -> Tracer:
    """One merged timeline: service request spans + hw task events.

    Takes a traced :class:`~repro.core.service.LlmService` and returns a
    new tracer holding (a) every record the service emitted and (b) the
    simulated hardware schedule of every completed request — its prefill
    task events and per-token decode — shifted onto the service clock at
    the instant the successful execution attempt started.  Tracks:

    * ``service / req NNNNN`` — request lifecycle spans;
    * ``service / scheduler``, ``service / faults`` — queue ops, draws;
    * ``hw <model> / npu|cpu|gpu`` — the per-engine processor timelines.

    ``critpath=True`` stamps every hw span with an ``on_path`` arg
    (whether the task sits on its request's critical path), so Perfetto
    can highlight the gating chain — off by default to keep golden
    traces byte-identical.

    ``deltas`` (a ``{task_id: delta_s}`` map, e.g. from
    :func:`~repro.obs.diff.segment_deltas`) additionally stamps matching
    hw spans with a ``delta_ms`` arg, painting a run-to-run regression
    onto the timeline — also off by default.
    """
    merged = Tracer()
    merged.extend(service.tracer.events)
    for record in service.requests:
        report = record.report
        if record.status != "completed" or report is None:
            continue
        on_path = frozenset()
        if critpath:
            from repro.obs.critical_path import request_critical_path
            path = request_critical_path(
                record, decode_backend=service.config.decode_backend)
            on_path = frozenset(seg.task_id for seg in path.segments)
        # The successful attempt spans [finish - e2e, finish]; everything
        # before it on this request is queueing/retry, which has no hw
        # schedule (failed attempts die inside the driver).
        t0 = record.finish_s - report.e2e_latency_s
        timeline = report.timeline(service.config.decode_backend)
        proc = f"hw {record.model}"
        for ev in timeline.events:
            extra = ({"on_path": ev.task_id in on_path} if critpath
                     else {})
            if deltas is not None and ev.task_id in deltas:
                extra["delta_ms"] = deltas[ev.task_id] * 1e3
            merged.span(
                ev.task_id, proc=proc, thread=ev.proc,
                start_s=t0 + ev.start_s, end_s=t0 + ev.end_s,
                cat=ev.tag or "task", request_id=record.request_id,
                **extra,
            )
    return merged


def export_service_trace(service, path: str,
                         validate: bool = True,
                         counters: bool = False,
                         critpath: bool = False,
                         deltas: Optional[Dict[str, float]] = None,
                         ) -> List[dict]:
    """Merge, optionally validate, and save one service run's timeline.

    ``counters`` merges the scheduler counter tracks (queue depth,
    batch occupancy, KV headroom) derived from the run's step records —
    off by default so golden traces stay byte-identical.  ``critpath``
    stamps hw spans with an ``on_path`` arg and ``deltas`` with a
    ``delta_ms`` arg (see :func:`service_timeline`).  A ``.gz`` path
    writes the trace gzipped.
    """
    events = to_chrome_trace(service_timeline(service, critpath=critpath,
                                              deltas=deltas),
                             steps=service.steps if counters else None)
    if validate:
        validate_timeline(events)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open_text(path, "w") as f:
        json.dump(events, f, sort_keys=True)
        f.write("\n")
    return events


# -- JSONL event log ----------------------------------------------------------


def jsonl_records(tracer: Optional[Tracer] = None,
                  metrics: Optional[MetricsRegistry] = None) -> List[dict]:
    """The JSONL export as a list of dicts (trace order, then metrics)."""
    records: List[dict] = []
    if tracer is not None:
        records.extend(e.to_record() for e in tracer.events)
    if metrics is not None:
        records.extend(metrics.snapshot())
    return records


def write_jsonl(path: str, tracer: Optional[Tracer] = None,
                metrics: Optional[MetricsRegistry] = None) -> int:
    """Write one JSON object per line; returns the record count."""
    records = jsonl_records(tracer, metrics)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open_text(path, "w") as f:
        for record in records:
            f.write(json.dumps(record, sort_keys=True))
            f.write("\n")
    return len(records)


def read_jsonl(path: str) -> List[dict]:
    """Load a (possibly gzipped) JSONL event log back into dicts."""
    records = []
    with open_text(path) as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
