"""Per-request wait attribution: *why* did this request wait?

Folds a ``repro.steps/v1`` log (:mod:`repro.obs.steplog`) into one
:class:`WaitAttribution` per request, answering the question the
breakdown identity (:mod:`repro.obs.breakdown`) leaves open: the
breakdown says a request queued for ``queue_s`` seconds, this module
says **behind whom** and **held by which knob**.

The reconstruction rests on the simulator being work-conserving: an
engine never idles while any request for its model is queued, so the
target's queue window ``[arrival_s, start_s]`` is tiled exactly by
engine time *owned by other requests* — step items (batched path),
retry preludes, and whole service spans (legacy path).  The attribution
therefore satisfies, for every request and both serving paths::

    sum(behind.values()) + idle_s + admission_s + retry_s
        == queue_s + admission_s + retry_s          (the traced wait)

with ``idle_s`` — the part of the window covered by nobody — equal to
zero up to float rounding.  :func:`validate_explanations` enforces both
within :data:`~repro.obs.breakdown.SUM_TOL_S` (1e-9 s); the hypothesis
suite replays the PR-6 invariant workloads through it.

Stalls classify the same covered time by the *reason* the scheduler
left the target waiting that moment (KV budget, concurrency cap, plain
backlog), and ``interference_s`` measures the knob-induced stretch: the
engine time other requests' interleaved items consumed inside the
target's own residency (zero on the legacy path, where residency is
exclusive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.breakdown import SUM_TOL_S
from repro.obs.steplog import StepLogError, as_steps_doc

#: Stall causes, in display order.
STALL_CAUSES = ("kv-budget", "concurrency", "backlog")


@dataclass(frozen=True)
class WaitAttribution:
    """One request's wait, attributed.

    ``wait_s`` is the traced queue + admission + retry time (the
    breakdown components preceding the first prefill chunk).  ``behind``
    maps the other requests whose engine time tiled the queue window to
    the seconds each consumed, largest first; ``stalls`` classifies the
    same seconds by cause; ``idle_s`` is the uncovered residue (~0 by
    work conservation); ``interference_s`` the engine time others'
    items consumed inside this request's own residency (batched only).
    """

    request_id: int
    tier: str
    status: str
    wait_s: float
    queue_s: float
    admission_s: float
    retry_s: float
    behind: Tuple[Tuple[int, float], ...]
    stalls: Tuple[Tuple[str, float], ...]
    idle_s: float
    interference_s: float

    @property
    def behind_s(self) -> float:
        """Queue time attributed to other requests' engine work."""
        return sum(s for _, s in self.behind)

    @property
    def attributed_s(self) -> float:
        """The reconstruction's total — must equal :attr:`wait_s`."""
        return (self.behind_s + self.idle_s + self.admission_s
                + self.retry_s)

    @property
    def residual_s(self) -> float:
        return self.wait_s - self.attributed_s


def _overlap(t0: float, t1: float, w0: float, w1: float) -> float:
    return max(0.0, min(t1, w1) - max(t0, w0))


def _busy_intervals(doc: dict) -> Dict[str, List[tuple]]:
    """Engine-busy intervals per model: ``(owner_id, t0, t1, step)``.

    ``step`` is the owning step's serialized record for batched items
    (used for stall classification) and None for retry preludes and
    legacy whole-request spans.
    """
    reqs = {r["request_id"]: r for r in doc["requests"]}
    out: Dict[str, List[tuple]] = {}
    for step in doc["steps"]:
        for item in step["items"]:
            owner = reqs.get(item["request_id"])
            model = owner["model"] if owner else ""
            out.setdefault(model, []).append(
                (item["request_id"], item["start_s"], item["end_s"],
                 step))
    for r in doc["requests"]:
        model = r["model"]
        if r.get("batched"):
            if r["status"] == "completed":
                held = r.get("retry_held_s") or 0.0
                if held > 0.0:
                    out.setdefault(model, []).append(
                        (r["request_id"], r["start_s"],
                         r["start_s"] + held, None))
            elif r["finish_s"] > r["start_s"]:
                # the retry prelude died (failed / timed out mid-retry)
                out.setdefault(model, []).append(
                    (r["request_id"], r["start_s"], r["finish_s"], None))
        elif r["finish_s"] > r["start_s"]:
            # legacy path: the whole service span holds the engine
            out.setdefault(model, []).append(
                (r["request_id"], r["start_s"], r["finish_s"], None))
    return out


def _stall_cause(step: Optional[dict], request_id: int) -> str:
    if step is not None:
        if step.get("kv_blocked_id") == request_id:
            return "kv-budget"
        if step.get("concurrency_full"):
            return "concurrency"
    return "backlog"


def explain_request(source, request_id: int) -> WaitAttribution:
    """Attribute one request's wait (source: doc, logger, or service)."""
    doc = as_steps_doc(source)
    atts = _explain(doc, only=request_id)
    if not atts:
        known = [r["request_id"] for r in doc["requests"]]
        raise StepLogError(
            f"unknown request id {request_id}; the step log covers "
            f"{len(known)} requests"
            + (f" ({min(known)}..{max(known)})" if known else "")
        )
    return atts[0]


def explain_all(source) -> List[WaitAttribution]:
    """Attribute every request in the step log (sorted by id)."""
    return _explain(as_steps_doc(source))


def _explain(doc: dict, only: Optional[int] = None
             ) -> List[WaitAttribution]:
    busy = _busy_intervals(doc)
    out: List[WaitAttribution] = []
    for r in doc["requests"]:
        rid = r["request_id"]
        if only is not None and rid != only:
            continue
        b = r["breakdown"]
        w0, w1 = r["arrival_s"], r["start_s"]
        behind: Dict[int, float] = {}
        stalls: Dict[str, float] = {}
        covered = 0.0
        for owner, t0, t1, step in busy.get(r["model"], ()):
            if owner == rid:
                continue
            part = _overlap(t0, t1, w0, w1)
            if part <= 0.0:
                continue
            covered += part
            behind[owner] = behind.get(owner, 0.0) + part
            cause = _stall_cause(step, rid)
            stalls[cause] = stalls.get(cause, 0.0) + part
        idle_s = b["queue_s"] - covered
        interference_s = 0.0
        if r.get("batched") and r["status"] == "completed":
            own = sum(
                item["end_s"] - item["start_s"]
                for step in doc["steps"] for item in step["items"]
                if item["request_id"] == rid)
            held = r.get("retry_held_s") or 0.0
            interference_s = (r["finish_s"] - r["start_s"] - held) - own
        out.append(WaitAttribution(
            request_id=rid,
            tier=r["tier"],
            status=r["status"],
            wait_s=b["queue_s"] + b["admission_s"] + b["retry_s"],
            queue_s=b["queue_s"],
            admission_s=b["admission_s"],
            retry_s=b["retry_s"],
            behind=tuple(sorted(behind.items(),
                                key=lambda kv: (-kv[1], kv[0]))),
            stalls=tuple((c, stalls[c]) for c in STALL_CAUSES
                         if c in stalls),
            idle_s=idle_s,
            interference_s=interference_s,
        ))
    out.sort(key=lambda a: a.request_id)
    return out


def validate_explanations(attributions, tol_s: float = SUM_TOL_S) -> None:
    """Assert the attribution identity for every request.

    Two checks per request, both within ``tol_s``: the attributed total
    equals the traced wait (queue + admission + retry), and the idle
    residue is zero — i.e. the behind-whom map *fully* covers the queue
    window with other requests' engine time (work conservation).
    """
    for att in attributions:
        if abs(att.residual_s) > tol_s:
            raise StepLogError(
                f"request {att.request_id}: attribution sums to "
                f"{att.attributed_s!r} but the traced wait is "
                f"{att.wait_s!r} (residual {att.residual_s:.3e} s)"
            )
        if abs(att.idle_s) > tol_s:
            raise StepLogError(
                f"request {att.request_id}: {att.idle_s:.3e} s of its "
                f"queue window is attributed to nobody (work "
                f"conservation violated)"
            )


def explain_table(source, title: str = "Wait attribution"):
    """One row per request: the wait split the CLI and reports print."""
    from repro.eval.report import Table
    atts = explain_all(source)
    validate_explanations(atts)
    table = Table(
        title=title,
        columns=["req", "tier", "status", "wait s", "behind s",
                 "retry s", "idle s", "top blocker", "interference s"],
    )
    for att in atts:
        top = (f"req {att.behind[0][0]:05d} ({att.behind[0][1]:.3f} s)"
               if att.behind else "-")
        table.add_row(att.request_id, att.tier, att.status, att.wait_s,
                      att.behind_s, att.retry_s, att.idle_s, top,
                      att.interference_s)
    table.add_note("behind + idle + admission + retry == traced wait "
                   "within 1e-9 s per request")
    return table


def explain_lines(source, request_id: int) -> List[str]:
    """The ``llmnpu explain <id>`` narrative for one request."""
    doc = as_steps_doc(source)
    att = explain_request(doc, request_id)
    req = next(r for r in doc["requests"]
               if r["request_id"] == request_id)
    lines = [
        f"request {att.request_id:05d} [{att.tier}] -> {att.status}",
        f"  arrival {req['arrival_s']:.6f} s, start "
        f"{req['start_s']:.6f} s, finish {req['finish_s']:.6f} s",
        f"  waited {att.wait_s:.6f} s "
        f"(queue {att.queue_s:.6f} + admission {att.admission_s:.6f} "
        f"+ retry {att.retry_s:.6f})",
    ]
    if att.behind:
        lines.append("  behind:")
        for owner, seconds in att.behind:
            lines.append(f"    req {owner:05d}  {seconds:.6f} s")
    else:
        lines.append("  behind: nobody (dispatched on arrival)")
    if att.stalls:
        stalls = ", ".join(f"{c} {s:.6f} s" for c, s in att.stalls)
        lines.append(f"  stalls: {stalls}")
    if att.interference_s > 0.0:
        lines.append(f"  interference inside residency: "
                     f"{att.interference_s:.6f} s "
                     f"(other requests' interleaved chunks/tokens)")
    decisions = [d for d in doc["decisions"]
                 if d["request_id"] == request_id]
    if decisions:
        lines.append("  decisions:")
        for d in decisions:
            quantity = ""
            if d.get("quantity") is not None:
                quantity = f"  {d['quantity']}={d['value']}"
                if d.get("limit") is not None:
                    quantity += f" (limit {d['limit']})"
            step = f" step {d['step']}" if d.get("step") is not None \
                else ""
            lines.append(f"    t={d['t_s']:.6f}  "
                         f"{d['action']}{step}{quantity}")
    lines.append(f"  reconciliation: attributed {att.attributed_s:.9f} s"
                 f" vs traced wait {att.wait_s:.9f} s "
                 f"(residual {att.residual_s:.2e} s, idle "
                 f"{att.idle_s:.2e} s)")
    return lines
