"""Counterfactual latency estimation over captured task DAGs.

The critical path (:mod:`repro.obs.critical_path`) says which tasks
gated a request; this module answers the next question — *what would
have happened* if an operator ran 2x faster, a stage moved to another
processor, or DMA/compute overlap were enabled.  It captures the exact
task DAG an engine would schedule (prefill subgraphs, shadow and sync
tasks, plus a synthetic decode chain gated on the prefill sinks),
applies typed perturbations, and replays the schedule through an
**independent** event loop that mirrors the simulator's dispatch
semantics — processor declaration order, one task per newly-idle
processor, co-terminating completion draining, policy tie-breaks.

Because the replay is a separate implementation, validating its
predictions against an actual re-simulation
(:func:`resimulate` runs the perturbed DAG through the real
:class:`~repro.hw.sim.Simulator`) is a meaningful check, and the tests
pin agreement within 1e-9 s on golden workloads for all three
perturbation classes: operator speedup, processor reassignment, and
DMA overlap.  On simulated hardware the re-simulation is ground truth
— a luxury profilers of physical devices never have.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.hw.sim import SimContext, Simulator, Task

#: Maximum tolerated |prediction - re-simulation| the tests enforce.
WHATIF_TOL_S = 1e-9


class WhatIfError(ReproError):
    """Capture, perturbation, or replay failure."""


def _tag_matches(task_tag: str, pattern: str) -> bool:
    """A perturbation tag matches exactly or on a dotted prefix, so
    ``sg1`` also covers ``sg1.float`` but not ``sg10``."""
    return task_tag == pattern or task_tag.startswith(pattern + ".")


@dataclass(frozen=True)
class OperatorSpeedup:
    """"Operator X became ``factor`` times faster" (tag-matched)."""

    tag: str
    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise WhatIfError(f"speedup factor must be positive, "
                              f"got {self.factor!r}")

    @property
    def label(self) -> str:
        return f"{self.tag} {self.factor:g}x faster"

    def apply(self, task: Task) -> Task:
        if not _tag_matches(task.tag, self.tag):
            return task
        return replace(task, duration_s=task.duration_s / self.factor)


@dataclass(frozen=True)
class ProcessorReassign:
    """"Stage X runs on processor P instead" (tag-matched).

    ``duration_scale`` rescales the matched durations for the new
    processor's speed (1.0 keeps them — a pure placement change).
    """

    tag: str
    proc: str
    duration_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.proc:
            raise WhatIfError("reassignment needs a target processor")
        if self.duration_scale <= 0:
            raise WhatIfError(f"duration_scale must be positive, "
                              f"got {self.duration_scale!r}")

    @property
    def label(self) -> str:
        scale = ("" if self.duration_scale == 1.0
                 else f" at {self.duration_scale:g}x duration")
        return f"{self.tag} -> {self.proc}{scale}"

    def apply(self, task: Task) -> Task:
        if not _tag_matches(task.tag, self.tag):
            return task
        return replace(task, proc=self.proc,
                       duration_s=task.duration_s * self.duration_scale)


@dataclass(frozen=True)
class DmaOverlap:
    """Per-task durations from a DMA-rebuilt engine (id-matched).

    Built by :func:`dma_overlap_perturbation`: the task graph's ids and
    dependencies are a pure function of the chunk plan shapes, so a
    :class:`~repro.hw.dma.DmaConfig` rebuild changes only subgraph
    latencies — captured here as an id -> new-duration mapping.
    """

    durations: Dict[str, float] = field(default_factory=dict)
    name: str = "dma-overlap"

    @property
    def label(self) -> str:
        return f"{self.name} ({len(self.durations)} tasks)"

    def apply(self, task: Task) -> Task:
        new = self.durations.get(task.task_id)
        if new is None:
            return task
        return replace(task, duration_s=new)


@dataclass(frozen=True)
class CapturedRun:
    """The exact DAG one engine inference would schedule."""

    source: str
    processors: Tuple[str, ...]
    policy: str
    tasks: Tuple[Task, ...]
    prefill_ids: frozenset
    extra_latency_s: float
    output_tokens: int
    decode_proc: str


@dataclass(frozen=True)
class WhatIfOutcome:
    """Predicted (or re-simulated) latency figures of one scenario."""

    ttft_s: float
    itl_s: float
    e2e_s: float

    def to_dict(self) -> dict:
        return {"ttft_s": self.ttft_s, "itl_s": self.itl_s,
                "e2e_s": self.e2e_s}


@dataclass(frozen=True)
class WhatIfReport:
    """Baseline vs counterfactual, with the deltas that matter."""

    source: str
    perturbations: Tuple[str, ...]
    baseline: WhatIfOutcome
    predicted: WhatIfOutcome

    @property
    def ttft_delta_s(self) -> float:
        return self.predicted.ttft_s - self.baseline.ttft_s

    @property
    def itl_delta_s(self) -> float:
        return self.predicted.itl_s - self.baseline.itl_s

    @property
    def e2e_delta_s(self) -> float:
        return self.predicted.e2e_s - self.baseline.e2e_s

    @property
    def ttft_speedup(self) -> float:
        if self.predicted.ttft_s <= 0:
            return float("inf")
        return self.baseline.ttft_s / self.predicted.ttft_s

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "perturbations": list(self.perturbations),
            "baseline": self.baseline.to_dict(),
            "predicted": self.predicted.to_dict(),
            "ttft_delta_s": self.ttft_delta_s,
            "itl_delta_s": self.itl_delta_s,
            "e2e_delta_s": self.e2e_delta_s,
            "ttft_speedup": self.ttft_speedup,
        }


# -- capture ------------------------------------------------------------------


def capture_engine_run(engine, prompt_tokens: int,
                       output_tokens: int = 0,
                       cached_tokens: int = 0) -> CapturedRun:
    """Capture the DAG ``engine.infer(prompt_tokens, output_tokens)``
    would schedule, without running the scheduler.

    Replicates the engine's plan construction exactly (chunk plans are
    memoized per builder, so latencies are bit-identical to what the
    engine itself would see) and appends one decode task per output
    token on the decode backend, gated on the prefill sinks — so decode
    perturbations move ITL and prefill perturbations move TTFT in one
    unified replay.
    """
    from repro.core.dependency import build_task_graph

    if prompt_tokens <= 0:
        raise WhatIfError("prompt_tokens must be positive")
    if output_tokens < 0 or cached_tokens < 0:
        raise WhatIfError("output/cached token counts must be "
                          "non-negative")
    cfg = engine.config
    include_shadow = cfg.quant_mode == "shadow"
    if cfg.chunking:
        plans = engine.graph.plans_for_prompt(prompt_tokens, cached_tokens)
        extra = 0.0
    else:
        rows = max(32, prompt_tokens)
        plans = [engine.builder.build_chunk(
            0, rows, engine.shadow_profiles if include_shadow else None)]
        extra = engine.graph.naive_per_prompt_preparation_s()
    tasks = list(build_task_graph(plans, float_proc=cfg.float_backend,
                                  include_shadow=include_shadow,
                                  shadow_proc=cfg.shadow_backend))
    processors = ["npu"]
    for proc in (cfg.float_backend, cfg.shadow_backend):
        if proc and proc not in processors:
            processors.append(proc)
    prefill_ids = frozenset(t.task_id for t in tasks)
    if output_tokens > 0:
        decode_s = engine.decode(cached_tokens + prompt_tokens,
                                 output_tokens)
        per_token = decode_s / output_tokens
        depended = set()
        for t in tasks:
            depended.update(t.deps)
        sinks = tuple(t.task_id for t in tasks
                      if t.task_id not in depended)
        prev: Tuple[str, ...] = sinks
        for i in range(output_tokens):
            tasks.append(Task(
                task_id=f"decode.t{i}", proc=cfg.decode_backend,
                duration_s=per_token, deps=prev, tag="decode",
            ))
            prev = (f"decode.t{i}",)
        if cfg.decode_backend not in processors:
            processors.append(cfg.decode_backend)
    return CapturedRun(
        source=f"{engine.model.name}/{engine.device.name} "
               f"prompt={prompt_tokens} out={output_tokens}",
        processors=tuple(processors),
        policy=cfg.policy,
        tasks=tuple(tasks),
        prefill_ids=prefill_ids,
        extra_latency_s=extra,
        output_tokens=output_tokens,
        decode_proc=cfg.decode_backend,
    )


# -- the independent replay ---------------------------------------------------


def _resolve_policy(policy):
    from repro.core.scheduler import get_policy
    if isinstance(policy, str):
        return get_policy(policy)
    return policy


def replay_schedule(tasks: Sequence[Task], processors: Sequence[str],
                    policy) -> Dict[str, Tuple[float, float]]:
    """Replay the scheduler's choices over a task list.

    An independent event loop mirroring
    :meth:`~repro.hw.sim.Simulator._run_generic` decision-for-decision:
    processors polled in declaration order, one task dispatched per
    newly-idle processor, the policy fed a copy of the ready list and a
    live :class:`~repro.hw.sim.SimContext`, co-terminating completions
    drained before dispatch (drained tasks fold their dependents first,
    the first-popped one after).  Returns ``{task_id: (start, end)}``.
    """
    policy = _resolve_policy(policy)
    processors = list(processors)
    by_id = {t.task_id: t for t in tasks}
    if len(by_id) != len(tasks):
        raise WhatIfError("duplicate task ids in replay")
    known = set(processors)
    for t in tasks:
        if t.proc not in known:
            raise WhatIfError(
                f"task {t.task_id}: unknown processor {t.proc!r}")
        for d in t.deps:
            if d not in by_id:
                raise WhatIfError(
                    f"task {t.task_id}: unknown dependency {d!r}")

    submit_index = {t.task_id: i for i, t in enumerate(tasks)}
    dependents: Dict[str, List[str]] = {t.task_id: [] for t in tasks}
    missing: Dict[str, int] = {}
    dup_deps = set()
    for t in tasks:
        unique = set(t.deps)
        missing[t.task_id] = len(unique)
        if len(unique) != len(t.deps):
            dup_deps.add(t.task_id)
        for d in unique:
            dependents[d].append(t.task_id)

    ready: Dict[str, List[Task]] = {p: [] for p in processors}
    for t in tasks:
        if missing[t.task_id] == 0:
            ready[t.proc].append(t)

    completed = set()
    context = SimContext(
        tasks=by_id,
        submit_index=submit_index,
        dependents={k: tuple(v) for k, v in dependents.items()},
        completed=completed,
        now_s=0.0,
        missing=missing,
        dup_deps=frozenset(dup_deps),
    )

    schedule: Dict[str, Tuple[float, float]] = {}
    running: List[Tuple[float, int, Task]] = []
    seq = itertools.count()
    proc_busy = {p: False for p in processors}
    now = 0.0
    n_done = 0

    def dispatch() -> None:
        context.now_s = now
        for proc in processors:
            if proc_busy[proc] or not ready[proc]:
                continue
            task = policy.select(proc, list(ready[proc]), context)
            if task is None:
                continue
            if task not in ready[proc]:
                raise WhatIfError(
                    f"policy {policy.name!r} selected a non-ready task")
            ready[proc].remove(task)
            proc_busy[proc] = True
            end = now + task.duration_s
            heapq.heappush(running, (end, next(seq), task))
            schedule[task.task_id] = (now, end)

    dispatch()
    while running:
        now, _, finished = heapq.heappop(running)
        proc_busy[finished.proc] = False
        completed.add(finished.task_id)
        n_done += 1
        while running and running[0][0] == now:
            _, _, other = heapq.heappop(running)
            proc_busy[other.proc] = False
            completed.add(other.task_id)
            n_done += 1
            for dep_id in dependents[other.task_id]:
                missing[dep_id] -= 1
                if missing[dep_id] == 0:
                    t = by_id[dep_id]
                    ready[t.proc].append(t)
        for dep_id in dependents[finished.task_id]:
            missing[dep_id] -= 1
            if missing[dep_id] == 0:
                t = by_id[dep_id]
                ready[t.proc].append(t)
        dispatch()

    if n_done != len(tasks):
        stuck = [t.task_id for t in tasks if t.task_id not in completed]
        raise WhatIfError(
            f"replay deadlock: {len(stuck)} tasks never became ready: "
            f"{stuck[:5]}")
    return schedule


# -- outcomes -----------------------------------------------------------------


def perturb_tasks(run: CapturedRun,
                  perturbations: Sequence) -> Tuple[Task, ...]:
    """Apply perturbations in order to every task of a captured run."""
    out = []
    for task in run.tasks:
        for p in perturbations:
            task = p.apply(task)
        out.append(task)
    return tuple(out)


def _extended_processors(run: CapturedRun,
                         tasks: Sequence[Task]) -> List[str]:
    """The run's processors plus any a reassignment introduced, in
    first-occurrence order (declaration order matters for dispatch)."""
    procs = list(run.processors)
    for t in tasks:
        if t.proc not in procs:
            procs.append(t.proc)
    return procs


def _outcome(schedule: Dict[str, Tuple[float, float]],
             run: CapturedRun) -> WhatIfOutcome:
    prefill_end = max(schedule[tid][1] for tid in schedule
                      if tid in run.prefill_ids)
    makespan = max(end for _start, end in schedule.values())
    if run.output_tokens > 0:
        decode = [(start, end) for tid, (start, end) in schedule.items()
                  if tid not in run.prefill_ids]
        span = (max(end for _s, end in decode)
                - min(start for start, _e in decode))
        itl = span / run.output_tokens
    else:
        itl = 0.0
    return WhatIfOutcome(
        ttft_s=prefill_end + run.extra_latency_s,
        itl_s=itl,
        e2e_s=makespan + run.extra_latency_s,
    )


def predict(run: CapturedRun, perturbations: Sequence) -> WhatIfReport:
    """Predicted TTFT/ITL/e2e deltas of a perturbed run (replay-based)."""
    baseline = _outcome(
        replay_schedule(run.tasks, run.processors, run.policy), run)
    tasks = perturb_tasks(run, perturbations)
    procs = _extended_processors(run, tasks)
    predicted = _outcome(replay_schedule(tasks, procs, run.policy), run)
    return WhatIfReport(
        source=run.source,
        perturbations=tuple(p.label for p in perturbations),
        baseline=baseline,
        predicted=predicted,
    )


def resimulate(run: CapturedRun,
               perturbations: Sequence) -> WhatIfOutcome:
    """Ground truth: the perturbed DAG through the real simulator."""
    tasks = list(perturb_tasks(run, perturbations))
    procs = _extended_processors(run, tasks)
    trace = Simulator(procs).run(tasks, _resolve_policy(run.policy))
    schedule = {e.task_id: (e.start_s, e.end_s) for e in trace.events}
    return _outcome(schedule, run)


# -- DMA overlap capture ------------------------------------------------------


def engine_with_dma(engine, dma):
    """A fresh engine identical to ``engine`` but built with an explicit
    :class:`~repro.hw.dma.DmaConfig` weight-streaming model."""
    from repro.core.engine import LlmNpuEngine
    from repro.graph.builder import GraphBuilder
    from repro.graph.chunk import ChunkSharingGraph

    clone = LlmNpuEngine(engine.model, engine.device, engine.config)
    clone.build_options = replace(clone.build_options, dma=dma)
    clone.builder = GraphBuilder(engine.model, engine.device,
                                 clone.build_options)
    cfg = clone.config
    max_chunks = min(cfg.max_chunks,
                     max(1, engine.model.max_context // cfg.chunk_len))
    clone.graph = ChunkSharingGraph(
        clone.builder, cfg.chunk_len, max_chunks,
        clone.shadow_profiles if cfg.quant_mode == "shadow" else None,
    )
    return clone


def dma_overlap_perturbation(engine, prompt_tokens: int, dma,
                             output_tokens: int = 0,
                             cached_tokens: int = 0):
    """The "DMA overlap on" perturbation for one engine + prompt.

    Rebuilds the engine with ``dma`` and diffs the two captured DAGs:
    ids and dependencies must be identical (the graph's shape is a pure
    function of the chunk plan ladder; only NPU linear latencies move),
    and the changed durations become a :class:`DmaOverlap`.  Returns
    ``(perturbation, clone)`` — the clone is the ground-truth engine
    for cross-checking measured deltas.
    """
    clone = engine_with_dma(engine, dma)
    base = capture_engine_run(engine, prompt_tokens,
                              output_tokens=output_tokens,
                              cached_tokens=cached_tokens)
    streamed = capture_engine_run(clone, prompt_tokens,
                                  output_tokens=output_tokens,
                                  cached_tokens=cached_tokens)
    base_ids = {t.task_id: t for t in base.tasks}
    new_ids = {t.task_id: t for t in streamed.tasks}
    if set(base_ids) != set(new_ids):
        raise WhatIfError(
            "DMA rebuild changed the task-graph shape "
            f"({len(base_ids)} vs {len(new_ids)} tasks)")
    durations = {}
    for tid, new in new_ids.items():
        old = base_ids[tid]
        if new.deps != old.deps or new.proc != old.proc:
            raise WhatIfError(
                f"DMA rebuild changed task {tid!r} structure")
        if new.duration_s != old.duration_s:
            durations[tid] = new.duration_s
    name = "dma-unbounded" if dma.buffers >= 2 ** 16 \
        else f"dma-buffers-{dma.buffers}"
    return DmaOverlap(durations=durations, name=name), clone


# -- CLI spec parsing ---------------------------------------------------------


def speedup_from_spec(spec: str) -> OperatorSpeedup:
    """Parse ``TAG=FACTOR`` (e.g. ``sg1=2`` — SG_QKV twice as fast)."""
    tag, sep, factor = spec.partition("=")
    if not sep or not tag:
        raise WhatIfError(
            f"speedup spec must be TAG=FACTOR, got {spec!r}")
    try:
        return OperatorSpeedup(tag=tag, factor=float(factor))
    except ValueError:
        raise WhatIfError(
            f"speedup factor in {spec!r} is not a number") from None


def reassign_from_spec(spec: str) -> ProcessorReassign:
    """Parse ``TAG=PROC[*SCALE]`` (e.g. ``sg2=npu*0.5`` — attention on
    the NPU at half duration)."""
    tag, sep, rest = spec.partition("=")
    if not sep or not tag or not rest:
        raise WhatIfError(
            f"reassign spec must be TAG=PROC[*SCALE], got {spec!r}")
    proc, star, scale = rest.partition("*")
    try:
        return ProcessorReassign(
            tag=tag, proc=proc,
            duration_scale=float(scale) if star else 1.0)
    except ValueError:
        raise WhatIfError(
            f"reassign scale in {spec!r} is not a number") from None
