"""Profiler: per-operator / per-processor / per-phase cost attribution.

Rolls the raw :class:`~repro.hw.trace.Trace` the simulator produces into
the attribution reports the paper's claims are made of (Figures 1,
14-17, Table 3/5):

* **Time attribution** — busy seconds per (processor, operator tag),
  with the invariant that per-processor attributed busy time plus
  classified idle time equals the profiled window within 1e-9 s
  (:func:`validate_profile`).
* **Idle-cause classification** — every idle second on every processor
  is assigned one cause: ``graph_build`` (the serial graph
  build/optimize window before execution), ``sync_wait`` (a §3.3
  CPU↔NPU merge fence is executing elsewhere), ``dependency`` (another
  processor is running work this one is waiting on), or ``starvation``
  (nothing is running anywhere — the queue is empty).  This refines
  :meth:`~repro.hw.trace.Trace.bubble_rate` from a single number into
  a causal breakdown.
* **Roofline** — achieved MatMul throughput per processor (the ``ops``
  MAC counts threaded through :class:`~repro.hw.trace.TraceEvent`
  divided by the MatMul-bearing busy time) against the processor's
  Table-3-calibrated ``peak_ops``.  NPU fractions can exceed 1.0 when
  the §4 equivalent-shape optimization beats the baseline kernel the
  peak was calibrated on — that excess is the optimization's measured
  gain, not an accounting error.
* **Energy attribution** — per-event joules mirroring the exact
  arithmetic of :meth:`~repro.hw.energy.EnergyModel.energy` (full
  active power, the §4.2 helper fraction for float-backend prefill
  work, idle power for gaps, platform power over the window), so the
  attributed total reconciles with the engine's reported
  ``EnergyBreakdown`` totals.
* **Flamegraph output** — collapsed-stack lines (``proc;c0;l3;sg1 <ns>``)
  consumable by standard flamegraph tooling.

Reports serialize to schema-versioned JSON (``repro.profile/v1``) with
fully deterministic bytes — no timestamps, no environment capture — so
``scripts/check_determinism.sh`` can byte-diff two runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.hw.energy import HELPER_POWER_FRACTION
from repro.hw.processor import DType, ProcKind, ProcessorSpec
from repro.hw.trace import Trace

#: Schema identifier stamped into every profile JSON.
from repro.obs.schemas import PROFILE_SCHEMA  # noqa: E402 (constant table)

#: Idle-cause categories, in classification priority order.
IDLE_CAUSES = ("graph_build", "sync_wait", "dependency", "starvation")

#: Maximum tolerated |busy + idle - window| per processor.
PROFILE_TOL_S = 1e-9


class ProfileError(ReproError):
    """Profile construction or validation failure."""


# -- building blocks ----------------------------------------------------------


@dataclass(frozen=True)
class OperatorCost:
    """Attributed cost of one (processor, operator-tag) bucket."""

    proc: str
    tag: str
    n_events: int
    busy_s: float
    ops: float

    @property
    def key(self) -> Tuple[str, str]:
        return (self.proc, self.tag)


@dataclass(frozen=True)
class ProcessorProfile:
    """One processor's attributed time, idle causes, and roofline."""

    proc: str
    busy_s: float
    span_s: float
    idle_by_cause: Dict[str, float]
    matmul_busy_s: float
    matmul_ops: float
    peak_ops_per_s: Optional[float] = None

    @property
    def idle_s(self) -> float:
        return sum(self.idle_by_cause.values())

    @property
    def bubble_rate(self) -> float:
        """Idle fraction of the active span (§3.4's metric)."""
        if self.span_s <= 0:
            return 0.0
        return max(0.0, 1.0 - self.busy_s / self.span_s)

    @property
    def achieved_ops_per_s(self) -> float:
        """MatMul throughput over the MatMul-bearing busy time."""
        if self.matmul_busy_s <= 0:
            return 0.0
        return self.matmul_ops / self.matmul_busy_s

    @property
    def roofline_fraction(self) -> Optional[float]:
        """Achieved / calibrated-peak MatMul throughput (None without a
        device calibration)."""
        if self.peak_ops_per_s is None or self.peak_ops_per_s <= 0:
            return None
        return self.achieved_ops_per_s / self.peak_ops_per_s


def calibrated_peak_ops(spec: ProcessorSpec) -> float:
    """The processor's calibrated MatMul peak (Table 3 constants).

    The NPU's native format is INT8 (§2.2); float processors are rated
    at their widest supported float path.
    """
    order = ((DType.INT8, DType.FP16, DType.FP32)
             if spec.kind is ProcKind.NPU
             else (DType.FP32, DType.FP16, DType.INT8))
    for dtype in order:
        if spec.supports(dtype):
            return spec.matmul[dtype].peak_ops
    raise ProfileError(f"{spec.name}: no MatMul profile")  # unreachable


def attribute_time(trace: Trace) -> List[OperatorCost]:
    """Busy seconds and MatMul ops per (processor, operator tag).

    Untagged events fall into the ``"task"`` bucket — the same default
    :meth:`~repro.hw.trace.Trace.busy_by_tag` and the Chrome export use.
    """
    acc: Dict[Tuple[str, str], List[float]] = {}
    for e in trace.events:
        key = (e.proc, e.tag or "task")
        slot = acc.setdefault(key, [0, 0.0, 0.0])
        slot[0] += 1
        slot[1] += e.duration_s
        slot[2] += e.ops
    return [
        OperatorCost(proc=proc, tag=tag, n_events=int(n), busy_s=busy,
                     ops=ops)
        for (proc, tag), (n, busy, ops) in sorted(acc.items())
    ]


def classify_idle(trace: Trace,
                  prep_s: float = 0.0) -> Dict[str, Dict[str, float]]:
    """Classify every idle second of every processor by cause.

    Sweeps the elementary intervals between event boundaries over
    ``[0, makespan]``; in each interval an idle processor is charged to
    the highest-priority applicable cause: a ``sync``-tagged fence
    running anywhere → ``sync_wait``; any other processor busy →
    ``dependency``; everything quiet → ``starvation``.  ``prep_s``
    extends the window with the serial graph build/optimize time, which
    is pure ``graph_build`` idle for every processor.

    The invariant (checked by :func:`validate_profile`): per processor,
    ``busy + Σ idle_by_cause == makespan + prep_s`` within 1e-9 s.
    """
    if prep_s < 0:
        raise ProfileError(f"negative prep time {prep_s}")
    procs = trace.processors()
    idle: Dict[str, Dict[str, float]] = {
        p: {cause: 0.0 for cause in IDLE_CAUSES} for p in procs
    }
    # Boundary deltas: per-processor active counts + sync-fence count.
    deltas: Dict[float, List[float]] = {}
    n_procs = len(procs)
    index = {p: i for i, p in enumerate(procs)}
    for e in trace.events:
        is_sync = 1.0 if e.tag == "sync" else 0.0
        for t, sign in ((e.start_s, 1.0), (e.end_s, -1.0)):
            slot = deltas.setdefault(t, [0.0] * (n_procs + 1))
            slot[index[e.proc]] += sign
            slot[n_procs] += sign * is_sync
    makespan = trace.makespan_s
    times = sorted(set(deltas) | {0.0, makespan})
    active = [0.0] * n_procs
    sync_n = 0.0
    prev = times[0] if times else 0.0
    if prev > 0.0:
        prev = 0.0  # should not happen (0.0 is in the set); be safe
    for t in times:
        seg = t - prev
        if seg > 0 and prev < makespan:
            busy_any = any(a > 0 for a in active)
            for p in procs:
                if active[index[p]] > 0:
                    continue
                if sync_n > 0:
                    cause = "sync_wait"
                elif busy_any:
                    cause = "dependency"
                else:
                    cause = "starvation"
                idle[p][cause] += seg
        delta = deltas.get(t)
        if delta is not None:
            for i in range(n_procs):
                active[i] += delta[i]
            sync_n += delta[n_procs]
        prev = t
    for p in procs:
        idle[p]["graph_build"] += prep_s
    return idle


def attribute_energy(trace: Trace, device,
                     float_backend: str = "cpu",
                     decode_backend: str = "cpu",
                     window_s: Optional[float] = None) -> dict:
    """Per-event energy attribution mirroring the engine's accounting.

    Replays the exact power assignment of
    :meth:`LlmNpuEngine.infer <repro.core.engine.LlmNpuEngine.infer>` /
    :meth:`EnergyModel.energy <repro.hw.energy.EnergyModel.energy>` at
    per-event granularity: prefill work on the float backend draws the
    §4.2 helper fraction of active power (floored at idle power),
    decode and accelerator work draw full active power, gaps draw idle
    power, and the platform rail is charged over the whole window.
    Processors of the device that never appear in the trace contribute
    pure idle draw — exactly as the engine's totals do — so the
    attributed ``total_j`` reconciles with the reported
    :class:`~repro.hw.energy.EnergyBreakdown` up to float
    re-association.
    """
    window = trace.makespan_s if window_s is None else float(window_s)
    if window + PROFILE_TOL_S < trace.makespan_s:
        raise ProfileError(
            f"window {window} shorter than trace makespan "
            f"{trace.makespan_s}"
        )
    per_proc: Dict[str, dict] = {}
    for name in sorted(device.processors):
        spec = device.processors[name]
        helper_rate = max(spec.active_power_w * HELPER_POWER_FRACTION,
                          spec.idle_power_w)
        tags: Dict[str, float] = {}
        busy = 0.0
        for e in trace.events_on(name):
            rate = spec.active_power_w
            if name == float_backend and e.tag != "decode":
                rate = helper_rate
            tag = e.tag or "task"
            tags[tag] = tags.get(tag, 0.0) + rate * e.duration_s
            busy += e.duration_s
        idle_j = spec.idle_power_w * max(0.0, window - busy)
        per_proc[name] = {
            "tags": {k: tags[k] for k in sorted(tags)},
            "idle_j": idle_j,
            "total_j": sum(tags[k] for k in sorted(tags)) + idle_j,
        }
    platform_j = device.platform_power_w * window
    return {
        "per_processor": per_proc,
        "platform_j": platform_j,
        "total_j": platform_j + sum(
            per_proc[p]["total_j"] for p in sorted(per_proc)
        ),
    }


def flamegraph_lines(trace: Trace) -> List[str]:
    """Collapsed-stack flamegraph lines, one per distinct stack.

    Task ids fold on ``.`` into frames under a processor root —
    ``c0.l3.sg1`` on the NPU becomes ``npu;c0;l3;sg1`` — weighted by
    integer nanoseconds, sorted for deterministic output.  Feed to any
    ``flamegraph.pl``-compatible renderer.
    """
    counts: Dict[str, int] = {}
    for e in trace.events:
        stack = ";".join([e.proc] + e.task_id.split("."))
        counts[stack] = counts.get(stack, 0) + int(round(e.duration_s * 1e9))
    return [f"{stack} {counts[stack]}" for stack in sorted(counts)]


# -- the report ---------------------------------------------------------------


@dataclass
class ProfileReport:
    """A complete attribution report (serializes to ``repro.profile/v1``).

    ``window_s`` is the profiled wall interval — trace makespan plus any
    serial graph-preparation time; for merged reports it is the sum of
    the member windows (independent per-request timelines).
    """

    window_s: float
    n_traces: int
    processors: List[ProcessorProfile]
    operators: List[OperatorCost]
    phases: Dict[str, float]
    energy: Optional[dict] = None
    flamegraph: List[str] = field(default_factory=list)
    metrics: Optional[List[dict]] = None

    def processor(self, name: str) -> ProcessorProfile:
        for p in self.processors:
            if p.proc == name:
                return p
        raise ProfileError(
            f"no processor {name!r} in profile; have "
            f"{[p.proc for p in self.processors]}"
        )

    @property
    def total_energy_j(self) -> float:
        return 0.0 if self.energy is None else self.energy["total_j"]

    def to_dict(self) -> dict:
        out = {
            "schema": PROFILE_SCHEMA,
            "window_s": self.window_s,
            "n_traces": self.n_traces,
            "processors": [
                {
                    "proc": p.proc,
                    "busy_s": p.busy_s,
                    "span_s": p.span_s,
                    "idle_s": p.idle_s,
                    "idle_by_cause": {c: p.idle_by_cause[c]
                                      for c in IDLE_CAUSES},
                    "bubble_rate": p.bubble_rate,
                    "utilization": (p.busy_s / self.window_s
                                    if self.window_s > 0 else 0.0),
                    "matmul_busy_s": p.matmul_busy_s,
                    "matmul_ops": p.matmul_ops,
                    "achieved_ops_per_s": p.achieved_ops_per_s,
                    "peak_ops_per_s": p.peak_ops_per_s,
                    "roofline_fraction": p.roofline_fraction,
                }
                for p in self.processors
            ],
            "operators": [
                {"proc": o.proc, "tag": o.tag, "n_events": o.n_events,
                 "busy_s": o.busy_s, "ops": o.ops}
                for o in self.operators
            ],
            "phases": {k: self.phases[k] for k in sorted(self.phases)},
            "energy": self.energy,
            "flamegraph": list(self.flamegraph),
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          allow_nan=False)

    def save(self, path: str) -> None:
        """Write deterministic JSON bytes (sorted keys, trailing
        newline) — byte-diffable across runs."""
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")

    def summary_table(self):
        """Per-processor attribution as a render-ready
        :class:`~repro.eval.report.Table`."""
        from repro.eval.report import Table
        table = Table(
            title="Per-processor attribution",
            columns=["proc", "busy ms", "idle ms", "util %", "bubble %",
                     "graph ms", "sync ms", "dep ms", "starve ms",
                     "roofline %"],
        )
        for p in self.processors:
            util = (p.busy_s / self.window_s * 100
                    if self.window_s > 0 else 0.0)
            roofline = p.roofline_fraction
            table.add_row(
                p.proc, p.busy_s * 1e3, p.idle_s * 1e3, util,
                p.bubble_rate * 100,
                p.idle_by_cause["graph_build"] * 1e3,
                p.idle_by_cause["sync_wait"] * 1e3,
                p.idle_by_cause["dependency"] * 1e3,
                p.idle_by_cause["starvation"] * 1e3,
                None if roofline is None else roofline * 100,
            )
        table.add_note("busy + classified idle = window per processor "
                       "(1e-9 s); roofline vs Table-3 calibrated peak")
        return table


def validate_profile(report: ProfileReport,
                     tol_s: float = PROFILE_TOL_S) -> None:
    """Assert the conservation invariant: per processor, attributed busy
    time plus classified idle time equals the profiled window."""
    for p in report.processors:
        residual = p.busy_s + p.idle_s - report.window_s
        if abs(residual) > tol_s * max(1.0, report.n_traces):
            raise ProfileError(
                f"{p.proc}: busy {p.busy_s!r} + idle {p.idle_s!r} != "
                f"window {report.window_s!r} "
                f"(residual {residual:.3e} s)"
            )
    op_busy: Dict[str, float] = {}
    for o in report.operators:
        op_busy[o.proc] = op_busy.get(o.proc, 0.0) + o.busy_s
    for p in report.processors:
        residual = op_busy.get(p.proc, 0.0) - p.busy_s
        if abs(residual) > tol_s * max(1.0, report.n_traces):
            raise ProfileError(
                f"{p.proc}: per-operator busy sums to "
                f"{op_busy.get(p.proc, 0.0)!r}, processor busy is "
                f"{p.busy_s!r}"
            )


def profile_trace(trace: Trace, device=None,
                  float_backend: str = "cpu",
                  decode_backend: str = "cpu",
                  prep_s: float = 0.0,
                  include_energy: Optional[bool] = None,
                  metrics=None) -> ProfileReport:
    """Profile one execution trace into a :class:`ProfileReport`.

    ``device`` (a :class:`~repro.hw.soc.SocSpec`) enables the roofline
    and energy sections; ``prep_s`` is serial graph build/optimize time
    preceding the trace (classified as ``graph_build`` idle).
    ``metrics`` optionally attaches a
    :class:`~repro.obs.metrics.MetricsRegistry` snapshot to the report.
    """
    operators = attribute_time(trace)
    idle = classify_idle(trace, prep_s=prep_s)
    window = trace.makespan_s + prep_s
    processors: List[ProcessorProfile] = []
    for proc in trace.processors():
        events = trace.events_on(proc)
        matmul_events = [e for e in events if e.ops > 0]
        peak = None
        if device is not None and proc in device.processors:
            peak = calibrated_peak_ops(device.processors[proc])
        processors.append(ProcessorProfile(
            proc=proc,
            busy_s=sum(e.duration_s for e in events),
            span_s=trace.span_s(proc) + prep_s,
            idle_by_cause=idle[proc],
            matmul_busy_s=sum(e.duration_s for e in matmul_events),
            matmul_ops=sum(e.ops for e in matmul_events),
            peak_ops_per_s=peak,
        ))
    phases = {
        "prepare_s": prep_s,
        "prefill_busy_s": sum(e.duration_s for e in trace.events
                              if e.tag != "decode"),
        "decode_busy_s": sum(e.duration_s for e in trace.events
                             if e.tag == "decode"),
    }
    if include_energy is None:
        include_energy = device is not None
    energy = None
    if include_energy:
        if device is None:
            raise ProfileError("energy attribution needs a device spec")
        energy = attribute_energy(trace, device,
                                  float_backend=float_backend,
                                  decode_backend=decode_backend,
                                  window_s=window)
    report = ProfileReport(
        window_s=window,
        n_traces=1,
        processors=processors,
        operators=operators,
        phases=phases,
        energy=energy,
        flamegraph=flamegraph_lines(trace),
        metrics=None if metrics is None else metrics.snapshot(),
    )
    validate_profile(report)
    return report


def profile_inference(report, device,
                      float_backend: str = "cpu",
                      decode_backend: str = "cpu") -> ProfileReport:
    """Profile one :class:`~repro.core.results.InferenceReport`.

    Uses the unified prefill+decode timeline; any excess of the
    reported end-to-end latency over the timeline makespan is the
    serial graph-preparation window (the naive-engine rebuild path).
    """
    timeline = report.timeline(decode_backend)
    prep_s = max(0.0, report.e2e_latency_s - timeline.makespan_s)
    return profile_trace(timeline, device=device,
                         float_backend=float_backend,
                         decode_backend=decode_backend,
                         prep_s=prep_s)


def merge_profiles(reports: List[ProfileReport]) -> ProfileReport:
    """Sum independent per-request profiles into one aggregate report.

    Windows, busy/idle seconds, operator costs, phases, flamegraph
    weights and energy all add; conservation holds for the merged
    report because it holds per member over disjoint windows.
    Per-request ``metrics`` snapshots are dropped (attach a service
    snapshot to the merged report instead).
    """
    if not reports:
        raise ProfileError("merge_profiles needs at least one report")
    procs: Dict[str, ProcessorProfile] = {}
    for r in reports:
        for p in r.processors:
            prev = procs.get(p.proc)
            if prev is None:
                procs[p.proc] = replace(
                    p, idle_by_cause=dict(p.idle_by_cause)
                )
                continue
            if (prev.peak_ops_per_s is not None
                    and p.peak_ops_per_s is not None
                    and prev.peak_ops_per_s != p.peak_ops_per_s):
                raise ProfileError(
                    f"{p.proc}: conflicting peak calibrations "
                    f"({prev.peak_ops_per_s} vs {p.peak_ops_per_s})"
                )
            # Unprofiled time relative to the merged window: a member
            # report that never saw this processor leaves a window-sized
            # hole.  Charged below, after all members are folded.
            procs[p.proc] = ProcessorProfile(
                proc=p.proc,
                busy_s=prev.busy_s + p.busy_s,
                span_s=prev.span_s + p.span_s,
                idle_by_cause={
                    c: prev.idle_by_cause[c] + p.idle_by_cause[c]
                    for c in IDLE_CAUSES
                },
                matmul_busy_s=prev.matmul_busy_s + p.matmul_busy_s,
                matmul_ops=prev.matmul_ops + p.matmul_ops,
                peak_ops_per_s=(prev.peak_ops_per_s
                                if prev.peak_ops_per_s is not None
                                else p.peak_ops_per_s),
            )
    window = sum(r.window_s for r in reports)
    # Conservation over the merged window: windows where a processor was
    # absent from the member trace are starvation idle for it.
    for name, p in procs.items():
        covered = sum(r.window_s for r in reports
                      if any(q.proc == name for q in r.processors))
        missing = window - covered
        if missing > 0:
            idle = dict(p.idle_by_cause)
            idle["starvation"] += missing
            procs[name] = replace(p, idle_by_cause=idle)

    ops_acc: Dict[Tuple[str, str], List[float]] = {}
    for r in reports:
        for o in r.operators:
            slot = ops_acc.setdefault(o.key, [0, 0.0, 0.0])
            slot[0] += o.n_events
            slot[1] += o.busy_s
            slot[2] += o.ops
    phases: Dict[str, float] = {}
    for r in reports:
        for k, v in r.phases.items():
            phases[k] = phases.get(k, 0.0) + v
    flame: Dict[str, int] = {}
    for r in reports:
        for line in r.flamegraph:
            stack, _, weight = line.rpartition(" ")
            flame[stack] = flame.get(stack, 0) + int(weight)

    energy = None
    with_energy = [r for r in reports if r.energy is not None]
    if with_energy:
        if len(with_energy) != len(reports):
            raise ProfileError(
                "cannot merge profiles with and without energy sections"
            )
        proc_names = sorted({
            p for r in with_energy for p in r.energy["per_processor"]
        })
        per_proc = {}
        for name in proc_names:
            tags: Dict[str, float] = {}
            idle_j = 0.0
            for r in with_energy:
                section = r.energy["per_processor"].get(name)
                if section is None:
                    continue
                idle_j += section["idle_j"]
                for tag, joules in section["tags"].items():
                    tags[tag] = tags.get(tag, 0.0) + joules
            per_proc[name] = {
                "tags": {k: tags[k] for k in sorted(tags)},
                "idle_j": idle_j,
                "total_j": sum(tags[k] for k in sorted(tags)) + idle_j,
            }
        platform_j = sum(r.energy["platform_j"] for r in with_energy)
        energy = {
            "per_processor": per_proc,
            "platform_j": platform_j,
            "total_j": platform_j + sum(
                per_proc[p]["total_j"] for p in proc_names
            ),
        }

    merged = ProfileReport(
        window_s=window,
        n_traces=sum(r.n_traces for r in reports),
        processors=[procs[name] for name in sorted(procs)],
        operators=[
            OperatorCost(proc=proc, tag=tag, n_events=int(n), busy_s=busy,
                         ops=ops)
            for (proc, tag), (n, busy, ops) in sorted(ops_acc.items())
        ],
        phases=phases,
        energy=energy,
        flamegraph=[f"{stack} {flame[stack]}" for stack in sorted(flame)],
    )
    validate_profile(merged)
    return merged
