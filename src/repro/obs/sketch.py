"""A deterministic, mergeable quantile sketch with bounded memory.

:class:`~repro.obs.metrics.Histogram` keeps raw samples — exact but
unbounded, and two histograms cannot be combined without shipping every
sample.  :class:`QuantileSketch` is its bounded-memory sibling for
fleet-scale telemetry: samples are folded into **fixed log-spaced
buckets**, so a sketch is a few hundred integers regardless of how many
values it absorbed, and sketches from different devices merge by adding
bucket counts.

Design invariants, each load-bearing for the fleet layer:

* **Fixed bucket boundaries.**  With relative accuracy ``alpha``, bucket
  ``i`` covers ``(gamma**(i-1), gamma**i]`` where
  ``gamma = (1 + alpha) / (1 - alpha)``.  The boundaries depend only on
  ``alpha`` — never on the data — so two sketches with equal ``alpha``
  are always mergeable and ``merge`` is associative and commutative.
* **Documented error bound.**  Bucket ``i`` is reported as its
  mid-representative ``2 * gamma**i / (1 + gamma)``, which is within a
  factor ``1 ± alpha`` of every value in the bucket.
  :meth:`percentile` interpolates between the representatives of the two
  order statistics that ``numpy.percentile`` (linear interpolation)
  would use, so for non-negative samples::

      |sketch.percentile(q) - numpy.percentile(samples, q)|
          <= alpha * numpy.percentile(samples, q) + min_value

  The additive ``min_value`` term covers the underflow bucket: values in
  ``[0, min_value]`` are collapsed to a single zero bucket reported as
  ``0.0``.
* **Exact counts and sums.**  Bucket counts are integers and the running
  sum is kept as an exact rational (every float is a dyadic rational,
  and :class:`fractions.Fraction` addition is exact), so merging
  sketches over *any* partition of a sample stream yields bit-for-bit
  the sketch of the pooled stream — order of observation and order of
  merging are both irrelevant.  The property tests in
  ``tests/obs/test_sketch.py`` pin this down.
* **JSON round-trip.**  :meth:`to_json` / :meth:`from_json` serialize
  every field losslessly (the exact sum travels as an integer
  numerator/denominator pair), so device telemetry can cross process
  boundaries without widening the error bound.

Only non-negative samples are accepted: the fleet metrics (latencies,
energy) are non-negative by construction, and rejecting negatives keeps
the relative-error statement unconditional.
"""

from __future__ import annotations

import json
import math
from fractions import Fraction
from typing import Dict, Iterable, Optional

from repro.errors import ReproError

#: Schema identifier stamped into every serialized sketch.
from repro.obs.schemas import SKETCH_SCHEMA  # noqa: E402 (constant table)

#: Default relative accuracy (1% — p99 of a 10 s tail is within 100 ms).
DEFAULT_ALPHA = 0.01

#: Default underflow threshold: values at or below this collapse into the
#: zero bucket (reported as 0.0, an absolute error of at most this much).
DEFAULT_MIN_VALUE = 1e-12


class SketchError(ReproError):
    """Quantile sketch misuse (negative sample, mismatched merge...)."""


class QuantileSketch:
    """Mergeable log-bucketed quantile sketch (see module docstring)."""

    __slots__ = ("alpha", "min_value", "_gamma", "_log_gamma", "_buckets",
                 "_zero_count", "_count", "_sum", "_min", "_max")

    def __init__(self, alpha: float = DEFAULT_ALPHA,
                 min_value: float = DEFAULT_MIN_VALUE):
        if not 0.0 < alpha < 1.0:
            raise SketchError(f"alpha must be in (0, 1), got {alpha!r}")
        if not min_value > 0.0 or not math.isfinite(min_value):
            raise SketchError(
                f"min_value must be a positive finite number, got "
                f"{min_value!r}"
            )
        self.alpha = float(alpha)
        self.min_value = float(min_value)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = Fraction(0)
        self._min = math.inf
        self._max = -math.inf

    # -- ingestion ------------------------------------------------------------

    def observe(self, value: float) -> None:
        """Fold one non-negative sample into the sketch."""
        value = float(value)
        if not math.isfinite(value):
            raise SketchError(f"non-finite sample {value!r}")
        if value < 0.0:
            raise SketchError(f"negative sample {value!r}")
        if value <= self.min_value:
            self._zero_count += 1
        else:
            index = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        self._count += 1
        self._sum += Fraction(value)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def record_many(self, values: Iterable[float]) -> int:
        """Fold a batch of samples in one call; returns the batch size.

        Bit-identical to ``N`` :meth:`observe` calls: bucket indices use
        the same per-value ``math.log`` (so no ulp drift from vectorized
        logarithms), and the exact sum is accumulated as one dyadic
        rational — floats are ratios with power-of-two denominators, so
        the batch folds into big-int shifts and a single ``Fraction``
        addition, which equals the sequential Fraction sum exactly.

        Unlike :meth:`observe_many`, the batch is atomic: a NaN/inf or
        negative sample rejects the whole call without mutating the
        sketch.
        """
        vals = [float(v) for v in values]
        for value in vals:
            if not math.isfinite(value):
                raise SketchError(f"non-finite sample {value!r}")
            if value < 0.0:
                raise SketchError(f"negative sample {value!r}")
        if not vals:
            return 0
        buckets = self._buckets
        log_gamma = self._log_gamma
        min_value = self.min_value
        ceil, log = math.ceil, math.log
        zero = 0
        acc_num, acc_exp = 0, 0
        for value in vals:
            if value <= min_value:
                zero += 1
            else:
                index = ceil(log(value) / log_gamma)
                buckets[index] = buckets.get(index, 0) + 1
            num, den = value.as_integer_ratio()
            exp = den.bit_length() - 1
            if exp > acc_exp:
                acc_num <<= exp - acc_exp
                acc_exp = exp
            acc_num += num << (acc_exp - exp)
        self._zero_count += zero
        self._count += len(vals)
        self._sum += Fraction(acc_num, 1 << acc_exp)
        self._min = min(self._min, min(vals))
        self._max = max(self._max, max(vals))
        return len(vals)

    # -- aggregates -----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        """Exact sum of all samples, rounded once to a float."""
        return float(self._sum)

    @property
    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return float(self._sum / self._count)

    @property
    def min(self) -> float:
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self._count else float("nan")

    @property
    def n_buckets(self) -> int:
        """Occupied buckets (the memory footprint), zero bucket included."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    def bucket_representative(self, index: int) -> float:
        """Mid-representative of bucket ``index`` (rel. error <= alpha)."""
        return 2.0 * self._gamma ** index / (1.0 + self._gamma)

    # -- quantiles ------------------------------------------------------------

    def _value_at_rank(self, rank: int) -> float:
        """Representative of the sample at 0-based sorted ``rank``."""
        if rank < self._zero_count:
            return 0.0
        seen = self._zero_count
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                return self.bucket_representative(index)
        # unreachable when 0 <= rank < count (counts are consistent)
        raise SketchError(f"rank {rank} out of range (count={self._count})")

    def percentile(self, q: float) -> float:
        """Approximate percentile matching ``numpy.percentile``'s linear
        interpolation, within the documented error bound.

        Degenerate sketches mirror :class:`Histogram`: an empty sketch
        returns NaN, a single-sample sketch returns that sample's
        representative for every ``q``.
        """
        if not 0.0 <= q <= 100.0:
            raise SketchError(f"percentile {q!r} not in [0, 100]")
        if self._count == 0:
            return float("nan")
        position = (self._count - 1) * (q / 100.0)
        lower_rank = math.floor(position)
        fraction = position - lower_rank
        low = self._value_at_rank(lower_rank)
        if fraction == 0.0:
            value = low
        else:
            high = self._value_at_rank(min(lower_rank + 1, self._count - 1))
            value = low + fraction * (high - low)
        # Clamping to the exact observed range only tightens the bound.
        return min(max(value, self._min), self._max)

    # -- merging --------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place); returns ``self``.

        Counts add, the exact sums add, min/max combine — all exact
        operations, so merging is associative and commutative and the
        result is bit-for-bit the sketch of the pooled sample stream.
        """
        if not isinstance(other, QuantileSketch):
            raise SketchError(f"cannot merge {type(other).__name__}")
        if other.alpha != self.alpha or other.min_value != self.min_value:
            raise SketchError(
                f"mergeable sketches need identical boundaries: "
                f"alpha {self.alpha!r} vs {other.alpha!r}, min_value "
                f"{self.min_value!r} vs {other.min_value!r}"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._zero_count += other._zero_count
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    @classmethod
    def merged(cls, sketches: Iterable["QuantileSketch"]
               ) -> "QuantileSketch":
        """A fresh sketch holding the union of ``sketches``.

        An empty iterable yields an empty default-boundary sketch — a
        fleet roll-up over zero devices is a report with zero samples,
        not an error (its percentiles read as NaN/None).
        """
        sketches = list(sketches)
        if not sketches:
            return cls()
        out = cls(alpha=sketches[0].alpha,
                  min_value=sketches[0].min_value)
        for sketch in sketches:
            out.merge(sketch)
        return out

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless plain-dict form (sorted, JSON-safe)."""
        return {
            "schema": SKETCH_SCHEMA,
            "alpha": self.alpha,
            "min_value": self.min_value,
            "count": self._count,
            "zero_count": self._zero_count,
            "buckets": {str(i): self._buckets[i]
                        for i in sorted(self._buckets)},
            "sum": [self._sum.numerator, self._sum.denominator],
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        if not isinstance(data, dict) or data.get("schema") != SKETCH_SCHEMA:
            raise SketchError(
                f"expected schema {SKETCH_SCHEMA!r}, got "
                f"{data.get('schema') if isinstance(data, dict) else data!r}"
            )
        sketch = cls(alpha=data["alpha"], min_value=data["min_value"])
        sketch._zero_count = int(data["zero_count"])
        sketch._count = int(data["count"])
        sketch._buckets = {int(k): int(v)
                           for k, v in data["buckets"].items()}
        num, den = data["sum"]
        sketch._sum = Fraction(int(num), int(den))
        if sketch._count:
            sketch._min = float(data["min"])
            sketch._max = float(data["max"])
        return sketch

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "QuantileSketch":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SketchError(f"invalid sketch JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- snapshot (MetricsRegistry-style read-out) ----------------------------

    def snapshot_percentiles(self) -> dict:
        """The standard percentile read-out used by fleet reports."""
        empty = self._count == 0
        return {
            "count": self._count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": None if empty else self.percentile(50),
            "p90": None if empty else self.percentile(90),
            "p95": None if empty else self.percentile(95),
            "p99": None if empty else self.percentile(99),
            "max": None if empty else self._max,
        }

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return (f"QuantileSketch(alpha={self.alpha}, count={self._count}, "
                f"buckets={self.n_buckets})")
