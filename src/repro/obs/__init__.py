"""Cross-layer observability: tracing, metrics, exporters, breakdowns.

One tracer API spans every layer of the serving path — the
:class:`~repro.core.service.LlmService` request lifecycle, the engine,
the request queue, and the fault injector — all stamped with the
deterministic sim clock, so a single Perfetto timeline shows a request
from arrival through admission, retries, prefill chunks, and decode
down to individual simulated NPU tasks.  See ``docs/observability.md``.
"""

from repro.obs.breakdown import (
    SUM_TOL_S,
    RequestBreakdown,
    breakdown_request,
    breakdown_requests,
    breakdown_table,
    tier_component_means,
    validate_breakdowns,
)
from repro.obs.export import (
    export_service_trace,
    jsonl_records,
    read_jsonl,
    save_chrome_trace,
    service_timeline,
    to_chrome_trace,
    validate_timeline,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    as_registry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Instant,
    NullTracer,
    ObservabilityError,
    Span,
    SpanHandle,
    Tracer,
    as_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanHandle",
    "Instant",
    "ObservabilityError",
    "as_tracer",
    "MetricsRegistry",
    "MetricsError",
    "Counter",
    "Gauge",
    "Histogram",
    "as_registry",
    "to_chrome_trace",
    "save_chrome_trace",
    "service_timeline",
    "export_service_trace",
    "validate_timeline",
    "jsonl_records",
    "write_jsonl",
    "read_jsonl",
    "RequestBreakdown",
    "breakdown_request",
    "breakdown_requests",
    "breakdown_table",
    "tier_component_means",
    "validate_breakdowns",
    "SUM_TOL_S",
]
