"""Run-to-run differential attribution (``repro.diff/v1``).

Every layer below this one explains a *single* run: the profiler
attributes a run's busy time, the step log records its scheduler
decisions, the critical path names its gating segments.  This module
closes the loop for *pairs* of runs — the shape every performance
question actually takes ("the new scheduler knob regressed p95; which
operator ate the delta?").

:func:`diff_docs` aligns two schema-versioned artifacts of the same
kind and emits one ``repro.diff/v1`` document:

``critpath``
    Two ``repro.critpath/v1`` documents.  Requests are aligned by
    ``source`` ("request N"); within a matched request, on-path
    segments are aligned by task id.  Each aligned segment carries the
    base and new gating time (wait + duration) and a status from
    :data:`~repro.obs.schemas.DIFF_STATUSES` — ``grew`` / ``shrank`` /
    ``appeared`` / ``vanished`` / ``unchanged``.  Because each run's
    critical path telescopes to its end-to-end latency (the PR-9
    invariant), the per-segment deltas of a matched request *must* sum
    to the observed e2e delta — :func:`validate_diff` enforces the
    residual below ``tol_s`` (1 ns), the same conservation bar every
    other artifact in the repo meets.

``profile``
    Two ``repro.profile/v1`` reports: per-operator ``(proc, tag)`` busy
    deltas and per-processor busy / idle / idle-by-cause drift.

``steps``
    Two ``repro.steps/v1`` logs: per-scheduler-decision action-count
    deltas, occupancy drift, and per-request breakdown-component
    deltas.

``fleet``
    Two ``repro.fleet/v1`` reports: per-device drift of the latency
    scoreboard and merged-sketch quantile shifts.

``llmnpu diff <base> <new>`` surfaces all four (exit 0 identical /
1 differs / 2 usage, mirroring ``bench-compare``), and
``bench-compare --explain`` re-runs a regressed benchmark's golden
scenario to auto-emit the critpath attribution.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.schemas import (
    CRITPATH_SCHEMA,
    DIFF_KINDS,
    DIFF_SCHEMA,
    DIFF_STATUSES,
    FLEET_SCHEMA,
    PROFILE_SCHEMA,
    STEPS_SCHEMA,
)

#: Conservation tolerance: attributed per-segment deltas must telescope
#: to the observed e2e delta within a nanosecond (matches
#: ``CRITPATH_TOL_S`` / ``WHATIF_TOL_S``).
DIFF_TOL_S = 1e-9


class DiffError(ReproError):
    """A pair of artifacts could not be aligned or the resulting diff
    violates the conservation invariant."""


#: Which diff kind handles which input schema.
_KIND_BY_SCHEMA = {
    CRITPATH_SCHEMA: "critpath",
    PROFILE_SCHEMA: "profile",
    STEPS_SCHEMA: "steps",
    FLEET_SCHEMA: "fleet",
}


def _status(delta_s: float, tol_s: float) -> str:
    if delta_s > tol_s:
        return "grew"
    if delta_s < -tol_s:
        return "shrank"
    return "unchanged"


def _num(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# -- critpath ----------------------------------------------------------------


def _segment_keys(segments: Sequence[dict]) -> List[Tuple[str, int]]:
    """Occurrence-indexed alignment keys: a task id appears at most once
    on a critical path, but the index guards against pathological
    inputs without silently merging duplicates."""
    seen: Dict[str, int] = {}
    keys = []
    for seg in segments:
        task_id = seg["task_id"]
        k = seen.get(task_id, 0)
        seen[task_id] = k + 1
        keys.append((task_id, k))
    return keys


def _gating_s(seg: dict) -> float:
    return seg["wait_s"] + seg["duration_s"]


def _diff_request(base_path: dict, new_path: dict,
                  tol_s: float) -> dict:
    """Align one matched request's segments and attribute its e2e delta."""
    base_segs = base_path["segments"]
    new_segs = new_path["segments"]
    base_by_key = dict(zip(_segment_keys(base_segs), base_segs))
    new_keys = _segment_keys(new_segs)
    segments = []
    matched = set()
    for key, seg in zip(new_keys, new_segs):
        old = base_by_key.get(key)
        new_s = _gating_s(seg)
        if old is None:
            segments.append({
                "task_id": seg["task_id"],
                "tag": seg["tag"],
                "base_proc": None,
                "new_proc": seg["proc"],
                "base_s": 0.0,
                "new_s": new_s,
                "delta_s": new_s,
                "status": "appeared",
            })
            continue
        matched.add(key)
        base_s = _gating_s(old)
        delta_s = new_s - base_s
        segments.append({
            "task_id": seg["task_id"],
            "tag": seg["tag"],
            "base_proc": old["proc"],
            "new_proc": seg["proc"],
            "base_s": base_s,
            "new_s": new_s,
            "delta_s": delta_s,
            "status": _status(delta_s, tol_s),
        })
    for key, seg in zip(_segment_keys(base_segs), base_segs):
        if key in matched:
            continue
        base_s = _gating_s(seg)
        segments.append({
            "task_id": seg["task_id"],
            "tag": seg["tag"],
            "base_proc": seg["proc"],
            "new_proc": None,
            "base_s": base_s,
            "new_s": 0.0,
            "delta_s": -base_s,
            "status": "vanished",
        })
    delta_s = new_path["e2e_s"] - base_path["e2e_s"]
    attributed_s = sum(s["delta_s"] for s in segments)
    return {
        "source": new_path["source"],
        "base_e2e_s": base_path["e2e_s"],
        "new_e2e_s": new_path["e2e_s"],
        "delta_s": delta_s,
        "attributed_s": attributed_s,
        "residual_s": attributed_s - delta_s,
        "segments": segments,
    }


def diff_critpath_docs(base: dict, new: dict,
                       tol_s: float = DIFF_TOL_S) -> dict:
    """Diff two ``repro.critpath/v1`` documents (see module docstring)."""
    base_paths = {p["source"]: p for p in base["paths"]}
    new_paths = {p["source"]: p for p in new["paths"]}
    only_base = sorted(s for s in base_paths if s not in new_paths)
    only_new = sorted(s for s in new_paths if s not in base_paths)
    requests = [
        _diff_request(base_paths[source], new_paths[source], tol_s)
        for source in base_paths if source in new_paths
    ]
    by_stage: Dict[str, float] = {}
    by_proc: Dict[str, float] = {}
    by_status = {status: 0 for status in DIFF_STATUSES}
    for req in requests:
        for seg in req["segments"]:
            by_stage[seg["tag"]] = (by_stage.get(seg["tag"], 0.0)
                                    + seg["delta_s"])
            proc = seg["new_proc"] or seg["base_proc"]
            by_proc[proc] = by_proc.get(proc, 0.0) + seg["delta_s"]
            by_status[seg["status"]] += 1
    base_e2e = sum(r["base_e2e_s"] for r in requests)
    new_e2e = sum(r["new_e2e_s"] for r in requests)
    identical = (
        not only_base and not only_new
        and all(s["status"] == "unchanged"
                for r in requests for s in r["segments"])
        and all(abs(r["delta_s"]) <= tol_s for r in requests)
    )
    contributors = sorted(
        ({"tag": tag, "delta_s": delta,
          "share": (delta / (new_e2e - base_e2e)
                    if abs(new_e2e - base_e2e) > tol_s else None)}
         for tag, delta in by_stage.items()),
        key=lambda c: (-abs(c["delta_s"]), c["tag"]),
    )
    return {
        "schema": DIFF_SCHEMA,
        "kind": "critpath",
        "tol_s": tol_s,
        "base": {"source": base.get("source", "?"),
                 "n_paths": len(base_paths)},
        "new": {"source": new.get("source", "?"),
                "n_paths": len(new_paths)},
        "identical": identical,
        "e2e": {"base_s": base_e2e, "new_s": new_e2e,
                "delta_s": new_e2e - base_e2e},
        "n_requests": len(requests),
        "only_base": only_base,
        "only_new": only_new,
        "by_stage": {t: by_stage[t] for t in sorted(by_stage)},
        "by_proc": {p: by_proc[p] for p in sorted(by_proc)},
        "by_status": by_status,
        "top_contributors": contributors,
        "requests": sorted(requests,
                           key=lambda r: (-abs(r["delta_s"]),
                                          r["source"])),
    }


def segment_deltas(doc: dict) -> Dict[str, float]:
    """Per-task gating-time deltas of a critpath diff, keyed by task id
    — feed to ``export_service_trace(..., deltas=...)`` to paint the
    regression onto a Perfetto timeline."""
    if doc.get("kind") != "critpath":
        raise DiffError(f"segment_deltas needs a critpath diff, "
                        f"got kind {doc.get('kind')!r}")
    out: Dict[str, float] = {}
    for req in doc["requests"]:
        for seg in req["segments"]:
            out[seg["task_id"]] = (out.get(seg["task_id"], 0.0)
                                   + seg["delta_s"])
    return out


# -- profile -----------------------------------------------------------------


def diff_profile_docs(base: dict, new: dict,
                      tol_s: float = DIFF_TOL_S) -> dict:
    """Diff two ``repro.profile/v1`` reports: per-operator busy deltas
    and per-processor busy/idle drift."""
    base_ops = {(o["proc"], o["tag"]): o for o in base["operators"]}
    new_ops = {(o["proc"], o["tag"]): o for o in new["operators"]}
    operators = []
    for key in sorted(set(base_ops) | set(new_ops)):
        b, n = base_ops.get(key), new_ops.get(key)
        base_s = b["busy_s"] if b else 0.0
        new_s = n["busy_s"] if n else 0.0
        delta_s = new_s - base_s
        if b is None:
            status = "appeared"
        elif n is None:
            status = "vanished"
        else:
            status = _status(delta_s, tol_s)
        operators.append({
            "proc": key[0], "tag": key[1],
            "base_busy_s": base_s, "new_busy_s": new_s,
            "delta_s": delta_s, "status": status,
        })
    base_procs = {p["proc"]: p for p in base["processors"]}
    new_procs = {p["proc"]: p for p in new["processors"]}
    processors = []
    for proc in sorted(set(base_procs) | set(new_procs)):
        b = base_procs.get(proc, {})
        n = new_procs.get(proc, {})
        causes = sorted(set(b.get("idle_by_cause", {}))
                        | set(n.get("idle_by_cause", {})))
        processors.append({
            "proc": proc,
            "delta_busy_s": n.get("busy_s", 0.0) - b.get("busy_s", 0.0),
            "delta_idle_s": n.get("idle_s", 0.0) - b.get("idle_s", 0.0),
            "delta_idle_by_cause": {
                c: (n.get("idle_by_cause", {}).get(c, 0.0)
                    - b.get("idle_by_cause", {}).get(c, 0.0))
                for c in causes
            },
        })
    movers = [o for o in operators if o["status"] != "unchanged"]
    identical = (
        not movers
        and all(abs(p["delta_busy_s"]) <= tol_s
                and abs(p["delta_idle_s"]) <= tol_s
                for p in processors)
    )
    return {
        "schema": DIFF_SCHEMA,
        "kind": "profile",
        "tol_s": tol_s,
        "base": {"source": "profile", "window_s": base["window_s"]},
        "new": {"source": "profile", "window_s": new["window_s"]},
        "identical": identical,
        "window": {"base_s": base["window_s"], "new_s": new["window_s"],
                   "delta_s": new["window_s"] - base["window_s"]},
        "operators": sorted(operators,
                            key=lambda o: (-abs(o["delta_s"]),
                                           o["proc"], o["tag"])),
        "processors": processors,
    }


# -- steps -------------------------------------------------------------------

_BREAKDOWN_KEYS = ("queue_s", "admission_s", "retry_s", "prefill_s",
                   "decode_s", "turnaround_s")


def diff_steps_docs(base: dict, new: dict,
                    tol_s: float = DIFF_TOL_S) -> dict:
    """Diff two ``repro.steps/v1`` logs: per-scheduler-decision action
    counts, occupancy drift, per-request breakdown deltas."""
    from repro.obs.steplog import decision_mix, occupancy_summary

    base_mix = decision_mix(base["decisions"])
    new_mix = decision_mix(new["decisions"])
    decisions = {
        action: {
            "base": base_mix.get(action, 0),
            "new": new_mix.get(action, 0),
            "delta": new_mix.get(action, 0) - base_mix.get(action, 0),
        }
        for action in sorted(set(base_mix) | set(new_mix))
    }
    base_occ = occupancy_summary(base["steps"])
    new_occ = occupancy_summary(new["steps"])
    occupancy = {
        key: {"base": base_occ.get(key), "new": new_occ.get(key),
              "delta": ((new_occ.get(key) or 0.0)
                        - (base_occ.get(key) or 0.0))}
        for key in sorted(set(base_occ) | set(new_occ))
        if _num(base_occ.get(key)) or _num(new_occ.get(key))
    }
    base_reqs = {r["request_id"]: r for r in base["requests"]}
    new_reqs = {r["request_id"]: r for r in new["requests"]}
    requests = []
    for rid in sorted(set(base_reqs) & set(new_reqs)):
        b, n = base_reqs[rid], new_reqs[rid]
        requests.append({
            "request_id": rid,
            "base_status": b["status"],
            "new_status": n["status"],
            "delta_s": (n["breakdown"]["turnaround_s"]
                        - b["breakdown"]["turnaround_s"]),
            "breakdown": {
                key: n["breakdown"][key] - b["breakdown"][key]
                for key in _BREAKDOWN_KEYS
            },
        })
    only_base = sorted(set(base_reqs) - set(new_reqs))
    only_new = sorted(set(new_reqs) - set(base_reqs))
    identical = (
        not only_base and not only_new
        and all(d["delta"] == 0 for d in decisions.values())
        and all(abs(r["delta_s"]) <= tol_s for r in requests)
        and all(r["base_status"] == r["new_status"] for r in requests)
    )
    return {
        "schema": DIFF_SCHEMA,
        "kind": "steps",
        "tol_s": tol_s,
        "base": {"source": base.get("source", "?"),
                 "n_steps": base["n_steps"]},
        "new": {"source": new.get("source", "?"),
                "n_steps": new["n_steps"]},
        "identical": identical,
        "decisions": decisions,
        "occupancy": occupancy,
        "only_base": only_base,
        "only_new": only_new,
        "requests": sorted(requests,
                           key=lambda r: (-abs(r["delta_s"]),
                                          r["request_id"])),
    }


# -- fleet -------------------------------------------------------------------

#: Per-device scoreboard fields diffed between fleet reports, with
#: whether a nonzero delta counts as drift at ``tol_s`` (floats) or
#: exactly (counts).
_DEVICE_FIELDS = ("n_completed", "n_rejected", "n_timeout", "n_failed",
                  "n_faults", "ttft_p50_s", "ttft_p95_s", "mean_itl_s",
                  "goodput_rps")


def diff_fleet_docs(base: dict, new: dict,
                    tol_s: float = DIFF_TOL_S) -> dict:
    """Diff two ``repro.fleet/v1`` reports: per-device drift and
    merged-sketch quantile shifts."""
    base_devs = {d["name"]: d for d in base["devices"]}
    new_devs = {d["name"]: d for d in new["devices"]}
    only_base = sorted(set(base_devs) - set(new_devs))
    only_new = sorted(set(new_devs) - set(base_devs))
    devices = []
    for name in sorted(set(base_devs) & set(new_devs)):
        b, n = base_devs[name], new_devs[name]
        deltas = {}
        for field in _DEVICE_FIELDS:
            bv, nv = b.get(field), n.get(field)
            deltas[field] = ((nv - bv) if _num(bv) and _num(nv)
                             else (None if bv == nv else "changed"))
        drift = any(
            (isinstance(d, str))
            or (d is not None and abs(d) > (tol_s if field.endswith("_s")
                                            else 0))
            for field, d in deltas.items()
        )
        devices.append({"name": name, "drift": drift, "deltas": deltas})
    base_pcts = base.get("percentiles", {})
    new_pcts = new.get("percentiles", {})
    percentiles = {}
    for key in sorted(set(base_pcts) & set(new_pcts)):
        percentiles[key] = {
            q: new_pcts[key][q] - base_pcts[key][q]
            for q in sorted(set(base_pcts[key]) & set(new_pcts[key]))
            if _num(base_pcts[key][q]) and _num(new_pcts[key][q])
        }
    base_mix = base.get("scheduler", {}).get("decision_counts", {})
    new_mix = new.get("scheduler", {}).get("decision_counts", {})
    decisions = {
        action: {
            "base": base_mix.get(action, 0),
            "new": new_mix.get(action, 0),
            "delta": new_mix.get(action, 0) - base_mix.get(action, 0),
        }
        for action in sorted(set(base_mix) | set(new_mix))
    }
    identical = (
        not only_base and not only_new
        and not any(d["drift"] for d in devices)
        and all(abs(v) <= tol_s for shifts in percentiles.values()
                for v in shifts.values())
        and all(d["delta"] == 0 for d in decisions.values())
    )
    return {
        "schema": DIFF_SCHEMA,
        "kind": "fleet",
        "tol_s": tol_s,
        "base": {"source": f"fleet seed={base.get('seed')}",
                 "n_devices": base["n_devices"]},
        "new": {"source": f"fleet seed={new.get('seed')}",
                "n_devices": new["n_devices"]},
        "identical": identical,
        "only_base": only_base,
        "only_new": only_new,
        "devices": devices,
        "percentiles": percentiles,
        "decisions": decisions,
    }


# -- dispatch ----------------------------------------------------------------


def diff_docs(base: dict, new: dict, tol_s: float = DIFF_TOL_S) -> dict:
    """Diff two same-schema artifacts into one ``repro.diff/v1`` doc."""
    for name, doc in (("base", base), ("new", new)):
        if not isinstance(doc, dict) or "schema" not in doc:
            raise DiffError(f"{name} document has no 'schema' key")
    if base["schema"] != new["schema"]:
        raise DiffError(
            f"cannot diff {base['schema']!r} against {new['schema']!r} "
            f"— both documents must share a schema"
        )
    kind = _KIND_BY_SCHEMA.get(base["schema"])
    if kind is None:
        raise DiffError(
            f"no diff support for schema {base['schema']!r} "
            f"(diffable: {', '.join(sorted(_KIND_BY_SCHEMA))})"
        )
    fn = {"critpath": diff_critpath_docs, "profile": diff_profile_docs,
          "steps": diff_steps_docs, "fleet": diff_fleet_docs}[kind]
    doc = fn(base, new, tol_s=tol_s)
    validate_diff(doc)
    return doc


def diff_json(doc: dict) -> str:
    """Deterministic JSON bytes of a diff document."""
    return json.dumps(doc, indent=2, sort_keys=True, allow_nan=False)


# -- validation --------------------------------------------------------------


def validate_diff(doc: dict, tol_s: Optional[float] = None) -> None:
    """Structural + conservation check of a ``repro.diff/v1`` document.

    For the critpath kind this is the tentpole invariant: every matched
    request's attributed per-segment deltas must sum to its observed
    e2e delta within ``tol_s``, and the totals must telescope the same
    way.  Raises :class:`DiffError` on violation.
    """
    if doc.get("schema") != DIFF_SCHEMA:
        raise DiffError(f"expected schema {DIFF_SCHEMA!r}, "
                        f"got {doc.get('schema')!r}")
    kind = doc.get("kind")
    if kind not in DIFF_KINDS:
        raise DiffError(f"unknown diff kind {kind!r}")
    if tol_s is None:
        tol_s = doc.get("tol_s", DIFF_TOL_S)
    if not isinstance(doc.get("identical"), bool):
        raise DiffError("diff document missing boolean 'identical'")
    if kind != "critpath":
        return
    total_delta = 0.0
    for req in doc["requests"]:
        attributed = 0.0
        for seg in req["segments"]:
            if seg["status"] not in DIFF_STATUSES:
                raise DiffError(
                    f"{req['source']}: unknown segment status "
                    f"{seg['status']!r}"
                )
            if seg["status"] == "appeared" and seg["base_s"] != 0.0:
                raise DiffError(f"{req['source']}: appeared segment "
                                f"{seg['task_id']} has base time")
            if seg["status"] == "vanished" and seg["new_s"] != 0.0:
                raise DiffError(f"{req['source']}: vanished segment "
                                f"{seg['task_id']} has new time")
            attributed += seg["delta_s"]
        observed = req["new_e2e_s"] - req["base_e2e_s"]
        if abs(attributed - observed) > tol_s:
            raise DiffError(
                f"{req['source']}: attributed segment deltas "
                f"{attributed!r} do not telescope to the observed e2e "
                f"delta {observed!r} (residual "
                f"{attributed - observed!r} > {tol_s!r} s)"
            )
        total_delta += observed
    e2e = doc["e2e"]
    n = max(1, len(doc["requests"]))
    if abs(e2e["delta_s"] - total_delta) > tol_s * n:
        raise DiffError(
            f"totals: e2e delta {e2e['delta_s']!r} != sum of "
            f"per-request deltas {total_delta!r}"
        )
    if doc["identical"]:
        if doc["only_base"] or doc["only_new"]:
            raise DiffError("diff marked identical but requests were "
                            "unmatched")
        if any(seg["status"] != "unchanged"
               for req in doc["requests"] for seg in req["segments"]):
            raise DiffError("diff marked identical but segments moved")
        if any(abs(req["new_e2e_s"] - req["base_e2e_s"]) > tol_s
               for req in doc["requests"]):
            raise DiffError("diff marked identical but e2e moved")


# -- presentation ------------------------------------------------------------


def diff_table(doc: dict, top: int = 10):
    """Render-ready summary :class:`~repro.eval.report.Table` of a
    diff document — the biggest movers of the relevant kind."""
    from repro.eval.report import Table

    kind = doc["kind"]
    if kind == "critpath":
        table = Table(
            title=(f"Run diff — {doc['base']['source']} vs "
                   f"{doc['new']['source']}"),
            columns=["stage", "delta ms", "share %"],
        )
        for c in doc["top_contributors"][:top]:
            table.add_row(c["tag"], c["delta_s"] * 1e3,
                          None if c["share"] is None
                          else c["share"] * 100)
        e2e = doc["e2e"]
        table.add_note(
            f"e2e {e2e['base_s'] * 1e3:.3f} ms -> "
            f"{e2e['new_s'] * 1e3:.3f} ms "
            f"(delta {e2e['delta_s'] * 1e3:+.3f} ms over "
            f"{doc['n_requests']} matched requests); per-stage deltas "
            f"telescope to the e2e delta within "
            f"{doc['tol_s']:.0e} s (validate_diff)"
        )
    elif kind == "profile":
        table = Table(
            title="Profile diff — per-operator busy-time movers",
            columns=["proc", "operator", "base ms", "new ms",
                     "delta ms", "status"],
        )
        for o in doc["operators"][:top]:
            if o["status"] == "unchanged":
                continue
            table.add_row(o["proc"], o["tag"], o["base_busy_s"] * 1e3,
                          o["new_busy_s"] * 1e3, o["delta_s"] * 1e3,
                          o["status"])
    elif kind == "steps":
        table = Table(
            title="Step-log diff — scheduler decision mix",
            columns=["action", "base", "new", "delta"],
        )
        for action, d in doc["decisions"].items():
            if d["delta"] == 0:
                continue
            table.add_row(action, d["base"], d["new"], d["delta"])
    elif kind == "fleet":
        table = Table(
            title="Fleet diff — per-device drift",
            columns=["device", "delta ttft p95 s", "delta mean itl s",
                     "delta goodput", "delta completed"],
        )
        for d in doc["devices"]:
            if not d["drift"]:
                continue
            deltas = d["deltas"]
            table.add_row(d["name"],
                          deltas.get("ttft_p95_s"),
                          deltas.get("mean_itl_s"),
                          deltas.get("goodput_rps"),
                          deltas.get("n_completed"))
    else:  # pragma: no cover - validate_diff rejects unknown kinds
        raise DiffError(f"unknown diff kind {kind!r}")
    if doc["identical"]:
        table.add_note("runs are identical within tolerance")
    return table


def diff_narrative(doc: dict, top: int = 3) -> List[str]:
    """Per-request regression narrative of a critpath diff — one
    paragraph block per moved request, biggest movers first."""
    if doc["kind"] != "critpath":
        raise DiffError(f"narratives need a critpath diff, got "
                        f"{doc['kind']!r}")
    lines: List[str] = []
    if doc["identical"]:
        lines.append("runs are identical within tolerance — every "
                     "aligned segment is unchanged")
        return lines
    movers = [c for c in doc["top_contributors"]
              if abs(c["delta_s"]) > doc["tol_s"]]
    if movers:
        lines.append("top stage contributors: " + ", ".join(
            f"{c['tag']} ({c['delta_s'] * 1e3:+.3f} ms)"
            for c in movers[:top]))
    for req in doc["requests"]:
        movers = [s for s in req["segments"]
                  if s["status"] != "unchanged"]
        if not movers and abs(req["delta_s"]) <= doc["tol_s"]:
            continue
        lines.append(
            f"{req['source']}: e2e {req['base_e2e_s'] * 1e3:.3f} ms -> "
            f"{req['new_e2e_s'] * 1e3:.3f} ms "
            f"({req['delta_s'] * 1e3:+.3f} ms)"
        )
        movers.sort(key=lambda s: (-abs(s["delta_s"]), s["task_id"]))
        for seg in movers[:top]:
            share = (seg["delta_s"] / req["delta_s"] * 100
                     if abs(req["delta_s"]) > doc["tol_s"] else None)
            share_txt = "" if share is None else f" ({share:+.1f}%)"
            if seg["status"] == "appeared":
                verb = f"appeared on the path (+{seg['new_s'] * 1e3:.3f} ms)"
            elif seg["status"] == "vanished":
                verb = f"left the path ({-seg['base_s'] * 1e3:.3f} ms)"
            else:
                verb = (f"{seg['status']} "
                        f"{seg['delta_s'] * 1e3:+.3f} ms")
            lines.append(f"  {seg['task_id']} [{seg['tag']}] {verb}"
                         f"{share_txt}")
        if len(movers) > top:
            rest = sum(s["delta_s"] for s in movers[top:])
            lines.append(f"  ... {len(movers) - top} more segments "
                         f"({rest * 1e3:+.3f} ms)")
    if doc["only_base"]:
        lines.append(f"only in base: {', '.join(doc['only_base'])}")
    if doc["only_new"]:
        lines.append(f"only in new: {', '.join(doc['only_new'])}")
    return lines


__all__ = [
    "DIFF_TOL_S",
    "DiffError",
    "diff_docs",
    "diff_critpath_docs",
    "diff_profile_docs",
    "diff_steps_docs",
    "diff_fleet_docs",
    "diff_json",
    "diff_narrative",
    "diff_table",
    "segment_deltas",
    "validate_diff",
]
