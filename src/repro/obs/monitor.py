"""Rolling-window SLO monitors with burn-rate alerting over sim time.

Everything in ``repro.obs`` so far is post-hoc: metrics and traces are
read *after* :meth:`~repro.core.service.LlmService.run` returns.  This
module watches the service's live completion stream instead — the
observation hook (:meth:`LlmService.add_observer`) delivers every
finished :class:`~repro.core.service.ServedRequest` as it is recorded,
and :meth:`~repro.hw.sim.FaultInjector.add_listener` mirrors every
consumed fault draw — and evaluates declarative SLOs against rolling
sim-clock windows.

The moving parts:

* :class:`SloSpec` — one objective over the event stream.  Three
  objective kinds share a single good/bad-event framing:

  - ``latency``: a *completed* request is bad when its turnaround
    exceeds ``threshold`` seconds;
  - ``availability``: any request is bad when its terminal status is not
    ``completed`` (rejected / timeout / cancelled / failed);
  - ``energy``: a *completed* request is bad when it consumed more than
    ``threshold`` joules.

  ``target`` is the objective good-fraction (e.g. ``0.9`` = 90% of
  events good); the **error budget** is ``1 - target``.

* :class:`BurnRateRule` — a multi-window burn-rate alert in the SRE
  style.  The burn rate over a window is
  ``bad_fraction / (1 - target)`` (1.0 = consuming budget exactly at
  the sustainable rate).  A rule's condition holds when **both** its
  long and short windows burn faster than ``max_burn_rate`` — the long
  window gives significance, the short window confirms the problem is
  still happening (so alerts resolve promptly once the storm passes).

* The alert **state machine** per ``(slo, rule)`` pair:
  ``inactive → pending → firing → resolved``.  The condition must hold
  for ``for_s`` seconds of sim time before a pending alert escalates to
  firing; a firing alert resolves at the first evaluation where the
  condition no longer holds.  Each excursion becomes one
  :class:`Incident`, and a firing incident **cross-links** the bad
  request tracks (:func:`~repro.core.service.request_track` names match
  the Tracer's spans) and the fault draws inside its long window.

Evaluation is event-driven and purely deterministic: the monitor
evaluates at each distinct event timestamp of the (sim-time-sorted)
stream, so the resulting ``repro.alerts/v1`` timeline is a pure function
of the served workload and the fault spec.  Observation never perturbs
the service — the monitor only reads records the service already
produced (the no-op guarantee of ``tests/obs/test_noop_regression.py``).
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch

#: Schema identifier stamped into every incident timeline.
from repro.obs.schemas import ALERTS_SCHEMA  # noqa: E402 (constant table)

#: SLO objective kinds.
OBJECTIVES = ("latency", "availability", "energy")

#: Alert lifecycle states.
ALERT_STATES = ("pending", "firing", "resolved")

#: Default consecutive-queued-step streak the starvation detector flags.
STARVATION_MIN_STEPS = 8


class MonitorError(ReproError):
    """SLO monitor misconfiguration or misuse."""


@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective (see module docstring).

    ``tier=None`` matches every tier.  ``threshold`` is seconds for
    ``latency``, joules for ``energy``, and unused for
    ``availability``.
    """

    name: str
    objective: str
    target: float
    tier: Optional[str] = None
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise MonitorError("SloSpec needs a non-empty name")
        if self.objective not in OBJECTIVES:
            raise MonitorError(
                f"SLO {self.name!r}: unknown objective "
                f"{self.objective!r}; use one of {OBJECTIVES}"
            )
        if not 0.0 < self.target < 1.0:
            raise MonitorError(
                f"SLO {self.name!r}: target must be in (0, 1), got "
                f"{self.target!r}"
            )
        if self.objective in ("latency", "energy") and self.threshold <= 0:
            raise MonitorError(
                f"SLO {self.name!r}: {self.objective} objective needs a "
                f"positive threshold"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def matches(self, event: "RequestEvent") -> bool:
        """Whether this SLO counts ``event`` at all."""
        if self.tier is not None and event.tier != self.tier:
            return False
        if self.objective in ("latency", "energy"):
            # latency/energy objectives are measured over answers that
            # were actually produced; shed requests are the
            # availability objective's business
            return event.status == "completed"
        return True

    def is_bad(self, event: "RequestEvent") -> bool:
        """Whether a matched ``event`` violates the objective."""
        if self.objective == "latency":
            return event.turnaround_s > self.threshold
        if self.objective == "energy":
            return event.energy_j > self.threshold
        return event.status != "completed"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "objective": self.objective,
            "target": self.target,
            "tier": self.tier,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alerting rule."""

    name: str
    long_window_s: float
    short_window_s: float
    max_burn_rate: float
    for_s: float = 0.0
    severity: str = "page"

    def __post_init__(self) -> None:
        if not self.name:
            raise MonitorError("BurnRateRule needs a non-empty name")
        if self.long_window_s <= 0 or self.short_window_s <= 0:
            raise MonitorError(
                f"rule {self.name!r}: windows must be positive"
            )
        if self.short_window_s > self.long_window_s:
            raise MonitorError(
                f"rule {self.name!r}: short window "
                f"({self.short_window_s!r}s) exceeds long window "
                f"({self.long_window_s!r}s)"
            )
        if self.max_burn_rate <= 0:
            raise MonitorError(
                f"rule {self.name!r}: max_burn_rate must be positive"
            )
        if self.for_s < 0:
            raise MonitorError(f"rule {self.name!r}: for_s must be >= 0")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "long_window_s": self.long_window_s,
            "short_window_s": self.short_window_s,
            "max_burn_rate": self.max_burn_rate,
            "for_s": self.for_s,
            "severity": self.severity,
        }


#: Default rules, scaled to the simulator's second-scale workloads: a
#: fast burn that pages within a couple of seconds of a storm, and a
#: slow burn that tickets sustained budget bleed.
DEFAULT_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule(name="fast-burn", long_window_s=10.0, short_window_s=2.0,
                 max_burn_rate=4.0, for_s=0.0, severity="page"),
    BurnRateRule(name="slow-burn", long_window_s=30.0, short_window_s=6.0,
                 max_burn_rate=1.5, for_s=2.0, severity="ticket"),
)


@dataclass(frozen=True)
class RequestEvent:
    """One finished request as the monitor sees it."""

    t_s: float
    request_id: int
    tier: str
    status: str
    turnaround_s: float
    queueing_s: float
    energy_j: float


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault draw as the monitor sees it."""

    t_s: float
    draw: int
    kind: str


@dataclass
class Incident:
    """One excursion of a ``(slo, rule)`` pair through the state machine."""

    slo: str
    rule: str
    severity: str
    pending_s: float
    firing_s: Optional[float] = None
    resolved_s: Optional[float] = None
    peak_burn_rate: float = 0.0
    links: List[dict] = field(default_factory=list)

    @property
    def state(self) -> str:
        if self.resolved_s is not None:
            return "resolved"
        if self.firing_s is not None:
            return "firing"
        return "pending"

    def to_dict(self) -> dict:
        return {
            "slo": self.slo,
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "pending_s": self.pending_s,
            "firing_s": self.firing_s,
            "resolved_s": self.resolved_s,
            "peak_burn_rate": self.peak_burn_rate,
            "links": list(self.links),
        }


class _Window:
    """Rolling count of (total, bad) events inside ``(t - width, t]``."""

    __slots__ = ("width_s", "_events", "n_total", "n_bad")

    def __init__(self, width_s: float):
        self.width_s = width_s
        self._events: deque = deque()  # (t_s, bad)
        self.n_total = 0
        self.n_bad = 0

    def add(self, t_s: float, bad: bool) -> None:
        self._events.append((t_s, bad))
        self.n_total += 1
        self.n_bad += bad

    def advance(self, now_s: float) -> None:
        cutoff = now_s - self.width_s
        while self._events and self._events[0][0] <= cutoff:
            _, bad = self._events.popleft()
            self.n_total -= 1
            self.n_bad -= bad

    def bad_fraction(self) -> float:
        if self.n_total == 0:
            return 0.0
        return self.n_bad / self.n_total


class _RuleState:
    """State machine of one ``(slo, rule)`` pair during a replay."""

    def __init__(self, slo: SloSpec, rule: BurnRateRule):
        self.slo = slo
        self.rule = rule
        self.long = _Window(rule.long_window_s)
        self.short = _Window(rule.short_window_s)
        self.current: Optional[Incident] = None
        self.incidents: List[Incident] = []

    def ingest(self, event: RequestEvent) -> None:
        bad = self.slo.is_bad(event)
        self.long.add(event.t_s, bad)
        self.short.add(event.t_s, bad)

    def evaluate(self, now_s: float, monitor: "SloMonitor") -> None:
        self.long.advance(now_s)
        self.short.advance(now_s)
        budget = self.slo.error_budget
        burn_long = self.long.bad_fraction() / budget
        burn_short = self.short.bad_fraction() / budget
        condition = (burn_long > self.rule.max_burn_rate
                     and burn_short > self.rule.max_burn_rate)
        incident = self.current
        if incident is not None:
            incident.peak_burn_rate = max(incident.peak_burn_rate,
                                          min(burn_long, burn_short))
        if condition:
            if incident is None:
                incident = Incident(
                    slo=self.slo.name, rule=self.rule.name,
                    severity=self.rule.severity, pending_s=now_s,
                    peak_burn_rate=min(burn_long, burn_short),
                )
                self.current = incident
                self.incidents.append(incident)
            if (incident.firing_s is None
                    and now_s - incident.pending_s >= self.rule.for_s):
                incident.firing_s = now_s
                incident.links = monitor._links_in_window(
                    self.slo, now_s, self.rule.long_window_s,
                )
        elif incident is not None:
            incident.resolved_s = now_s
            self.current = None


class SloMonitor:
    """Streaming SLO evaluation over a service's completion stream.

    Attach with :meth:`attach` (registers the service observer hook and
    the fault-draw listener), or feed events directly through
    :meth:`observe_request` / :meth:`observe_fault`.  The monitor also
    maintains per-``(metric, tier)`` :class:`QuantileSketch`es —
    the mergeable telemetry a fleet aggregates (see
    :mod:`repro.eval.fleet`).

    Events may arrive out of sim-time order (``LlmService.run`` replays
    engines one at a time); the evaluation replays them sorted by
    ``(t_s, request_id)``, so the timeline is independent of arrival
    order.
    """

    def __init__(self, slos: Sequence[SloSpec],
                 rules: Sequence[BurnRateRule] = DEFAULT_RULES,
                 sketch_alpha: float = DEFAULT_ALPHA):
        slos = tuple(slos)
        if not slos:
            raise MonitorError("SloMonitor needs at least one SloSpec")
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise MonitorError(f"duplicate SLO names in {names}")
        rules = tuple(rules)
        if not rules:
            raise MonitorError("SloMonitor needs at least one rule")
        rule_names = [r.name for r in rules]
        if len(set(rule_names)) != len(rule_names):
            raise MonitorError(f"duplicate rule names in {rule_names}")
        self.slos = slos
        self.rules = rules
        self.sketch_alpha = sketch_alpha
        self._requests: List[RequestEvent] = []
        self._faults: List[FaultEvent] = []
        self.sketches: Dict[str, QuantileSketch] = {}
        # -- scheduler step telemetry (repro.steps/v1 stream) --
        self._n_steps = 0
        self._decision_counts: Dict[str, int] = {}
        self._queued_streaks: Dict[int, int] = {}
        self._peak_streaks: Dict[int, int] = {}

    # -- ingestion ------------------------------------------------------------

    def _sketch(self, metric: str, tier: str) -> QuantileSketch:
        key = f"{metric}/{tier}"
        sketch = self.sketches.get(key)
        if sketch is None:
            sketch = QuantileSketch(alpha=self.sketch_alpha)
            self.sketches[key] = sketch
        return sketch

    def observe_request(self, record) -> None:
        """Streaming consumer of finished ``ServedRequest`` records
        (the callable :meth:`LlmService.add_observer` expects)."""
        energy = (record.report.energy_j
                  if record.report is not None else 0.0)
        event = RequestEvent(
            t_s=record.finish_s,
            request_id=record.request_id,
            tier=record.tier,
            status=record.status,
            turnaround_s=record.turnaround_s,
            queueing_s=record.queueing_s,
            energy_j=energy,
        )
        self._requests.append(event)
        if record.status == "completed":
            self._sketch("turnaround_s", record.tier).observe(
                event.turnaround_s)
            self._sketch("queueing_s", record.tier).observe(
                event.queueing_s)
            self._sketch("energy_j", record.tier).observe(event.energy_j)

    def observe_fault(self, draw: int, kind: Optional[str],
                      now_s: float) -> None:
        """Fault-draw listener (:meth:`FaultInjector.add_listener`)."""
        if kind is not None:
            self._faults.append(FaultEvent(t_s=now_s, draw=draw,
                                           kind=kind))

    def observe_step(self, record) -> None:
        """Streaming consumer of scheduler step records.

        Feeds the batch-occupancy and queue-depth sketches (merged
        fleet-wide exactly like the request sketches) and advances the
        starvation detector: a request accrues one streak step for each
        consecutive step it spends in the waiting queue without being
        scheduled.  Accepts :class:`~repro.core.scheduler.StepRecord`
        objects or their ``repro.steps/v1`` dicts.
        """
        def get(key):
            return (record[key] if isinstance(record, dict)
                    else getattr(record, key))

        self._n_steps += 1
        self._sketch("batch_tokens", "step").observe(
            float(get("prefill_tokens") + get("decode_tokens")))
        queued = tuple(get("queued_ids"))
        self._sketch("queue_depth", "step").observe(float(len(queued)))
        self._sketch("inflight", "step").observe(float(get("n_inflight")))
        util = (get("budget_utilization") if isinstance(record, dict)
                else record.budget_utilization)
        if util is not None:
            self._sketch("budget_utilization", "step").observe(util)
        for rid in queued:
            streak = self._queued_streaks.get(rid, 0) + 1
            self._queued_streaks[rid] = streak
            if streak > self._peak_streaks.get(rid, 0):
                self._peak_streaks[rid] = streak
        for rid in tuple(self._queued_streaks):
            if rid not in queued:
                del self._queued_streaks[rid]

    def observe_steps(self, records) -> int:
        """Batch consumer of step records; returns the batch size.

        Produces exactly the state ``N`` :meth:`observe_step` calls
        would: the four step sketches ingest their value streams through
        :meth:`~repro.obs.sketch.QuantileSketch.record_many` (bit-equal
        to sequential observes), and the starvation streak machine still
        advances record-by-record in order — its transitions depend on
        the previous record's queue, so only the sketch ingestion is
        batched.
        """
        records = list(records)
        batch_tokens = []
        queue_depths = []
        inflight = []
        budget_utils = []
        for record in records:
            as_dict = isinstance(record, dict)

            def get(key):
                return record[key] if as_dict else getattr(record, key)

            batch_tokens.append(
                float(get("prefill_tokens") + get("decode_tokens")))
            queued = tuple(get("queued_ids"))
            queue_depths.append(float(len(queued)))
            inflight.append(float(get("n_inflight")))
            util = get("budget_utilization")
            if util is not None:
                budget_utils.append(util)
            for rid in queued:
                streak = self._queued_streaks.get(rid, 0) + 1
                self._queued_streaks[rid] = streak
                if streak > self._peak_streaks.get(rid, 0):
                    self._peak_streaks[rid] = streak
            for rid in tuple(self._queued_streaks):
                if rid not in queued:
                    del self._queued_streaks[rid]
        if not records:
            return 0
        self._n_steps += len(records)
        self._sketch("batch_tokens", "step").record_many(batch_tokens)
        self._sketch("queue_depth", "step").record_many(queue_depths)
        self._sketch("inflight", "step").record_many(inflight)
        if budget_utils:
            # Lazily created like observe_step: an all-None stream must
            # not materialize an empty budget_utilization sketch.
            self._sketch("budget_utilization", "step").record_many(
                budget_utils)
        return len(records)

    def observe_decision(self, decision) -> None:
        """Streaming consumer of scheduler decisions (counts the mix)."""
        action = (decision["action"] if isinstance(decision, dict)
                  else decision.action)
        self._decision_counts[action] = \
            self._decision_counts.get(action, 0) + 1

    # Step-observer protocol (duck-typed by
    # ``LlmService.add_step_observer`` and ``StepLogger``): the monitor
    # listens on both channels under its ``observe_*`` names.
    def on_step(self, record) -> None:
        self.observe_step(record)

    def on_decision(self, decision) -> None:
        self.observe_decision(decision)

    def attach(self, service) -> "SloMonitor":
        """Register this monitor on a service's streaming hooks."""
        service.add_observer(self.observe_request)
        if hasattr(service, "add_step_observer"):
            service.add_step_observer(self)
        if service.fault_injector is not None:
            service.fault_injector.add_listener(self.observe_fault)
        return self

    @property
    def n_events(self) -> int:
        return len(self._requests)

    @property
    def n_faults(self) -> int:
        return len(self._faults)

    @property
    def n_steps(self) -> int:
        return self._n_steps

    def decision_counts(self) -> Dict[str, int]:
        """The observed decision mix, sorted by action name."""
        return dict(sorted(self._decision_counts.items()))

    def starved_requests(self, min_steps: int = STARVATION_MIN_STEPS
                         ) -> List[Tuple[int, int]]:
        """Requests whose peak consecutive-queued streak reached
        ``min_steps`` scheduler steps: ``[(request_id, peak_streak)]``.
        """
        if min_steps < 1:
            raise MonitorError(
                f"min_steps must be >= 1, got {min_steps}")
        return sorted((rid, streak)
                      for rid, streak in self._peak_streaks.items()
                      if streak >= min_steps)

    def scheduler_summary(self,
                          starvation_min_steps: int = STARVATION_MIN_STEPS
                          ) -> dict:
        """Derived scheduler-health view over the observed step stream.

        Empty-stream safe (all-zero summary), so reports can include it
        unconditionally — legacy (non-batched) runs emit no steps.
        """
        occupancy = self.sketches.get("batch_tokens/step")
        depth = self.sketches.get("queue_depth/step")
        util = self.sketches.get("budget_utilization/step")
        summary = {
            "n_steps": self._n_steps,
            "decision_counts": self.decision_counts(),
            "starved": [
                {"request_id": rid, "streak_steps": streak}
                for rid, streak in
                self.starved_requests(starvation_min_steps)
            ],
            "starvation_min_steps": starvation_min_steps,
        }
        if occupancy is not None and occupancy.count:
            summary["batch_tokens"] = {
                "mean": occupancy.mean, "max": occupancy.max,
                "p50": occupancy.percentile(50.0),
                "p95": occupancy.percentile(95.0),
            }
        if depth is not None and depth.count:
            summary["queue_depth"] = {
                "mean": depth.mean, "max": depth.max,
                "p95": depth.percentile(95.0),
            }
        if util is not None and util.count:
            summary["budget_utilization"] = {
                "mean": util.mean, "p95": util.percentile(95.0),
            }
        return summary

    # -- evaluation -----------------------------------------------------------

    def _sorted_requests(self) -> List[RequestEvent]:
        return sorted(self._requests,
                      key=lambda e: (e.t_s, e.request_id))

    def _links_in_window(self, slo: SloSpec, now_s: float,
                         window_s: float) -> List[dict]:
        """Cross-links for a firing alert: the bad request tracks and
        the fault draws inside ``(now_s - window_s, now_s]``."""
        from repro.core.service import request_track
        lo = now_s - window_s
        links: List[dict] = []
        for event in self._sorted_requests():
            if not lo < event.t_s <= now_s:
                continue
            if slo.matches(event) and slo.is_bad(event):
                links.append({
                    "kind": "request",
                    "request_id": event.request_id,
                    "track": request_track(event.request_id),
                    "t_s": event.t_s,
                    "status": event.status,
                })
        for fault in sorted(self._faults,
                            key=lambda f: (f.t_s, f.draw)):
            if lo < fault.t_s <= now_s:
                links.append({
                    "kind": "fault",
                    "draw": fault.draw,
                    "fault": fault.kind,
                    "t_s": fault.t_s,
                })
        return links

    def _evaluate(self) -> List[Incident]:
        """Replay the sorted event stream through every state machine."""
        states = [_RuleState(slo, rule)
                  for slo in self.slos for rule in self.rules]
        events = self._sorted_requests()
        i = 0
        while i < len(events):
            now_s = events[i].t_s
            # ingest every event at exactly this timestamp, then
            # evaluate once — co-timed completions are one observation
            while i < len(events) and events[i].t_s == now_s:
                event = events[i]
                for state in states:
                    if state.slo.matches(event):
                        state.ingest(event)
                i += 1
            for state in states:
                state.evaluate(now_s, self)
        incidents = [inc for state in states for inc in state.incidents]
        incidents.sort(key=lambda inc: (inc.pending_s, inc.slo, inc.rule))
        return incidents

    def compliance(self) -> List[dict]:
        """Whole-stream compliance per SLO (the scoreboard section)."""
        out = []
        for slo in self.slos:
            matched = [e for e in self._requests if slo.matches(e)]
            bad = sum(1 for e in matched if slo.is_bad(e))
            total = len(matched)
            good_fraction = 1.0 if total == 0 else 1.0 - bad / total
            record = slo.to_dict()
            record.update({
                "n_events": total,
                "n_bad": bad,
                "good_fraction": good_fraction,
                "budget_burned": (0.0 if total == 0
                                  else (bad / total) / slo.error_budget),
                "met": good_fraction >= slo.target,
            })
            out.append(record)
        return out

    def timeline(self, source: str = "service") -> dict:
        """The ``repro.alerts/v1`` incident timeline document."""
        incidents = self._evaluate()
        times = [e.t_s for e in self._requests] + \
            [f.t_s for f in self._faults]
        return {
            "schema": ALERTS_SCHEMA,
            "source": source,
            "start_s": min(times) if times else 0.0,
            "end_s": max(times) if times else 0.0,
            "n_request_events": len(self._requests),
            "n_fault_events": len(self._faults),
            "slos": self.compliance(),
            "rules": [rule.to_dict() for rule in self.rules],
            "incidents": [inc.to_dict() for inc in incidents],
        }

    def timeline_json(self, source: str = "service",
                      indent: Optional[int] = None) -> str:
        return json.dumps(self.timeline(source=source), indent=indent,
                          sort_keys=True)


def validate_timeline_doc(doc: dict) -> None:
    """Structural validation of a ``repro.alerts/v1`` document.

    The same invariants ``scripts/check_trace_schema.py`` enforces in
    CI, importable for tests: schema stamp, per-``(source, slo, rule)``
    non-overlapping incident intervals, ``pending <= firing <=
    resolved`` ordering, and non-empty links on every firing incident.
    """
    if doc.get("schema") != ALERTS_SCHEMA:
        raise MonitorError(
            f"expected schema {ALERTS_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    slo_names = {s["name"] for s in doc.get("slos", ())}
    rule_names = {r["name"] for r in doc.get("rules", ())}
    by_pair: Dict[Tuple, List[dict]] = {}
    for i, inc in enumerate(doc.get("incidents", ())):
        where = f"incidents[{i}]"
        if inc["slo"] not in slo_names:
            raise MonitorError(f"{where}: unknown SLO {inc['slo']!r}")
        if inc["rule"] not in rule_names:
            raise MonitorError(f"{where}: unknown rule {inc['rule']!r}")
        if inc["state"] not in ALERT_STATES:
            raise MonitorError(f"{where}: unknown state {inc['state']!r}")
        pending, firing, resolved = (inc["pending_s"], inc["firing_s"],
                                     inc["resolved_s"])
        if not isinstance(pending, (int, float)) \
                or not math.isfinite(pending):
            raise MonitorError(f"{where}: pending_s must be finite")
        if firing is not None and firing < pending:
            raise MonitorError(f"{where}: firing_s < pending_s")
        if resolved is not None:
            anchor = pending if firing is None else firing
            if resolved < anchor:
                raise MonitorError(f"{where}: resolved_s precedes "
                                   f"{'firing' if firing else 'pending'}_s")
        if firing is not None and not inc["links"]:
            raise MonitorError(
                f"{where}: firing incident with no cross-links"
            )
        for link in inc["links"]:
            if link.get("kind") not in ("request", "fault"):
                raise MonitorError(
                    f"{where}: unknown link kind {link.get('kind')!r}"
                )
        key = (inc.get("source", doc.get("source")), inc["slo"],
               inc["rule"])
        by_pair.setdefault(key, []).append(inc)
    for key, incidents in sorted(by_pair.items()):
        incidents = sorted(incidents, key=lambda inc: inc["pending_s"])
        for a, b in zip(incidents, incidents[1:]):
            end = a["resolved_s"]
            if end is None:
                raise MonitorError(
                    f"{key}: unresolved incident at {a['pending_s']!r} "
                    f"followed by another at {b['pending_s']!r}"
                )
            if b["pending_s"] < end:
                raise MonitorError(
                    f"{key}: incidents overlap "
                    f"({b['pending_s']!r} < {end!r})"
                )
