"""A small metrics registry: counters, gauges, histograms.

Replaces the ad-hoc dict accounting the service layer grew — every
aggregate the serving path reports flows through one
:class:`MetricsRegistry`, so exporters (JSONL, snapshot dicts) see a
single deterministic catalogue instead of scraping dataclasses.

Design constraints, in order:

* **Determinism** — instruments are keyed by ``(name, sorted labels)``
  and snapshots are emitted in sorted key order; histogram quantiles are
  computed over the stored samples with ``numpy.percentile`` so they
  match the pre-registry accounting bit-for-bit.
* **No dependencies** — this is not a Prometheus client; it is the
  minimal instrument set the simulator's reports need.
* **Exact aggregation** — histograms keep raw samples (simulated
  workloads are small); sums are accumulated in observation order so a
  registry-backed report equals the hand-rolled ``sum()`` it replaced.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError

LabelKey = Tuple[Tuple[str, str], ...]


class MetricsError(ReproError):
    """Metrics registry misuse (type conflict, unknown instrument...)."""


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _require_finite(kind: str, name: str, value: float) -> float:
    """Reject NaN/inf at the instrument boundary.

    A single NaN observation would silently poison ``Histogram.sum`` /
    ``mean`` and every report built on them; an inf would do the same to
    counters.  Rejection must happen here — downstream aggregation has
    no way to tell a poisoned sum from a real one.
    """
    value = float(value)
    if not math.isfinite(value):
        raise MetricsError(
            f"{kind} {name!r}: non-finite value {value!r}"
        )
    return value


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        amount = _require_finite("counter", self.name, amount)
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r}: negative increment {amount!r}"
            )
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "metric", "kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """Last-write-wins value."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = _require_finite("gauge", self.name, value)

    def snapshot(self) -> dict:
        return {"type": "metric", "kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Raw-sample histogram with exact quantiles.

    Samples are kept verbatim (simulated runs observe at most a few
    thousand values), so ``sum``/``mean``/``percentile`` reproduce the
    exact arithmetic of the list comprehensions they replaced.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "values")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(_require_finite("histogram", self.name, value))

    def record_many(self, values) -> int:
        """Append a batch of samples in one call; returns the batch size.

        Equivalent to ``N`` :meth:`observe` calls (samples are stored
        verbatim, so order and arithmetic are unchanged), but validates
        with one vectorized finiteness check and extends the sample list
        once.  The batch is atomic: any NaN/inf rejects the whole call
        without mutating the histogram.
        """
        array = np.asarray(list(values), dtype=np.float64)
        if array.size and not np.isfinite(array).all():
            bad = array[~np.isfinite(array)][0]
            raise MetricsError(
                f"histogram {self.name!r}: non-finite value {float(bad)!r}"
            )
        self.values.extend(array.tolist())
        return int(array.size)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            return 0.0
        return self.sum / len(self.values)

    def percentile(self, q: float) -> float:
        """Exact percentile over the raw samples.

        Degenerate histograms are well-defined rather than errors: an
        empty histogram returns NaN (there is no value to report — JSON
        snapshots encode this as ``null``) and a single-sample histogram
        returns that sample for every ``q``.
        """
        if not 0.0 <= q <= 100.0:
            raise MetricsError(
                f"histogram {self.name!r}: percentile {q!r} not in [0, 100]"
            )
        if not self.values:
            return float("nan")
        if len(self.values) == 1:
            return float(self.values[0])
        return float(np.percentile(
            np.asarray(self.values, dtype=np.float64), q
        ))

    def snapshot(self) -> dict:
        # Empty histograms report null percentiles/max: NaN is not valid
        # JSON, and 0.0 would be indistinguishable from a real sample.
        empty = not self.values
        return {
            "type": "metric", "kind": self.kind, "name": self.name,
            "labels": dict(self.labels), "count": self.count,
            "sum": self.sum, "mean": self.mean,
            "p50": None if empty else self.percentile(50),
            "p95": None if empty else self.percentile(95),
            "max": None if empty else max(self.values),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create instrument store keyed by name + labels."""

    def __init__(self):
        self._instruments: Dict[Tuple[str, LabelKey], object] = {}

    def _get(self, kind: str, name: str, labels: Dict[str, object]):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = _KINDS[kind](name, key[1])
            self._instruments[key] = instrument
        elif instrument.kind != kind:
            raise MetricsError(
                f"instrument {name!r} already registered as "
                f"{instrument.kind}, requested {kind}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    # -- read-only access (no instrument creation) ----------------------------

    def peek(self, name: str, **labels):
        """The instrument if it exists, else ``None`` (never creates)."""
        return self._instruments.get((name, _label_key(labels)))

    def value(self, name: str, default: float = 0.0, **labels) -> float:
        """A counter/gauge value, or ``default`` if never touched."""
        instrument = self.peek(name, **labels)
        if instrument is None:
            return default
        if isinstance(instrument, Histogram):
            raise MetricsError(
                f"{name!r} is a histogram; read count/sum/percentile "
                "from peek() instead"
            )
        return instrument.value

    def samples(self, name: str, **labels) -> List[float]:
        """A histogram's raw samples (empty list if never touched)."""
        instrument = self.peek(name, **labels)
        if instrument is None:
            return []
        if not isinstance(instrument, Histogram):
            raise MetricsError(f"{name!r} is not a histogram")
        return list(instrument.values)

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> List[dict]:
        """All instruments as plain dicts, sorted by (name, labels)."""
        return [self._instruments[key].snapshot()
                for key in sorted(self._instruments)]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        import os
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")

    def __len__(self) -> int:
        return len(self._instruments)


def as_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Normalize an optional registry argument to a usable instance."""
    return MetricsRegistry() if registry is None else registry
