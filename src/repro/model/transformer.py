"""The decoder-only transformer substrate.

A :class:`DecoderModel` is built from plain numpy layers and supports the
execution pattern the paper depends on: *chunked prefill* — the prompt is
processed in fixed-size chunks whose attention reads the KV cache of all
preceding chunks (Eq. 2), producing outputs identical to monolithic prefill.

Linear projections are pluggable: any callable with ``in_features`` /
``out_features`` can replace a :class:`~repro.model.layers.Linear`, which is
how the quantization library swaps in quantized operators without the model
knowing.  Activation hooks allow calibration observers to record the float
inputs of every linear (the data that drives outlier profiling, §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ModelError, ShapeError
from repro.model.attention import AttentionBlock, merge_heads, split_heads
from repro.model.config import ModelConfig
from repro.model.kv_cache import KVCache
from repro.model.layers import Embedding, Linear, get_activation
from repro.model.rope import apply_rope

#: Hook signature: (layer_index, op_name, activation) -> None.  ``op_name``
#: is one of the linear-site names in :data:`LINEAR_SITES`.
ActivationHook = Callable[[int, str, np.ndarray], None]

#: The linear sites inside each transformer block, in execution order.
#: These are the W8A8 MatMuls that llm.npu places on the NPU (Fig. 5, blue).
LINEAR_SITES = ("wq", "wk", "wv", "wo", "w_gate", "w_up", "w_down")


@dataclass
class DecoderLayerWeights:
    """The pluggable operators of one transformer block."""

    wq: Callable
    wk: Callable
    wv: Callable
    wo: Callable
    w_up: Callable
    w_down: Callable
    w_gate: Optional[Callable] = None
    norm_attn: Callable = None
    norm_ffn: Callable = None

    def linears(self) -> Dict[str, Callable]:
        """Name -> linear operator mapping (skips absent gate)."""
        out = {
            "wq": self.wq, "wk": self.wk, "wv": self.wv, "wo": self.wo,
            "w_up": self.w_up, "w_down": self.w_down,
        }
        if self.w_gate is not None:
            out["w_gate"] = self.w_gate
        return out


class DecoderLayer:
    """One pre-norm transformer block: attention then (optionally gated) FFN."""

    def __init__(self, config: ModelConfig, weights: DecoderLayerWeights,
                 layer_index: int):
        self.config = config
        self.weights = weights
        self.layer_index = layer_index
        self.attention = AttentionBlock(
            config.n_heads, config.kv_heads, config.dim_per_head
        )
        self.act = get_activation(config.activation)
        if config.gated_ffn and weights.w_gate is None:
            raise ModelError(
                f"layer {layer_index}: config requires gated FFN but no "
                "gate projection was provided"
            )

    def __call__(
        self,
        x: np.ndarray,
        cache: KVCache,
        positions: np.ndarray,
        hook: Optional[ActivationHook] = None,
    ) -> np.ndarray:
        w = self.weights
        cfg = self.config

        def fire(name: str, activation: np.ndarray) -> None:
            if hook is not None:
                hook(self.layer_index, name, activation)

        # --- attention half ---
        h = w.norm_attn(x)
        fire("wq", h)
        fire("wk", h)
        fire("wv", h)
        q = split_heads(w.wq(h), cfg.n_heads)
        k = split_heads(w.wk(h), cfg.kv_heads)
        v = split_heads(w.wv(h), cfg.kv_heads)
        q = apply_rope(q, positions, cfg.rope_base)
        k = apply_rope(k, positions, cfg.rope_base)
        attn = self.attention(q, k, v, cache[self.layer_index], positions)
        attn = merge_heads(attn)
        fire("wo", attn)
        x = x + w.wo(attn)

        # --- FFN half ---
        h = w.norm_ffn(x)
        fire("w_up", h)
        up = w.w_up(h)
        if cfg.gated_ffn:
            fire("w_gate", h)
            up = self.act(w.w_gate(h)) * up
        else:
            up = self.act(up)
        fire("w_down", up)
        x = x + w.w_down(up)
        return x


class DecoderModel:
    """A complete decoder-only LLM over numpy.

    Supports three entry points:

    * :meth:`prefill` — run the whole prompt in one shot.
    * :meth:`prefill_chunked` — run the prompt in fixed-size chunks through
      the same KV cache (bit-identical to :meth:`prefill`; property-tested).
    * :meth:`decode_step` — autoregressive single-token step.
    """

    def __init__(self, config: ModelConfig, embedding: Embedding,
                 layers: List[DecoderLayer], final_norm: Callable,
                 lm_head: Callable):
        if len(layers) != config.n_layers:
            raise ModelError(
                f"expected {config.n_layers} layers, got {len(layers)}"
            )
        self.config = config
        self.embedding = embedding
        self.layers = layers
        self.final_norm = final_norm
        self.lm_head = lm_head

    # -- construction ------------------------------------------------------

    @classmethod
    def from_weights(cls, config: ModelConfig,
                     weights: "ModelWeights") -> "DecoderModel":
        """Assemble a model from a :class:`ModelWeights` bundle."""
        layers = [
            DecoderLayer(config, layer_weights, i)
            for i, layer_weights in enumerate(weights.layers)
        ]
        return cls(config, weights.embedding, layers,
                   weights.final_norm, weights.lm_head)

    # -- execution ---------------------------------------------------------

    def new_cache(self) -> KVCache:
        """Fresh, empty KV cache for this model."""
        return KVCache.for_config(self.config)

    def forward(
        self,
        token_ids: np.ndarray,
        cache: KVCache,
        hook: Optional[ActivationHook] = None,
    ) -> np.ndarray:
        """Run tokens through the model, extending ``cache``.

        The tokens are placed at absolute positions continuing from the
        current cache length.  Returns logits ``(len(token_ids), vocab)``.
        """
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 1:
            raise ShapeError(f"token_ids must be 1-D, got {token_ids.shape}")
        start = len(cache)
        positions = np.arange(start, start + token_ids.shape[0])
        if positions.size and positions.max() >= self.config.max_context:
            raise ModelError(
                f"context overflow: position {int(positions.max())} >= "
                f"max_context {self.config.max_context}"
            )
        x = self.embedding(token_ids)
        for layer in self.layers:
            x = layer(x, cache, positions, hook)
        x = self.final_norm(x)
        return self.lm_head(x)

    def prefill(self, token_ids: np.ndarray,
                cache: Optional[KVCache] = None,
                hook: Optional[ActivationHook] = None) -> np.ndarray:
        """Monolithic prefill; returns logits for every prompt position."""
        cache = cache if cache is not None else self.new_cache()
        return self.forward(token_ids, cache, hook)

    def prefill_chunked(
        self,
        token_ids: np.ndarray,
        chunk_len: int,
        cache: Optional[KVCache] = None,
        hook: Optional[ActivationHook] = None,
    ) -> np.ndarray:
        """Chunk-wise prefill (§3.2): process the prompt ``chunk_len`` tokens
        at a time through a shared KV cache.

        Produces logits identical (up to float round-off) to
        :meth:`prefill` — the decoder-only causality property the paper's
        chunking relies on.
        """
        if chunk_len <= 0:
            raise ModelError(f"chunk_len must be positive, got {chunk_len}")
        token_ids = np.asarray(token_ids)
        cache = cache if cache is not None else self.new_cache()
        pieces = []
        for start in range(0, token_ids.shape[0], chunk_len):
            chunk = token_ids[start: start + chunk_len]
            pieces.append(self.forward(chunk, cache, hook))
        if not pieces:
            return np.zeros((0, self.config.vocab_size), dtype=np.float32)
        return np.concatenate(pieces, axis=0)

    def decode_step(self, token_id: int, cache: KVCache,
                    hook: Optional[ActivationHook] = None) -> np.ndarray:
        """One autoregressive step; returns logits ``(vocab,)``."""
        logits = self.forward(np.array([token_id]), cache, hook)
        return logits[0]

    # -- introspection -----------------------------------------------------

    def iter_linears(self):
        """Yield ``(layer_index, site_name, linear)`` for every linear site."""
        for i, layer in enumerate(self.layers):
            for name, op in layer.weights.linears().items():
                yield i, name, op

    def replace_linear(self, layer_index: int, site: str,
                       new_op: Callable) -> None:
        """Swap the linear at ``(layer_index, site)`` — quantization entry."""
        weights = self.layers[layer_index].weights
        if site not in LINEAR_SITES:
            raise ModelError(f"unknown linear site {site!r}")
        if getattr(weights, site, None) is None:
            raise ModelError(
                f"layer {layer_index} has no linear at site {site!r}"
            )
        setattr(weights, site, new_op)


@dataclass
class ModelWeights:
    """A bag of constructed layers ready for :meth:`DecoderModel.from_weights`."""

    embedding: Embedding
    layers: List[DecoderLayerWeights]
    final_norm: Callable
    lm_head: Callable
