"""Causal multi-head attention with grouped-query support and KV cache.

Attention is one of the float operators the paper keeps on the CPU/GPU
(Table 4: every SOTA quantization scheme runs attention in FP16).  The
substrate therefore computes it in float32 unconditionally; only the linear
projections around it are quantized.
"""

from __future__ import annotations


import numpy as np

from repro.errors import ShapeError
from repro.model.kv_cache import LayerKVCache
from repro.model.layers import softmax


def split_heads(x: np.ndarray, n_heads: int) -> np.ndarray:
    """Reshape ``(seq, n_heads*head_dim)`` to ``(seq, n_heads, head_dim)``."""
    seq, width = x.shape
    if width % n_heads != 0:
        raise ShapeError(f"width {width} not divisible by heads {n_heads}")
    return x.reshape(seq, n_heads, width // n_heads)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`."""
    seq, n_heads, head_dim = x.shape
    return x.reshape(seq, n_heads * head_dim)


def repeat_kv(kv: np.ndarray, n_rep: int) -> np.ndarray:
    """Expand KV heads for grouped-query attention.

    ``(seq, kv_heads, dim)`` -> ``(seq, kv_heads * n_rep, dim)`` with each
    KV head repeated ``n_rep`` times, matching HF ``repeat_kv`` semantics.
    """
    if n_rep == 1:
        return kv
    seq, kv_heads, dim = kv.shape
    return np.repeat(kv, n_rep, axis=1)


def causal_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    q_positions: np.ndarray,
) -> np.ndarray:
    """Scaled dot-product attention with an absolute-position causal mask.

    ``q`` is ``(q_len, n_heads, head_dim)``; ``k``/``v`` are
    ``(kv_len, n_heads, head_dim)`` and cover absolute positions
    ``0..kv_len-1``.  Query row ``i`` (absolute position ``q_positions[i]``)
    may attend to key position ``j`` iff ``j <= q_positions[i]`` — which is
    what makes chunked prefill produce the same outputs as monolithic
    prefill (the paper's §3.2 correctness argument).
    """
    if q.ndim != 3 or k.ndim != 3 or v.ndim != 3:
        raise ShapeError("attention inputs must be (seq, heads, dim)")
    if k.shape != v.shape:
        raise ShapeError(f"k shape {k.shape} != v shape {v.shape}")
    if q.shape[1:] != k.shape[1:]:
        raise ShapeError(
            f"q heads/dim {q.shape[1:]} != k heads/dim {k.shape[1:]}"
        )
    q_len, n_heads, head_dim = q.shape
    kv_len = k.shape[0]
    q_positions = np.asarray(q_positions)
    if q_positions.shape != (q_len,):
        raise ShapeError("q_positions must have one entry per query row")
    if q_positions.size and q_positions.max() >= kv_len:
        raise ShapeError(
            f"query position {int(q_positions.max())} has no cached key "
            f"(kv_len={kv_len})"
        )

    # (heads, q_len, kv_len)
    scores = np.einsum("qhd,khd->hqk", q, k) / np.sqrt(head_dim)
    key_pos = np.arange(kv_len)
    mask = key_pos[None, :] > q_positions[:, None]  # (q_len, kv_len)
    scores = np.where(mask[None, :, :], -np.inf, scores)
    probs = softmax(scores, axis=-1)
    out = np.einsum("hqk,khd->qhd", probs, v)
    return out


class AttentionBlock:
    """Attention core for one layer: RoPE'd Q against the KV cache.

    The projections (QKV / O linears) live outside this class so the
    quantization library can replace them; this class owns only the float
    part that the paper schedules to CPU/GPU.
    """

    def __init__(self, n_heads: int, kv_heads: int, head_dim: int):
        if n_heads % kv_heads != 0:
            raise ShapeError(
                f"n_heads {n_heads} not divisible by kv_heads {kv_heads}"
            )
        self.n_heads = n_heads
        self.kv_heads = kv_heads
        self.head_dim = head_dim

    def __call__(
        self,
        q: np.ndarray,
        k_new: np.ndarray,
        v_new: np.ndarray,
        cache: LayerKVCache,
        q_positions: np.ndarray,
    ) -> np.ndarray:
        """Append new K/V to the cache and attend.

        ``q`` is ``(seq, n_heads, head_dim)`` (already RoPE-rotated), and
        ``k_new``/``v_new`` are ``(seq, kv_heads, head_dim)`` (keys already
        rotated).  Returns ``(seq, n_heads, head_dim)``.
        """
        cache.append(k_new, v_new)
        n_rep = self.n_heads // self.kv_heads
        k = repeat_kv(cache.keys, n_rep)
        v = repeat_kv(cache.values, n_rep)
        return causal_attention(q, k, v, q_positions)
