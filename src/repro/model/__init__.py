"""Decoder-only transformer substrate (numpy).

Public surface: model configs (including the five paper LLM presets), the
:class:`DecoderModel` with monolithic/chunked prefill and decode, KV cache,
synthetic weight generation with controllable outlier structure, samplers,
and a toy tokenizer for examples.
"""

from repro.model.attention import AttentionBlock, causal_attention
from repro.model.config import (
    EXTRA_MODELS,
    GEMMA_2B,
    LLAMA2_7B,
    MISTRAL_7B,
    PAPER_MODELS,
    PHI2_27B,
    PHI3_MINI,
    QWEN15_18B,
    QWEN2_15B,
    ModelConfig,
    get_model_config,
    tiny_config,
)
from repro.model.kv_cache import KVCache, LayerKVCache
from repro.model.layers import (
    Embedding,
    LayerNorm,
    Linear,
    RMSNorm,
    gelu,
    relu,
    silu,
    softmax,
)
from repro.model.rope import apply_rope, rope_angles, rope_frequencies
from repro.model.sampler import generate, greedy, top_k, top_p
from repro.model.synthetic import (
    OutlierSpec,
    build_synthetic_model,
    build_synthetic_weights,
    depth_factor,
)
from repro.model.tokenizer import ToyTokenizer
from repro.model.transformer import (
    LINEAR_SITES,
    DecoderLayer,
    DecoderLayerWeights,
    DecoderModel,
    ModelWeights,
)

__all__ = [
    "AttentionBlock",
    "causal_attention",
    "ModelConfig",
    "get_model_config",
    "tiny_config",
    "PAPER_MODELS",
    "EXTRA_MODELS",
    "QWEN2_15B",
    "PHI3_MINI",
    "QWEN15_18B",
    "GEMMA_2B",
    "PHI2_27B",
    "LLAMA2_7B",
    "MISTRAL_7B",
    "KVCache",
    "LayerKVCache",
    "Embedding",
    "Linear",
    "RMSNorm",
    "LayerNorm",
    "silu",
    "gelu",
    "relu",
    "softmax",
    "apply_rope",
    "rope_angles",
    "rope_frequencies",
    "generate",
    "greedy",
    "top_k",
    "top_p",
    "OutlierSpec",
    "build_synthetic_model",
    "build_synthetic_weights",
    "depth_factor",
    "ToyTokenizer",
    "DecoderModel",
    "DecoderLayer",
    "DecoderLayerWeights",
    "ModelWeights",
    "LINEAR_SITES",
]
