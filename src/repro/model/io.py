"""Model checkpoint serialization.

The real llm.npu "supports standard LLM formats exported from Hugging
Face" (§4); the offline counterpart is a simple ``.npz`` checkpoint format
for the numpy substrate: config as JSON metadata plus one array per
parameter tensor.  Round-trips bit-exactly, so quantization experiments
can share a reference model across processes.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict

import numpy as np

from repro.errors import ModelError
from repro.model.config import ModelConfig
from repro.model.layers import Embedding, LayerNorm, Linear, RMSNorm
from repro.model.transformer import (
    DecoderLayerWeights,
    DecoderModel,
    ModelWeights,
)

#: Checkpoint format version, bumped on layout changes.
FORMAT_VERSION = 1


def _norm_arrays(norm, prefix: str) -> Dict[str, np.ndarray]:
    out = {f"{prefix}.gain": norm.gain}
    if isinstance(norm, LayerNorm):
        out[f"{prefix}.bias"] = norm.bias
    return out


def save_model(model: DecoderModel, path: str) -> None:
    """Write a model checkpoint to ``path`` (``.npz``)."""
    arrays: Dict[str, np.ndarray] = {
        "embedding.table": model.embedding.table,
        "lm_head.weight": model.lm_head.weight,
    }
    arrays.update(_norm_arrays(model.final_norm, "final_norm"))
    for i, layer in enumerate(model.layers):
        w = layer.weights
        for site, op in w.linears().items():
            if not isinstance(op, Linear):
                raise ModelError(
                    f"layer {i} site {site!r} is not a float Linear "
                    f"({type(op).__name__}); save before quantizing"
                )
            arrays[f"layers.{i}.{site}.weight"] = op.weight
            if op.bias is not None:
                arrays[f"layers.{i}.{site}.bias"] = op.bias
        arrays.update(_norm_arrays(w.norm_attn, f"layers.{i}.norm_attn"))
        arrays.update(_norm_arrays(w.norm_ffn, f"layers.{i}.norm_ffn"))

    meta = {
        "format_version": FORMAT_VERSION,
        "config": dataclasses.asdict(model.config),
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def _load_norm(kind: str, arrays, prefix: str, name: str):
    gain = arrays[f"{prefix}.gain"]
    if kind == "layernorm":
        return LayerNorm(gain, arrays[f"{prefix}.bias"], name=name)
    return RMSNorm(gain, name=name)


def load_model(path: str) -> DecoderModel:
    """Load a checkpoint written by :func:`save_model`."""
    with np.load(path) as arrays:
        if "__meta__" not in arrays:
            raise ModelError(f"{path}: not a repro checkpoint (no metadata)")
        meta = json.loads(bytes(arrays["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != FORMAT_VERSION:
            raise ModelError(
                f"{path}: unsupported checkpoint version "
                f"{meta.get('format_version')!r}"
            )
        config = ModelConfig(**meta["config"])

        def linear(prefix: str, name: str) -> Linear:
            bias_key = f"{prefix}.bias"
            bias = arrays[bias_key] if bias_key in arrays else None
            return Linear(arrays[f"{prefix}.weight"], bias=bias, name=name)

        layers = []
        for i in range(config.n_layers):
            p = f"layers.{i}"
            layers.append(DecoderLayerWeights(
                wq=linear(f"{p}.wq", f"l{i}.wq"),
                wk=linear(f"{p}.wk", f"l{i}.wk"),
                wv=linear(f"{p}.wv", f"l{i}.wv"),
                wo=linear(f"{p}.wo", f"l{i}.wo"),
                w_up=linear(f"{p}.w_up", f"l{i}.w_up"),
                w_down=linear(f"{p}.w_down", f"l{i}.w_down"),
                w_gate=(linear(f"{p}.w_gate", f"l{i}.w_gate")
                        if f"{p}.w_gate.weight" in arrays else None),
                norm_attn=_load_norm(config.norm, arrays, f"{p}.norm_attn",
                                     f"l{i}.norm_attn"),
                norm_ffn=_load_norm(config.norm, arrays, f"{p}.norm_ffn",
                                    f"l{i}.norm_ffn"),
            ))
        weights = ModelWeights(
            embedding=Embedding(arrays["embedding.table"]),
            layers=layers,
            final_norm=_load_norm(config.norm, arrays, "final_norm",
                                  "final_norm"),
            lm_head=linear("lm_head", "lm_head"),
        )
    return DecoderModel.from_weights(config, weights)
