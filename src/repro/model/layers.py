"""Numpy building blocks for the decoder-only transformer substrate.

Everything operates on ``float32`` arrays shaped ``(seq, hidden)`` (no batch
dimension — on-device inference serves one request at a time, matching the
paper's setting).  Layers hold their parameters as plain numpy arrays so the
quantization library can transform them in place.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU (swish) activation: ``x * sigmoid(x)``."""
    return x / (1.0 + np.exp(-x))


def gelu(x: np.ndarray) -> np.ndarray:
    """GeLU activation (tanh approximation, as used on-device)."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x ** 3)))


def relu(x: np.ndarray) -> np.ndarray:
    """ReLU activation."""
    return np.maximum(x, 0.0)


_ACTIVATIONS = {"silu": silu, "gelu": gelu, "relu": relu}


def get_activation(name: str):
    """Return the activation callable for a config name."""
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise ShapeError(f"unknown activation {name!r}") from None


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


class Linear:
    """A dense layer ``y = x @ W.T + b`` with weights ``(out, in)``.

    The weight layout matches PyTorch's ``nn.Linear`` so per-output-channel
    scales are rows and per-input-channel (activation-channel) structure is
    columns — the axis the paper's outlier machinery works on.
    """

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray] = None,
                 name: str = "linear"):
        if weight.ndim != 2:
            raise ShapeError(f"{name}: weight must be 2-D, got {weight.shape}")
        if bias is not None and bias.shape != (weight.shape[0],):
            raise ShapeError(
                f"{name}: bias shape {bias.shape} does not match out "
                f"features {weight.shape[0]}"
            )
        self.weight = weight.astype(np.float32)
        self.bias = None if bias is None else bias.astype(np.float32)
        self.name = name

    @property
    def in_features(self) -> int:
        return self.weight.shape[1]

    @property
    def out_features(self) -> int:
        return self.weight.shape[0]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"{self.name}: input width {x.shape[-1]} != "
                f"in_features {self.in_features}"
            )
        y = x @ self.weight.T
        if self.bias is not None:
            y = y + self.bias
        return y

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Linear({self.name}: {self.in_features}->{self.out_features})"


class RMSNorm:
    """Root-mean-square layer normalization (LLaMA/Qwen/Gemma style)."""

    def __init__(self, gain: np.ndarray, eps: float = 1e-6, name: str = "rmsnorm"):
        if gain.ndim != 1:
            raise ShapeError(f"{name}: gain must be 1-D, got {gain.shape}")
        self.gain = gain.astype(np.float32)
        self.eps = eps
        self.name = name

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.gain.shape[0]:
            raise ShapeError(
                f"{self.name}: width {x.shape[-1]} != gain {self.gain.shape[0]}"
            )
        ms = np.mean(x * x, axis=-1, keepdims=True)
        return x / np.sqrt(ms + self.eps) * self.gain


class LayerNorm:
    """Standard layer normalization (Phi-2 style)."""

    def __init__(self, gain: np.ndarray, bias: np.ndarray,
                 eps: float = 1e-5, name: str = "layernorm"):
        if gain.shape != bias.shape or gain.ndim != 1:
            raise ShapeError(f"{name}: gain/bias must be matching 1-D arrays")
        self.gain = gain.astype(np.float32)
        self.bias = bias.astype(np.float32)
        self.eps = eps
        self.name = name

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.gain.shape[0]:
            raise ShapeError(
                f"{self.name}: width {x.shape[-1]} != gain {self.gain.shape[0]}"
            )
        mean = np.mean(x, axis=-1, keepdims=True)
        var = np.var(x, axis=-1, keepdims=True)
        return (x - mean) / np.sqrt(var + self.eps) * self.gain + self.bias


def make_norm(kind: str, width: int, gain: Optional[np.ndarray] = None,
              bias: Optional[np.ndarray] = None, name: str = "norm"):
    """Construct a norm layer of the configured kind with unit parameters."""
    if gain is None:
        gain = np.ones(width, dtype=np.float32)
    if kind == "rmsnorm":
        return RMSNorm(gain, name=name)
    if kind == "layernorm":
        if bias is None:
            bias = np.zeros(width, dtype=np.float32)
        return LayerNorm(gain, bias, name=name)
    raise ShapeError(f"unknown norm kind {kind!r}")


class Embedding:
    """Token embedding lookup table shaped ``(vocab, hidden)``."""

    def __init__(self, table: np.ndarray, name: str = "embed"):
        if table.ndim != 2:
            raise ShapeError(f"{name}: table must be 2-D, got {table.shape}")
        self.table = table.astype(np.float32)
        self.name = name

    @property
    def vocab_size(self) -> int:
        return self.table.shape[0]

    @property
    def hidden_size(self) -> int:
        return self.table.shape[1]

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids)
        if token_ids.size and (token_ids.min() < 0
                               or token_ids.max() >= self.vocab_size):
            raise ShapeError(
                f"{self.name}: token id out of range [0, {self.vocab_size})"
            )
        return self.table[token_ids]
