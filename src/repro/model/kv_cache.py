"""Key/value cache for incremental and chunked attention.

The cache is the mechanism that makes the paper's chunk-wise prefill (§3.2)
equivalent to monolithic prefill: the i-th chunk attends over the keys and
values of chunks ``0..i`` — exactly the cross-chunk dependency of Eq. (2).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ShapeError


class LayerKVCache:
    """Append-only K/V store for one transformer layer.

    Keys and values are stored as ``(seq, kv_heads, head_dim)``.  Appends
    grow a preallocated buffer geometrically to keep amortized cost linear.
    """

    def __init__(self, kv_heads: int, head_dim: int, capacity: int = 64):
        self.kv_heads = kv_heads
        self.head_dim = head_dim
        self._k = np.zeros((capacity, kv_heads, head_dim), dtype=np.float32)
        self._v = np.zeros((capacity, kv_heads, head_dim), dtype=np.float32)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    @property
    def keys(self) -> np.ndarray:
        """View of the populated keys, shape ``(len, kv_heads, head_dim)``."""
        return self._k[: self._len]

    @property
    def values(self) -> np.ndarray:
        """View of the populated values."""
        return self._v[: self._len]

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append new rows of keys and values."""
        expected = (self.kv_heads, self.head_dim)
        if k.ndim != 3 or k.shape[1:] != expected:
            raise ShapeError(
                f"key shape {k.shape} must be (seq, {self.kv_heads}, "
                f"{self.head_dim})"
            )
        if v.shape != k.shape:
            raise ShapeError(f"value shape {v.shape} != key shape {k.shape}")
        n = k.shape[0]
        self._ensure(self._len + n)
        self._k[self._len: self._len + n] = k
        self._v[self._len: self._len + n] = v
        self._len += n

    def _ensure(self, capacity: int) -> None:
        if capacity <= self._k.shape[0]:
            return
        new_cap = max(capacity, self._k.shape[0] * 2)
        k = np.zeros((new_cap, self.kv_heads, self.head_dim), dtype=np.float32)
        v = np.zeros_like(k)
        k[: self._len] = self._k[: self._len]
        v[: self._len] = self._v[: self._len]
        self._k, self._v = k, v

    def truncate(self, length: int) -> None:
        """Drop entries beyond ``length`` (used to roll back speculative work)."""
        if length < 0 or length > self._len:
            raise ShapeError(f"cannot truncate to {length} (len={self._len})")
        self._len = length

    def nbytes(self) -> int:
        """Bytes occupied by live cache entries (FP32)."""
        return int(self._len * self.kv_heads * self.head_dim * 4 * 2)


class KVCache:
    """Per-layer K/V caches for a whole model."""

    def __init__(self, n_layers: int, kv_heads: int, head_dim: int):
        self.layers: List[LayerKVCache] = [
            LayerKVCache(kv_heads, head_dim) for _ in range(n_layers)
        ]

    def __getitem__(self, layer: int) -> LayerKVCache:
        return self.layers[layer]

    def __len__(self) -> int:
        """Number of cached positions (identical across layers)."""
        return len(self.layers[0]) if self.layers else 0

    def truncate(self, length: int) -> None:
        for layer in self.layers:
            layer.truncate(length)

    def nbytes(self) -> int:
        return sum(layer.nbytes() for layer in self.layers)

    @classmethod
    def for_config(cls, config) -> "KVCache":
        """Build an empty cache sized for a :class:`ModelConfig`."""
        return cls(config.n_layers, config.kv_heads, config.dim_per_head)
