"""A deterministic toy tokenizer for the runnable examples.

Real tokenizers (BPE vocabularies) cannot be shipped offline, and the
paper's techniques are tokenizer-agnostic — only token *counts* matter to
the system.  This hashing tokenizer maps whitespace-separated words to
stable ids inside a configured vocabulary, with byte-level fallback so any
string round-trips to a plausible token count (≈1.3 tokens/word, in line
with common English BPE rates).
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.errors import WorkloadError


class ToyTokenizer:
    """Stable word-hashing tokenizer.

    Long words are split into 4-character pieces first, approximating BPE
    behaviour where rare words cost several tokens.
    """

    #: Ids 0..3 are reserved control tokens.
    PAD, BOS, EOS, UNK = 0, 1, 2, 3
    _RESERVED = 4
    _PIECE_LEN = 4

    def __init__(self, vocab_size: int = 32000):
        if vocab_size <= self._RESERVED:
            raise WorkloadError(
                f"vocab_size must exceed {self._RESERVED}, got {vocab_size}"
            )
        self.vocab_size = vocab_size

    def _piece_id(self, piece: str) -> int:
        digest = hashlib.blake2s(piece.encode("utf-8"), digest_size=4).digest()
        value = int.from_bytes(digest, "little")
        return self._RESERVED + value % (self.vocab_size - self._RESERVED)

    def _pieces(self, word: str) -> List[str]:
        if len(word) <= self._PIECE_LEN:
            return [word]
        return [word[i: i + self._PIECE_LEN]
                for i in range(0, len(word), self._PIECE_LEN)]

    def encode(self, text: str, add_bos: bool = True) -> List[int]:
        """Tokenize ``text``; deterministic across runs and processes."""
        ids: List[int] = [self.BOS] if add_bos else []
        for word in text.split():
            for piece in self._pieces(word):
                ids.append(self._piece_id(piece))
        return ids

    def decode(self, ids: List[int]) -> str:
        """Lossy decode: renders each id as a stable pseudo-word.

        The toy tokenizer is one-way (hashing); decode exists so examples
        can display generated sequences.
        """
        words = []
        for token in ids:
            if token == self.BOS:
                continue
            if token == self.EOS:
                break
            words.append(f"tok{token}")
        return " ".join(words)

    def count(self, text: str) -> int:
        """Token count of ``text`` without materializing the ids."""
        return len(self.encode(text))
