"""Rotary positional embeddings (RoPE).

Implemented exactly as in LLaMA-family models: each head dimension pair
``(2i, 2i+1)`` is rotated by an angle ``pos * base**(-2i/d)``.  The paper's
implementation note (§4) lists ROPE among the operators they had to add to
QNN; here it is a first-class substrate operator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError


def rope_frequencies(head_dim: int, base: float = 10000.0) -> np.ndarray:
    """Inverse frequencies for each rotation pair, shape ``(head_dim // 2,)``."""
    if head_dim % 2 != 0:
        raise ShapeError(f"RoPE head_dim must be even, got {head_dim}")
    exponents = np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
    return (base ** -exponents).astype(np.float32)


def rope_angles(positions: np.ndarray, head_dim: int,
                base: float = 10000.0) -> Tuple[np.ndarray, np.ndarray]:
    """Cos/sin tables for the given integer positions.

    Returns two arrays shaped ``(len(positions), head_dim // 2)``.
    """
    freqs = rope_frequencies(head_dim, base)
    theta = np.asarray(positions, dtype=np.float32)[:, None] * freqs[None, :]
    return np.cos(theta), np.sin(theta)


def apply_rope(x: np.ndarray, positions: np.ndarray,
               base: float = 10000.0) -> np.ndarray:
    """Rotate ``x`` shaped ``(seq, n_heads, head_dim)`` by token position.

    ``positions`` carries the absolute position of every row, which is what
    lets chunked prefill work: the k-th chunk passes positions
    ``[k*C, k*C + 1, ...]`` and obtains identical rotations to a monolithic
    prefill — an invariant the test suite checks.
    """
    if x.ndim != 3:
        raise ShapeError(f"apply_rope expects (seq, heads, dim), got {x.shape}")
    seq, _, head_dim = x.shape
    positions = np.asarray(positions)
    if positions.shape != (seq,):
        raise ShapeError(
            f"positions shape {positions.shape} must be ({seq},)"
        )
    cos, sin = rope_angles(positions, head_dim, base)
    x_even = x[..., 0::2]
    x_odd = x[..., 1::2]
    cos = cos[:, None, :]
    sin = sin[:, None, :]
    out = np.empty_like(x)
    out[..., 0::2] = x_even * cos - x_odd * sin
    out[..., 1::2] = x_even * sin + x_odd * cos
    return out
