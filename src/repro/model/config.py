"""Model configurations for the decoder-only transformer substrate.

The five mobile-sized LLMs evaluated by the paper (Table 1 / §4.1) are
described here by their public architectural hyper-parameters.  The latency,
energy and memory experiments need only these shapes; the numerical accuracy
experiments run on small synthetic instances created via :func:`tiny_config`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError

#: Activation function names understood by :mod:`repro.model.layers`.
ACTIVATIONS = ("silu", "gelu", "relu")

#: Normalization kinds understood by :mod:`repro.model.layers`.
NORMS = ("rmsnorm", "layernorm")


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of a decoder-only transformer.

    Attributes mirror the usual HuggingFace config fields.  ``n_kv_heads``
    enables grouped-query / multi-query attention (Mistral, Gemma).
    ``head_dim`` may differ from ``hidden_size // n_heads`` (Gemma-2B).
    """

    name: str
    hidden_size: int
    n_layers: int
    n_heads: int
    ffn_hidden: int
    vocab_size: int
    max_context: int
    n_kv_heads: Optional[int] = None
    head_dim: Optional[int] = None
    activation: str = "silu"
    norm: str = "rmsnorm"
    gated_ffn: bool = True
    rope_base: float = 10000.0
    params_billion: Optional[float] = None

    def __post_init__(self) -> None:
        if self.hidden_size <= 0 or self.n_layers <= 0 or self.n_heads <= 0:
            raise ConfigError(f"non-positive dimension in config {self.name!r}")
        if self.activation not in ACTIVATIONS:
            raise ConfigError(f"unknown activation {self.activation!r}")
        if self.norm not in NORMS:
            raise ConfigError(f"unknown norm {self.norm!r}")
        if self.kv_heads > self.n_heads or self.n_heads % self.kv_heads != 0:
            raise ConfigError(
                f"n_kv_heads ({self.kv_heads}) must divide n_heads ({self.n_heads})"
            )
        if self.head_dim is None and self.hidden_size % self.n_heads != 0:
            raise ConfigError(
                f"hidden_size ({self.hidden_size}) not divisible by "
                f"n_heads ({self.n_heads}); set head_dim explicitly"
            )

    @property
    def kv_heads(self) -> int:
        """Number of key/value heads (defaults to ``n_heads`` — full MHA)."""
        return self.n_kv_heads if self.n_kv_heads is not None else self.n_heads

    @property
    def dim_per_head(self) -> int:
        """Per-head dimension."""
        if self.head_dim is not None:
            return self.head_dim
        return self.hidden_size // self.n_heads

    @property
    def q_dim(self) -> int:
        """Total query projection output width."""
        return self.n_heads * self.dim_per_head

    @property
    def kv_dim(self) -> int:
        """Total key (or value) projection output width."""
        return self.kv_heads * self.dim_per_head

    def param_count(self, include_embeddings: bool = True) -> int:
        """Exact parameter count implied by the shapes.

        Used to size weight memory in the simulator; matches the advertised
        parameter counts of the real checkpoints to within a few percent.
        """
        h, f = self.hidden_size, self.ffn_hidden
        per_layer = h * self.q_dim + 2 * h * self.kv_dim + self.q_dim * h
        ffn_mats = 3 if self.gated_ffn else 2
        per_layer += ffn_mats * h * f
        per_layer += 2 * h  # two norms per block
        total = self.n_layers * per_layer + h  # final norm
        if include_embeddings:
            total += 2 * self.vocab_size * h  # embed + lm head
        return total

    def weight_bytes(self, bits_per_weight: int = 8,
                     include_embeddings: bool = False) -> int:
        """Weight footprint at the given quantization width."""
        return self.param_count(include_embeddings) * bits_per_weight // 8

    def replace(self, **kwargs) -> "ModelConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


# ---------------------------------------------------------------------------
# Presets: the five LLMs from the paper's evaluation (§4.1), using their
# published architecture hyper-parameters.
# ---------------------------------------------------------------------------

QWEN15_18B = ModelConfig(
    name="Qwen1.5-1.8B",
    hidden_size=2048,
    n_layers=24,
    n_heads=16,
    ffn_hidden=5504,
    vocab_size=151936,
    max_context=32768,
    activation="silu",
    norm="rmsnorm",
    gated_ffn=True,
    params_billion=1.8,
)

GEMMA_2B = ModelConfig(
    name="Gemma-2B",
    hidden_size=2048,
    n_layers=18,
    n_heads=8,
    n_kv_heads=1,
    head_dim=256,
    ffn_hidden=16384,
    vocab_size=256000,
    max_context=8192,
    activation="gelu",
    norm="rmsnorm",
    gated_ffn=True,
    params_billion=2.0,
)

PHI2_27B = ModelConfig(
    name="Phi-2-2.7B",
    hidden_size=2560,
    n_layers=32,
    n_heads=32,
    ffn_hidden=10240,
    vocab_size=51200,
    max_context=2048,
    activation="gelu",
    norm="layernorm",
    gated_ffn=False,
    params_billion=2.7,
)

LLAMA2_7B = ModelConfig(
    name="LlaMA-2-7B",
    hidden_size=4096,
    n_layers=32,
    n_heads=32,
    ffn_hidden=11008,
    vocab_size=32000,
    max_context=4096,
    activation="silu",
    norm="rmsnorm",
    gated_ffn=True,
    params_billion=7.0,
)

MISTRAL_7B = ModelConfig(
    name="Mistral-7B",
    hidden_size=4096,
    n_layers=32,
    n_heads=32,
    n_kv_heads=8,
    ffn_hidden=14336,
    vocab_size=32000,
    max_context=32768,
    activation="silu",
    norm="rmsnorm",
    gated_ffn=True,
    params_billion=7.0,
)

#: Registry of the paper's evaluated models, keyed by canonical name.
PAPER_MODELS: Dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in (QWEN15_18B, GEMMA_2B, PHI2_27B, LLAMA2_7B, MISTRAL_7B)
}

# Additional mobile-sized LLMs from the paper's Table 1 (not part of the
# five-model evaluation set, but useful for what-if studies).

QWEN2_15B = ModelConfig(
    name="Qwen2-1.5B",
    hidden_size=1536,
    n_layers=28,
    n_heads=12,
    n_kv_heads=2,
    ffn_hidden=8960,
    vocab_size=151936,
    max_context=32768,
    activation="silu",
    norm="rmsnorm",
    gated_ffn=True,
    params_billion=1.5,
)

PHI3_MINI = ModelConfig(
    name="Phi3-mini-3.8B",
    hidden_size=3072,
    n_layers=32,
    n_heads=32,
    ffn_hidden=8192,
    vocab_size=32064,
    max_context=131072,
    activation="silu",
    norm="rmsnorm",
    gated_ffn=True,
    params_billion=3.8,
)

#: Extra Table 1 presets, outside the evaluated five.
EXTRA_MODELS: Dict[str, ModelConfig] = {
    cfg.name: cfg for cfg in (QWEN2_15B, PHI3_MINI)
}


def get_model_config(name: str) -> ModelConfig:
    """Look up a model preset by (case-insensitive) name.

    Searches the paper's five evaluated models first, then the extra
    Table 1 presets.
    """
    for registry in (PAPER_MODELS, EXTRA_MODELS):
        for key, cfg in registry.items():
            if key.lower() == name.lower():
                return cfg
    available = sorted(PAPER_MODELS) + sorted(EXTRA_MODELS)
    raise ConfigError(f"unknown model {name!r}; available: {available}")


def tiny_config(
    name: str = "tiny",
    hidden_size: int = 64,
    n_layers: int = 4,
    n_heads: int = 4,
    ffn_hidden: int = 172,
    vocab_size: int = 199,
    max_context: int = 256,
    **kwargs,
) -> ModelConfig:
    """A small configuration for numerical experiments and tests.

    Defaults give a ~400k-parameter model whose forward pass runs in
    milliseconds yet exercises every layer kind the paper models use.
    """
    return ModelConfig(
        name=name,
        hidden_size=hidden_size,
        n_layers=n_layers,
        n_heads=n_heads,
        ffn_hidden=ffn_hidden,
        vocab_size=vocab_size,
        max_context=max_context,
        **kwargs,
    )
