"""Synthetic model weights with realistic activation-outlier structure.

The paper's outlier machinery (§3.3) rests on three measured facts:

* **Fig. 10** — during one inference fewer than 0.3% of activation channels
  contain outliers;
* **Fig. 11** — outlier occurrences are highly skewed: fewer than 3% of
  channels ("hot channels") produce over 80% of all outliers;
* **Fig. 12** — outlier *importance* (largest outlier / quantization scale)
  is highest for layers near the model's input and output (a "U" profile).

Real checkpoints cannot be shipped in this offline reproduction, so this
module builds random-weight models whose activations exhibit exactly that
structure, through two controllable mechanisms:

1. **hot channels** — a small set of channels per layer whose norm gain is
   amplified, so activations there regularly exceed the per-tensor
   quantization scale;
2. **spike tokens** — a small fraction of vocabulary entries carry a large
   embedding component in a random channel, producing the rare
   outside-hot-set outliers the paper observes.

The amplification is modulated across depth by a U-shaped profile to
reproduce Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.model.config import ModelConfig, tiny_config
from repro.model.layers import Embedding, Linear, make_norm
from repro.model.transformer import (
    DecoderLayerWeights,
    DecoderModel,
    ModelWeights,
)


@dataclass(frozen=True)
class OutlierSpec:
    """Controls the synthetic activation-outlier structure.

    ``hot_fraction`` of channels receive gain ``hot_gain`` (scaled by the
    depth profile); ``spike_token_fraction`` of vocabulary entries spike a
    random channel by ``spike_gain``.  ``depth_profile`` selects how outlier
    magnitude varies across layers: ``"u"`` (paper's Fig. 12 shape),
    ``"flat"``, or ``"rising"``.
    """

    hot_fraction: float = 0.02
    hot_gain: float = 25.0
    spike_token_fraction: float = 0.03
    spike_gain: float = 4.0
    depth_profile: str = "u"
    enabled: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigError("hot_fraction must be in [0, 1]")
        if not 0.0 <= self.spike_token_fraction <= 1.0:
            raise ConfigError("spike_token_fraction must be in [0, 1]")
        if self.depth_profile not in ("u", "flat", "rising"):
            raise ConfigError(
                f"unknown depth_profile {self.depth_profile!r}"
            )


def depth_factor(layer_index: int, n_layers: int, profile: str) -> float:
    """Multiplier on outlier magnitude for a given layer depth.

    The ``"u"`` profile peaks sharply at the first and last layers and is
    nearly flat (0.02) through the middle, mirroring the paper's measured
    importance curve where a small minority of layers (near input and
    output) hold almost all the important outliers — which is what makes
    pruning 85% of layers' shadow execution nearly free (Table 6) while
    pruning 100% is not (Fig. 16).
    """
    if n_layers <= 1:
        return 1.0
    t = layer_index / (n_layers - 1)
    if profile == "flat":
        return 1.0
    if profile == "rising":
        return 0.02 + 0.98 * t ** 6
    # "u": steep bowl — 1.0 at both ends, ~0.05 through the middle.
    return 0.02 + 0.98 * abs(2.0 * t - 1.0) ** 8


def hot_channel_positions(rng: np.random.Generator, width: int,
                          fraction: float) -> np.ndarray:
    """Pick the (sorted) hot-channel indices for one layer."""
    count = max(1, int(round(width * fraction)))
    return np.sort(rng.choice(width, size=min(count, width), replace=False))


def _linear(rng: np.random.Generator, out_features: int, in_features: int,
            name: str, residual_scale: float = 1.0) -> Linear:
    std = residual_scale / np.sqrt(in_features)
    weight = rng.normal(0.0, std, size=(out_features, in_features))
    return Linear(weight.astype(np.float32), name=name)


def build_synthetic_weights(
    config: ModelConfig,
    seed: int = 0,
    outliers: Optional[OutlierSpec] = None,
) -> ModelWeights:
    """Generate a full weight bundle for ``config``.

    Residual-path output projections are scaled by ``1/sqrt(2*n_layers)``
    so deep models keep stable activation magnitudes, as standard inits do.
    """
    outliers = outliers if outliers is not None else OutlierSpec()
    rng = np.random.default_rng(seed)
    h = config.hidden_size
    res_scale = 1.0 / np.sqrt(2.0 * config.n_layers)

    # --- embedding with spike tokens ---
    table = rng.normal(0.0, 1.0, size=(config.vocab_size, h)).astype(np.float32)
    if outliers.enabled and outliers.spike_token_fraction > 0:
        n_spike = max(1, int(config.vocab_size * outliers.spike_token_fraction))
        spike_tokens = rng.choice(config.vocab_size, size=n_spike, replace=False)
        spike_channels = rng.integers(0, h, size=n_spike)
        signs = rng.choice((-1.0, 1.0), size=n_spike)
        table[spike_tokens, spike_channels] += signs * outliers.spike_gain
    embedding = Embedding(table)

    layers: List[DecoderLayerWeights] = []
    for i in range(config.n_layers):
        gain_attn = np.ones(h, dtype=np.float32)
        gain_ffn = np.ones(h, dtype=np.float32)
        if outliers.enabled and outliers.hot_fraction > 0:
            factor = depth_factor(i, config.n_layers, outliers.depth_profile)
            hot = hot_channel_positions(rng, h, outliers.hot_fraction)
            # Geometric interpolation: middle layers' hot channels sit just
            # above the crowd (importance ~1, prunable), end layers' far
            # above it (importance ~hot_gain, must keep shadow execution).
            boost = outliers.hot_gain ** factor
            gain_attn[hot] *= boost
            # FFN norm shares most hot channels but perturbs a few, so the
            # hot sets of different linear sites overlap without matching.
            hot2 = hot.copy()
            if hot2.size > 1:
                swap = rng.integers(0, h, size=max(1, hot2.size // 4))
                hot2[: swap.size] = swap
            gain_ffn[np.unique(hot2)] *= boost

        layer = DecoderLayerWeights(
            wq=_linear(rng, config.q_dim, h, f"l{i}.wq"),
            wk=_linear(rng, config.kv_dim, h, f"l{i}.wk"),
            wv=_linear(rng, config.kv_dim, h, f"l{i}.wv"),
            wo=_linear(rng, h, config.q_dim, f"l{i}.wo", res_scale),
            w_up=_linear(rng, config.ffn_hidden, h, f"l{i}.w_up"),
            w_down=_linear(rng, h, config.ffn_hidden, f"l{i}.w_down", res_scale),
            w_gate=(
                _linear(rng, config.ffn_hidden, h, f"l{i}.w_gate")
                if config.gated_ffn else None
            ),
            norm_attn=make_norm(config.norm, h, gain=gain_attn,
                                name=f"l{i}.norm_attn"),
            norm_ffn=make_norm(config.norm, h, gain=gain_ffn,
                               name=f"l{i}.norm_ffn"),
        )
        layers.append(layer)

    final_norm = make_norm(config.norm, h, name="final_norm")
    lm_head = _linear(rng, config.vocab_size, h, "lm_head")
    return ModelWeights(embedding=embedding, layers=layers,
                        final_norm=final_norm, lm_head=lm_head)


def build_synthetic_model(
    config: Optional[ModelConfig] = None,
    seed: int = 0,
    outliers: Optional[OutlierSpec] = None,
) -> DecoderModel:
    """Build a ready-to-run synthetic :class:`DecoderModel`.

    With no arguments this returns the default tiny test model used across
    the accuracy experiments.
    """
    config = config if config is not None else tiny_config()
    weights = build_synthetic_weights(config, seed=seed, outliers=outliers)
    return DecoderModel.from_weights(config, weights)
