"""Token samplers for the decode stage.

The paper's prototype decodes on the MLLM CPU backend with greedy/standard
sampling; generation quality is orthogonal to its contribution, so the
substrate provides the common simple strategies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.model.layers import softmax


def greedy(logits: np.ndarray) -> int:
    """Argmax sampling."""
    return int(np.argmax(logits))


def top_k(logits: np.ndarray, k: int,
          rng: Optional[np.random.Generator] = None,
          temperature: float = 1.0) -> int:
    """Sample from the renormalized top-k distribution."""
    if k <= 0:
        raise ModelError(f"top_k requires k >= 1, got {k}")
    if temperature <= 0:
        raise ModelError(f"temperature must be positive, got {temperature}")
    rng = rng if rng is not None else np.random.default_rng()
    k = min(k, logits.shape[-1])
    top = np.argpartition(logits, -k)[-k:]
    probs = softmax(logits[top] / temperature)
    return int(rng.choice(top, p=probs))


def top_p(logits: np.ndarray, p: float,
          rng: Optional[np.random.Generator] = None,
          temperature: float = 1.0) -> int:
    """Nucleus sampling: smallest prefix of the sorted distribution with
    cumulative probability >= ``p``."""
    if not 0.0 < p <= 1.0:
        raise ModelError(f"top_p requires 0 < p <= 1, got {p}")
    if temperature <= 0:
        raise ModelError(f"temperature must be positive, got {temperature}")
    rng = rng if rng is not None else np.random.default_rng()
    probs = softmax(logits / temperature)
    order = np.argsort(probs)[::-1]
    cumulative = np.cumsum(probs[order])
    cutoff = int(np.searchsorted(cumulative, p)) + 1
    kept = order[:cutoff]
    kept_probs = probs[kept] / probs[kept].sum()
    return int(rng.choice(kept, p=kept_probs))


def generate(model, prompt_ids: np.ndarray, max_new_tokens: int,
             chunk_len: Optional[int] = None,
             eos_token: Optional[int] = None,
             sampler=greedy) -> np.ndarray:
    """Prefill (optionally chunked) then greedy/sampled decode.

    Returns the generated token ids (excluding the prompt).
    """
    if max_new_tokens < 0:
        raise ModelError("max_new_tokens must be non-negative")
    cache = model.new_cache()
    if chunk_len is None:
        logits = model.prefill(np.asarray(prompt_ids), cache)
    else:
        logits = model.prefill_chunked(np.asarray(prompt_ids), chunk_len, cache)
    out = []
    if max_new_tokens == 0 or logits.shape[0] == 0:
        return np.array(out, dtype=np.int64)
    token = sampler(logits[-1])
    out.append(token)
    for _ in range(max_new_tokens - 1):
        if eos_token is not None and token == eos_token:
            break
        logits_step = model.decode_step(token, cache)
        token = sampler(logits_step)
        out.append(token)
    return np.array(out, dtype=np.int64)
