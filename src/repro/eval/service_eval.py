"""LLM-as-a-System-Service load analysis (§3.1's deployment setting).

The paper positions llm.npu inside an OS-level LLM service.  This driver
sweeps request inter-arrival gaps for a workload and reports the queueing
behaviour — the practical payoff of a 10x-faster prefill is that the
service sustains a 10x-higher request rate before queueing explodes.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import EngineConfig, LlmService
from repro.eval.report import Table
from repro.workloads.datasets import WORKLOADS, sample_workload


def service_load(
    model: str = "Qwen1.5-1.8B",
    device: str = "Redmi K70 Pro",
    workload: str = "ui_automation",
    inter_arrival_s: Sequence[float] = (8.0, 4.0, 2.0, 1.0, 0.5),
    n_requests: int = 12,
    seed: int = 0,
) -> Table:
    """Queueing behaviour of the shared llm.npu service under load."""
    spec = WORKLOADS[workload]
    table = Table(
        title=f"LLM service load — {workload} on {model} ({device})",
        columns=["inter-arrival s", "mean turnaround s", "p95 turnaround s",
                 "mean queueing s", "throughput req/s"],
    )
    for gap in inter_arrival_s:
        service = LlmService(device, EngineConfig())
        samples = sample_workload(spec, n_requests, seed=seed)
        service.submit_workload(model, samples, inter_arrival_s=gap)
        stats = service.stats()
        table.add_row(gap, stats.mean_turnaround_s, stats.p95_turnaround_s,
                      stats.mean_queueing_s, stats.throughput_rps)
    table.add_note("queueing stays near zero while the inter-arrival gap "
                   "exceeds the per-request service time, then grows "
                   "without bound — the service's capacity knee")
    return table


def service_engine_comparison(
    device: str = "Redmi K70 Pro",
    workload: str = "ui_automation",
    inter_arrival_s: float = 2.0,
    n_requests: int = 10,
    seed: int = 0,
) -> Table:
    """The same arrival stream served by llm.npu vs a CPU-engine service.

    Shows the deployment-level consequence of prefill speed: at an
    arrival rate llm.npu absorbs easily, a llama.cpp-backed service
    drowns in queueing.
    """
    from repro.baselines import LlamaCppEngine
    from repro.workloads.datasets import WorkloadSample

    spec = WORKLOADS[workload]
    samples = sample_workload(spec, n_requests, seed=seed)
    table = Table(
        title=f"Service comparison — {workload}, one request every "
              f"{inter_arrival_s:g}s",
        columns=["engine", "mean turnaround s", "p95 turnaround s",
                 "mean queueing s"],
    )

    service = LlmService(device, EngineConfig())
    service.submit_workload("Qwen1.5-1.8B", samples,
                            inter_arrival_s=inter_arrival_s)
    stats = service.stats()
    table.add_row("llm.npu service", stats.mean_turnaround_s,
                  stats.p95_turnaround_s, stats.mean_queueing_s)

    # A baseline-backed service: same FIFO clock arithmetic, llama.cpp
    # engine latencies.
    engine = LlamaCppEngine("Qwen1.5-1.8B", device)
    clock = 0.0
    turnarounds, queueing = [], []
    for i, sample in enumerate(samples):
        arrival = i * inter_arrival_s
        start = max(clock, arrival)
        e2e = engine.infer(sample.prompt_tokens,
                           sample.output_tokens).e2e_latency_s
        clock = start + e2e
        turnarounds.append(clock - arrival)
        queueing.append(start - arrival)
    import numpy as np
    table.add_row("llama.cpp service", float(np.mean(turnarounds)),
                  float(np.percentile(turnarounds, 95)),
                  float(np.mean(queueing)))
    return table
