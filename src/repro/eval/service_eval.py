"""LLM-as-a-System-Service load analysis (§3.1's deployment setting).

The paper positions llm.npu inside an OS-level LLM service.  This driver
sweeps request inter-arrival gaps for a workload and reports the queueing
behaviour — the practical payoff of a 10x-faster prefill is that the
service sustains a 10x-higher request rate before queueing explodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import (
    BatchConfig,
    EngineConfig,
    LlmService,
    TierPolicy,
    goodput_rps,
)
from repro.eval.report import Table
from repro.hw.sim import FaultSpec
from repro.workloads.datasets import (
    WORKLOADS,
    WorkloadSample,
    sample_workload,
)


def service_load(
    model: str = "Qwen1.5-1.8B",
    device: str = "Redmi K70 Pro",
    workload: str = "ui_automation",
    inter_arrival_s: Sequence[float] = (8.0, 4.0, 2.0, 1.0, 0.5),
    n_requests: int = 12,
    seed: int = 0,
) -> Table:
    """Queueing behaviour of the shared llm.npu service under load."""
    from repro.obs import breakdown_requests, tier_component_means
    spec = WORKLOADS[workload]
    table = Table(
        title=f"LLM service load — {workload} on {model} ({device})",
        columns=["inter-arrival s", "mean turnaround s", "p95 turnaround s",
                 "mean queueing s", "throughput req/s",
                 "mean prefill s", "mean decode s"],
    )
    for gap in inter_arrival_s:
        service = LlmService(device, EngineConfig())
        samples = sample_workload(spec, n_requests, seed=seed)
        service.submit_workload(model, samples, inter_arrival_s=gap)
        stats = service.stats()
        means = tier_component_means(
            breakdown_requests(service.requests))["interactive"]
        table.add_row(gap, stats.mean_turnaround_s, stats.p95_turnaround_s,
                      stats.mean_queueing_s, stats.throughput_rps,
                      means["prefill_s"], means["decode_s"])
    table.add_note("queueing stays near zero while the inter-arrival gap "
                   "exceeds the per-request service time, then grows "
                   "without bound — the service's capacity knee; the "
                   "prefill/decode split stays constant (queueing, not "
                   "service time, is what load inflates)")
    return table


def service_engine_comparison(
    device: str = "Redmi K70 Pro",
    workload: str = "ui_automation",
    inter_arrival_s: float = 2.0,
    n_requests: int = 10,
    seed: int = 0,
) -> Table:
    """The same arrival stream served by llm.npu vs a CPU-engine service.

    Shows the deployment-level consequence of prefill speed: at an
    arrival rate llm.npu absorbs easily, a llama.cpp-backed service
    drowns in queueing.
    """
    from repro.baselines import LlamaCppEngine
    from repro.workloads.datasets import WorkloadSample

    spec = WORKLOADS[workload]
    samples = sample_workload(spec, n_requests, seed=seed)
    table = Table(
        title=f"Service comparison — {workload}, one request every "
              f"{inter_arrival_s:g}s",
        columns=["engine", "mean turnaround s", "p95 turnaround s",
                 "mean queueing s"],
    )

    service = LlmService(device, EngineConfig())
    service.submit_workload("Qwen1.5-1.8B", samples,
                            inter_arrival_s=inter_arrival_s)
    stats = service.stats()
    table.add_row("llm.npu service", stats.mean_turnaround_s,
                  stats.p95_turnaround_s, stats.mean_queueing_s)

    # A baseline-backed service: same FIFO clock arithmetic, llama.cpp
    # engine latencies.
    engine = LlamaCppEngine("Qwen1.5-1.8B", device)
    clock = 0.0
    turnarounds, queueing = [], []
    for i, sample in enumerate(samples):
        arrival = i * inter_arrival_s
        start = max(clock, arrival)
        e2e = engine.infer(sample.prompt_tokens,
                           sample.output_tokens).e2e_latency_s
        clock = start + e2e
        turnarounds.append(clock - arrival)
        queueing.append(start - arrival)
    table.add_row("llama.cpp service", float(np.mean(turnarounds)),
                  float(np.percentile(turnarounds, 95)),
                  float(np.mean(queueing)))
    return table


# -- multi-tenant scheduling (tiers, admission, faults) -----------------------

#: Tier policies used by the two-tier experiments: a tight interactive
#: SLO (the user is watching) and a background tier that prefers
#: shedding to unbounded queueing.
EXPERIMENT_TIERS: Dict[str, TierPolicy] = {
    "interactive": TierPolicy(
        name="interactive", priority=10,
        slo_queueing_s=4.0, timeout_s=30.0,
        max_retries=2, retry_backoff_s=0.05,
    ),
    "background": TierPolicy(
        name="background", priority=0,
        slo_queueing_s=15.0, timeout_s=120.0,
        max_retries=3, retry_backoff_s=0.2,
    ),
}


def two_tier_arrivals(
    n_interactive: int = 12,
    n_background: int = 10,
    seed: int = 42,
    interactive_gap_s: Tuple[float, float] = (0.8, 1.6),
    background_gap_s: float = 0.6,
    background_start_s: float = 0.5,
    background_workload: str = "email_reply",
) -> List[Tuple[str, WorkloadSample, float]]:
    """A seeded two-tier overload stream: ``(tier, sample, arrival_s)``.

    Interactive requests are short UI-automation prompts arriving at a
    jittered ~1.2 s cadence; background requests are long
    ``background_workload`` prompts (email replies by default) arriving
    in an early burst — together they oversubscribe the engine, which
    is the regime where scheduling policy matters.
    """
    rng = np.random.default_rng(seed)
    interactive = sample_workload(WORKLOADS["ui_automation"],
                                  n_interactive, seed=seed + 1)
    background = sample_workload(WORKLOADS[background_workload],
                                 n_background, seed=seed + 2)
    stream: List[Tuple[str, WorkloadSample, float]] = []
    t = 0.0
    lo, hi = interactive_gap_s
    for sample in interactive:
        t += float(rng.uniform(lo, hi))
        stream.append(("interactive", sample, t))
    for i, sample in enumerate(background):
        stream.append(("background", sample,
                       background_start_s + i * background_gap_s))
    return stream


def _run_two_tier(
    scheduler: str,
    admission: bool,
    model: str,
    device: str,
    stream: List[Tuple[str, WorkloadSample, float]],
    fault_spec: Optional[FaultSpec] = None,
    tracer=None,
    metrics=None,
    monitor=None,
    batching: Optional[BatchConfig] = None,
    steplog=None,
) -> LlmService:
    service = LlmService(device, EngineConfig(), scheduler=scheduler,
                         admission=admission, fault_spec=fault_spec,
                         tiers=EXPERIMENT_TIERS, tracer=tracer,
                         metrics=metrics, batching=batching)
    if monitor is not None:
        monitor.attach(service)
    if steplog is not None:
        steplog.attach(service)
    for tier, sample, arrival in stream:
        service.enqueue(model, sample.prompt_tokens, sample.output_tokens,
                        arrival_s=arrival, tier=tier)
    service.run()
    return service


def service_tier_comparison(
    model: str = "Qwen1.5-1.8B",
    device: str = "Redmi K70 Pro",
    n_interactive: int = 12,
    n_background: int = 10,
    seed: int = 42,
) -> Table:
    """Tiered scheduling + admission control vs. the FIFO baseline.

    The same seeded two-tier overload stream is played through (a) the
    seed's single FIFO queue with no admission control and (b) the
    multi-tenant scheduler.  The scheduler keeps the interactive tier's
    p95 latency near its service time by letting interactive requests
    jump the queue, and sheds background load whose projected wait
    exceeds the background SLO.
    """
    stream = two_tier_arrivals(n_interactive, n_background, seed=seed)
    table = Table(
        title=f"Two-tier service scheduling — {model} ({device}), "
              f"{n_interactive} interactive + {n_background} background",
        columns=["scheduler", "int p50 s", "int p95 s", "bg p95 s",
                 "int rejected", "bg rejected", "int timeout",
                 "npu util"],
    )
    for label, scheduler, admission in (
            ("fifo (seed)", "fifo", False),
            ("priority+admission", "priority", True)):
        service = _run_two_tier(scheduler, admission, model, device, stream)
        m = service.metrics()
        interactive = m.tier("interactive")
        background = m.tier("background")
        table.add_row(label,
                      interactive.p50_turnaround_s,
                      interactive.p95_turnaround_s,
                      background.p95_turnaround_s,
                      interactive.n_rejected,
                      background.n_rejected,
                      interactive.n_timeout,
                      m.npu_utilization)
    table.add_note("the interactive tier's p95 collapses to ~its service "
                   "time under priority scheduling, paid for by shed "
                   "background load (rejections) — the FIFO baseline "
                   "makes the foreground wait behind the batch")
    return table


def service_fault_recovery(
    model: str = "Qwen1.5-1.8B",
    device: str = "Redmi K70 Pro",
    transient_rates: Sequence[float] = (0.0, 0.1, 0.3),
    n_requests: int = 10,
    seed: int = 0,
) -> Table:
    """Retry-with-backoff under increasing transient fault pressure."""
    table = Table(
        title=f"Service fault recovery — {model} ({device})",
        columns=["transient rate", "completed", "failed", "retries",
                 "mean turnaround s"],
    )
    for rate in transient_rates:
        service = LlmService(
            device, EngineConfig(), scheduler="priority", admission=False,
            fault_spec=FaultSpec(transient_rate=rate, seed=seed + 100),
            tiers=EXPERIMENT_TIERS,
        )
        samples = sample_workload(WORKLOADS["ui_automation"], n_requests,
                                  seed=seed)
        for i, sample in enumerate(samples):
            service.enqueue(model, sample.prompt_tokens,
                            sample.output_tokens, arrival_s=2.0 * i,
                            tier="interactive")
        service.run()
        m = service.metrics()
        done = [r for r in service.requests if r.status == "completed"]
        mean_turnaround = (sum(r.turnaround_s for r in done) / len(done)
                           if done else 0.0)
        table.add_row(rate, m.n_completed, m.n_failed, m.n_retries,
                      mean_turnaround)
    table.add_note("transient faults cost bounded retries (backoff + the "
                   "dead attempt's partial execution), not failed "
                   "requests, until the per-tier retry cap is hit")
    return table


def service_golden_records(seed: int = 42, tracer=None, metrics=None,
                           monitor=None,
                           batching: Optional[BatchConfig] = None,
                           steplog=None):
    """The golden regression scenario: two-tier overload with faults.

    Returns the served :class:`~repro.core.ServedRequest` records of the
    priority+admission scheduler over the seeded two-tier stream with a
    seeded transient-fault injector — every field is a pure function of
    ``seed``, which makes this the determinism tripwire for future
    scheduler changes.  Pass a :class:`~repro.obs.Tracer` /
    :class:`~repro.obs.MetricsRegistry` / :class:`~repro.obs.SloMonitor`
    to observe the run; the records are identical either way (the no-op
    guarantee the regression tests pin down).  ``batching`` attaches a
    :class:`~repro.core.BatchConfig`; passing the *sequential* config
    (unbounded batch, concurrency 1) must leave every golden byte
    unchanged — the equivalence regression
    ``scripts/check_determinism.sh`` enforces.
    """
    stream = two_tier_arrivals(seed=seed)
    service = _run_two_tier(
        "priority", True, "Qwen1.5-1.8B", "Redmi K70 Pro", stream,
        fault_spec=FaultSpec(transient_rate=0.1, seed=7),
        tracer=tracer, metrics=metrics, monitor=monitor,
        batching=batching, steplog=steplog,
    )
    return service


def service_breakdown(seed: int = 42, trace_out: Optional[str] = None,
                      metrics_out: Optional[str] = None) -> Table:
    """Per-tier latency breakdown of the golden two-tier scenario.

    Decomposes every served request's turnaround into queue / retry /
    prefill / decode (validated to sum to the turnaround within 1e-9 s)
    and reports per-tier means — the component view behind the
    percentile columns of :func:`service_tier_comparison`.

    ``trace_out`` / ``metrics_out`` additionally export the run's
    unified Perfetto timeline and metrics snapshot (the observability
    side of ``llmnpu run service-breakdown --trace-out ...``).
    """
    from repro.obs import MetricsRegistry, Tracer, breakdown_table
    from repro.obs import export_service_trace
    tracer = Tracer() if trace_out else None
    metrics = MetricsRegistry() if metrics_out else None
    service = service_golden_records(seed=seed, tracer=tracer,
                                     metrics=metrics)
    if trace_out:
        export_service_trace(service, trace_out)
    if metrics_out:
        service.metrics_registry.save(metrics_out)
    return breakdown_table(
        service.requests,
        title=f"Service latency breakdown — golden two-tier scenario "
              f"(seed={seed})",
    )


def service_golden_trace(seed: int = 42,
                         batching: Optional[BatchConfig] = None) -> str:
    """Canonical unified-trace JSON of the golden scenario (one string).

    Runs :func:`service_golden_records` with a tracer attached and
    serializes the merged service+hardware timeline exactly as
    :func:`repro.obs.export_service_trace` writes it.  Byte-identical
    across processes for equal seeds; ``scripts/check_determinism.sh``
    diffs two independent evaluations (and the sequential batching
    config against the per-request baseline).
    """
    import json

    from repro.obs import (
        Tracer,
        service_timeline,
        to_chrome_trace,
        validate_timeline,
    )
    service = service_golden_records(seed=seed, tracer=Tracer(),
                                     batching=batching)
    events = to_chrome_trace(service_timeline(service))
    validate_timeline(events)
    return json.dumps(events, sort_keys=True)


def service_golden_snapshot(seed: int = 42,
                            batching: Optional[BatchConfig] = None,
                            steplog=None) -> str:
    """Canonical full-precision text dump of the golden scenario.

    ``scripts/check_determinism.sh`` runs this twice and diffs the
    output byte-for-byte — and once more with a
    :class:`~repro.obs.StepLogger` attached via ``steplog``, which must
    not change a byte (observation is a no-op).
    """
    service = service_golden_records(seed=seed, batching=batching,
                                     steplog=steplog)
    lines = []
    for r in service.requests:
        lines.append(
            f"{r.request_id} {r.tier} {r.status} retries={r.retries} "
            f"arrival={r.arrival_s!r} start={r.start_s!r} "
            f"finish={r.finish_s!r}"
        )
    m = service.metrics()
    lines.append(f"completed={m.n_completed} rejected={m.n_rejected} "
                 f"timeout={m.n_timeout} failed={m.n_failed} "
                 f"retries={m.n_retries}")
    lines.append(f"span={m.span_s!r} npu_busy={m.npu_busy_s!r} "
                 f"energy={m.total_energy_j!r}")
    return "\n".join(lines)


# -- continuous batching (step-loop scheduler) --------------------------------

#: Step-loop configuration the batching experiment sweeps: budget of
#: four 256-token chunks per step (so ``prefill_priority`` interpolates
#: 0-3 chunks alongside the standing decode population), eight requests
#: resident at once — continuous batching bounds residency by budget
#: and KV, not a per-request slot count.
BATCHING_BATCH_TOKENS = 1024
BATCHING_CONCURRENCY = 8

#: The batching experiment's background tier: decode-heavy chat
#: summaries (35-57 output tokens, ~5 s of decode at on-device rates).
#: Per-request dispatch head-of-line-blocks interactive arrivals behind
#: those decode tails; chunk-granularity interleaving does not — the
#: regime iteration-level scheduling exists for.
BATCHING_BACKGROUND_WORKLOAD = "chat_summary"

#: TTFT SLO bounds (arrival to first token) used for the goodput
#: columns — aligned with the tiers' admission expectations.
BATCHING_TTFT_SLO: Dict[str, float] = {
    "interactive": 4.0,
    "background": 30.0,
}


def batching_arrivals(seed: int = 42) -> List[Tuple[str, WorkloadSample,
                                                    float]]:
    """The batching experiment's stream: the golden two-tier generator
    with the background tier drawing decode-heavy chat summaries."""
    return two_tier_arrivals(
        seed=seed, background_workload=BATCHING_BACKGROUND_WORKLOAD)


def batched_golden_service(seed: int = 42,
                           prefill_priority: float = 0.5,
                           max_batch_tokens: int = BATCHING_BATCH_TOKENS,
                           max_concurrency: int = BATCHING_CONCURRENCY,
                           tracer=None, steplog=None) -> LlmService:
    """The golden two-tier scenario served by the step loop.

    Same tiers, fault seed and admission as
    :func:`service_golden_records`, on the decode-heavy
    :func:`batching_arrivals` stream; dispatch granularity and the
    background workload are what change.  Deterministic in all
    arguments — the ``batching-smoke`` CI job byte-diffs
    :func:`service_batching_golden_snapshot` built on this.
    """
    stream = batching_arrivals(seed=seed)
    return _run_two_tier(
        "priority", True, "Qwen1.5-1.8B", "Redmi K70 Pro", stream,
        fault_spec=FaultSpec(transient_rate=0.1, seed=7),
        tracer=tracer, steplog=steplog,
        batching=BatchConfig(max_batch_tokens=max_batch_tokens,
                             max_concurrency=max_concurrency,
                             prefill_priority=prefill_priority),
    )


def service_batching_golden_snapshot(seed: int = 42,
                                     prefill_priority: float = 0.5) -> str:
    """Full-precision text dump of one step-loop run (CI byte-diffs it).

    Covers the per-request timings *and* a digest of every executed
    step (item counts, token counts, KV reservation), so any
    nondeterminism in batch assembly — not just in the final records —
    trips the diff.
    """
    service = batched_golden_service(seed=seed,
                                     prefill_priority=prefill_priority)
    lines = []
    for r in service.requests:
        lines.append(
            f"{r.request_id} {r.tier} {r.status} retries={r.retries} "
            f"arrival={r.arrival_s!r} start={r.start_s!r} "
            f"finish={r.finish_s!r} ttft={r.ttft_s!r} itl={r.itl_s!r}"
        )
    for s in service.steps:
        lines.append(
            f"step {s.index} start={s.start_s!r} end={s.end_s!r} "
            f"items={len(s.items)} prefill={s.prefill_tokens} "
            f"decode={s.decode_tokens} inflight={s.n_inflight} "
            f"kv={s.kv_reserved_bytes}"
        )
    recs = service.requests
    lines.append(f"goodput={goodput_rps(recs, BATCHING_TTFT_SLO)!r}")
    return "\n".join(lines)


def service_batching(
    model: str = "Qwen1.5-1.8B",
    device: str = "Redmi K70 Pro",
    seed: int = 42,
    prefill_priorities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    max_batch_tokens: int = BATCHING_BATCH_TOKENS,
    max_concurrency: int = BATCHING_CONCURRENCY,
) -> Table:
    """Continuous batching vs. per-request dispatch, sweeping the knob.

    Plays the decode-heavy two-tier overload stream
    (:func:`batching_arrivals`) through the per-request scheduler
    (baseline row) and the step loop at several ``prefill_priority``
    settings.  The two claims the table carries (and the benchmark
    asserts): the step loop's goodput beats the baseline's, and
    raising ``prefill_priority`` lowers TTFT while raising ITL — the
    iteration-level trade-off the knob exists for.
    """
    stream = batching_arrivals(seed=seed)
    fault = FaultSpec(transient_rate=0.1, seed=7)
    table = Table(
        title=f"Continuous batching — {model} ({device}), decode-heavy "
              f"two-tier stream, batch budget {max_batch_tokens} tok × "
              f"{max_concurrency} requests",
        columns=["mode", "completed", "goodput req/s", "mean ttft s",
                 "mean itl s", "int ttft max s", "bg ttft mean s"],
    )

    def add_row(label: str, service: LlmService) -> None:
        recs = service.requests
        m = service.metrics()
        done = [r for r in recs if r.status == "completed"]
        ttfts = [r.ttft_s for r in done if r.ttft_s is not None]
        itls = [r.itl_s for r in done if r.itl_s is not None]
        int_ttfts = [r.ttft_s for r in done
                     if r.tier == "interactive" and r.ttft_s is not None]
        bg_ttfts = [r.ttft_s for r in done
                    if r.tier == "background" and r.ttft_s is not None]
        table.add_row(
            label,
            m.n_completed,
            goodput_rps(recs, BATCHING_TTFT_SLO),
            float(np.mean(ttfts)) if ttfts else 0.0,
            float(np.mean(itls)) if itls else 0.0,
            float(np.max(int_ttfts)) if int_ttfts else 0.0,
            float(np.mean(bg_ttfts)) if bg_ttfts else 0.0,
        )

    add_row("per-request (baseline)",
            _run_two_tier("priority", True, model, device, stream,
                          fault_spec=fault))
    for p in prefill_priorities:
        service = _run_two_tier(
            "priority", True, model, device, stream, fault_spec=fault,
            batching=BatchConfig(max_batch_tokens=max_batch_tokens,
                                 max_concurrency=max_concurrency,
                                 prefill_priority=p))
        add_row(f"step loop p={p:g}", service)
    table.add_note("goodput counts completed requests whose TTFT met "
                   "the tier bound (interactive 4 s, background 30 s) "
                   "per second of span; prefill_priority trades TTFT "
                   "(lower at 1.0) against ITL (lower at 0.0) — the "
                   "iteration-level scheduler's knob")
    return table


def scheduler_occupancy(
        seed: int = 42,
        prefill_priorities: Sequence[float] = (0.0, 0.5, 1.0)) -> Table:
    """Batch occupancy and decision mix across the knob's extremes.

    One step-logged golden batched run per ``prefill_priority``:
    mean/p95 batch-token occupancy (fraction of the per-step token
    budget actually filled) plus the decision-mix counts that explain
    it — chunks and decode tokens scheduled, prefills the budget cut
    off, decoders rotated out.  The numbers feed
    ``BENCH_scheduler_occupancy.json`` under the bench-compare gate.
    """
    from repro.obs import QuantileSketch, StepLogger, decision_mix, \
        occupancy_summary
    table = Table(
        title=f"Scheduler occupancy — golden batched stream (seed={seed}, "
              f"budget {BATCHING_BATCH_TOKENS} tok × "
              f"{BATCHING_CONCURRENCY} requests)",
        columns=["knob p", "steps", "mean batch tok", "mean batch util",
                 "p95 batch util", "chunk-sched", "decode-sched",
                 "budget skips", "rotated out"],
    )
    for p in prefill_priorities:
        logger = StepLogger(source=f"occupancy-p{p:g}")
        batched_golden_service(seed=seed, prefill_priority=p,
                               steplog=logger)
        occ = occupancy_summary(logger.steps)
        mix = decision_mix(logger.decisions)
        sketch = QuantileSketch()
        for s in logger.steps:
            if s.budget_utilization is not None:
                sketch.observe(s.budget_utilization)
        table.add_row(
            f"p={p:g}", int(occ["n_steps"]),
            occ["mean_batch_tokens"],
            occ.get("mean_budget_utilization"),
            sketch.percentile(95.0) if sketch.count else None,
            mix.get("chunk-scheduled", 0),
            mix.get("decode-scheduled", 0),
            mix.get("budget-exhausted", 0),
            mix.get("decode-rotated-out", 0),
        )
    table.add_note("batch util is batch_tokens / max_batch_tokens per "
                   "step; decode-leaning settings (p=0) spread prefill "
                   "over more, emptier steps and skip more chunks "
                   "(budget-exhausted), prefill-leaning settings (p=1) "
                   "pack the budget and finish in fewer steps")
    return table


def golden_steplog(seed: int = 42, batched: bool = False,
                   prefill_priority: float = 0.5):
    """A :class:`~repro.obs.StepLogger` over one golden run.

    ``batched=False`` replays the golden two-tier scenario on the
    legacy per-request path (steps empty, decisions + records only);
    ``batched=True`` replays the decode-heavy stream through the step
    loop, producing the full step/decision log.  Either way the logger
    is attached *before* the run, so the document is a pure function of
    the arguments.
    """
    from repro.obs import StepLogger
    logger = StepLogger(source=f"golden-{'batched' if batched else 'service'}"
                               f"-seed{seed}")
    if batched:
        batched_golden_service(seed=seed,
                               prefill_priority=prefill_priority,
                               steplog=logger)
    else:
        service_golden_records(seed=seed, steplog=logger)
    return logger


def golden_steplog_json(seed: int = 42, batched: bool = True,
                        prefill_priority: float = 0.5) -> str:
    """Canonical ``repro.steps/v1`` JSON of one golden run (one string).

    ``scripts/check_determinism.sh`` diffs two independent evaluations
    byte-for-byte; the batching-smoke CI job uploads it as an artifact.
    """
    return golden_steplog(seed=seed, batched=batched,
                          prefill_priority=prefill_priority).to_json()
